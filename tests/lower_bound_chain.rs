//! Cross-crate integration: the Theorem 4.2/4.8 reduction chain, link by
//! link, on real constructions — the gadget gap, the threshold decision,
//! the Server-model simulation of a real CONGEST run, and the composed
//! bound.

use congest_algos::baselines::{diameter_radius_exact, WeightMode};
use congest_graph::metrics;
use congest_lb::formulas::{f_diameter, f_radius, f_via_gdt, GadgetDims};
use congest_lb::gadget::{diameter_gadget, paper_weights, radius_gadget, GadgetNode};
use congest_lb::reduction::{reduction_point, threshold_decision};
use congest_lb::server::simulate_transcript;
use congest_sim::SimConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

#[test]
fn full_diameter_reduction_decides_f() {
    // An actual (3/2−ε)-approximation protocol — here: the exact classical
    // APSP baseline run on the simulated gadget network — feeds the
    // threshold decision, which recovers F(x, y) for every tried input.
    let dims = GadgetDims::new(2);
    let (alpha, beta) = paper_weights(&dims);
    let mut rng = ChaCha8Rng::seed_from_u64(20);
    for trial in 0..4 {
        let density = [0.9, 0.5][trial % 2];
        let x: Vec<bool> = (0..dims.input_len())
            .map(|_| rng.gen_bool(density))
            .collect();
        let y: Vec<bool> = (0..dims.input_len())
            .map(|_| rng.gen_bool(density))
            .collect();
        let g = diameter_gadget(&dims, &x, &y, alpha, beta);
        let cfg =
            SimConfig::standard(g.graph.n(), g.graph.max_weight()).with_max_rounds(50_000_000);
        let (d, _, _) = diameter_radius_exact(&g.graph, 0, &cfg, WeightMode::Weighted).unwrap();
        // Any approximation in [D, 1.4·D] decides the same way.
        let approx = 1.4 * d.as_f64();
        assert_eq!(
            threshold_decision(g.graph.n(), approx),
            f_diameter(&dims, &x, &y),
            "trial {trial}"
        );
    }
}

#[test]
fn radius_reduction_decides_f_prime() {
    let dims = GadgetDims::new(2);
    let (alpha, beta) = paper_weights(&dims);
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    for trial in 0..4 {
        let density = [0.3, 0.01][trial % 2];
        let x: Vec<bool> = (0..dims.input_len())
            .map(|_| rng.gen_bool(density))
            .collect();
        let y: Vec<bool> = (0..dims.input_len())
            .map(|_| rng.gen_bool(density))
            .collect();
        let g = radius_gadget(&dims, &x, &y, alpha, beta);
        let r = metrics::radius(&g.graph).expect_finite() as f64;
        assert_eq!(
            threshold_decision(g.graph.n(), 1.4 * r),
            f_radius(&dims, &x, &y),
            "trial {trial}"
        );
    }
}

#[test]
fn lemma_4_1_on_a_real_distance_protocol() {
    // Run the real unweighted bounded-SSSP protocol from Alice's side on the
    // h = 4 gadget, within the lemma's horizon, and verify the charge.
    let dims = GadgetDims::new(4);
    let (alpha, beta) = paper_weights(&dims);
    let ones = vec![true; dims.input_len()];
    let g = diameter_gadget(&dims, &ones, &ones, alpha, beta);
    let u = g.graph.unweighted_view();
    let src = g.layout.id(GadgetNode::A(3));
    let limit = (1u64 << dims.h) / 2 - 2; // padded rounds = limit + 1 < 2^h/2
    let cfg = SimConfig::standard(u.n(), 1).with_message_log();
    let (_, stats) =
        congest_algos::bounded_sssp::bounded_distance_sssp(&u, src, src, limit, &cfg).unwrap();
    let report = simulate_transcript(&g.layout, &stats.message_log);
    assert!(report.within_horizon, "T must stay below 2^h/2");
    for (i, &c) in report.per_round.iter().enumerate() {
        assert!(c <= report.per_round_cap, "round {}: {c} > 2h", i + 1);
    }
    assert!(report.cost.bits <= report.bound_bits(dims.h, 64));
    // The simulation is meaningful: far fewer charged than total messages.
    assert!(report.cost.messages * 10 <= stats.messages);
}

#[test]
fn gdt_factorization_holds_at_gadget_dims() {
    let dims = GadgetDims::new(4);
    let mut rng = ChaCha8Rng::seed_from_u64(22);
    for _ in 0..50 {
        let x: Vec<bool> = (0..dims.input_len()).map(|_| rng.gen_bool(0.85)).collect();
        let y: Vec<bool> = (0..dims.input_len()).map(|_| rng.gen_bool(0.85)).collect();
        assert_eq!(f_diameter(&dims, &x, &y), f_via_gdt(&dims, &x, &y));
    }
}

#[test]
fn composed_bound_sits_below_measured_upper_bound_shape() {
    // Theorem 1.2's Ω̃(n^{2/3}) must stay below Theorem 1.1's Õ(n^{9/10})
    // at every gadget height (consistency of the paper's Table 1).
    for h in [2u32, 4, 6, 8, 10, 12, 14] {
        let p = reduction_point(h);
        let d = (p.n as f64).log2().ceil() as usize;
        let upper =
            congest_wdr::cost::quantum_weighted_upper(p.n, d, congest_wdr::cost::Polylog::Drop);
        assert!(
            p.rounds <= upper,
            "h={h}: lower bound {} exceeds upper bound {upper}",
            p.rounds
        );
    }
}
