//! Cross-crate integration: the full Theorem 1.1 pipeline on several graph
//! families, both objectives, with guarantee and accounting checks.

use congest_algos::baselines::{diameter_radius_exact, WeightMode};
use congest_graph::{generators, metrics, WeightedGraph};
use congest_sim::SimConfig;
use congest_wdr::algorithm::{quantum_weighted, Objective};
use congest_wdr::framework::PhaseCosts;
use congest_wdr::params::WdrParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn cfg(g: &WeightedGraph) -> SimConfig {
    SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(2_000_000_000)
}

fn families(seed: u64) -> Vec<(&'static str, WeightedGraph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    vec![
        (
            "erdos_renyi",
            generators::erdos_renyi_connected(14, 0.25, 7, &mut rng),
        ),
        ("cluster_ring", generators::cluster_ring(16, 4, 5, &mut rng)),
        (
            "grid",
            generators::randomize_weights(&generators::grid(4, 4, 1), 6, &mut rng),
        ),
        ("tree", generators::random_tree(14, 9, &mut rng)),
    ]
}

fn params_for(g: &WeightedGraph) -> WdrParams {
    let d = metrics::unweighted_diameter(g).max(1);
    let mut p = WdrParams::for_benchmarks(g.n(), d, 0.5);
    p.ell = g.n(); // generous hop budget on small graphs keeps tests fast & valid
    p.r = (g.n() as f64 * 0.3).max(2.0);
    p
}

#[test]
fn theorem_1_1_diameter_guarantee_across_families() {
    for (name, g) in families(1) {
        let p = params_for(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(100);
        let rep = quantum_weighted(&g, 0, Objective::Diameter, &p, &cfg(&g), &mut rng)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let cap = (1.0 + p.eps) * (1.0 + p.eps) * rep.exact + 1e-6;
        assert!(
            rep.estimate <= cap,
            "{name}: estimate {} > (1+ε)²·D = {cap}",
            rep.estimate
        );
        assert!(rep.estimate > 0.0, "{name}: vacuous estimate");
    }
}

#[test]
fn theorem_1_1_radius_guarantee_across_families() {
    for (name, g) in families(2) {
        let p = params_for(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(200);
        let rep = quantum_weighted(&g, 0, Objective::Radius, &p, &cfg(&g), &mut rng)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            rep.estimate >= rep.exact - 1e-6,
            "{name}: radius estimate {} below exact {}",
            rep.estimate,
            rep.exact
        );
    }
}

#[test]
fn round_accounting_is_reconstructible() {
    let (_, g) = families(3).remove(0);
    let p = params_for(&g);
    let mut rng = ChaCha8Rng::seed_from_u64(300);
    let rep = quantum_weighted(&g, 0, Objective::Diameter, &p, &cfg(&g), &mut rng).unwrap();
    let inner = PhaseCosts {
        t0: rep.t0,
        t_setup: rep.t1,
        t_eval: rep.t2,
    };
    let outer = PhaseCosts {
        t0: 0,
        t_setup: rep.t_setup_outer,
        t_eval: inner.charge_oblivious(rep.inner_budget),
    };
    assert_eq!(rep.total_rounds, outer.charge(rep.outer_trace));
    assert!(
        rep.budgeted_rounds >= rep.t0,
        "budget includes at least one evaluation"
    );
}

#[test]
fn quantum_and_classical_agree_on_the_answer() {
    // Same instance: the quantum estimate brackets the classical exact value.
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let g = generators::erdos_renyi_connected(12, 0.3, 8, &mut rng);
    let (d_exact, r_exact, _) =
        diameter_radius_exact(&g, 0, &cfg(&g), WeightMode::Weighted).unwrap();
    let p = params_for(&g);
    let rep = quantum_weighted(&g, 0, Objective::Diameter, &p, &cfg(&g), &mut rng).unwrap();
    assert_eq!(rep.exact, d_exact.as_f64());
    assert!(rep.estimate <= 2.25 * d_exact.as_f64() + 1e-6);
    let rep = quantum_weighted(&g, 0, Objective::Radius, &p, &cfg(&g), &mut rng).unwrap();
    assert_eq!(rep.exact, r_exact.as_f64());
}

#[test]
fn repeated_runs_mostly_hit_the_lower_side() {
    // P[estimate ≥ D] should be high (the quantum search rarely misses all
    // marked sets).
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = generators::erdos_renyi_connected(12, 0.3, 6, &mut rng);
    let p = params_for(&g);
    let mut hits = 0;
    for seed in 0..8 {
        let mut rng = ChaCha8Rng::seed_from_u64(1000 + seed);
        let rep = quantum_weighted(&g, 0, Objective::Diameter, &p, &cfg(&g), &mut rng).unwrap();
        if rep.estimate >= rep.exact - 1e-6 {
            hits += 1;
        }
    }
    assert!(hits >= 6, "lower side hit only {hits}/8 times");
}

#[test]
fn leader_choice_does_not_change_estimates_validity() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let g = generators::cluster_ring(16, 4, 5, &mut rng);
    let p = params_for(&g);
    for leader in [0usize, 7, 15] {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let rep =
            quantum_weighted(&g, leader, Objective::Diameter, &p, &cfg(&g), &mut rng).unwrap();
        assert!(rep.estimate <= 2.25 * rep.exact + 1e-6, "leader {leader}");
    }
}
