//! Property-based tests (proptest) over the core data structures and the
//! paper's invariants, spanning crates.

use congest_graph::rounding::{approx_hop_bounded, RoundingScheme};
use congest_graph::{contract, generators, metrics, shortest_path, Dist, WeightedGraph};
use congest_lb::formulas::{f_diameter, gdt, ver, ver_encode_alice, ver_encode_bob, GadgetDims};
use congest_lb::gadget::{diameter_gadget, paper_weights};
use proptest::prelude::*;
use quantum_sim::grover;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (4usize..24, 0u64..u64::MAX, 1u64..20).prop_map(|(n, seed, w)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::erdos_renyi_connected(n, 0.2, w, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dijkstra, Bellman–Ford and Floyd–Warshall agree everywhere.
    #[test]
    fn shortest_path_algorithms_agree(g in arb_graph()) {
        let fw = shortest_path::floyd_warshall(&g);
        for s in g.nodes() {
            let dj = shortest_path::dijkstra(&g, s);
            let bf = shortest_path::bellman_ford(&g, s);
            prop_assert_eq!(&dj, &bf);
            prop_assert_eq!(&dj, &fw[s]);
        }
    }

    /// The triangle inequality holds for the shortest-path metric.
    #[test]
    fn triangle_inequality(g in arb_graph()) {
        let apsp = shortest_path::apsp(&g);
        let n = g.n();
        for a in 0..n.min(6) {
            for b in 0..n {
                for c in 0..n {
                    prop_assert!(apsp[a][c] <= apsp[a][b] + apsp[b][c]);
                }
            }
        }
    }

    /// `d^ℓ` is non-increasing in ℓ and sandwiched by `d` and `d^1`.
    #[test]
    fn hop_bounded_monotonicity(g in arb_graph(), s in 0usize..4, ell in 1usize..8) {
        let s = s % g.n();
        let full = shortest_path::dijkstra(&g, s);
        let dl = shortest_path::hop_bounded(&g, s, ell);
        let dl_next = shortest_path::hop_bounded(&g, s, ell + 1);
        for v in g.nodes() {
            prop_assert!(dl[v] >= full[v]);
            prop_assert!(dl_next[v] <= dl[v]);
        }
    }

    /// Lemma 3.2's sandwich for arbitrary (ℓ, ε).
    #[test]
    fn lemma_3_2_property(g in arb_graph(), ell in 2usize..10, eps_pct in 10u32..90) {
        let eps = f64::from(eps_pct) / 100.0;
        let scheme = RoundingScheme::new(ell, eps);
        let s = 0;
        let exact = shortest_path::dijkstra(&g, s);
        let hop = shortest_path::hop_bounded(&g, s, ell);
        let approx = approx_hop_bounded(&g, s, scheme);
        for v in g.nodes() {
            prop_assert!(approx[v] >= exact[v].as_f64() - 1e-6);
            if hop[v].is_finite() {
                prop_assert!(approx[v] <= (1.0 + eps) * hop[v].as_f64() + 1e-6);
            }
        }
    }

    /// Lemma 4.3: contraction sandwiches the diameter and radius.
    #[test]
    fn lemma_4_3_property(g in arb_graph()) {
        let c = contract::contract_unit_edges(&g);
        let n = Dist::from(g.n() as u64);
        prop_assert!(metrics::diameter(&c.graph) <= metrics::diameter(&g));
        prop_assert!(metrics::diameter(&g) <= metrics::diameter(&c.graph) + n);
        prop_assert!(metrics::radius(&c.graph) <= metrics::radius(&g));
        prop_assert!(metrics::radius(&g) <= metrics::radius(&c.graph) + n);
    }

    /// Grover success probability is a valid probability and peaks near the
    /// optimal iteration count.
    #[test]
    fn grover_probability_properties(t in 1u64..40, logn in 6u32..16, j in 0u64..200) {
        let n = 1u64 << logn;
        prop_assume!(t < n / 2);
        let rho = t as f64 / n as f64;
        let p = grover::success_probability(rho, j);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        let opt = grover::optimal_iterations(rho);
        let p_opt = grover::success_probability(rho, opt);
        prop_assert!(p_opt >= 1.0 - rho.sqrt() * 2.0 - 0.1, "optimal iterations must do well");
    }

    /// VER really is the promise restriction of GDT, for all promise inputs.
    #[test]
    fn ver_gdt_promise(a in 0u8..4, b in 0u8..4) {
        prop_assert_eq!(gdt(ver_encode_alice(a), ver_encode_bob(b)), ver(a, b));
    }

    /// The h=2 diameter gadget decides F(x,y) for arbitrary inputs.
    #[test]
    fn gadget_gap_property(bits in proptest::collection::vec(any::<bool>(), 32)) {
        let dims = GadgetDims::new(2);
        let (alpha, beta) = paper_weights(&dims);
        let (x, y) = bits.split_at(16);
        let g = diameter_gadget(&dims, x, y, alpha, beta);
        let d = metrics::diameter(&g.graph).expect_finite();
        if f_diameter(&dims, x, y) {
            prop_assert!(d <= 2 * alpha + g.graph.n() as u64);
        } else {
            prop_assert!(d >= (alpha + beta).min(3 * alpha));
        }
    }

    /// Dist arithmetic is commutative, associative and monotone.
    #[test]
    fn dist_semigroup(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, c in 0u64..1u64 << 40) {
        let (da, db, dc) = (Dist::from(a), Dist::from(b), Dist::from(c));
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db) + dc, da + (db + dc));
        prop_assert!(da + db >= da);
        prop_assert_eq!(da + Dist::ZERO, da);
        prop_assert_eq!(da + Dist::INFINITY, Dist::INFINITY);
    }
}
