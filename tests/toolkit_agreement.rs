//! Cross-crate integration: every distributed toolkit phase reproduces the
//! centralized reference bit-for-bit, across random instances — the bridge
//! that justifies reference-valued quantum oracles (DESIGN.md §3).

use congest_algos::bounded_sssp::bounded_hop_sssp;
use congest_algos::multi_source::multi_source_bounded_hop;
use congest_algos::overlay_net::embed_overlay;
use congest_algos::skeleton::SkeletonState;
use congest_graph::overlay::{sample_skeleton, Overlay, SkeletonDistances};
use congest_graph::rounding::{approx_hop_bounded, RoundingScheme};
use congest_graph::{generators, WeightedGraph};
use congest_sim::SimConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn cfg(g: &WeightedGraph) -> SimConfig {
    SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(2_000_000_000)
}

fn close(a: f64, b: f64) -> bool {
    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9
}

#[test]
fn algorithm_1_agrees_on_random_instances() {
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    for trial in 0..5 {
        let n = 10 + 2 * trial;
        let g = generators::erdos_renyi_connected(n, 0.3, 5, &mut rng);
        let scheme = RoundingScheme::new(n / 2, 0.5);
        let s = trial % n;
        let (got, _) = bounded_hop_sssp(&g, 0, s, scheme, &cfg(&g)).unwrap();
        let want = approx_hop_bounded(&g, s, scheme);
        for v in g.nodes() {
            assert!(
                close(got[v], want[v]),
                "trial {trial} v={v}: {} vs {}",
                got[v],
                want[v]
            );
        }
    }
}

#[test]
fn algorithm_3_agrees_with_per_source_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = generators::cluster_ring(16, 4, 4, &mut rng);
    let scheme = RoundingScheme::new(8, 0.5);
    let sources = vec![1, 5, 9, 13];
    let res = multi_source_bounded_hop(&g, 0, &sources, scheme, &cfg(&g), &mut rng).unwrap();
    assert!(!res.failed);
    for (j, &s) in sources.iter().enumerate() {
        let want = approx_hop_bounded(&g, s, scheme);
        for v in g.nodes() {
            assert!(close(res.approx[v][j], want[v]), "s={s} v={v}");
        }
    }
    // The exact wire representation decodes to the same floats.
    for v in g.nodes() {
        for j in 0..sources.len() {
            match res.repr[v][j] {
                Some((scale, raw)) => {
                    assert!(close(res.approx[v][j], raw as f64 * scheme.unscale(scale)));
                }
                None => assert!(res.approx[v][j].is_infinite()),
            }
        }
    }
}

#[test]
fn algorithm_4_reconstructs_reference_overlays() {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    for trial in 0..3 {
        let g = generators::erdos_renyi_connected(12, 0.35, 6, &mut rng);
        let skeleton = sample_skeleton(g.n(), 0.4, &mut rng);
        if skeleton.len() < 3 {
            continue;
        }
        let scheme = RoundingScheme::new(g.n(), 0.5);
        let k = 2;
        let emb = embed_overlay(&g, 0, &skeleton, scheme, k, &cfg(&g), &mut rng).unwrap();
        let reference = Overlay::from_skeleton(&g, &emb.skeleton, scheme).shortcut(k);
        for i in 0..emb.skeleton.len() {
            for j in 0..emb.skeleton.len() {
                assert!(
                    close(emb.shortcut.weight(i, j), reference.weight(i, j)),
                    "trial {trial} w''({i},{j})"
                );
            }
        }
    }
}

#[test]
fn full_pipeline_eccentricities_agree() {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let g = generators::erdos_renyi_connected(13, 0.3, 5, &mut rng);
    let skeleton = vec![0, 4, 8, 12];
    let scheme = RoundingScheme::new(g.n(), 0.5);
    let k = 2;
    let st = SkeletonState::initialize(&g, 0, &skeleton, scheme, k, &cfg(&g), &mut rng).unwrap();
    let sd = SkeletonDistances::compute(&g, &skeleton, scheme, k);
    for &s in &skeleton {
        let (got, stats) = st.eccentricity(&g, s, &cfg(&g)).unwrap();
        assert!(close(got, sd.approx_eccentricity(s)), "ẽ({s})");
        assert!(stats.rounds > 0);
    }
}

#[test]
fn lemma_3_5_phase_costs_are_parameter_oblivious() {
    // Two different sets of the same size must have (nearly) identical
    // measured phase costs — the property the Measured charging mode
    // relies on (DESIGN.md §3).
    let mut rng = ChaCha8Rng::seed_from_u64(14);
    let g = generators::cluster_ring(16, 4, 4, &mut rng);
    let scheme = RoundingScheme::new(12, 0.5);
    let sets = [vec![0usize, 4, 8, 12], vec![1usize, 5, 9, 13]];
    let mut costs = Vec::new();
    for set in &sets {
        let st = SkeletonState::initialize(&g, 0, set, scheme, 2, &cfg(&g), &mut rng).unwrap();
        let t0 = st.init_stats().rounds;
        let (_, s1) = st.setup_data(&g, set[1], &cfg(&g)).unwrap();
        costs.push((t0, s1.rounds));
    }
    let (t0a, t1a) = costs[0];
    let (t0b, t1b) = costs[1];
    // Identical parameters ⇒ the schedules differ only in the random delays
    // and in data-dependent announcement counts; both are small.
    let within = |x: usize, y: usize, tol: f64| {
        let (x, y) = (x as f64, y as f64);
        (x - y).abs() / x.max(y) < tol
    };
    assert!(within(t0a, t0b, 0.2), "T₀: {t0a} vs {t0b}");
    assert!(within(t1a, t1b, 0.35), "T₁: {t1a} vs {t1b}");
}
