//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors a minimal, dependency-free implementation of the
//! exact API surface it uses: [`RngCore`], [`SeedableRng`] (with the
//! SplitMix64-based `seed_from_u64`), and the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`.
//!
//! The integer `gen_range` uses rejection sampling (no modulo bias); floats
//! use the standard 53-bit mantissa construction. Streams are deterministic
//! for a given seed but are **not** guaranteed to be bit-identical to the
//! upstream crate — all in-tree consumers only rely on determinism and
//! statistical quality, never on specific values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64`, expanding it with SplitMix64
    /// (the same construction upstream `rand_core` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                let mut bytes = [0u8; std::mem::size_of::<$t>()];
                rng.fill_bytes(&mut bytes);
                <$t>::from_le_bytes(bytes)
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Draws a `u64` uniformly from `[0, width)` by rejection sampling
/// (`width == 0` means the full 64-bit range).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    if width == 0 {
        return rng.next_u64();
    }
    // Largest `zone` with `zone + 1` a multiple of `width`.
    let zone = u64::MAX - (u64::MAX - width + 1) % width;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % width;
        }
    }
}

fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, width: u128) -> u128 {
    if width == 0 {
        return (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
    }
    let zone = u128::MAX - (u128::MAX - width + 1) % width;
    loop {
        let v = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        if v <= zone {
            return v % width;
        }
    }
}

/// A range [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u128;
                self.start + uniform_u128(rng, width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi - lo) as u128 + 1;
                // width == 2^128 is impossible for these types; 0 means full
                // range only for u128 itself, handled by uniform_u128.
                lo + uniform_u128(rng, width) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_u128(rng, self.end - self.start)
    }
}

impl SampleRange<u128> for RangeInclusive<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let width = (hi - lo).wrapping_add(1); // 0 encodes the full range
        lo.wrapping_add(uniform_u128(rng, width))
    }
}

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, width) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_u64(rng, width) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly over its natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        // Compare against 53 uniform bits; p == 1.0 must always win.
        p == 1.0 || f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64, used directly as a test generator.
    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix(1);
        for _ in 0..2000 {
            let a = rng.gen_range(3u64..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(5usize..=5);
            assert_eq!(b, 5);
            let c = rng.gen_range(-4i32..=7);
            assert!((-4..=7).contains(&c));
            let d = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&d));
            let e = rng.gen_range(0u128..10_000u128);
            assert!(e < 10_000);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = SplitMix(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SplitMix(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let mut rng = SplitMix(5);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
