//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented directly over `proc_macro`
//! token streams (no `syn`/`quote`, which are unavailable offline).
//!
//! Supported shapes — the ones this workspace uses:
//!
//! * named-field structs → JSON objects;
//! * tuple structs → JSON arrays;
//! * unit structs → `null`;
//! * enums with unit / tuple / struct variants → externally tagged JSON
//!   (`"Variant"`, `{"Variant":[..]}`, `{"Variant":{..}}`), matching
//!   upstream serde's default representation.
//!
//! Generic types are intentionally unsupported (none of the deriving types
//! in this workspace are generic); the macro panics with a clear message if
//! it meets one, so a future need surfaces loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a deriving type.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) tokens.
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracketed group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits the tokens of a braced fields group into per-field name lists.
/// Tracks `<`/`>` depth so commas inside generic types don't split fields.
fn named_field_names(group: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_meta(group, i);
        let Some(TokenTree::Ident(name)) = group.get(i) else {
            break;
        };
        names.push(name.to_string());
        // Skip `: Type` up to the next top-level comma.
        let mut angle = 0i32;
        i += 1;
        while i < group.len() {
            match &group[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Counts the fields of a parenthesized (tuple) fields group.
fn tuple_field_count(group: &[TokenTree]) -> usize {
    let mut count = 0;
    let mut angle = 0i32;
    let mut in_field = false;
    for t in group {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => in_field = false,
            _ => {
                if !in_field {
                    count += 1;
                    in_field = true;
                }
            }
        }
    }
    count
}

fn parse_variants(group: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_meta(group, i);
        let Some(TokenTree::Ident(name)) = group.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let kind = match group.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Named(named_field_names(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Tuple(tuple_field_count(&inner))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < group.len() {
            if let TokenTree::Punct(p) = &group[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Parses a `struct`/`enum` item into its name and [`Shape`].
fn parse_input(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic type `{name}` is not supported");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::NamedStruct(named_field_names(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::TupleStruct(tuple_field_count(&inner))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Enum(parse_variants(&inner))
            }
            other => panic!("serde derive: malformed enum body: {other:?}"),
        },
        kw => panic!("serde derive: unsupported item kind `{kw}`"),
    };
    (name, shape)
}

fn named_fields_writer(fields: &[String], access_prefix: &str) -> String {
    let mut body = String::from("out.push('{');\n");
    for (idx, f) in fields.iter().enumerate() {
        if idx > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!("out.push_str(\"\\\"{f}\\\":\");\n"));
        body.push_str(&format!(
            "::serde::Serialize::serialize_json(&{access_prefix}{f}, out);\n"
        ));
    }
    body.push_str("out.push('}');\n");
    body
}

fn tuple_fields_writer(count: usize, binding: impl Fn(usize) -> String) -> String {
    let mut body = String::from("out.push('[');\n");
    for idx in 0..count {
        if idx > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "::serde::Serialize::serialize_json(&{}, out);\n",
            binding(idx)
        ));
    }
    body.push_str("out.push(']');\n");
    body
}

/// Derives the vendored `serde::Serialize` (a direct JSON writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => named_fields_writer(fields, "self."),
        Shape::TupleStruct(count) => tuple_fields_writer(*count, |i| format!("self.{i}")),
        Shape::UnitStruct => String::from("out.push_str(\"null\");\n"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),\n"
                        ));
                    }
                    VariantKind::Tuple(count) => {
                        let bindings: Vec<String> =
                            (0..*count).map(|i| format!("__f{i}")).collect();
                        let writer = tuple_fields_writer(*count, |i| format!("__f{i}"));
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{ out.push_str(\"{{\\\"{vn}\\\":\"); {writer} out.push('}}'); }}\n",
                            bindings.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let writer = named_fields_writer(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ out.push_str(\"{{\\\"{vn}\\\":\"); {writer} out.push('}}'); }}\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut String) {{\n{body}}}\n\
         }}\n"
    );
    out.parse()
        .expect("serde derive: generated impl must parse")
}

/// Derives the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _shape) = parse_input(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}\n")
        .parse()
        .expect("serde derive: generated impl must parse")
}
