//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the slice of serde this workspace relies on:
//!
//! * a [`Serialize`] trait that writes compact JSON directly into a
//!   `String` (no intermediate data model);
//! * a [`Deserialize`] marker trait (nothing in the workspace deserializes
//!   into typed values — the trace tooling parses into
//!   `serde_json::Value`);
//! * `#[derive(Serialize, Deserialize)]` via the companion
//!   `serde_derive` proc-macro crate, handling named-field structs, tuple
//!   structs, and enums with unit / tuple / struct variants (externally
//!   tagged, like upstream serde's default representation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Lets the `::serde::` paths emitted by the derive macros resolve inside
// this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A type that can write itself as JSON.
pub trait Serialize {
    /// Appends this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);

    /// Convenience: the JSON encoding as a fresh string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.serialize_json(&mut out);
        out
    }
}

/// Marker for types whose derive requested deserialization support.
///
/// The in-tree JSON reader ([`serde_json::Value`]-style) is untyped, so the
/// trait carries no methods; it exists so `#[derive(Deserialize)]` in
/// source files keeps compiling unchanged.
pub trait Deserialize<'de>: Sized {}

/// Escapes `s` into `out` as a JSON string literal (with quotes).
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self}"));
        } else {
            // JSON has no IEEE specials; match serde_json's lossy `null`.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(5u64.to_json(), "5");
        assert_eq!((-3i32).to_json(), "-3");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!("a\"b".to_json(), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u32, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Some(7u8).to_json(), "7");
        assert_eq!(None::<u8>.to_json(), "null");
        assert_eq!((1u8, "x").to_json(), "[1,\"x\"]");
    }

    #[derive(Serialize)]
    struct Point {
        x: u32,
        y: u32,
    }

    #[derive(Serialize)]
    struct Wrapper(u32, bool);

    #[derive(Serialize)]
    enum Shape {
        Dot,
        Circle { radius: u32 },
        Pair(u8, u8),
    }

    #[test]
    fn derived_struct() {
        assert_eq!(Point { x: 1, y: 2 }.to_json(), r#"{"x":1,"y":2}"#);
        assert_eq!(Wrapper(9, false).to_json(), "[9,false]");
    }

    #[test]
    fn derived_enum_externally_tagged() {
        assert_eq!(Shape::Dot.to_json(), "\"Dot\"");
        assert_eq!(
            Shape::Circle { radius: 3 }.to_json(),
            r#"{"Circle":{"radius":3}}"#
        );
        assert_eq!(Shape::Pair(1, 2).to_json(), r#"{"Pair":[1,2]}"#);
    }
}
