//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, exposing the API surface this workspace's
//! `harness = false` benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of upstream's statistical machinery, each benchmark is warmed up
//! briefly and then timed over an adaptively chosen iteration count; the
//! mean wall-clock time per iteration is printed. Good enough to detect
//! order-of-magnitude regressions (e.g. a tracing hook accidentally doing
//! per-round allocation) without any external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
///
/// The vendored harness runs every batch size identically (setup per
/// iteration, setup excluded from timing); the variants exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: upstream batches many per allocation.
    SmallInput,
    /// Large inputs: upstream batches few per allocation.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    /// Mean time per iteration, filled in by `iter`/`iter_batched`.
    elapsed_per_iter: Option<Duration>,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine` over repeated iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            std::hint::black_box(routine());
        });
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut timed = Duration::ZERO;
        let mut iters: u64 = 0;
        let deadline = Instant::now() + self.measurement_time;
        while iters < 10 || (Instant::now() < deadline && timed < self.measurement_time) {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.elapsed_per_iter = Some(timed / u32::try_from(iters).unwrap_or(u32::MAX).max(1));
    }

    fn run<F: FnMut()>(&mut self, mut f: F) {
        // Warm-up: a few unmeasured iterations.
        for _ in 0..3 {
            f();
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        while iters < 10 || start.elapsed() < self.measurement_time {
            f();
            iters += 1;
        }
        let total = start.elapsed();
        self.elapsed_per_iter = Some(total / u32::try_from(iters).unwrap_or(u32::MAX).max(1));
    }
}

/// The benchmark registry/driver.
pub struct Criterion {
    measurement_time: Duration,
    last_measurement: Option<Duration>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
            last_measurement: None,
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Runs `f`'s timing loop and prints the mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            elapsed_per_iter: None,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        match bencher.elapsed_per_iter {
            Some(per_iter) => println!("{id:<40} {per_iter:>12.2?}/iter"),
            None => println!("{id:<40} (no measurement recorded)"),
        }
        self.last_measurement = bencher.elapsed_per_iter;
        self
    }

    /// Mean per-iteration time of the most recent [`Criterion::bench_function`]
    /// run, for harnesses that post-process measurements (upstream exposes
    /// this through its JSON reports; the stand-in returns it directly).
    pub fn last_measurement(&self) -> Option<Duration> {
        self.last_measurement
    }
}

/// Bundles benchmark functions into a group runner, mirroring upstream's
/// plain form: `criterion_group!(name, target, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the named groups (for `harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran >= 10);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    fn noop_target(c: &mut Criterion) {
        c.bench_function("grouped_noop", |b| b.iter(|| 1u64 + 1));
    }

    criterion_group!(test_group, noop_target);

    #[test]
    fn group_macro_compiles_and_runs() {
        test_group();
    }
}
