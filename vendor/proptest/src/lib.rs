//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the subset this workspace uses:
//!
//! * [`Strategy`] with an associated `Value`, range strategies over the
//!   integer and float primitives, tuple strategies, [`collection::vec`],
//!   `any::<T>()`, and `.prop_map`;
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`), plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`];
//! * deterministic case generation: every test function derives its RNG
//!   stream from its own name, so failures reproduce run-to-run.
//!
//! Unlike upstream there is no shrinking and no persistence of failing
//! cases (`.proptest-regressions` files are ignored); a failing case
//! reports its case index and the per-case seed instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Test-case plumbing used by the macros.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case hit a failed `prop_assert!` — the property is violated.
        Fail(String),
        /// The case was vetoed by `prop_assume!` — generate another.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// Builds a rejection with the given message.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// Runner configuration; only the case count is tunable.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of passing cases required for the property to hold.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; the CONGEST property tests simulate
            // whole networks per case, so the vendored default is leaner.
            Config { cases: 32 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
pub use test_runner::TestCaseError;

/// The RNG handed to strategies: a SplitMix64 stream (via the vendored
/// `rand` traits) seeded deterministically per test function and case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derives the case-`index` seed for the test named `name`.
    ///
    /// FNV-1a over the name keeps streams stable across runs and distinct
    /// across test functions; the case index is mixed in afterwards.
    pub fn for_case(name: &str, index: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h ^ (u64::from(index).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }
}

impl rand::RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A recipe for generating values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing one fixed value (cloned per case).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Uniform in [0, 1): the workspace only uses float *ranges*, so the
        // full bit-pattern domain (NaNs, infinities) is deliberately skipped.
        rng.gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length interval for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size` (a `usize` for exact length, or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The customary glob import: traits, config, and macros.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines `#[test]` functions over generated inputs.
///
/// Each `fn name(arg in strategy, ...) { body }` inside the block becomes a
/// test that runs the body for `cases` generated argument tuples (default
/// config, or `#![proptest_config(expr)]` as the first item). Rejections
/// from `prop_assume!` retry with fresh inputs, bounded at ten times the
/// case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs [$config] $($rest)*);
    };
    (@funcs [$config:expr] $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(10).max(10);
                while passed < config.cases {
                    if attempts >= max_attempts {
                        panic!(
                            "proptest {}: too many rejected cases ({} attempts, {} passed)",
                            stringify!($name), attempts, passed
                        );
                    }
                    let case_index = attempts;
                    attempts += 1;
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case_index,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name), case_index, message
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs [$crate::ProptestConfig::default()] $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r,
            )));
        }
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), l,
            )));
        }
    }};
}

/// Discards the current case when `cond` is false; the runner generates a
/// replacement case instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..200 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a = Strategy::generate(&any::<u64>(), &mut crate::TestRng::for_case("t", 0));
        let b = Strategy::generate(&any::<u64>(), &mut crate::TestRng::for_case("t", 0));
        let c = Strategy::generate(&any::<u64>(), &mut crate::TestRng::for_case("t", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn macro_generates_and_asserts(x in 0u32..100, v in crate::collection::vec(any::<bool>(), 4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 4);
        }

        fn assume_retries(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        fn mapped_strategy(s in (1usize..5).prop_map(|n| "ab".repeat(n))) {
            prop_assert!(s.len() % 2 == 0);
            prop_assert!(!s.is_empty());
        }
    }
}
