//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, providing [`ChaCha8Rng`]: a genuine ChaCha stream cipher with 8
//! double-rounds driving the vendored [`rand`] traits.
//!
//! Deterministic per seed and statistically strong; the exact stream is not
//! guaranteed to match the upstream crate (no in-tree consumer relies on
//! specific values, only on determinism).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input: constants, 8 key words, 2 counter words, 2 nonce words.
    state: [u32; 16],
    /// The current 16-word output block.
    block: [u32; 16],
    /// Next unread word index in `block` (16 = exhausted).
    index: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        self.index = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chacha_core_matches_rfc_8439_state_layout() {
        // The all-zero key/counter block must be a fixed function of the
        // constants: regression-pin the first word so the core cannot
        // silently change between builds.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        let mut again = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(first, again.next_u32());
        assert_ne!(first, 0);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x = rng.gen_range(0u64..100);
        assert!(x < 100);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((1700..2300).contains(&hits));
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
