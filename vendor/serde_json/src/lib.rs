//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: compact serialization over the vendored [`serde::Serialize`] trait,
//! plus an untyped [`Value`] tree with a recursive-descent parser for reading
//! JSONL traces back in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// Serializes `value` as a compact JSON string.
///
/// The vendored `Serialize` writer is infallible, so this never returns
/// `Err`; the `Result` shape is kept for drop-in compatibility.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json())
}

/// Parses a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// An untyped JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with keys in sorted order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup: `value.get("key")` on objects, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string content if this is a `Value::String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric content as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean content if this is a `Value::Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements if this is a `Value::Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members if this is a `Value::Object`.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// Byte offset of the error in the input (0 for serialization errors).
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by the in-tree
                            // writer; map lone surrogates to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar starting here.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" 42 ").unwrap(), Value::Number(42.0));
        assert_eq!(from_str("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(
            from_str(r#""a\nbA""#).unwrap(),
            Value::String("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested() {
        let v = from_str(r#"{"k":[1,{"x":true},null],"s":"hi"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        let arr = v.get("k").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("x").and_then(Value::as_bool), Some(true));
        assert_eq!(arr[2], Value::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }

    #[test]
    fn round_trips_serialize_output() {
        let json = to_string(&vec![(1u32, "x"), (2, "y")]).unwrap();
        let v = from_str(&json).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].as_array().unwrap()[1].as_str(), Some("x"));
    }
}
