//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) data
//! parallelism crate, exposing the API slice this workspace uses:
//! [`scope`] / [`Scope::spawn`], [`ThreadPoolBuilder`] /
//! [`ThreadPool::install`], and [`current_num_threads`].
//!
//! Instead of upstream's work-stealing deques, this stand-in keeps one
//! persistent pool of worker threads parked on a shared FIFO queue; a
//! [`scope`] pushes its spawned closures onto the queue, helps drain it from
//! the calling thread, and blocks until every closure it spawned has
//! finished. That is all the `congest-sim` parallel round engine needs: it
//! fans one job per contiguous node-chunk out per round and joins before the
//! merge phase.
//!
//! Thread count resolution order: the innermost [`ThreadPool::install`]
//! scope, else the `RAYON_NUM_THREADS` environment variable, else
//! [`std::thread::available_parallelism`].
//!
//! # Safety
//!
//! This crate contains one `unsafe` block: the lifetime erasure that moves a
//! `'scope`-borrowing closure onto the persistent pool. It is sound because
//! [`scope`] does not return — even when the scope body or a spawned job
//! panics — before every job spawned on it has run to completion, so the
//! borrows a job captures strictly outlive its execution. This is the same
//! contract `std::thread::scope` enforces; see the comment at the transmute.

#![warn(missing_docs)]

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A type-erased, queue-ready unit of work.
type Job = Box<dyn FnOnce() + Send>;

/// State shared between a pool's workers and the threads scheduling onto it.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    shutdown: AtomicBool,
    threads: usize,
}

impl Shared {
    fn push(&self, job: Job) {
        self.queue
            .lock()
            .expect("pool queue poisoned")
            .push_back(job);
        self.job_ready.notify_one();
    }

    /// Pops one queued job without blocking.
    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().expect("pool queue poisoned").pop_front()
    }
}

fn spawn_workers(shared: &Arc<Shared>) {
    for i in 0..shared.threads {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("rayon-worker-{i}"))
            .spawn(move || worker_loop(&shared))
            .expect("spawn pool worker");
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                match queue.pop_front() {
                    Some(job) => break job,
                    None => queue = shared.job_ready.wait(queue).expect("pool queue poisoned"),
                }
            }
        };
        // A panicking job already routed its payload through the scope latch
        // (see `Scope::spawn`); nothing escapes into the worker loop.
        job();
    }
}

fn default_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

fn build_shared(threads: usize) -> Arc<Shared> {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        job_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        threads,
    });
    spawn_workers(&shared);
    shared
}

static GLOBAL: OnceLock<Arc<Shared>> = OnceLock::new();

thread_local! {
    /// Stack of pools entered via [`ThreadPool::install`] on this thread.
    static INSTALLED: RefCell<Vec<Arc<Shared>>> = const { RefCell::new(Vec::new()) };
}

fn current_shared() -> Arc<Shared> {
    INSTALLED
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(|| Arc::clone(GLOBAL.get_or_init(|| build_shared(default_threads()))))
}

/// The number of threads in the pool [`scope`] would currently schedule on.
pub fn current_num_threads() -> usize {
    current_shared().threads
}

/// Completion latch of one [`scope`]: counts in-flight jobs and holds the
/// first panic payload any of them raised.
struct ScopeLatch {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeLatch {
    fn new() -> ScopeLatch {
        ScopeLatch {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn increment(&self) {
        *self.pending.lock().expect("scope latch poisoned") += 1;
    }

    fn decrement(&self) {
        let mut pending = self.pending.lock().expect("scope latch poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut pending = self.pending.lock().expect("scope latch poisoned");
        while *pending > 0 {
            pending = self.done.wait(pending).expect("scope latch poisoned");
        }
    }
}

/// Handle for spawning borrowing tasks inside a [`scope`] call.
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    latch: Arc<ScopeLatch>,
    /// Invariant over `'scope`, like `std::thread::Scope`.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Schedules `f` on the pool; it may borrow anything that outlives the
    /// enclosing [`scope`] call, which joins it before returning.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.increment();
        let latch = Arc::clone(&self.latch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = latch.panic.lock().expect("scope latch poisoned");
                slot.get_or_insert(payload);
            }
            latch.decrement();
        });
        // SAFETY: `scope` drains the queue and waits on the latch before
        // returning — on the success path, and on the panic path via its
        // catch/rethrow — so this job finishes (or never starts and is
        // dropped by the same `scope` call, which holds the only queue it
        // was pushed to alive) before any `'scope` borrow it captures
        // expires. Erasing the lifetime to park it on the 'static pool
        // queue is therefore sound.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.shared.push(job);
    }
}

/// Runs `body` with a [`Scope`] for spawning borrowing tasks onto the
/// current pool, then blocks until every spawned task has finished.
///
/// The calling thread helps drain the queue while it waits, so a pool is
/// never deadlocked by scheduling from within it (and a 1-thread pool still
/// makes progress even while its worker is busy).
///
/// # Panics
///
/// Propagates the first panic raised by `body` or by any spawned task —
/// after all tasks have completed.
pub fn scope<'scope, F, R>(body: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let scope = Scope {
        shared: current_shared(),
        latch: Arc::new(ScopeLatch::new()),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| body(&scope)));
    // Help run queued jobs (ours or a sibling scope's — either is correct)
    // until the queue drains, then wait out jobs still running on workers.
    while let Some(job) = scope.shared.try_pop() {
        job();
    }
    scope.latch.wait();
    let panicked = scope
        .latch
        .panic
        .lock()
        .expect("scope latch poisoned")
        .take();
    match (result, panicked) {
        (Ok(value), None) => value,
        (Err(payload), _) | (Ok(_), Some(payload)) => resume_unwind(payload),
    }
}

/// Error building a [`ThreadPool`] (never produced by this stand-in; the
/// type exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a dedicated [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (thread count auto-detected).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count; `0` (the default) auto-detects.
    pub fn num_threads(mut self, num_threads: usize) -> ThreadPoolBuilder {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool, spawning its workers immediately.
    ///
    /// # Errors
    ///
    /// Infallible in this stand-in; the `Result` mirrors upstream.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            shared: build_shared(threads),
        })
    }
}

/// A dedicated pool of worker threads; see [`ThreadPool::install`].
pub struct ThreadPool {
    shared: Arc<Shared>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.shared.threads)
            .finish()
    }
}

impl ThreadPool {
    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.shared.threads
    }

    /// Runs `op` with this pool as the ambient pool: [`scope`] calls made
    /// during `op` (on this thread) schedule their jobs here.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        INSTALLED.with(|stack| stack.borrow_mut().push(Arc::clone(&self.shared)));
        // Pop on every exit path, including unwinding out of `op`.
        struct PopGuard;
        impl Drop for PopGuard {
            fn drop(&mut self) {
                INSTALLED.with(|stack| {
                    stack.borrow_mut().pop();
                });
            }
        }
        let _guard = PopGuard;
        op()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.job_ready.notify_all();
        // Workers exit their loop at the next wakeup; jobs already queued on
        // a dropped pool can only exist if a scope is still waiting on them,
        // which holds the pool alive — so nothing is abandoned.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_joins_all_spawns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_spawns_can_borrow_and_mutate_disjoint_chunks() {
        let mut data = vec![0u64; 1000];
        scope(|s| {
            for chunk in data.chunks_mut(100) {
                s.spawn(move || {
                    for x in chunk {
                        *x += 1;
                    }
                });
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        // Outside the install the ambient pool is back in charge.
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn install_pool_runs_scope_jobs() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let total = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                for i in 0..10 {
                    let total = &total;
                    s.spawn(move || {
                        total.fetch_add(i, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn spawned_panic_propagates_after_join() {
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..8 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope rethrows the job panic");
        assert_eq!(
            finished.load(Ordering::Relaxed),
            8,
            "all sibling jobs still ran to completion"
        );
    }

    #[test]
    fn one_thread_pool_makes_progress() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..16 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }
}
