//! The composed lower bound of Theorems 4.2 / 4.8: assembling the gadget
//! gap (Lemma 4.4/4.9), the simulation overhead (Lemma 4.1), the lifting
//! theorem (Lemma 4.5), and the read-once degree bound (Lemma 4.6) into the
//! `Ω(n^{2/3}/log² n)` round bound.

use crate::degree::{approx_degree, SymmetricFn};
use crate::formulas::GadgetDims;
use crate::gadget::node_count;
use serde::{Deserialize, Serialize};

/// One row of the reduction table: everything Theorem 4.2's final
/// calculation needs, at a concrete gadget height.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReductionPoint {
    /// Tree height `h`.
    pub h: u32,
    /// Gadget size `n = Θ(2^{3h/2})`.
    pub n: usize,
    /// Input length per player `2^s·ℓ = 2^{2h}`.
    pub input_len: usize,
    /// The communication lower bound `Ω(√(2^s·ℓ)) = 2^h` (unit constant).
    pub communication: f64,
    /// The CONGEST bandwidth `B = Θ(log n)` used in the final division.
    pub bandwidth_bits: f64,
    /// The round lower bound `T = Ω(√(2^s·ℓ)/(h·B))`.
    pub rounds: f64,
    /// The same bound expressed against `n`: `≈ n^{2/3}/log² n`.
    pub n_two_thirds_over_log2: f64,
}

/// Evaluates Theorem 4.2's final calculation at height `h`.
pub fn reduction_point(h: u32) -> ReductionPoint {
    let dims = GadgetDims::new(h);
    let n = node_count(&dims, false);
    let input_len = dims.input_len();
    let communication = (input_len as f64).sqrt(); // = 2^h
    let bandwidth_bits = (n as f64).log2();
    let rounds = communication / (h as f64 * bandwidth_bits);
    let n23 = (n as f64).powf(2.0 / 3.0) / (n as f64).log2().powi(2);
    ReductionPoint {
        h,
        n,
        input_len,
        communication,
        bandwidth_bits,
        rounds,
        n_two_thirds_over_log2: n23,
    }
}

/// Measures the degree constant `c` in `deg_{1/3}(OR_k) ≈ c·√k` on small
/// arities and extrapolates the Lemma 4.7/4.10 communication bound
/// `Q^{sv}_{1/12}(F) ≥ ½·deg_{1/3}(f) − O(1)` with a *measured* constant
/// instead of the asymptotic `Θ`.
///
/// Returns `(c, measured communication bound)` where the bound is
/// `½·c·√(2^s·ℓ/4)` — the radius chain, whose outer function `OR_{2^sℓ/4}`
/// is symmetric and hence directly measurable by the LP.
pub fn measured_bound(dims: &GadgetDims, sample_arities: &[usize]) -> (f64, f64) {
    assert!(!sample_arities.is_empty());
    let mut c_sum = 0.0;
    for &k in sample_arities {
        let d = approx_degree(&SymmetricFn::or(k), 1.0 / 3.0);
        c_sum += d as f64 / (k as f64).sqrt();
    }
    let c = c_sum / sample_arities.len() as f64;
    let k = dims.input_len() as f64 / 4.0;
    (c, 0.5 * c * k.sqrt())
}

/// The threshold decision of Theorem 4.2's proof: given a value `approx`
/// with `D ≤ approx ≤ (3/2 − ε)·D` and the paper's `α = n²`, `β = 2n²`,
/// declares `F(x,y) = 1` iff `approx < 3n²`.
pub fn threshold_decision(n: usize, approx: f64) -> bool {
    approx < 3.0 * (n as f64) * (n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_point_tracks_n_two_thirds() {
        // The explicit bound 2^h/(h·log n) and the n^{2/3}/log²n form agree
        // up to a bounded constant across heights (they are the same bound).
        for h in [2u32, 4, 6, 8, 10] {
            let p = reduction_point(h);
            let ratio = p.rounds / p.n_two_thirds_over_log2;
            assert!(
                ratio > 0.05 && ratio < 20.0,
                "h={h}: forms diverge (ratio {ratio})"
            );
        }
    }

    #[test]
    fn rounds_grow_polynomially_in_n() {
        let p1 = reduction_point(4);
        let p2 = reduction_point(8);
        // n grows by ≈ 2^6; the bound must grow ≈ (2^6)^{2/3} = 16 (up to logs).
        let growth = p2.rounds / p1.rounds;
        assert!(growth > 4.0 && growth < 32.0, "growth {growth}");
    }

    #[test]
    fn communication_is_two_to_h() {
        let p = reduction_point(6);
        assert_eq!(p.communication, 64.0);
        assert_eq!(p.input_len, 1 << 12);
    }

    #[test]
    fn measured_bound_is_positive_and_scales() {
        let (c, b1) = measured_bound(&GadgetDims::new(2), &[4, 9, 16]);
        let (_, b2) = measured_bound(&GadgetDims::new(4), &[4, 9, 16]);
        assert!(c > 0.3 && c < 2.0, "degree constant {c}");
        // input_len grows ×16 from h=2 to h=4 ⇒ bound grows ×4.
        let growth = b2 / b1;
        assert!((growth - 4.0).abs() < 0.3, "growth {growth}");
    }

    #[test]
    fn threshold_decision_matches_gap() {
        let n = 71;
        let n2 = (n * n) as f64;
        // F=1 world: D ≤ 2n² + n, approximations stay below 3n².
        assert!(threshold_decision(n, 1.4 * (2.0 * n2 + n as f64)));
        // F=0 world: D ≥ 3n², approximations only grow.
        assert!(!threshold_decision(n, 3.0 * n2));
    }
}
