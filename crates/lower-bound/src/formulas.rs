//! The boolean functions of Section 4: `F`, `F'`, `GDT`, `VER`, and
//! read-once formulas.
//!
//! * `F  = AND_{2^s} ∘ (OR_ℓ ∘ AND₂^ℓ)^{2^s}` decides the diameter gap
//!   (Lemma 4.4);
//! * `F' = OR_{2^s·ℓ} ∘ AND₂^{2^s·ℓ}` decides the radius gap (Lemma 4.9);
//! * `GDT = OR₄ ∘ AND₂⁴` is the 4-bit gadget; `VER` is its promise version
//!   (Lemma 4.5), which is how the lifting theorem enters;
//! * read-once formulas tie into Lemma 4.6 (`deg_{1/3} = Θ(√k)`).

use serde::{Deserialize, Serialize};

/// Dimensions of the paper's Eq. (2): `s = 3h/2`, `ℓ = 2^{s−h}`, inputs in
/// `{0,1}^{2^s·ℓ}` indexed by `(i, j) ∈ [2^s] × [ℓ]`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct GadgetDims {
    /// The (even) tree height `h`.
    pub h: u32,
    /// `s = 3h/2`.
    pub s: u32,
    /// `ℓ = 2^{s−h}`.
    pub ell: u32,
}

impl GadgetDims {
    /// Builds the dimensions for tree height `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is odd or zero (Eq. (2) requires an even `h`).
    pub fn new(h: u32) -> GadgetDims {
        assert!(h > 0 && h.is_multiple_of(2), "h must be positive and even");
        let s = 3 * h / 2;
        GadgetDims {
            h,
            s,
            ell: 1 << (s - h),
        }
    }

    /// Custom dimensions decoupled from Eq. (2)'s `s = 3h/2`, `ℓ = 2^{s−h}`
    /// coupling. The gadget construction and the gap lemmas are valid for
    /// any `(h, s, ℓ)`; only the *final round-bound calculation* needs the
    /// Eq. (2) balance. Small custom dimensions make **exhaustive**
    /// verification of Lemmas 4.4/4.9 over every input pair feasible.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn custom(h: u32, s: u32, ell: u32) -> GadgetDims {
        assert!(h >= 1 && s >= 1 && ell >= 1);
        GadgetDims { h, s, ell }
    }

    /// `2^s`: the number of OR blocks of `F` (and of `a_i`/`b_i` nodes).
    pub fn blocks(&self) -> usize {
        1 << self.s
    }

    /// Total input length per player: `2^s · ℓ`.
    pub fn input_len(&self) -> usize {
        self.blocks() * self.ell as usize
    }

    /// Flat index of `(i, j)` with `i ∈ [2^s]`, `j ∈ [ℓ]`.
    pub fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.blocks() && j < self.ell as usize);
        i * self.ell as usize + j
    }
}

/// A player's input: a bit vector of length `2^s·ℓ`.
pub type Input = Vec<bool>;

/// `F(x, y) = ⋀_i ⋁_j (x_{i,j} ∧ y_{i,j})` (the diameter function).
///
/// # Panics
///
/// Panics if input lengths differ from `dims.input_len()`.
pub fn f_diameter(dims: &GadgetDims, x: &[bool], y: &[bool]) -> bool {
    assert_eq!(x.len(), dims.input_len());
    assert_eq!(y.len(), dims.input_len());
    (0..dims.blocks()).all(|i| {
        (0..dims.ell as usize).any(|j| {
            let t = dims.index(i, j);
            x[t] && y[t]
        })
    })
}

/// `F'(x, y) = ⋁_{i,j} (x_{i,j} ∧ y_{i,j})` (the radius function — set
/// intersection).
///
/// # Panics
///
/// Panics if input lengths differ from `dims.input_len()`.
pub fn f_radius(dims: &GadgetDims, x: &[bool], y: &[bool]) -> bool {
    assert_eq!(x.len(), dims.input_len());
    assert_eq!(y.len(), dims.input_len());
    x.iter().zip(y).any(|(&a, &b)| a && b)
}

/// `GDT(x, y) = ⋁_{j∈[4]} (x_j ∧ y_j)` on 4-bit blocks.
pub fn gdt(x: [bool; 4], y: [bool; 4]) -> bool {
    (0..4).any(|j| x[j] && y[j])
}

/// `VER(a, b) = 1` iff `a + b ≡ 0 or 1 (mod 4)`, for `a, b ∈ {0,1,2,3}`
/// (Lemma 4.5).
pub fn ver(a: u8, b: u8) -> bool {
    assert!(a < 4 && b < 4);
    matches!((a + b) % 4, 0 | 1)
}

/// Alice's promise encoding for `VER → GDT`: bit `j` is set iff
/// `(j + a) mod 4 ∈ {0, 1}` — producing exactly the strings
/// `{0011, 1001, 1100, 0110}` of Lemma 4.7.
pub fn ver_encode_alice(a: u8) -> [bool; 4] {
    assert!(a < 4);
    std::array::from_fn(|j| matches!((j as u8 + a) % 4, 0 | 1))
}

/// Bob's promise encoding: the indicator of bit `b` — the strings
/// `{0001, 0010, 0100, 1000}`.
pub fn ver_encode_bob(b: u8) -> [bool; 4] {
    assert!(b < 4);
    std::array::from_fn(|j| j as u8 == b)
}

/// A read-once formula over AND/OR/NOT with each variable appearing once
/// (Lemma 4.6's class).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadOnce {
    /// A single variable (by index).
    Var(usize),
    /// Negation.
    Not(Box<ReadOnce>),
    /// Conjunction.
    And(Vec<ReadOnce>),
    /// Disjunction.
    Or(Vec<ReadOnce>),
}

impl ReadOnce {
    /// Evaluates on an assignment.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range.
    pub fn eval(&self, bits: &[bool]) -> bool {
        match self {
            ReadOnce::Var(i) => bits[*i],
            ReadOnce::Not(f) => !f.eval(bits),
            ReadOnce::And(fs) => fs.iter().all(|f| f.eval(bits)),
            ReadOnce::Or(fs) => fs.iter().any(|f| f.eval(bits)),
        }
    }

    /// The variables used (sorted); read-once validity requires them all
    /// distinct.
    pub fn variables(&self) -> Vec<usize> {
        let mut v = Vec::new();
        self.collect_vars(&mut v);
        v.sort_unstable();
        v
    }

    fn collect_vars(&self, out: &mut Vec<usize>) {
        match self {
            ReadOnce::Var(i) => out.push(*i),
            ReadOnce::Not(f) => f.collect_vars(out),
            ReadOnce::And(fs) | ReadOnce::Or(fs) => {
                for f in fs {
                    f.collect_vars(out);
                }
            }
        }
    }

    /// `true` if every variable appears exactly once.
    pub fn is_read_once(&self) -> bool {
        let vars = self.variables();
        vars.windows(2).all(|w| w[0] != w[1])
    }

    /// The outer formula of Lemma 4.7: `f = AND_{2^s} ∘ OR_{ℓ/4}^{2^s}`
    /// (what remains of `F` after factoring out `GDT^{2^s·ℓ/4}`).
    ///
    /// # Panics
    ///
    /// Panics if `ell` is not a multiple of 4.
    pub fn diameter_outer(dims: &GadgetDims) -> ReadOnce {
        assert_eq!(dims.ell % 4, 0, "ℓ must be a multiple of 4 (Lemma 4.7)");
        let per_block = (dims.ell / 4) as usize;
        let blocks = (0..dims.blocks())
            .map(|i| {
                ReadOnce::Or(
                    (0..per_block)
                        .map(|j| ReadOnce::Var(i * per_block + j))
                        .collect(),
                )
            })
            .collect();
        ReadOnce::And(blocks)
    }

    /// The outer formula of Lemma 4.10: `f' = OR_{2^s·ℓ/4}`.
    pub fn radius_outer(dims: &GadgetDims) -> ReadOnce {
        let k = dims.input_len() / 4;
        ReadOnce::Or((0..k).map(ReadOnce::Var).collect())
    }
}

/// Verifies the rewrite `F = f ∘ GDT^{2^s·ℓ/4}` of Lemma 4.7 on a concrete
/// input pair: groups the `2^s·ℓ` coordinates into 4-bit blocks, feeds each
/// through `GDT`, and evaluates the outer read-once formula.
///
/// # Panics
///
/// Panics if `dims.ell < 4` or inputs are malformed.
pub fn f_via_gdt(dims: &GadgetDims, x: &[bool], y: &[bool]) -> bool {
    assert!(dims.ell >= 4 && dims.ell.is_multiple_of(4));
    let outer = ReadOnce::diameter_outer(dims);
    let gdt_bits: Vec<bool> = (0..dims.input_len() / 4)
        .map(|b| {
            let base = 4 * b;
            gdt(
                [x[base], x[base + 1], x[base + 2], x[base + 3]],
                [y[base], y[base + 1], y[base + 2], y[base + 3]],
            )
        })
        .collect();
    outer.eval(&gdt_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dims_match_eq_2() {
        let d = GadgetDims::new(4);
        assert_eq!(d.s, 6);
        assert_eq!(d.ell, 4);
        assert_eq!(d.blocks(), 64);
        assert_eq!(d.input_len(), 256);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_h_rejected() {
        let _ = GadgetDims::new(3);
    }

    #[test]
    fn f_diameter_requires_every_block() {
        let d = GadgetDims::new(2);
        let mut x = vec![true; d.input_len()];
        let y = vec![true; d.input_len()];
        assert!(f_diameter(&d, &x, &y));
        // Kill one whole block in x.
        for j in 0..d.ell as usize {
            x[d.index(3, j)] = false;
        }
        assert!(!f_diameter(&d, &x, &y));
    }

    #[test]
    fn f_radius_is_intersection() {
        let d = GadgetDims::new(2);
        let mut x = vec![false; d.input_len()];
        let mut y = vec![false; d.input_len()];
        assert!(!f_radius(&d, &x, &y));
        x[5] = true;
        y[5] = true;
        assert!(f_radius(&d, &x, &y));
        y[5] = false;
        y[6] = true;
        assert!(!f_radius(&d, &x, &y));
    }

    /// Lemma 4.5 / 4.7: VER is the promise restriction of GDT — on the
    /// promise encodings, GDT computes exactly VER.
    #[test]
    fn ver_is_promise_of_gdt() {
        for a in 0..4u8 {
            for b in 0..4u8 {
                let x = ver_encode_alice(a);
                let y = ver_encode_bob(b);
                assert_eq!(
                    gdt(x, y),
                    ver(a, b),
                    "a={a} b={b}: GDT on encodings must equal VER"
                );
            }
        }
    }

    #[test]
    fn promise_strings_match_lemma_4_7() {
        // Listed MSB→LSB as in the paper: x ∈ {0011,1001,1100,0110}.
        let as_str = |bits: [bool; 4]| -> String {
            (0..4)
                .rev()
                .map(|j| if bits[j] { '1' } else { '0' })
                .collect()
        };
        let alice: Vec<String> = (0..4).map(|a| as_str(ver_encode_alice(a))).collect();
        assert_eq!(alice, vec!["0011", "1001", "1100", "0110"]);
        let bob: Vec<String> = (0..4).map(|b| as_str(ver_encode_bob(b))).collect();
        assert_eq!(bob, vec!["0001", "0010", "0100", "1000"]);
    }

    /// Lemma 4.7's rewrite: F = f ∘ GDT^{2^s·ℓ/4}.
    #[test]
    fn f_equals_outer_of_gdt() {
        let d = GadgetDims::new(4); // ℓ = 4, a multiple of 4
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..200 {
            let x: Vec<bool> = (0..d.input_len()).map(|_| rng.gen_bool(0.8)).collect();
            let y: Vec<bool> = (0..d.input_len()).map(|_| rng.gen_bool(0.8)).collect();
            assert_eq!(f_diameter(&d, &x, &y), f_via_gdt(&d, &x, &y));
        }
    }

    #[test]
    fn outer_formulas_are_read_once() {
        let d = GadgetDims::new(4);
        let f = ReadOnce::diameter_outer(&d);
        assert!(f.is_read_once());
        assert_eq!(f.variables().len(), d.input_len() / 4);
        let f2 = ReadOnce::radius_outer(&d);
        assert!(f2.is_read_once());
    }

    #[test]
    fn read_once_detects_repeats() {
        let bad = ReadOnce::And(vec![ReadOnce::Var(0), ReadOnce::Or(vec![ReadOnce::Var(0)])]);
        assert!(!bad.is_read_once());
        let good = ReadOnce::Not(Box::new(ReadOnce::Or(vec![
            ReadOnce::Var(0),
            ReadOnce::Var(1),
        ])));
        assert!(good.is_read_once());
        assert!(good.eval(&[false, false]));
        assert!(!good.eval(&[true, false]));
    }
}
