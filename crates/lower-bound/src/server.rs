//! The Server model (Section 2.3) and the Quantum Simulation Lemma
//! (Lemma 4.1), executed.
//!
//! In the Server model Alice, Bob and a server exchange messages; **only
//! messages sent by Alice and Bob are charged**. Lemma 4.1 shows that a
//! `T`-round CONGEST algorithm on the gadget network can be simulated with
//! `O(T·h·B)` charged communication: the ownership frontier moves one path
//! position per round, and per round at most `2h` tree messages cross from
//! an Alice/Bob-owned node into the server's region.
//!
//! [`simulate_transcript`] takes a real message log produced by
//! [`congest_sim`] (with logging enabled) on a gadget network, applies the
//! ownership schedule, and reports exactly which messages the reduction
//! charges — letting the `O(T·h·B)` claim be *measured*, per round.

use crate::gadget::{GadgetLayout, Party};
use congest_sim::MessageRecord;
use serde::{Deserialize, Serialize};

/// Accumulated Server-model cost (only Alice/Bob sends count).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct ServerCost {
    /// Charged messages.
    pub messages: u64,
    /// Charged bits.
    pub bits: u64,
}

/// Per-run report of the Lemma 4.1 simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Total charged cost.
    pub cost: ServerCost,
    /// Charged messages per round (index 0 = round 1).
    pub per_round: Vec<u64>,
    /// The lemma's per-round cap `2h` and whether it ever was exceeded.
    pub per_round_cap: u64,
    /// Number of simulated rounds (must stay below `2^h/2`).
    pub rounds: usize,
    /// `true` if the run stayed within the lemma's validity horizon.
    pub within_horizon: bool,
}

impl SimulationReport {
    /// The lemma's bound `O(T·h·B)` with unit constant, for comparison.
    pub fn bound_bits(&self, h: u32, bandwidth_bits: u32) -> u64 {
        2 * self.rounds as u64 * u64::from(h) * u64::from(bandwidth_bits)
    }
}

/// Applies the Lemma 4.1 ownership schedule to a CONGEST message log.
///
/// A message delivered in round `r` from `u` to `v` is **charged** iff the
/// receiver is server-owned in rounds `r−1` and `r` while the sender was
/// Alice/Bob-owned in round `r−1` (the only case of the proof where Alice
/// or Bob must speak; server→anyone and intra-party messages are free, and
/// server→Alice/Bob handoffs are server messages, also free).
pub fn simulate_transcript(layout: &GadgetLayout, log: &[MessageRecord]) -> SimulationReport {
    let h = layout.dims().h;
    let horizon = (1u64 << h) / 2;
    let rounds = log.iter().map(|m| m.round).max().unwrap_or(0);
    let mut per_round = vec![0u64; rounds];
    let mut cost = ServerCost::default();
    for m in log {
        let r = m.round as u32;
        let prev = r.saturating_sub(1);
        let receiver_stays_server = layout.owner_at(m.to, prev) == Party::Server
            && layout.owner_at(m.to, r) == Party::Server;
        let sender_is_player = matches!(layout.owner_at(m.from, prev), Party::Alice | Party::Bob);
        if receiver_stays_server && sender_is_player {
            cost.messages += 1;
            cost.bits += u64::from(m.bits);
            per_round[m.round - 1] += 1;
        }
    }
    SimulationReport {
        cost,
        per_round,
        per_round_cap: 2 * u64::from(h),
        rounds,
        within_horizon: (rounds as u64) < horizon,
    }
}

/// A minimal executable Server-model session: three parties, message
/// passing, with only Alice/Bob sends charged. Used by the examples to
/// demonstrate the model itself.
#[derive(Debug, Default)]
pub struct ServerSession {
    cost: ServerCost,
    /// Transcript of `(sender, payload bits)` for inspection.
    transcript: Vec<(Party, u32)>,
}

impl ServerSession {
    /// Starts a session.
    pub fn new() -> ServerSession {
        ServerSession::default()
    }

    /// Records a message of `bits` bits sent by `from`. Server messages are
    /// free (the model's defining feature); Alice/Bob messages are charged.
    pub fn send(&mut self, from: Party, bits: u32) {
        self.transcript.push((from, bits));
        if matches!(from, Party::Alice | Party::Bob) {
            self.cost.messages += 1;
            self.cost.bits += u64::from(bits);
        }
    }

    /// The charged cost so far.
    pub fn cost(&self) -> ServerCost {
        self.cost
    }

    /// The full transcript.
    pub fn transcript(&self) -> &[(Party, u32)] {
        &self.transcript
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulas::GadgetDims;
    use crate::gadget::{diameter_gadget, paper_weights, GadgetNode};
    use congest_algos::bounded_sssp::bounded_distance_sssp;
    use congest_sim::SimConfig;

    #[test]
    fn server_messages_are_free() {
        let mut s = ServerSession::new();
        s.send(Party::Server, 1000);
        s.send(Party::Alice, 8);
        s.send(Party::Bob, 8);
        s.send(Party::Server, 1000);
        assert_eq!(
            s.cost(),
            ServerCost {
                messages: 2,
                bits: 16
            }
        );
        assert_eq!(s.transcript().len(), 4);
    }

    /// The heart of Lemma 4.1, measured: run a real distributed algorithm
    /// on the gadget, log every message, apply the ownership schedule, and
    /// check the per-round charge stays within the 2h cap.
    #[test]
    fn lemma_4_1_charge_respects_cap() {
        let dims = GadgetDims::new(2);
        let (alpha, beta) = paper_weights(&dims);
        let n_in = dims.input_len();
        let g = diameter_gadget(&dims, &vec![true; n_in], &vec![true; n_in], alpha, beta);
        // Run a bounded-distance SSSP from the tree root for T < 2^h/2
        // rounds' worth of distance (unweighted view keeps rounds = limit).
        let u = g.graph.unweighted_view();
        let root = g.layout.id(GadgetNode::Tree { depth: 0, j: 1 });
        let limit = ((1u64 << dims.h) / 2).saturating_sub(1).max(1);
        let cfg = SimConfig::standard(u.n(), 1).with_message_log();
        let (_, stats) = bounded_distance_sssp(&u, root, root, limit, &cfg).unwrap();
        let report = simulate_transcript(&g.layout, &stats.message_log);
        for (i, &c) in report.per_round.iter().enumerate() {
            assert!(
                c <= report.per_round_cap,
                "round {}: {c} charged messages exceed 2h = {}",
                i + 1,
                report.per_round_cap
            );
        }
        let bound = report.bound_bits(dims.h, 64);
        assert!(report.cost.bits <= bound, "{} > {bound}", report.cost.bits);
    }

    /// Messages between server-owned nodes are never charged: a flood
    /// started deep inside the server's region, stopped early, costs 0.
    #[test]
    fn interior_flood_costs_nothing() {
        let dims = GadgetDims::new(4);
        let (alpha, beta) = paper_weights(&dims);
        let n_in = dims.input_len();
        let g = diameter_gadget(&dims, &vec![false; n_in], &vec![false; n_in], alpha, beta);
        let u = g.graph.unweighted_view();
        let root = g.layout.id(GadgetNode::Tree { depth: 0, j: 1 });
        // Depth-2 flood: the frontier stays well inside the tree.
        let cfg = SimConfig::standard(u.n(), 1).with_message_log();
        let (_, stats) = bounded_distance_sssp(&u, root, root, 2, &cfg).unwrap();
        let report = simulate_transcript(&g.layout, &stats.message_log);
        assert_eq!(
            report.cost.messages, 0,
            "tree-interior messages are server-internal"
        );
        assert!(report.within_horizon);
    }
}
