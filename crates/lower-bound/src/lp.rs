//! A small dense two-phase simplex solver (built in-crate — the approved
//! dependency list has no LP solver), sufficient for the Chebyshev
//! approximation programs of [`crate::degree`].
//!
//! Solves `min cᵀx  s.t.  Ax ≤ b, x ≥ 0` (any sign of `b`).

#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
/// Outcome of an LP solve.
#[derive(Clone, Debug, PartialEq)]
pub enum LpOutcome {
    /// Optimal value and a primal solution.
    Optimal {
        /// The optimal objective value.
        value: f64,
        /// An optimal assignment of the structural variables.
        x: Vec<f64>,
    },
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Solves `min cᵀx` subject to `Ax ≤ b`, `x ≥ 0`.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn solve(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> LpOutcome {
    let m = a.len();
    let n = c.len();
    assert_eq!(b.len(), m);
    for row in a {
        assert_eq!(row.len(), n);
    }
    // Tableau columns: n structural + m slack + (≤ m) artificial + rhs.
    // Rows with b < 0 are negated (their slack coefficient becomes −1) and
    // receive an artificial basis variable.
    let total = n + m; // structural + slack
    let art_rows: Vec<usize> = (0..m).filter(|&i| b[i] < 0.0).collect();
    let n_art = art_rows.len();
    let width = total + n_art + 1;
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    for i in 0..m {
        let neg = b[i] < 0.0;
        let sign = if neg { -1.0 } else { 1.0 };
        let mut row = vec![0.0; width];
        for j in 0..n {
            row[j] = sign * a[i][j];
        }
        row[n + i] = sign; // slack
        row[width - 1] = sign * b[i];
        if neg {
            let ai = art_rows.iter().position(|&r| r == i).unwrap();
            row[total + ai] = 1.0;
            basis.push(total + ai);
        } else {
            basis.push(n + i);
        }
        rows.push(row);
    }

    // Phase 1: minimize the sum of artificials.
    if n_art > 0 {
        let mut obj = vec![0.0; width];
        for ai in 0..n_art {
            obj[total + ai] = 1.0;
        }
        // Reduce objective over the artificial basis rows.
        for (i, &bi) in basis.iter().enumerate() {
            if bi >= total {
                for j in 0..width {
                    obj[j] -= rows[i][j];
                }
            }
        }
        if !pivot_loop(&mut rows, &mut basis, &mut obj, width) {
            return LpOutcome::Unbounded; // cannot happen in phase 1
        }
        let phase1 = -obj[width - 1];
        if phase1 > 1e-7 {
            return LpOutcome::Infeasible;
        }
        // Drive any artificial still in the basis out (degenerate case).
        for i in 0..rows.len() {
            if basis[i] >= total {
                if let Some(j) = (0..total).find(|&j| rows[i][j].abs() > EPS) {
                    pivot(&mut rows, &mut basis, None, i, j, width);
                }
            }
        }
    }

    // Phase 2: the real objective (over structural + slack columns only).
    let mut obj = vec![0.0; width];
    for (j, &cj) in c.iter().enumerate() {
        obj[j] = cj;
    }
    for (i, &bi) in basis.iter().enumerate() {
        if bi < total && obj[bi].abs() > 0.0 {
            let f = obj[bi];
            for j in 0..width {
                obj[j] -= f * rows[i][j];
            }
        }
    }
    // Forbid re-entering artificial columns.
    for ai in 0..n_art {
        obj[total + ai] = f64::INFINITY;
    }
    if !pivot_loop(&mut rows, &mut basis, &mut obj, width) {
        return LpOutcome::Unbounded;
    }
    let mut x = vec![0.0; n];
    for (i, &bi) in basis.iter().enumerate() {
        if bi < n {
            x[bi] = rows[i][width - 1];
        }
    }
    LpOutcome::Optimal {
        value: -obj[width - 1],
        x,
    }
}

/// Runs simplex pivots until optimal; returns `false` on unboundedness.
fn pivot_loop(
    rows: &mut [Vec<f64>],
    basis: &mut [usize],
    obj: &mut Vec<f64>,
    width: usize,
) -> bool {
    for _ in 0..200_000 {
        // Bland's rule: smallest-index entering column with negative cost.
        let Some(enter) = (0..width - 1).find(|&j| obj[j] < -EPS) else {
            return true;
        };
        // Ratio test.
        let mut leave = None;
        let mut best = f64::INFINITY;
        for (i, row) in rows.iter().enumerate() {
            if row[enter] > EPS {
                let ratio = row[width - 1] / row[enter];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.is_none_or(|l: usize| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else { return false };
        pivot(rows, basis, Some(obj), leave, enter, width);
    }
    true // safety: treat cycling cutoff as converged (bounded programs)
}

fn pivot(
    rows: &mut [Vec<f64>],
    basis: &mut [usize],
    obj: Option<&mut Vec<f64>>,
    leave: usize,
    enter: usize,
    width: usize,
) {
    let p = rows[leave][enter];
    for j in 0..width {
        rows[leave][j] /= p;
    }
    for i in 0..rows.len() {
        if i != leave && rows[i][enter].abs() > EPS {
            let f = rows[i][enter];
            for j in 0..width {
                rows[i][j] -= f * rows[leave][j];
            }
        }
    }
    if let Some(obj) = obj {
        if obj[enter].abs() > EPS && obj[enter].is_finite() {
            let f = obj[enter];
            for j in 0..width {
                obj[j] -= f * rows[leave][j];
            }
        }
    }
    basis[leave] = enter;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  →  opt 36 at (2, 6).
        let out = solve(
            &[-3.0, -5.0],
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            &[4.0, 12.0, 18.0],
        );
        match out {
            LpOutcome::Optimal { value, x } => {
                assert_near(value, -36.0);
                assert_near(x[0], 2.0);
                assert_near(x[1], 6.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn negative_rhs_two_phase() {
        // min x s.t. −x ≤ −5  (i.e. x ≥ 5) → 5.
        let out = solve(&[1.0], &[vec![-1.0]], &[-5.0]);
        match out {
            LpOutcome::Optimal { value, x } => {
                assert_near(value, 5.0);
                assert_near(x[0], 5.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 3.
        let out = solve(&[0.0], &[vec![1.0], vec![-1.0]], &[1.0, -3.0]);
        assert_eq!(out, LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min −x s.t. −x ≤ 0 → x unbounded above.
        let out = solve(&[-1.0], &[vec![-1.0]], &[0.0]);
        assert_eq!(out, LpOutcome::Unbounded);
    }

    #[test]
    fn equality_via_pair_of_inequalities() {
        // min x + y s.t. x + y = 2 (as ≤ and ≥), x ≤ 1.5 → value 2.
        let out = solve(
            &[1.0, 1.0],
            &[vec![1.0, 1.0], vec![-1.0, -1.0], vec![1.0, 0.0]],
            &[2.0, -2.0, 1.5],
        );
        match out {
            LpOutcome::Optimal { value, .. } => assert_near(value, 2.0),
            other => panic!("{other:?}"),
        }
    }
}
