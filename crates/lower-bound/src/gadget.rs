//! The lower-bound graph gadgets of Section 4 (Figures 1, 2 and 4).
//!
//! The base network (Figure 1) is a full binary tree of height `h` plus
//! `m = 2s + ℓ` disjoint paths of `2^h` nodes, every tree leaf `t_{h,j}`
//! connected to the `j`-th node of every path. Alice's part `V_A` and Bob's
//! part `V_B` hang off the left and right path endpoints; their internal
//! edges encode the players' inputs `x, y ∈ {0,1}^{2^s·ℓ}` as weights
//! (`α` for a 1-bit, `β` for a 0-bit), making the weighted diameter
//! (Lemma 4.4) — or radius (Lemma 4.9) — decide
//! `F(x,y) = ⋀_i ⋁_j (x_{i,j} ∧ y_{i,j})` (resp. `F'`).

use crate::formulas::GadgetDims;
use congest_graph::{GraphBuilder, NodeId, Weight, WeightedGraph};
use serde::{Deserialize, Serialize};

/// Who simulates a node in the Lemma 4.1 Server-model reduction.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Party {
    /// The server (initially all of `V_S`).
    Server,
    /// Alice (`V_A` plus a growing left region).
    Alice,
    /// Bob (`V_B` plus a growing right region).
    Bob,
}

/// Identifies a node of the gadget structurally.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GadgetNode {
    /// Tree node `t_{depth, j}` (`depth ∈ [0,h]`, `j ∈ [1, 2^depth]`).
    Tree {
        /// Depth in the binary tree.
        depth: u32,
        /// 1-based position within the level.
        j: u32,
    },
    /// Path node `p_{path, j}` (`path ∈ [1, m]`, `j ∈ [1, 2^h]`).
    Path {
        /// 1-based path index.
        path: u32,
        /// 1-based position along the path.
        j: u32,
    },
    /// `a_i` (`i ∈ [1, 2^s]`).
    A(u32),
    /// `b_i`.
    B(u32),
    /// `a_j^c` (`j ∈ [1, s]`, `c ∈ {0,1}`).
    ASide(u32, u8),
    /// `b_j^c`.
    BSide(u32, u8),
    /// `a*_j` (`j ∈ [1, ℓ]`).
    AStar(u32),
    /// `b*_j`.
    BStar(u32),
    /// The extra center candidate `a_0` of the radius gadget.
    AZero,
}

/// Node-id layout of a constructed gadget.
#[derive(Clone, Debug)]
pub struct GadgetLayout {
    dims: GadgetDims,
    with_a0: bool,
    kinds: Vec<GadgetNode>,
}

impl GadgetLayout {
    /// Builds the layout for the given dimensions (`with_a0` adds the radius
    /// gadget's extra node `a₀`). Usually obtained from a built [`Gadget`];
    /// public so the ownership schedule can be studied without constructing
    /// the weighted graph.
    pub fn new(dims: GadgetDims, with_a0: bool) -> GadgetLayout {
        let h = dims.h;
        let s = dims.s;
        let ell = dims.ell;
        let m = 2 * s + ell;
        let mut kinds = Vec::new();
        for depth in 0..=h {
            for j in 1..=(1u32 << depth) {
                kinds.push(GadgetNode::Tree { depth, j });
            }
        }
        for path in 1..=m {
            for j in 1..=(1u32 << h) {
                kinds.push(GadgetNode::Path { path, j });
            }
        }
        for i in 1..=(1u32 << s) {
            kinds.push(GadgetNode::A(i));
        }
        for i in 1..=(1u32 << s) {
            kinds.push(GadgetNode::B(i));
        }
        for j in 1..=s {
            kinds.push(GadgetNode::ASide(j, 0));
            kinds.push(GadgetNode::ASide(j, 1));
        }
        for j in 1..=s {
            kinds.push(GadgetNode::BSide(j, 0));
            kinds.push(GadgetNode::BSide(j, 1));
        }
        for j in 1..=ell {
            kinds.push(GadgetNode::AStar(j));
        }
        for j in 1..=ell {
            kinds.push(GadgetNode::BStar(j));
        }
        if with_a0 {
            kinds.push(GadgetNode::AZero);
        }
        GadgetLayout {
            dims,
            with_a0,
            kinds,
        }
    }

    /// The gadget dimensions.
    pub fn dims(&self) -> &GadgetDims {
        &self.dims
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.kinds.len()
    }

    /// The structural identity of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn kind(&self, v: NodeId) -> GadgetNode {
        self.kinds[v]
    }

    /// The node id of a structural identity.
    ///
    /// # Panics
    ///
    /// Panics if the identity does not exist in this layout.
    pub fn id(&self, node: GadgetNode) -> NodeId {
        let h = self.dims.h;
        let s = self.dims.s;
        let ell = self.dims.ell;
        let m = 2 * s + ell;
        let tree_total = (1usize << (h + 1)) - 1;
        let path_total = (m as usize) << h;
        let block = 1usize << s;
        match node {
            GadgetNode::Tree { depth, j } => {
                assert!(depth <= h && j >= 1 && j <= (1 << depth));
                ((1usize << depth) - 1) + (j as usize - 1)
            }
            GadgetNode::Path { path, j } => {
                assert!(path >= 1 && path <= m && j >= 1 && j <= (1 << h));
                tree_total + ((path as usize - 1) << h) + (j as usize - 1)
            }
            GadgetNode::A(i) => {
                assert!(i >= 1 && i as usize <= block);
                tree_total + path_total + (i as usize - 1)
            }
            GadgetNode::B(i) => {
                assert!(i >= 1 && i as usize <= block);
                tree_total + path_total + block + (i as usize - 1)
            }
            GadgetNode::ASide(j, c) => {
                assert!(j >= 1 && j <= s && c <= 1);
                tree_total + path_total + 2 * block + 2 * (j as usize - 1) + c as usize
            }
            GadgetNode::BSide(j, c) => {
                assert!(j >= 1 && j <= s && c <= 1);
                tree_total
                    + path_total
                    + 2 * block
                    + 2 * s as usize
                    + 2 * (j as usize - 1)
                    + c as usize
            }
            GadgetNode::AStar(j) => {
                assert!(j >= 1 && j <= ell);
                tree_total + path_total + 2 * block + 4 * s as usize + (j as usize - 1)
            }
            GadgetNode::BStar(j) => {
                assert!(j >= 1 && j <= ell);
                tree_total
                    + path_total
                    + 2 * block
                    + 4 * s as usize
                    + ell as usize
                    + (j as usize - 1)
            }
            GadgetNode::AZero => {
                assert!(self.with_a0, "a₀ exists only in the radius gadget");
                self.kinds.len() - 1
            }
        }
    }

    /// Which side of the reduction a node belongs to **initially**
    /// (`V_S` / `V_A` / `V_B`).
    pub fn part(&self, v: NodeId) -> Party {
        match self.kinds[v] {
            GadgetNode::Tree { .. } | GadgetNode::Path { .. } => Party::Server,
            GadgetNode::A(_) | GadgetNode::ASide(..) | GadgetNode::AStar(_) | GadgetNode::AZero => {
                Party::Alice
            }
            GadgetNode::B(_) | GadgetNode::BSide(..) | GadgetNode::BStar(_) => Party::Bob,
        }
    }

    /// The Lemma 4.1 ownership schedule: who simulates node `v` at the end
    /// of round `r` (valid for `r < 2^h/2`).
    pub fn owner_at(&self, v: NodeId, r: u32) -> Party {
        let h = self.dims.h;
        match self.kinds[v] {
            GadgetNode::Path { j, .. } => {
                let left = 1 + r;
                let right = (1u32 << h).saturating_sub(r);
                if j < left {
                    Party::Alice
                } else if j > right {
                    Party::Bob
                } else {
                    Party::Server
                }
            }
            GadgetNode::Tree { depth, j } => {
                let denom = 1u32 << (h - depth);
                let left = (1 + r).div_ceil(denom);
                let right = ((1u32 << h).saturating_sub(r)).div_ceil(denom);
                if j < left {
                    Party::Alice
                } else if j > right {
                    Party::Bob
                } else {
                    Party::Server
                }
            }
            _ => self.part(v),
        }
    }
}

/// `bin(i, j)`: the `j`-th bit (1-based) of the binary expansion of `i − 1`.
pub fn bin(i: u32, j: u32) -> u8 {
    debug_assert!(i >= 1 && j >= 1);
    (((i - 1) >> (j - 1)) & 1) as u8
}

/// A constructed gadget: graph, layout, and the weight parameters.
#[derive(Clone, Debug)]
pub struct Gadget {
    /// The weighted network.
    pub graph: WeightedGraph,
    /// The node layout.
    pub layout: GadgetLayout,
    /// Weight `α` (the paper sets `α = n²`).
    pub alpha: Weight,
    /// Weight `β > α` (the paper sets `β = 2n²`).
    pub beta: Weight,
}

/// The paper's weight choice `α = n², β = 2n²` for the gadget at height `h`.
pub fn paper_weights(dims: &GadgetDims) -> (Weight, Weight) {
    let n = node_count(dims, false) as u64;
    (n * n, 2 * n * n)
}

/// The closed-form node count
/// `n = (2^{h+1}−1) + (2s+ℓ)(2^h+2) + 2·2^s (+1 for the radius gadget)`.
pub fn node_count(dims: &GadgetDims, with_a0: bool) -> usize {
    let h = dims.h;
    let s = dims.s as usize;
    let ell = dims.ell as usize;
    ((1usize << (h + 1)) - 1)
        + (2 * s + ell) * ((1usize << h) + 2)
        + 2 * (1usize << dims.s)
        + usize::from(with_a0)
}

fn build(
    dims: &GadgetDims,
    x: &[bool],
    y: &[bool],
    alpha: Weight,
    beta: Weight,
    with_a0: bool,
) -> Gadget {
    assert!(alpha >= 2, "α must exceed the unit weights");
    assert!(beta > alpha, "β must exceed α");
    assert_eq!(x.len(), dims.input_len());
    assert_eq!(y.len(), dims.input_len());
    let layout = GadgetLayout::new(*dims, with_a0);
    let h = dims.h;
    let s = dims.s;
    let ell = dims.ell;
    let m = 2 * s + ell;
    let width = 1u32 << h;
    let mut b = GraphBuilder::new(layout.n());
    let id = |node: GadgetNode| layout.id(node);

    // Tree edges (weight 1).
    for depth in 1..=h {
        for j in 1..=(1u32 << depth) {
            b.add_edge(
                id(GadgetNode::Tree { depth, j }),
                id(GadgetNode::Tree {
                    depth: depth - 1,
                    j: j.div_ceil(2),
                }),
                1,
            );
        }
    }
    // Path edges (weight 1).
    for path in 1..=m {
        for j in 2..=width {
            b.add_edge(
                id(GadgetNode::Path { path, j }),
                id(GadgetNode::Path { path, j: j - 1 }),
                1,
            );
        }
    }
    // Leaf-to-path edges (weight α).
    for path in 1..=m {
        for j in 1..=width {
            b.add_edge(
                id(GadgetNode::Tree { depth: h, j }),
                id(GadgetNode::Path { path, j }),
                alpha,
            );
        }
    }
    // E′: path endpoints into V_A and V_B (weight 1 — "including the
    // endpoints in V_A and V_B").
    for i in 1..=s {
        b.add_edge(
            id(GadgetNode::ASide(i, 0)),
            id(GadgetNode::Path {
                path: 2 * i - 1,
                j: 1,
            }),
            1,
        );
        b.add_edge(
            id(GadgetNode::ASide(i, 1)),
            id(GadgetNode::Path { path: 2 * i, j: 1 }),
            1,
        );
        b.add_edge(
            id(GadgetNode::BSide(i, 0)),
            id(GadgetNode::Path {
                path: 2 * i,
                j: width,
            }),
            1,
        );
        b.add_edge(
            id(GadgetNode::BSide(i, 1)),
            id(GadgetNode::Path {
                path: 2 * i - 1,
                j: width,
            }),
            1,
        );
    }
    for j in 1..=ell {
        b.add_edge(
            id(GadgetNode::AStar(j)),
            id(GadgetNode::Path {
                path: 2 * s + j,
                j: 1,
            }),
            1,
        );
        b.add_edge(
            id(GadgetNode::BStar(j)),
            id(GadgetNode::Path {
                path: 2 * s + j,
                j: width,
            }),
            1,
        );
    }
    // E_A / E_B: address edges a_i — a_j^{bin(i,j)} (weight α).
    for i in 1..=(1u32 << s) {
        for j in 1..=s {
            b.add_edge(
                id(GadgetNode::A(i)),
                id(GadgetNode::ASide(j, bin(i, j))),
                alpha,
            );
            b.add_edge(
                id(GadgetNode::B(i)),
                id(GadgetNode::BSide(j, bin(i, j))),
                alpha,
            );
        }
    }
    // Cliques on {a_i} and {b_i} (weight α).
    for i in 1..=(1u32 << s) {
        for j in (i + 1)..=(1u32 << s) {
            b.add_edge(id(GadgetNode::A(i)), id(GadgetNode::A(j)), alpha);
            b.add_edge(id(GadgetNode::B(i)), id(GadgetNode::B(j)), alpha);
        }
    }
    // Input edges: a_i — a*_j weighted by x_{i,j}; b_i — b*_j by y_{i,j}.
    for i in 1..=(1u32 << s) {
        for j in 1..=ell {
            let t = dims.index(i as usize - 1, j as usize - 1);
            let wx = if x[t] { alpha } else { beta };
            let wy = if y[t] { alpha } else { beta };
            b.add_edge(id(GadgetNode::A(i)), id(GadgetNode::AStar(j)), wx);
            b.add_edge(id(GadgetNode::B(i)), id(GadgetNode::BStar(j)), wy);
        }
    }
    // Radius extra: a₀ — a_i of weight 2α.
    if with_a0 {
        for i in 1..=(1u32 << s) {
            b.add_edge(id(GadgetNode::AZero), id(GadgetNode::A(i)), 2 * alpha);
        }
    }
    let graph = b.build().expect("gadget construction is valid");
    Gadget {
        graph,
        layout,
        alpha,
        beta,
    }
}

/// Builds the Figure 2 gadget (diameter hardness, Theorem 4.2).
pub fn diameter_gadget(
    dims: &GadgetDims,
    x: &[bool],
    y: &[bool],
    alpha: Weight,
    beta: Weight,
) -> Gadget {
    build(dims, x, y, alpha, beta, false)
}

/// Builds the Figure 4 gadget (radius hardness, Theorem 4.8): the diameter
/// gadget plus the center candidate `a₀`.
pub fn radius_gadget(
    dims: &GadgetDims,
    x: &[bool],
    y: &[bool],
    alpha: Weight,
    beta: Weight,
) -> Gadget {
    build(dims, x, y, alpha, beta, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulas::{f_diameter, f_radius};
    use congest_graph::{contract, metrics, Dist};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn dims2() -> GadgetDims {
        GadgetDims::new(2)
    }

    fn random_inputs(
        dims: &GadgetDims,
        density: f64,
        rng: &mut ChaCha8Rng,
    ) -> (Vec<bool>, Vec<bool>) {
        let x = (0..dims.input_len())
            .map(|_| rng.gen_bool(density))
            .collect();
        let y = (0..dims.input_len())
            .map(|_| rng.gen_bool(density))
            .collect();
        (x, y)
    }

    #[test]
    fn node_count_matches_formula() {
        for h in [2u32, 4] {
            let dims = GadgetDims::new(h);
            let n = dims.input_len();
            let g = diameter_gadget(&dims, &vec![true; n], &vec![false; n], 100, 200);
            assert_eq!(g.graph.n(), node_count(&dims, false), "h={h}");
            let r = radius_gadget(&dims, &vec![true; n], &vec![false; n], 100, 200);
            assert_eq!(r.graph.n(), node_count(&dims, false) + 1, "h={h}");
        }
        // h = 2: 7 + 8·6 + 16 = 71.
        assert_eq!(node_count(&dims2(), false), 71);
    }

    #[test]
    fn layout_roundtrips() {
        let dims = dims2();
        let layout = GadgetLayout::new(dims, true);
        for v in 0..layout.n() {
            assert_eq!(layout.id(layout.kind(v)), v, "node {v}");
        }
    }

    #[test]
    fn gadget_connected_with_log_diameter() {
        let dims = GadgetDims::new(4);
        let n = dims.input_len();
        let g = diameter_gadget(&dims, &vec![true; n], &vec![true; n], 1000, 2000);
        assert!(g.graph.is_connected());
        let d = metrics::unweighted_diameter(&g.graph);
        // D_G = Θ(h) = Θ(log n).
        assert!(
            d <= 4 * dims.h as usize + 8,
            "unweighted diameter {d} not O(h) for h={}",
            dims.h
        );
        assert!(d >= dims.h as usize, "tree height forces D ≥ h");
    }

    /// Lemma 4.4 in both directions, with the paper's α = n², β = 2n².
    #[test]
    fn lemma_4_4_diameter_gap() {
        let dims = dims2();
        let (alpha, beta) = paper_weights(&dims);
        let n = node_count(&dims, false) as u64;
        let mut rng = ChaCha8Rng::seed_from_u64(50);
        let mut seen = [false; 2];
        for trial in 0..14 {
            let density = if trial % 2 == 0 { 0.9 } else { 0.4 };
            let (x, y) = random_inputs(&dims, density, &mut rng);
            let g = diameter_gadget(&dims, &x, &y, alpha, beta);
            let d = metrics::diameter(&g.graph).expect_finite();
            if f_diameter(&dims, &x, &y) {
                assert!(
                    d <= alpha.max(beta).max(2 * alpha) + n,
                    "trial {trial}: F=1 but D = {d} > max(2α,β)+n"
                );
                assert!(d <= 2 * alpha + n);
                seen[1] = true;
            } else {
                assert!(
                    d >= (alpha + beta).min(3 * alpha),
                    "trial {trial}: F=0 but D = {d} < min(α+β, 3α)"
                );
                seen[0] = true;
            }
        }
        assert!(seen[0] && seen[1], "both F outcomes must be exercised");
    }

    /// The Theorem 4.2 distinguishing threshold: a (3/2−ε)-approximation
    /// separates the two diameter regimes.
    #[test]
    fn theorem_4_2_threshold_separates() {
        let dims = dims2();
        let (alpha, beta) = paper_weights(&dims);
        let n = node_count(&dims, false) as f64;
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        for trial in 0..10 {
            let (x, y) = random_inputs(&dims, 0.55, &mut rng);
            let g = diameter_gadget(&dims, &x, &y, alpha, beta);
            let d = metrics::diameter(&g.graph).expect_finite() as f64;
            // Any value in [D, 1.4·D] still lands on the right side of 3n².
            let eps = 0.1;
            let approx_hi = (1.5 - eps) * d;
            let decide_one = approx_hi < 3.0 * n * n;
            assert_eq!(
                decide_one,
                f_diameter(&dims, &x, &y),
                "trial {trial}: threshold failed (D = {d})"
            );
        }
    }

    /// Lemma 4.9 in both directions (radius gadget).
    #[test]
    fn lemma_4_9_radius_gap() {
        let dims = dims2();
        let (alpha, beta) = paper_weights(&dims);
        let n = node_count(&dims, true) as u64;
        let mut rng = ChaCha8Rng::seed_from_u64(52);
        let mut seen = [false; 2];
        for trial in 0..14 {
            let density = if trial % 2 == 0 { 0.35 } else { 0.02 };
            let (x, y) = random_inputs(&dims, density, &mut rng);
            let g = radius_gadget(&dims, &x, &y, alpha, beta);
            let r = metrics::radius(&g.graph).expect_finite();
            if f_radius(&dims, &x, &y) {
                assert!(
                    r <= (2 * alpha).max(beta) + n,
                    "trial {trial}: F'=1 but R = {r} > max(2α,β)+n"
                );
                seen[1] = true;
            } else {
                assert!(
                    r >= (alpha + beta).min(3 * alpha),
                    "trial {trial}: F'=0 but R = {r} < min(α+β, 3α)"
                );
                seen[0] = true;
            }
        }
        assert!(seen[0] && seen[1], "both F' outcomes must be exercised");
    }

    /// Figure 3: contracting the weight-1 edges collapses the tree to one
    /// node and each path (with its V_A/V_B endpoints) to one node.
    #[test]
    fn contraction_reproduces_figure_3() {
        let dims = dims2();
        let (alpha, beta) = paper_weights(&dims);
        let n_inputs = dims.input_len();
        let g = diameter_gadget(
            &dims,
            &vec![true; n_inputs],
            &vec![false; n_inputs],
            alpha,
            beta,
        );
        let c = contract::contract_unit_edges(&g.graph);
        let m = (2 * dims.s + dims.ell) as usize;
        let expected = 1 + m + 2 * dims.blocks();
        assert_eq!(c.graph.n(), expected, "contracted node count");
        // The whole tree is one class.
        let t_root = g.layout.id(GadgetNode::Tree { depth: 0, j: 1 });
        let t_leaf = g.layout.id(GadgetNode::Tree {
            depth: dims.h,
            j: 1,
        });
        assert_eq!(c.image(t_root), c.image(t_leaf));
        // A path merges with its two V_A/V_B endpoints.
        let p = g.layout.id(GadgetNode::Path { path: 1, j: 2 });
        let a_end = g.layout.id(GadgetNode::ASide(1, 0));
        let b_end = g.layout.id(GadgetNode::BSide(1, 1));
        assert_eq!(c.image(p), c.image(a_end));
        assert_eq!(c.image(p), c.image(b_end));
        // a_i stay separate.
        let a1 = g.layout.id(GadgetNode::A(1));
        let a2 = g.layout.id(GadgetNode::A(2));
        assert_ne!(c.image(a1), c.image(a2));
    }

    /// Table 2: the claimed distance upper bounds hold in the contracted
    /// graph G′ (checked exactly, every row).
    #[test]
    fn table_2_distance_bounds() {
        let dims = dims2();
        let (alpha, beta) = paper_weights(&dims);
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let (x, y) = random_inputs(&dims, 0.5, &mut rng);
        let g = diameter_gadget(&dims, &x, &y, alpha, beta);
        let c = contract::contract_unit_edges(&g.graph);
        let apsp = congest_graph::shortest_path::apsp(&c.graph);
        let dist = |u: NodeId, v: NodeId| apsp[(c.image(u), c.image(v))];
        let id = |node: GadgetNode| g.layout.id(node);
        let t = id(GadgetNode::Tree { depth: 0, j: 1 });
        let le = |d: Dist, bound: u64| d <= Dist::from(bound);
        let routers: Vec<NodeId> = (1..=dims.s)
            .flat_map(|j| [id(GadgetNode::ASide(j, 0)), id(GadgetNode::ASide(j, 1))])
            .chain((1..=dims.ell).map(|j| id(GadgetNode::AStar(j))))
            .collect();
        // Row 1: t — router ≤ α.
        for &r in &routers {
            assert!(le(dist(t, r), alpha), "t-router");
        }
        for i in 1..=(dims.blocks() as u32) {
            let ai = id(GadgetNode::A(i));
            let bi = id(GadgetNode::B(i));
            // Rows 2–3: t — a_i, t — b_i ≤ 2α.
            assert!(le(dist(t, ai), 2 * alpha), "t-a_{i}");
            assert!(le(dist(t, bi), 2 * alpha), "t-b_{i}");
            for jj in 1..=dims.s {
                let same = id(GadgetNode::ASide(jj, bin(i, jj)));
                let flip = id(GadgetNode::ASide(jj, bin(i, jj) ^ 1));
                // a_i — a_j^{bin} ≤ α; a_i — a_j^{bin⊕1} ≤ 2α.
                assert!(le(dist(ai, same), alpha), "a-same-side");
                assert!(le(dist(ai, flip), 2 * alpha), "a-flip-side");
                // b_i — a_j^{bin⊕1} ≤ α; b_i — a_j^{bin} ≤ 2α.
                assert!(le(dist(bi, flip), alpha), "b-flip-side");
                assert!(le(dist(bi, same), 2 * alpha), "b-same-side");
            }
            for j in 1..=(dims.blocks() as u32) {
                if i != j {
                    // a_i — a_j ≤ α; a_i — b_j ≤ 2α; b_i — b_j ≤ α.
                    assert!(le(dist(ai, id(GadgetNode::A(j))), alpha));
                    assert!(le(dist(ai, id(GadgetNode::B(j))), 2 * alpha));
                    assert!(le(dist(bi, id(GadgetNode::B(j))), alpha));
                }
            }
            for j in 1..=dims.ell {
                // a_i — a*_j ≤ β; b_i — a*_j ≤ β.
                assert!(le(dist(ai, id(GadgetNode::AStar(j))), beta));
                assert!(le(dist(bi, id(GadgetNode::AStar(j))), beta));
            }
        }
        // Last row: router — router ≤ 2α.
        for &r1 in &routers {
            for &r2 in &routers {
                assert!(le(dist(r1, r2), 2 * alpha), "router-router");
            }
        }
    }

    /// Ownership schedule sanity: partition at every round, Alice/Bob grow
    /// inward, and within the validity horizon the server always owns the
    /// middle.
    #[test]
    fn ownership_schedule_partitions() {
        let dims = GadgetDims::new(4);
        let layout = GadgetLayout::new(dims, false);
        let horizon = (1u32 << dims.h) / 2;
        for r in 0..horizon {
            let mut counts = [0usize; 3];
            for v in 0..layout.n() {
                match layout.owner_at(v, r) {
                    Party::Server => counts[0] += 1,
                    Party::Alice => counts[1] += 1,
                    Party::Bob => counts[2] += 1,
                }
            }
            assert_eq!(counts.iter().sum::<usize>(), layout.n());
            assert!(counts[0] > 0, "server must own the middle while r < 2^h/2");
        }
        // Monotone: once Alice owns a node, she keeps it.
        for v in 0..layout.n() {
            let mut was_alice = false;
            for r in 0..horizon {
                let o = layout.owner_at(v, r);
                if was_alice {
                    assert_eq!(o, Party::Alice, "Alice's region never shrinks");
                }
                was_alice = o == Party::Alice;
            }
        }
    }
}
