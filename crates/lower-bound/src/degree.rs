//! Exact ε-approximate degree of **symmetric** boolean functions
//! (Lemma 4.6's quantity, computed rather than cited).
//!
//! By Minsky–Papert symmetrization, `deg_ε(f)` of a symmetric
//! `f : {0,1}^k → {0,1}` equals the least degree of a univariate polynomial
//! `p` with `|p(i) − f(i)| ≤ ε` on `i ∈ {0, …, k}`. For each candidate
//! degree the best uniform error is a linear program (Chebyshev basis for
//! conditioning), solved exactly with the in-crate simplex.
//!
//! The benchmark E6(c) uses this to *measure* `deg_{1/3}(AND_k) = Θ(√k)` —
//! the quantitative heart of the paper's lower bound (via Lemma 4.5's
//! lifting and Lemma 4.6).

use crate::lp::{solve, LpOutcome};

/// A symmetric boolean function, given by its value on each Hamming weight
/// `0..=k`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SymmetricFn {
    values: Vec<bool>,
}

impl SymmetricFn {
    /// Builds from the weight-value table (`values[i]` = output on inputs of
    /// Hamming weight `i`); `k = values.len() - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(values: Vec<bool>) -> SymmetricFn {
        assert!(!values.is_empty());
        SymmetricFn { values }
    }

    /// `AND_k`: true only on the all-ones input.
    pub fn and(k: usize) -> SymmetricFn {
        SymmetricFn::new((0..=k).map(|i| i == k).collect())
    }

    /// `OR_k`: true except on the all-zeros input.
    pub fn or(k: usize) -> SymmetricFn {
        SymmetricFn::new((0..=k).map(|i| i > 0).collect())
    }

    /// `PARITY_k`.
    pub fn parity(k: usize) -> SymmetricFn {
        SymmetricFn::new((0..=k).map(|i| i % 2 == 1).collect())
    }

    /// `MAJ_k` (strict majority).
    pub fn majority(k: usize) -> SymmetricFn {
        SymmetricFn::new((0..=k).map(|i| 2 * i > k).collect())
    }

    /// `THR_t`: true when at least `t` inputs are set.
    pub fn threshold(k: usize, t: usize) -> SymmetricFn {
        SymmetricFn::new((0..=k).map(|i| i >= t).collect())
    }

    /// Arity `k`.
    pub fn arity(&self) -> usize {
        self.values.len() - 1
    }

    /// The weight-value table.
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

/// Chebyshev polynomial `T_j(z)` by the recurrence.
fn chebyshev(j: usize, z: f64) -> f64 {
    match j {
        0 => 1.0,
        1 => z,
        _ => {
            let (mut a, mut b) = (1.0, z);
            for _ in 2..=j {
                let c = 2.0 * z * b - a;
                a = b;
                b = c;
            }
            b
        }
    }
}

/// The best uniform error achievable by a degree-`d` polynomial
/// approximating `f` on the weight points `{0, …, k}` (an exact LP solve).
///
/// # Panics
///
/// Panics if the LP solver reports an unexpected status (the program is
/// always feasible and bounded below by 0).
pub fn best_uniform_error(f: &SymmetricFn, d: usize) -> f64 {
    let k = f.arity();
    if d >= k {
        return 0.0; // interpolation is exact
    }
    // Variables: u_0..u_d, v_0..v_d (c_j = u_j − v_j), e. Minimize e.
    let nv = 2 * (d + 1) + 1;
    let e_idx = nv - 1;
    let mut c = vec![0.0; nv];
    c[e_idx] = 1.0;
    let mut a = Vec::with_capacity(2 * (k + 1));
    let mut b = Vec::with_capacity(2 * (k + 1));
    for i in 0..=k {
        let z = if k == 0 {
            0.0
        } else {
            2.0 * i as f64 / k as f64 - 1.0
        };
        let fi = if f.values()[i] { 1.0 } else { 0.0 };
        let mut pos = vec![0.0; nv];
        let mut neg = vec![0.0; nv];
        for j in 0..=d {
            let t = chebyshev(j, z);
            pos[j] = t;
            pos[d + 1 + j] = -t;
            neg[j] = -t;
            neg[d + 1 + j] = t;
        }
        pos[e_idx] = -1.0;
        neg[e_idx] = -1.0;
        a.push(pos);
        b.push(fi);
        a.push(neg);
        b.push(-fi);
    }
    match solve(&c, &a, &b) {
        LpOutcome::Optimal { value, .. } => value.max(0.0),
        other => panic!("approximation LP must be feasible and bounded: {other:?}"),
    }
}

/// The exact ε-approximate degree `deg_ε(f)` of a symmetric function.
///
/// # Panics
///
/// Panics if `eps` is not in `[0, 1)`.
///
/// # Examples
///
/// ```
/// use congest_lb::degree::{approx_degree, SymmetricFn};
/// // Parity needs full degree; constants need none.
/// assert_eq!(approx_degree(&SymmetricFn::parity(5), 1.0 / 3.0), 5);
/// assert_eq!(approx_degree(&SymmetricFn::new(vec![true; 4]), 1.0 / 3.0), 0);
/// ```
pub fn approx_degree(f: &SymmetricFn, eps: f64) -> usize {
    assert!((0.0..1.0).contains(&eps));
    let k = f.arity();
    for d in 0..=k {
        if best_uniform_error(f, d) <= eps + 1e-7 {
            return d;
        }
    }
    k
}

/// Fits `deg_{1/3}(AND_k)` measurements to `c·√k`, returning `(c, max
/// relative residual)` — the quantitative check of Lemma 4.6's `Θ(√k)`.
pub fn sqrt_fit(points: &[(usize, usize)]) -> (f64, f64) {
    assert!(!points.is_empty());
    let c = points
        .iter()
        .map(|&(k, d)| d as f64 / (k as f64).sqrt())
        .sum::<f64>()
        / points.len() as f64;
    let resid = points
        .iter()
        .map(|&(k, d)| {
            let predicted = c * (k as f64).sqrt();
            ((d as f64 - predicted) / predicted).abs()
        })
        .fold(0.0f64, f64::max);
    (c, resid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_values() {
        assert_eq!(chebyshev(0, 0.3), 1.0);
        assert_eq!(chebyshev(1, 0.3), 0.3);
        // T_2(z) = 2z² − 1.
        assert!((chebyshev(2, 0.3) - (2.0 * 0.09 - 1.0)).abs() < 1e-12);
        // T_3(z) = 4z³ − 3z.
        assert!((chebyshev(3, 0.5) - (4.0 * 0.125 - 1.5)).abs() < 1e-12);
    }

    #[test]
    fn constant_has_degree_zero() {
        assert_eq!(
            approx_degree(&SymmetricFn::new(vec![false; 6]), 1.0 / 3.0),
            0
        );
    }

    #[test]
    fn parity_needs_full_degree() {
        for k in 1..=8 {
            assert_eq!(
                approx_degree(&SymmetricFn::parity(k), 1.0 / 3.0),
                k,
                "k={k}"
            );
        }
    }

    #[test]
    fn and_2_has_degree_one() {
        // p(x) = x/3 achieves error exactly 1/3 with degree 1.
        assert_eq!(approx_degree(&SymmetricFn::and(2), 1.0 / 3.0), 1);
    }

    #[test]
    fn and_degree_monotone_and_sublinear() {
        let mut prev = 0;
        for k in [1usize, 2, 4, 8, 16, 25] {
            let d = approx_degree(&SymmetricFn::and(k), 1.0 / 3.0);
            assert!(d >= prev, "monotone");
            assert!(d <= k, "bounded by arity");
            if k >= 9 {
                assert!(d < k, "k={k}: approximate degree must be sublinear");
            }
            prev = d;
        }
    }

    #[test]
    fn and_or_duality() {
        // deg(OR_k) = deg(AND_k) (complement + input flip preserve degree).
        for k in [2usize, 5, 9, 16] {
            assert_eq!(
                approx_degree(&SymmetricFn::and(k), 1.0 / 3.0),
                approx_degree(&SymmetricFn::or(k), 1.0 / 3.0),
                "k={k}"
            );
        }
    }

    #[test]
    fn and_follows_sqrt_scaling() {
        let points: Vec<(usize, usize)> = [4usize, 9, 16, 25, 36]
            .iter()
            .map(|&k| (k, approx_degree(&SymmetricFn::and(k), 1.0 / 3.0)))
            .collect();
        let (c, resid) = sqrt_fit(&points);
        assert!(c > 0.3 && c < 2.0, "constant {c}");
        assert!(resid < 0.45, "√k fit residual {resid}; points {points:?}");
    }

    #[test]
    fn majority_needs_linear_degree() {
        // Paturi: deg(MAJ_k) = Θ(k) — far above deg(AND_k).
        let k = 15;
        let maj = approx_degree(&SymmetricFn::majority(k), 1.0 / 3.0);
        let and = approx_degree(&SymmetricFn::and(k), 1.0 / 3.0);
        assert!(maj > and, "MAJ {maj} vs AND {and}");
        assert!(maj >= k / 3, "MAJ degree {maj} too small for k={k}");
    }

    #[test]
    fn error_decreases_with_degree() {
        let f = SymmetricFn::and(12);
        let mut prev = f64::INFINITY;
        for d in 0..=12 {
            let e = best_uniform_error(&f, d);
            assert!(e <= prev + 1e-9, "error must be non-increasing in degree");
            prev = e;
        }
        assert!(prev < 1e-7, "interpolation at full degree");
    }

    #[test]
    fn smaller_eps_needs_larger_degree() {
        let f = SymmetricFn::and(16);
        let loose = approx_degree(&f, 0.45);
        let tight = approx_degree(&f, 0.05);
        assert!(tight >= loose);
        assert!(tight > 0);
    }
}
