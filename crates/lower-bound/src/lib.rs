//! # congest-lb
//!
//! The lower-bound machinery of *Wu & Yao, "Quantum Complexity of Weighted
//! Diameter and Radius in CONGEST Networks"* (PODC 2022), Section 4 —
//! Theorem 1.2's `Ω̃(n^{2/3})` for `(3/2−ε)`-approximating the weighted
//! diameter/radius, with every link of the chain executable:
//!
//! * [`formulas`] — `F = AND∘(OR∘AND₂)`, `F' = OR∘AND₂`, the `GDT` gadget,
//!   its promise version `VER` (Lemma 4.5), and read-once formulas
//!   (Lemma 4.6);
//! * [`gadget`] — the Figure 1/2/4 graph constructions, the weight
//!   encoding of the players' inputs, the Figure 3 contraction, Table 2's
//!   distance bounds, and the Lemma 4.4/4.9 diameter/radius gaps — all
//!   verified exactly in tests;
//! * [`server`] — the Server model (only Alice/Bob messages are charged)
//!   and the Lemma 4.1 simulation: a real CONGEST message log is replayed
//!   against the ownership schedule, measuring the `O(T·h·B)` cost;
//! * [`degree`] — exact ε-approximate degree of symmetric functions by an
//!   LP over Chebyshev bases ([`lp`] is an in-crate simplex), reproducing
//!   `deg_{1/3} = Θ(√k)`;
//! * [`reduction`] — the assembled `Ω(√(2^s·ℓ)/(h·B)) = Ω̃(n^{2/3})` bound.
//!
//! # Examples
//!
//! ```
//! use congest_lb::formulas::GadgetDims;
//! use congest_lb::gadget::{diameter_gadget, paper_weights};
//! use congest_lb::formulas::f_diameter;
//! use congest_graph::metrics;
//!
//! let dims = GadgetDims::new(2);
//! let (alpha, beta) = paper_weights(&dims);
//! let ones = vec![true; dims.input_len()];
//! let g = diameter_gadget(&dims, &ones, &ones, alpha, beta);
//! // F(1…1, 1…1) = 1, so the diameter sits in the "small" regime.
//! assert!(f_diameter(&dims, &ones, &ones));
//! let d = metrics::diameter(&g.graph).expect_finite();
//! assert!(d <= 2 * alpha + g.graph.n() as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degree;
pub mod formulas;
pub mod gadget;
pub mod lp;
pub mod reduction;
pub mod server;
