//! **Exhaustive** verification of the gap lemmas: on a reduced gadget
//! (custom dimensions `s = 1, ℓ = 2` ⇒ 4-bit inputs), every one of the
//! 2⁴ × 2⁴ = 256 input pairs is checked against Lemma 4.4 (diameter) and
//! Lemma 4.9 (radius) — both directions, no sampling.
//!
//! The Eq. (2) coupling `s = 3h/2, ℓ = 2^{s−h}` only matters for the final
//! round-bound arithmetic of Theorem 4.2; the gadget construction and the
//! gap lemmas hold for any dimensions, which is what makes this exhaustive
//! check possible.

use congest_graph::metrics;
use congest_lb::formulas::{f_diameter, f_radius, GadgetDims};
use congest_lb::gadget::{diameter_gadget, node_count, radius_gadget};

fn bits(mask: u32, len: usize) -> Vec<bool> {
    (0..len).map(|j| (mask >> j) & 1 == 1).collect()
}

#[test]
fn lemma_4_4_exhaustive_on_reduced_gadget() {
    let dims = GadgetDims::custom(2, 1, 2);
    let len = dims.input_len();
    assert_eq!(len, 4);
    let n = node_count(&dims, false) as u64;
    // α must dominate n for the contraction slack (Lemma 4.3): use α = n².
    let (alpha, beta) = (n * n, 2 * n * n);
    for xm in 0..(1u32 << len) {
        for ym in 0..(1u32 << len) {
            let x = bits(xm, len);
            let y = bits(ym, len);
            let g = diameter_gadget(&dims, &x, &y, alpha, beta);
            assert_eq!(g.graph.n() as u64, n);
            let d = metrics::diameter(&g.graph).expect_finite();
            if f_diameter(&dims, &x, &y) {
                assert!(
                    d <= 2 * alpha + n,
                    "x={xm:04b} y={ym:04b}: F=1 but D = {d} > 2α+n"
                );
            } else {
                assert!(
                    d >= (alpha + beta).min(3 * alpha),
                    "x={xm:04b} y={ym:04b}: F=0 but D = {d} < min(α+β, 3α)"
                );
            }
        }
    }
}

#[test]
fn lemma_4_9_exhaustive_on_reduced_gadget() {
    let dims = GadgetDims::custom(2, 1, 2);
    let len = dims.input_len();
    let n = node_count(&dims, true) as u64;
    let (alpha, beta) = (n * n, 2 * n * n);
    for xm in 0..(1u32 << len) {
        for ym in 0..(1u32 << len) {
            let x = bits(xm, len);
            let y = bits(ym, len);
            let g = radius_gadget(&dims, &x, &y, alpha, beta);
            let r = metrics::radius(&g.graph).expect_finite();
            if f_radius(&dims, &x, &y) {
                assert!(
                    r <= (2 * alpha).max(beta) + n,
                    "x={xm:04b} y={ym:04b}: F'=1 but R = {r} > max(2α,β)+n"
                );
            } else {
                assert!(
                    r >= (alpha + beta).min(3 * alpha),
                    "x={xm:04b} y={ym:04b}: F'=0 but R = {r} < min(α+β, 3α)"
                );
            }
        }
    }
}

/// The threshold distinguisher of Theorem 4.2 decodes F from *any*
/// (3/2−ε)-approximation, exhaustively.
#[test]
fn threshold_decoding_exhaustive() {
    let dims = GadgetDims::custom(2, 1, 2);
    let len = dims.input_len();
    let n = node_count(&dims, false);
    let (alpha, beta) = ((n * n) as u64, 2 * (n * n) as u64);
    for xm in 0..(1u32 << len) {
        for ym in 0..(1u32 << len) {
            let x = bits(xm, len);
            let y = bits(ym, len);
            let g = diameter_gadget(&dims, &x, &y, alpha, beta);
            let d = metrics::diameter(&g.graph).expect_finite() as f64;
            // Worst allowed approximation: (3/2 − ε)·D with ε = 0.1.
            let approx = 1.4 * d;
            let decided = approx < 3.0 * (n * n) as f64;
            assert_eq!(decided, f_diameter(&dims, &x, &y), "x={xm:04b} y={ym:04b}");
        }
    }
}
