//! Property-based tests of the lower-bound machinery.

use congest_graph::metrics;
use congest_lb::degree::{approx_degree, best_uniform_error, SymmetricFn};
use congest_lb::formulas::{f_diameter, f_radius, GadgetDims};
use congest_lb::gadget::{
    diameter_gadget, node_count, paper_weights, radius_gadget, GadgetLayout, Party,
};
use congest_lb::lp::{solve, LpOutcome};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Gadget node counts match the closed form for every valid height.
    #[test]
    fn node_count_formula(h_half in 1u32..3) {
        let h = 2 * h_half;
        let dims = GadgetDims::new(h);
        let x = vec![true; dims.input_len()];
        let g = diameter_gadget(&dims, &x, &x, 100, 200);
        prop_assert_eq!(g.graph.n(), node_count(&dims, false));
        prop_assert!(g.graph.is_connected());
    }

    /// The ownership schedule partitions V at every round in the horizon,
    /// and regions only grow toward the middle.
    #[test]
    fn ownership_partition_and_monotonicity(h_half in 1u32..3, r_frac in 0.0f64..1.0) {
        let h = 2 * h_half;
        let dims = GadgetDims::new(h);
        let layout = GadgetLayout::new(dims, false);
        let horizon = (1u32 << h) / 2;
        let r = ((horizon.saturating_sub(1)) as f64 * r_frac) as u32;
        let mut server = 0usize;
        for v in 0..layout.n() {
            let now = layout.owner_at(v, r);
            if now == Party::Server {
                server += 1;
            }
            if r + 1 < horizon {
                let next = layout.owner_at(v, r + 1);
                // A node never moves from a player back to the server, and
                // never switches players.
                if now == Party::Alice {
                    prop_assert_eq!(next, Party::Alice);
                }
                if now == Party::Bob {
                    prop_assert_eq!(next, Party::Bob);
                }
            }
        }
        prop_assert!(server > 0, "server keeps the middle inside the horizon");
    }

    /// The radius gadget decides F′ for arbitrary inputs (h = 2).
    #[test]
    fn radius_gap(bits in proptest::collection::vec(any::<bool>(), 32)) {
        let dims = GadgetDims::new(2);
        let (alpha, beta) = paper_weights(&dims);
        let (x, y) = bits.split_at(16);
        let g = radius_gadget(&dims, x, y, alpha, beta);
        let r = metrics::radius(&g.graph).expect_finite();
        if f_radius(&dims, x, y) {
            prop_assert!(r <= (2 * alpha).max(beta) + g.graph.n() as u64);
        } else {
            prop_assert!(r >= (alpha + beta).min(3 * alpha));
        }
    }

    /// F is monotone: adding 1-bits to either input never flips 1 → 0.
    #[test]
    fn f_monotone(bits in proptest::collection::vec(any::<bool>(), 32), flip in 0usize..16) {
        let dims = GadgetDims::new(2);
        let (x, y) = bits.split_at(16);
        let (mut x2, y2) = (x.to_vec(), y.to_vec());
        x2[flip] = true;
        if f_diameter(&dims, x, y) {
            prop_assert!(f_diameter(&dims, &x2, &y2));
        }
    }

    /// Approximate degree: monotone in ε (tighter needs more), bounded by
    /// arity, and invariant under complement.
    #[test]
    fn degree_properties(k in 2usize..14, table_seed in any::<u64>()) {
        // Random symmetric function from the seed bits.
        let values: Vec<bool> = (0..=k).map(|i| (table_seed >> (i % 64)) & 1 == 1).collect();
        let f = SymmetricFn::new(values.clone());
        let not_f = SymmetricFn::new(values.iter().map(|b| !b).collect());
        let d = approx_degree(&f, 1.0 / 3.0);
        prop_assert!(d <= k);
        prop_assert_eq!(d, approx_degree(&not_f, 1.0 / 3.0), "complement invariance");
        let tighter = approx_degree(&f, 0.1);
        prop_assert!(tighter >= d);
        // The LP's error curve is non-increasing in the degree.
        let mut prev = f64::INFINITY;
        for deg in 0..=k {
            let e = best_uniform_error(&f, deg);
            prop_assert!(e <= prev + 1e-7);
            prev = e;
        }
    }

    /// The simplex solver on random bounded programs: optimal value is
    /// feasible and no better than any sampled feasible point.
    #[test]
    fn lp_optimality_certificate(
        c in proptest::collection::vec(-5.0f64..5.0, 2..4),
        rows in proptest::collection::vec(proptest::collection::vec(0.1f64..3.0, 2..4), 2..5),
        b in proptest::collection::vec(0.5f64..10.0, 2..5),
    ) {
        let n = c.len();
        let m = rows.len().min(b.len());
        let a: Vec<Vec<f64>> = rows[..m].iter().map(|r| {
            let mut r = r.clone();
            r.resize(n, 1.0);
            r
        }).collect();
        let b = b[..m].to_vec();
        // All-positive constraint matrix with x ≥ 0 and b > 0: bounded
        // feasible region containing 0 whenever c ≥ 0; with mixed c it may
        // be unbounded only if some c_j < 0 has an unconstrained column —
        // impossible here since every row has positive coefficients.
        match solve(&c, &a, &b) {
            LpOutcome::Optimal { value, x } => {
                // Primal feasibility.
                for (row, &bi) in a.iter().zip(&b) {
                    let lhs: f64 = row.iter().zip(&x).map(|(aij, xj)| aij * xj).sum();
                    prop_assert!(lhs <= bi + 1e-6);
                }
                for &xj in &x {
                    prop_assert!(xj >= -1e-9);
                }
                let cx: f64 = c.iter().zip(&x).map(|(cj, xj)| cj * xj).sum();
                prop_assert!((cx - value).abs() < 1e-6);
                // 0 is feasible, so value ≤ 0 whenever minimizing can use it.
                prop_assert!(value <= 1e-9);
            }
            other => prop_assert!(false, "expected optimal, got {:?}", other),
        }
    }
}
