//! Property coverage for the log₂ histogram (ISSUE 6 satellite): the
//! quantile sandwich against an exact sort, merge associativity and
//! commutativity, and bit-identical parallel vs sequential reduction
//! (mirroring `congest-sim/tests/parallel_equiv.rs`).

use proptest::prelude::*;
use wdr_metrics::Histogram;

/// The complete observable state of a histogram — if two histograms agree
/// here, every derived statistic (quantiles, summaries) agrees too.
fn state(h: &Histogram) -> (Vec<u64>, u64, u64, u64) {
    (h.bucket_counts(), h.count(), h.sum(), h.max())
}

fn observe_all(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

/// Exact rank-`q` value by sorting, mirroring `Histogram::quantile`'s rank
/// convention (`ceil(q·n)` clamped to `[1, n]`).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `v ≤ quantile(q) ≤ 2·v` for the true rank value `v`, at every
    /// quantile the snapshots report — over the full `u64` domain.
    #[test]
    fn quantile_sandwiches_the_exact_rank_value(
        values in proptest::collection::vec(any::<u64>(), 1..=256),
        q in 0.0f64..=1.0,
    ) {
        let h = observe_all(&values);
        let mut sorted = values;
        sorted.sort_unstable();
        for q in [q, 0.5, 0.9, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            prop_assert!(est >= exact, "q={q}: estimate {est} below exact {exact}");
            prop_assert!(
                est <= exact.saturating_mul(2),
                "q={q}: estimate {est} above 2×exact ({exact})"
            );
            prop_assert!(est <= h.max());
        }
    }

    /// Merging is associative and commutative on the complete state, so any
    /// reduction tree over disjoint partials is equivalent.
    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..=64),
        b in proptest::collection::vec(any::<u64>(), 0..=64),
        c in proptest::collection::vec(any::<u64>(), 0..=64),
    ) {
        let (ha, hb, hc) = (observe_all(&a), observe_all(&b), observe_all(&c));

        // (a ⊕ b) ⊕ c
        let left = Histogram::new();
        left.merge_from(&ha);
        left.merge_from(&hb);
        left.merge_from(&hc);
        // a ⊕ (b ⊕ c)
        let bc = Histogram::new();
        bc.merge_from(&hb);
        bc.merge_from(&hc);
        let right = Histogram::new();
        right.merge_from(&ha);
        right.merge_from(&bc);
        prop_assert_eq!(state(&left), state(&right));

        // b ⊕ a  ==  a ⊕ b
        let ab = Histogram::new();
        ab.merge_from(&ha);
        ab.merge_from(&hb);
        let ba = Histogram::new();
        ba.merge_from(&hb);
        ba.merge_from(&ha);
        prop_assert_eq!(state(&ab), state(&ba));

        // And both equal observing everything into one histogram.
        let joint: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(state(&left), state(&observe_all(&joint)));
    }

    /// Per-thread partials reduced in index order are bit-identical to the
    /// sequential single-histogram run — the same guarantee the parallel
    /// round engine gives (`parallel_equiv.rs`), carried by the metrics
    /// layer so metrics-on parallel runs stay deterministic.
    #[test]
    fn parallel_reduction_is_bit_identical(
        values in proptest::collection::vec(any::<u64>(), 1..=512),
        threads in 1usize..=8,
    ) {
        let sequential = observe_all(&values);

        let chunk = values.len().div_ceil(threads);
        let parts: Vec<Histogram> = (0..threads).map(|_| Histogram::new()).collect();
        rayon::scope(|s| {
            for (part, chunk) in parts.iter().zip(values.chunks(chunk)) {
                s.spawn(move || {
                    for &v in chunk {
                        part.observe(v);
                    }
                });
            }
        });
        // Index-ordered reduction of the per-thread partials.
        let parallel = Histogram::merged(&parts);
        prop_assert_eq!(state(&parallel), state(&sequential));
        prop_assert_eq!(parallel.summary(), sequential.summary());
    }
}
