//! Counting-allocator pin for the registry hot paths: after registration,
//! `inc` / `add` / `set` / `observe` / `quantile` / `summary` perform zero
//! heap operations.
//!
//! The counting allocator's counters are process-global, so this file holds
//! exactly ONE `#[test]` (a sibling test would pollute the delta).

use std::alloc::System;
use wdr_metrics::heap::{heap_ops, track_current_thread, CountingAlloc};
use wdr_metrics::MetricsRegistry;

#[global_allocator]
static ALLOC: CountingAlloc<System> = CountingAlloc::new(System);

#[test]
fn registry_hot_paths_are_allocation_free() {
    track_current_thread();
    // Registration phase: allowed (and expected) to allocate.
    let registry = MetricsRegistry::new();
    let rounds = registry.counter("sim.rounds");
    let bits = registry.counter("sim.bits");
    let c_max = registry.gauge("envelope.c_max");
    let per_round = registry.histogram("sim.bits_per_round");
    let cloned = per_round.clone();

    // Warm-up: fault in any lazy state.
    rounds.inc();
    bits.add(96);
    c_max.set(1.5);
    per_round.observe(96);
    let _ = per_round.quantile(0.5);
    let _ = per_round.summary();

    let before = heap_ops();
    for i in 0..50_000u64 {
        rounds.inc();
        bits.add(i & 0xff);
        c_max.set(i as f64 * 0.5);
        per_round.observe(i.wrapping_mul(i));
        cloned.observe(i);
    }
    let p99 = per_round.quantile(0.99);
    let summary = per_round.summary();
    let after = heap_ops();

    assert!(p99 > 0 && summary.count == 100_001);
    assert_eq!(
        after - before,
        0,
        "metrics hot paths allocated: {} heap ops across 250k operations",
        after - before
    );
}
