//! End-to-end self-check of the `wdr-perf` gate (ISSUE 6 acceptance):
//! `compare` must exit **zero** on an identical re-run and **non-zero**
//! once a gated metric regresses by ≥ 15% — exercised through the real
//! binary (`CARGO_BIN_EXE_wdr-perf`), not just the library.

use std::path::Path;
use std::process::Command;
use wdr_metrics::trajectory;

fn write_conformance_artifact(dir: &Path, c_max: f64) {
    std::fs::create_dir_all(dir).unwrap();
    let json = format!(
        concat!(
            r#"{{"experiment":"conformance_envelope","samples":8,"passed":true,"#,
            r#""meta":{{"schema_version":1,"commit":"selfcheck","#,
            r#""recorded_at_utc":"2026-08-07T00:00:00Z","host_threads":4,"seeds":[0,1,2,3]}},"#,
            r#""regimes":[{{"regime":"QuantumWeighted|sqrt-nD|small-w","kind":"QuantumWeighted","#,
            r#""samples":8,"c_min":0.4,"c_mean":1.1,"c_max":{c_max},"ceiling":1000000000.0,"#,
            r#""passed":true}}]}}"#
        ),
        c_max = c_max
    );
    std::fs::write(dir.join("BENCH_conformance.json"), json).unwrap();
}

fn wdr_perf(args: &[&str], cwd: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_wdr-perf"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn wdr-perf")
}

#[test]
fn compare_gates_a_synthetic_regression_and_passes_identical_reruns() {
    let root = std::env::temp_dir().join(format!("wdr-perf-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let bench_dir = root.join("experiments");
    let trajectory_path = root.join("trajectory.jsonl");
    let traj = trajectory_path.to_str().unwrap().to_string();
    let dir = bench_dir.to_str().unwrap().to_string();

    // Record a pinned baseline with c_max = 3.0.
    write_conformance_artifact(&bench_dir, 3.0);
    let out = wdr_perf(
        &["record", "--dir", &dir, "--trajectory", &traj, "--pin"],
        &root,
    );
    assert!(out.status.success(), "record failed: {out:?}");
    let rows = trajectory::load_rows(&trajectory_path).unwrap();
    assert_eq!(rows.len(), 1);
    assert!(rows[0].pinned);
    assert_eq!(
        rows[0].metrics["conformance.QuantumWeighted|sqrt-nD|small-w.c_max"],
        3.0
    );

    // Identical artifacts → the gate passes (exit 0).
    let out = wdr_perf(&["compare", "--dir", &dir, "--trajectory", &traj], &root);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "identical re-run must pass the gate:\n{stdout}"
    );
    assert!(stdout.contains("GATE PASS"), "{stdout}");

    // `record --dry-run` prints a parseable row without appending.
    let out = wdr_perf(
        &["record", "--dir", &dir, "--trajectory", &traj, "--dry-run"],
        &root,
    );
    assert!(out.status.success());
    let printed = String::from_utf8_lossy(&out.stdout);
    trajectory::TrajectoryRow::from_json(printed.trim()).expect("dry-run row parses");
    assert_eq!(trajectory::load_rows(&trajectory_path).unwrap().len(), 1);

    // Inject a 20% regression on the gated envelope constant → exit nonzero.
    write_conformance_artifact(&bench_dir, 3.6);
    let out = wdr_perf(&["compare", "--dir", &dir, "--trajectory", &traj], &root);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        !out.status.success(),
        "20% c_max regression must fail the 15% gate:\n{stdout}"
    );
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("GATE FAIL"), "{stdout}");

    // A regression below the threshold (10% < 15%) still passes.
    write_conformance_artifact(&bench_dir, 3.3);
    let out = wdr_perf(&["compare", "--dir", &dir, "--trajectory", &traj], &root);
    assert!(
        out.status.success(),
        "10% drift must stay within the 15% gate"
    );

    // Widening the threshold un-gates the 20% regression.
    write_conformance_artifact(&bench_dir, 3.6);
    let out = wdr_perf(
        &[
            "compare",
            "--dir",
            &dir,
            "--trajectory",
            &traj,
            "--threshold",
            "25",
        ],
        &root,
    );
    assert!(
        out.status.success(),
        "25% threshold must tolerate a 20% drift"
    );

    let _ = std::fs::remove_dir_all(&root);
}

fn write_serve_artifact(dir: &Path, hit_rate: f64) {
    std::fs::create_dir_all(dir).unwrap();
    let json = format!(
        concat!(
            r#"{{"experiment":"serve_load","#,
            r#""meta":{{"schema_version":1,"commit":"selfcheck","#,
            r#""recorded_at_utc":"2026-08-07T00:00:00Z","host_threads":4,"seeds":[9]}},"#,
            r#""rows":[{{"workers":4,"mix":"repeat","qps":1000.0,"p50_us":700.0,"#,
            r#""p99_us":2100.0,"hit_rate":{hit_rate}}}]}}"#
        ),
        hit_rate = hit_rate
    );
    std::fs::write(dir.join("BENCH_serve.json"), json).unwrap();
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("wdr-perf-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// A pinned row unions every experiment ever recorded; a later run that
/// regenerates only a subset must *warn* about the missing metrics, not
/// fail the gate.
#[test]
fn baseline_metric_missing_from_rerun_warns_but_passes() {
    let root = temp_root("missing");
    let bench_dir = root.join("experiments");
    let traj = root.join("trajectory.jsonl");
    let traj = traj.to_str().unwrap().to_string();
    let dir = bench_dir.to_str().unwrap().to_string();

    // Baseline carries both the conformance envelope and the serve cache.
    write_conformance_artifact(&bench_dir, 3.0);
    write_serve_artifact(&bench_dir, 0.95);
    let out = wdr_perf(
        &["record", "--dir", &dir, "--trajectory", &traj, "--pin"],
        &root,
    );
    assert!(out.status.success(), "record failed: {out:?}");

    // The re-run only regenerated the conformance artifact.
    std::fs::remove_file(bench_dir.join("BENCH_serve.json")).unwrap();
    let out = wdr_perf(&["compare", "--dir", &dir, "--trajectory", &traj], &root);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "missing baseline metric must not fail the gate:\n{stdout}"
    );
    assert!(stdout.contains("WARNING"), "{stdout}");
    assert!(stdout.contains("skipped"), "{stdout}");
    assert!(stdout.contains("e10.w4.repeat.hit_rate"), "{stdout}");
    assert!(stdout.contains("GATE PASS"), "{stdout}");

    let _ = std::fs::remove_dir_all(&root);
}

/// An artifact with a name no extractor knows contributes its embedded
/// `metrics` pairs (and its fingerprint) instead of being rejected — the
/// extractor is forward-compatible with future experiments.
#[test]
fn unknown_bench_artifact_contributes_embedded_metrics_only() {
    let root = temp_root("unknown");
    let bench_dir = root.join("experiments");
    std::fs::create_dir_all(&bench_dir).unwrap();
    let traj_path = root.join("trajectory.jsonl");
    let traj = traj_path.to_str().unwrap().to_string();
    let dir = bench_dir.to_str().unwrap().to_string();

    std::fs::write(
        bench_dir.join("BENCH_bogus.json"),
        concat!(
            r#"{"experiment":"from_the_future","rows":[{"alpha":1.0,"beta":2.0}],"#,
            r#""meta":{"schema_version":1,"commit":"selfcheck","#,
            r#""recorded_at_utc":"2026-08-07T00:00:00Z","host_threads":1,"seeds":[3]},"#,
            r#""metrics":[["bogus.widget.count",5.0],["bogus.secs_per_run",0.25]]}"#
        ),
    )
    .unwrap();
    let out = wdr_perf(
        &["record", "--dir", &dir, "--trajectory", &traj, "--pin"],
        &root,
    );
    assert!(out.status.success(), "record failed: {out:?}");
    let rows = trajectory::load_rows(&traj_path).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].metrics["bogus.widget.count"], 5.0);
    assert_eq!(rows[0].metrics["bogus.secs_per_run"], 0.25);
    assert!(
        !rows[0].metrics.contains_key("alpha"),
        "unknown row fields are not guessed into metrics"
    );
    assert!(rows[0].artifacts.contains_key("BENCH_bogus.json"));

    // And the gate still runs end-to-end over it.
    let out = wdr_perf(&["compare", "--dir", &dir, "--trajectory", &traj], &root);
    assert!(
        out.status.success(),
        "compare over unknown artifact: {out:?}"
    );

    let _ = std::fs::remove_dir_all(&root);
}

/// `compare` against an empty (or absent) trajectory is a usage error:
/// exit 2 with a message telling the user to pin a baseline first.
#[test]
fn compare_with_empty_trajectory_is_a_usage_error() {
    let root = temp_root("empty");
    let bench_dir = root.join("experiments");
    write_conformance_artifact(&bench_dir, 3.0);
    let traj_path = root.join("trajectory.jsonl");
    std::fs::write(&traj_path, "").unwrap();
    let traj = traj_path.to_str().unwrap().to_string();
    let dir = bench_dir.to_str().unwrap().to_string();

    let out = wdr_perf(&["compare", "--dir", &dir, "--trajectory", &traj], &root);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(
        out.status.code(),
        Some(2),
        "empty trajectory must be a usage error (exit 2):\n{stderr}"
    );
    assert!(stderr.contains("no pinned row"), "{stderr}");
    assert!(stderr.contains("--pin"), "{stderr}");

    let _ = std::fs::remove_dir_all(&root);
}

/// The gate is direction-aware: a *drop* in a higher-is-better metric
/// (cache hit rate) regresses, while a *rise* of the same magnitude is an
/// improvement and passes.
#[test]
fn gate_is_direction_aware_for_higher_is_better_metrics() {
    let root = temp_root("direction");
    let bench_dir = root.join("experiments");
    let traj = root.join("trajectory.jsonl");
    let traj = traj.to_str().unwrap().to_string();
    let dir = bench_dir.to_str().unwrap().to_string();

    write_serve_artifact(&bench_dir, 0.90);
    let out = wdr_perf(
        &["record", "--dir", &dir, "--trajectory", &traj, "--pin"],
        &root,
    );
    assert!(out.status.success(), "record failed: {out:?}");

    // hit_rate 0.90 → 0.72 is a 20% drop in a higher-is-better gated
    // metric: regression.
    write_serve_artifact(&bench_dir, 0.72);
    let out = wdr_perf(&["compare", "--dir", &dir, "--trajectory", &traj], &root);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        !out.status.success(),
        "20% hit-rate drop must fail the gate:\n{stdout}"
    );
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("e10.w4.repeat.hit_rate"), "{stdout}");

    // The symmetric *improvement* must pass — higher is better.
    write_serve_artifact(&bench_dir, 0.99);
    let out = wdr_perf(&["compare", "--dir", &dir, "--trajectory", &traj], &root);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "a hit-rate improvement must never fail the gate:\n{stdout}"
    );
    assert!(stdout.contains("GATE PASS"), "{stdout}");

    let _ = std::fs::remove_dir_all(&root);
}
