//! End-to-end self-check of the `wdr-perf` gate (ISSUE 6 acceptance):
//! `compare` must exit **zero** on an identical re-run and **non-zero**
//! once a gated metric regresses by ≥ 15% — exercised through the real
//! binary (`CARGO_BIN_EXE_wdr-perf`), not just the library.

use std::path::Path;
use std::process::Command;
use wdr_metrics::trajectory;

fn write_conformance_artifact(dir: &Path, c_max: f64) {
    std::fs::create_dir_all(dir).unwrap();
    let json = format!(
        concat!(
            r#"{{"experiment":"conformance_envelope","samples":8,"passed":true,"#,
            r#""meta":{{"schema_version":1,"commit":"selfcheck","#,
            r#""recorded_at_utc":"2026-08-07T00:00:00Z","host_threads":4,"seeds":[0,1,2,3]}},"#,
            r#""regimes":[{{"regime":"QuantumWeighted|sqrt-nD|small-w","kind":"QuantumWeighted","#,
            r#""samples":8,"c_min":0.4,"c_mean":1.1,"c_max":{c_max},"ceiling":1000000000.0,"#,
            r#""passed":true}}]}}"#
        ),
        c_max = c_max
    );
    std::fs::write(dir.join("BENCH_conformance.json"), json).unwrap();
}

fn wdr_perf(args: &[&str], cwd: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_wdr-perf"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn wdr-perf")
}

#[test]
fn compare_gates_a_synthetic_regression_and_passes_identical_reruns() {
    let root = std::env::temp_dir().join(format!("wdr-perf-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let bench_dir = root.join("experiments");
    let trajectory_path = root.join("trajectory.jsonl");
    let traj = trajectory_path.to_str().unwrap().to_string();
    let dir = bench_dir.to_str().unwrap().to_string();

    // Record a pinned baseline with c_max = 3.0.
    write_conformance_artifact(&bench_dir, 3.0);
    let out = wdr_perf(
        &["record", "--dir", &dir, "--trajectory", &traj, "--pin"],
        &root,
    );
    assert!(out.status.success(), "record failed: {out:?}");
    let rows = trajectory::load_rows(&trajectory_path).unwrap();
    assert_eq!(rows.len(), 1);
    assert!(rows[0].pinned);
    assert_eq!(
        rows[0].metrics["conformance.QuantumWeighted|sqrt-nD|small-w.c_max"],
        3.0
    );

    // Identical artifacts → the gate passes (exit 0).
    let out = wdr_perf(&["compare", "--dir", &dir, "--trajectory", &traj], &root);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        out.status.success(),
        "identical re-run must pass the gate:\n{stdout}"
    );
    assert!(stdout.contains("GATE PASS"), "{stdout}");

    // `record --dry-run` prints a parseable row without appending.
    let out = wdr_perf(
        &["record", "--dir", &dir, "--trajectory", &traj, "--dry-run"],
        &root,
    );
    assert!(out.status.success());
    let printed = String::from_utf8_lossy(&out.stdout);
    trajectory::TrajectoryRow::from_json(printed.trim()).expect("dry-run row parses");
    assert_eq!(trajectory::load_rows(&trajectory_path).unwrap().len(), 1);

    // Inject a 20% regression on the gated envelope constant → exit nonzero.
    write_conformance_artifact(&bench_dir, 3.6);
    let out = wdr_perf(&["compare", "--dir", &dir, "--trajectory", &traj], &root);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        !out.status.success(),
        "20% c_max regression must fail the 15% gate:\n{stdout}"
    );
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("GATE FAIL"), "{stdout}");

    // A regression below the threshold (10% < 15%) still passes.
    write_conformance_artifact(&bench_dir, 3.3);
    let out = wdr_perf(&["compare", "--dir", &dir, "--trajectory", &traj], &root);
    assert!(
        out.status.success(),
        "10% drift must stay within the 15% gate"
    );

    // Widening the threshold un-gates the 20% regression.
    write_conformance_artifact(&bench_dir, 3.6);
    let out = wdr_perf(
        &[
            "compare",
            "--dir",
            &dir,
            "--trajectory",
            &traj,
            "--threshold",
            "25",
        ],
        &root,
    );
    assert!(
        out.status.success(),
        "25% threshold must tolerate a 20% drift"
    );

    let _ = std::fs::remove_dir_all(&root);
}
