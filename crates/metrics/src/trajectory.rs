//! Checked-in perf trajectory: canonical-JSON rows, artifact hashing, and
//! the regression gate behind `wdr-perf record` / `compare`.
//!
//! A **trajectory row** summarizes one benchmark run: the [`RunMeta`]
//! provenance header, an FNV-1a hash per `BENCH_*.json` artifact, and a
//! flat name → value map of every extracted metric. Rows are appended to
//! `perf/trajectory.jsonl` (one canonical-JSON object per line); rows
//! recorded with `--pin` become the baseline that `wdr-perf compare` gates
//! later runs against.
//!
//! Gating is deliberately conservative: only *machine-independent* metrics
//! (envelope constants `.c_max`, SumSweep `.sweep_fraction`, parallel
//! `.speedup` ratios, cache `.hit_rate`s) fail the gate; raw timings and
//! throughputs are machine-dependent and appear in the delta table as
//! informational rows. Metrics present in the baseline but absent from the
//! candidate are *skipped with a warning* rather than failed: a pinned row
//! unions every experiment ever recorded, while any given run regenerates
//! only a subset of the artifacts (CI's perf lane runs E8/E9/conformance
//! but not the serving benchmark, for example).

use crate::provenance::RunMeta;
use crate::snapshot::write_f64;
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::Path;

/// Default relative regression threshold (15%), per-metric, on gated
/// metrics only.
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// 64-bit FNV-1a over `bytes` — the artifact fingerprint (no cryptographic
/// hash is vendored in-tree; collision resistance is not a requirement for
/// "did this artifact change" bookkeeping).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// [`fnv1a_64`] as fixed-width lowercase hex.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a_64(bytes))
}

/// One line of `perf/trajectory.jsonl`.
#[derive(Clone, Debug, PartialEq)]
pub struct TrajectoryRow {
    /// Provenance of the run.
    pub meta: RunMeta,
    /// Whether this row is a comparison baseline.
    pub pinned: bool,
    /// Artifact file name → FNV-1a hex fingerprint.
    pub artifacts: BTreeMap<String, String>,
    /// Flat metric name → value map extracted from the artifacts.
    pub metrics: BTreeMap<String, f64>,
}

impl TrajectoryRow {
    /// Canonical JSON: top-level keys in sorted order (`artifacts`, `meta`,
    /// `metrics`, `pinned`), map keys in `BTreeMap` order, no whitespace.
    /// Equal rows serialize to identical bytes.
    pub fn to_canonical_json(&self) -> String {
        use serde::Serialize as _;
        let mut out = String::from("{\"artifacts\":{");
        for (i, (name, hash)) in self.artifacts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_string(name, &mut out);
            out.push(':');
            serde::write_json_string(hash, &mut out);
        }
        out.push_str("},\"meta\":");
        self.meta.serialize_json(&mut out);
        out.push_str(",\"metrics\":{");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_string(name, &mut out);
            out.push(':');
            write_f64(*value, &mut out);
        }
        out.push_str("},\"pinned\":");
        out.push_str(if self.pinned { "true" } else { "false" });
        out.push('}');
        out
    }

    /// Parses one trajectory line back into a row.
    ///
    /// # Errors
    ///
    /// Describes the first malformed field.
    pub fn from_json(line: &str) -> Result<TrajectoryRow, String> {
        let v = serde_json::from_str(line).map_err(|e| format!("trajectory row: {e}"))?;
        let meta_v = v.get("meta").ok_or("trajectory row: missing `meta`")?;
        let str_field = |obj: &Value, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("trajectory row: missing string `{key}`"))
        };
        let meta = RunMeta {
            schema_version: meta_v
                .get("schema_version")
                .and_then(Value::as_u64)
                .ok_or("trajectory row: missing `schema_version`")?
                as u32,
            commit: str_field(meta_v, "commit")?,
            recorded_at_utc: str_field(meta_v, "recorded_at_utc")?,
            host_threads: meta_v
                .get("host_threads")
                .and_then(Value::as_u64)
                .ok_or("trajectory row: missing `host_threads`")?
                as usize,
            seeds: meta_v
                .get("seeds")
                .and_then(Value::as_array)
                .ok_or("trajectory row: missing `seeds`")?
                .iter()
                .map(|s| s.as_u64().ok_or("trajectory row: non-integer seed"))
                .collect::<Result<Vec<u64>, _>>()?,
        };
        let artifacts = v
            .get("artifacts")
            .and_then(Value::as_object)
            .ok_or("trajectory row: missing `artifacts`")?
            .iter()
            .map(|(k, h)| {
                h.as_str()
                    .map(|h| (k.clone(), h.to_string()))
                    .ok_or("trajectory row: non-string artifact hash")
            })
            .collect::<Result<BTreeMap<_, _>, _>>()?;
        let metrics = v
            .get("metrics")
            .and_then(Value::as_object)
            .ok_or("trajectory row: missing `metrics`")?
            .iter()
            .map(|(k, n)| {
                n.as_f64()
                    .map(|n| (k.clone(), n))
                    .ok_or("trajectory row: non-numeric metric")
            })
            .collect::<Result<BTreeMap<_, _>, _>>()?;
        let pinned = v.get("pinned").and_then(Value::as_bool).unwrap_or(false);
        Ok(TrajectoryRow {
            meta,
            pinned,
            artifacts,
            metrics,
        })
    }
}

/// Which way "better" points for a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Smaller values are better (constants, fractions, timings).
    LowerIsBetter,
    /// Larger values are better (speedups, throughputs, sample counts).
    HigherIsBetter,
}

/// Direction of `name`, by suffix convention.
pub fn direction(name: &str) -> Direction {
    const HIGHER: [&str; 11] = [
        ".speedup",
        ".batch_speedup",
        ".rounds_per_sec",
        ".nodes_per_sec",
        ".edges_per_sec",
        ".scenarios_per_sec",
        ".load_ratio",
        ".samples",
        ".count",
        ".qps",
        ".hit_rate",
    ];
    if HIGHER.iter().any(|s| name.ends_with(s)) {
        Direction::HigherIsBetter
    } else {
        Direction::LowerIsBetter
    }
}

/// Whether `name` participates in the regression gate. Only
/// machine-independent metrics do: fitted envelope constants, SumSweep
/// sweep fractions, parallel speedup ratios (including the batch engine's
/// corpus speedup, `.batch_speedup` — note the `_` keeps it out of the
/// plain `.speedup` suffix), and cache hit rates.
pub fn gated(name: &str) -> bool {
    name.ends_with(".c_max")
        || name.ends_with(".sweep_fraction")
        || name.ends_with(".speedup")
        || name.ends_with(".batch_speedup")
        || name.ends_with(".hit_rate")
}

/// One metric's baseline/current pair in a comparison.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change, oriented so **positive = worse** (regression
    /// fraction); `+0.20` means 20% worse than baseline.
    pub worse_by: f64,
    /// Whether this metric participates in the gate.
    pub gated: bool,
    /// `gated && worse_by > threshold`.
    pub regressed: bool,
}

/// The outcome of `compare`: per-metric deltas plus structural findings.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// Threshold the gate used.
    pub threshold: f64,
    /// Baseline commit (for rendering).
    pub baseline_commit: String,
    /// Baseline timestamp (for rendering).
    pub baseline_recorded_at: String,
    /// Every metric present in both rows.
    pub deltas: Vec<Delta>,
    /// Metrics present in the baseline but absent now — skipped with a
    /// warning, not failed: the pinned row unions every experiment ever
    /// recorded while a given run regenerates only a subset of artifacts.
    pub missing: Vec<String>,
    /// Metrics present now but not in the baseline (informational).
    pub added: Vec<String>,
    /// Artifacts whose fingerprint changed (informational; timings differ
    /// run to run by construction).
    pub changed_artifacts: Vec<String>,
    /// Set when the rows carry different schema versions (gate failure).
    pub schema_mismatch: Option<String>,
}

impl CompareReport {
    /// The regressions that fail the gate.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// `true` when the gate passes. Missing metrics only warn (see
    /// [`CompareReport::missing`]); they never fail the gate.
    pub fn passed(&self) -> bool {
        self.schema_mismatch.is_none() && self.deltas.iter().all(|d| !d.regressed)
    }

    /// Renders the delta table (and any structural findings) as markdown.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "## Perf delta vs `{}` ({})\n",
            short_commit(&self.baseline_commit),
            self.baseline_recorded_at
        )
        .unwrap();
        if let Some(mismatch) = &self.schema_mismatch {
            writeln!(out, "**SCHEMA MISMATCH**: {mismatch}\n").unwrap();
        }
        writeln!(out, "| metric | baseline | current | worse by | status |").unwrap();
        writeln!(out, "|---|---:|---:|---:|---|").unwrap();
        for d in &self.deltas {
            let status = if d.regressed {
                "**REGRESSED**"
            } else if d.gated {
                "ok"
            } else {
                "info"
            };
            writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                d.name,
                fmt_value(d.baseline),
                fmt_value(d.current),
                fmt_percent(d.worse_by),
                status
            )
            .unwrap();
        }
        for name in &self.missing {
            writeln!(
                out,
                "\nWARNING: metric `{name}` present in baseline but absent from \
                 this run — skipped"
            )
            .unwrap();
        }
        if !self.added.is_empty() {
            writeln!(
                out,
                "\nnew metrics (not in baseline): {}",
                self.added.join(", ")
            )
            .unwrap();
        }
        if !self.changed_artifacts.is_empty() {
            writeln!(
                out,
                "\nartifacts with changed fingerprints: {}",
                self.changed_artifacts.join(", ")
            )
            .unwrap();
        }
        let regressions = self.regressions();
        if self.passed() {
            writeln!(
                out,
                "\nGATE PASS: no gated metric regressed beyond {:.0}%",
                self.threshold * 100.0
            )
            .unwrap();
        } else {
            writeln!(
                out,
                "\nGATE FAIL: {} gated metric(s) regressed beyond {:.0}%{}",
                regressions.len(),
                self.threshold * 100.0,
                if self.schema_mismatch.is_none() {
                    ""
                } else {
                    " (or structural failure above)"
                }
            )
            .unwrap();
        }
        out
    }
}

fn short_commit(commit: &str) -> &str {
    if commit.len() >= 12 && commit.bytes().all(|b| b.is_ascii_hexdigit()) {
        &commit[..12]
    } else {
        commit
    }
}

fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let abs = v.abs();
    if (0.001..1e7).contains(&abs) {
        let s = format!("{v:.4}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        s.to_string()
    } else {
        format!("{v:.3e}")
    }
}

fn fmt_percent(worse_by: f64) -> String {
    if worse_by.is_infinite() {
        return "∞".to_string();
    }
    format!("{:+.1}%", worse_by * 100.0)
}

/// Compares `current` against the pinned `baseline` with a per-metric
/// relative `threshold` on gated metrics.
pub fn compare(baseline: &TrajectoryRow, current: &TrajectoryRow, threshold: f64) -> CompareReport {
    let schema_mismatch =
        (baseline.meta.schema_version != current.meta.schema_version).then(|| {
            format!(
                "baseline schema v{} vs current v{} — re-pin the trajectory before gating",
                baseline.meta.schema_version, current.meta.schema_version
            )
        });
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for (name, &base) in &baseline.metrics {
        match current.metrics.get(name) {
            Some(&cur) => {
                let dir = direction(name);
                let worse_by = if base == 0.0 {
                    if cur == base {
                        0.0
                    } else {
                        match dir {
                            Direction::LowerIsBetter => f64::INFINITY,
                            Direction::HigherIsBetter => -1.0,
                        }
                    }
                } else {
                    match dir {
                        Direction::LowerIsBetter => (cur - base) / base.abs(),
                        Direction::HigherIsBetter => (base - cur) / base.abs(),
                    }
                };
                let is_gated = gated(name);
                deltas.push(Delta {
                    name: name.clone(),
                    baseline: base,
                    current: cur,
                    worse_by,
                    gated: is_gated,
                    regressed: is_gated && worse_by > threshold,
                });
            }
            None => missing.push(name.clone()),
        }
    }
    let added = current
        .metrics
        .keys()
        .filter(|k| !baseline.metrics.contains_key(*k))
        .cloned()
        .collect();
    let changed_artifacts = baseline
        .artifacts
        .iter()
        .filter(|(name, hash)| current.artifacts.get(*name).is_some_and(|h| h != *hash))
        .map(|(name, _)| name.clone())
        .collect();
    CompareReport {
        threshold,
        baseline_commit: baseline.meta.commit.clone(),
        baseline_recorded_at: baseline.meta.recorded_at_utc.clone(),
        deltas,
        missing,
        added,
        changed_artifacts,
        schema_mismatch,
    }
}

/// Extracts trajectory metrics from one parsed `BENCH_*.json` artifact.
/// `stem` is the file name without extension (e.g. `BENCH_step_engine`).
/// Unknown artifacts contribute only their embedded `metrics` pairs (if
/// any), keeping the extractor forward-compatible.
pub fn extract_metrics(stem: &str, v: &Value, out: &mut BTreeMap<String, f64>) {
    let rows = v.get("rows").and_then(Value::as_array);
    match stem {
        "BENCH_step_engine" => {
            for row in rows.into_iter().flatten() {
                let (Some(n), Some(mode), Some(threads)) = (
                    row.get("n").and_then(Value::as_u64),
                    row.get("mode").and_then(Value::as_str),
                    row.get("threads").and_then(Value::as_u64),
                ) else {
                    continue;
                };
                let prefix = format!("e8.n{n}.{mode}.t{threads}");
                copy_num(
                    row,
                    "rounds_per_sec",
                    &format!("{prefix}.rounds_per_sec"),
                    out,
                );
                copy_num(row, "secs_per_run", &format!("{prefix}.secs_per_run"), out);
                copy_num(
                    row,
                    "speedup_vs_sequential",
                    &format!("{prefix}.speedup"),
                    out,
                );
            }
        }
        "BENCH_metrics_kernels" => {
            for row in rows.into_iter().flatten() {
                let (Some(n), Some(density), Some(w), Some(kernel)) = (
                    row.get("n").and_then(Value::as_u64),
                    row.get("density").and_then(Value::as_str),
                    row.get("max_weight").and_then(Value::as_u64),
                    row.get("kernel").and_then(Value::as_str),
                ) else {
                    continue;
                };
                let prefix = format!("e9.n{n}.{density}.w{w}.{kernel}");
                copy_num(
                    row,
                    "sweep_fraction",
                    &format!("{prefix}.sweep_fraction"),
                    out,
                );
                copy_num(row, "secs_per_run", &format!("{prefix}.secs_per_run"), out);
                copy_num(row, "speedup_vs_brute", &format!("{prefix}.speedup"), out);
            }
        }
        "BENCH_serve" => {
            for row in rows.into_iter().flatten() {
                let (Some(workers), Some(mix)) = (
                    row.get("workers").and_then(Value::as_u64),
                    row.get("mix").and_then(Value::as_str),
                ) else {
                    continue;
                };
                let prefix = format!("e10.w{workers}.{mix}");
                copy_num(row, "qps", &format!("{prefix}.qps"), out);
                copy_num(row, "p50_us", &format!("{prefix}.p50_us"), out);
                copy_num(row, "p99_us", &format!("{prefix}.p99_us"), out);
                copy_num(row, "hit_rate", &format!("{prefix}.hit_rate"), out);
            }
        }
        "BENCH_giant" => {
            for row in rows.into_iter().flatten() {
                let (Some(family), Some(n), Some(kernel)) = (
                    row.get("family").and_then(Value::as_str),
                    row.get("n").and_then(Value::as_u64),
                    row.get("kernel").and_then(Value::as_str),
                ) else {
                    continue;
                };
                let prefix = format!("e11.{family}.n{n}");
                // Per-(family, n) pipeline metrics repeat on every kernel
                // row; the map insert dedups them.
                copy_num(row, "load_ms", &format!("{prefix}.load_ms"), out);
                copy_num(row, "load_ratio", &format!("{prefix}.load_ratio"), out);
                copy_num(
                    row,
                    "sweep_fraction",
                    &format!("{prefix}.{kernel}.sweep_fraction"),
                    out,
                );
                copy_num(
                    row,
                    "solve_secs",
                    &format!("{prefix}.{kernel}.solve_secs"),
                    out,
                );
                copy_num(
                    row,
                    "nodes_per_sec",
                    &format!("{prefix}.{kernel}.nodes_per_sec"),
                    out,
                );
            }
        }
        "BENCH_batch" => {
            // E12: lanes == 0 is the sequential reference row. The gated
            // headline (e12.batch_speedup) and lane count arrive via the
            // embedded `metrics` pairs; per-row figures are informational.
            for row in rows.into_iter().flatten() {
                let Some(lanes) = row.get("lanes").and_then(Value::as_u64) else {
                    continue;
                };
                let prefix = if lanes == 0 {
                    "e12.seq".to_string()
                } else {
                    format!("e12.lanes{lanes}")
                };
                copy_num(row, "wall_secs", &format!("{prefix}.wall_secs"), out);
                copy_num(
                    row,
                    "scenarios_per_sec",
                    &format!("{prefix}.scenarios_per_sec"),
                    out,
                );
            }
        }
        "BENCH_ablate" => {
            // E13: one row per ablation job, keyed by the swept factors.
            // Ratios and sandwich flags are sandwich-correctness evidence,
            // not machine performance — informational rows; the headline
            // aggregates (job/violation counts, worst ratio) arrive via
            // the embedded `metrics` pairs.
            for row in rows.into_iter().flatten() {
                let (Some(eps), Some(fault_rate), Some(w)) = (
                    row.get("eps").and_then(Value::as_f64),
                    row.get("fault_rate").and_then(Value::as_f64),
                    row.get("max_weight").and_then(Value::as_u64),
                ) else {
                    continue;
                };
                let prefix = format!("e13.eps{eps:?}.f{fault_rate:?}.w{w}");
                copy_num(row, "ratio", &format!("{prefix}.ratio"), out);
                copy_num(row, "hard_ok", &format!("{prefix}.hard_ok"), out);
                copy_num(row, "soft_ok", &format!("{prefix}.soft_ok"), out);
                copy_num(row, "failed", &format!("{prefix}.failed"), out);
            }
        }
        "BENCH_conformance" => {
            for regime in v
                .get("regimes")
                .and_then(Value::as_array)
                .into_iter()
                .flatten()
            {
                let Some(name) = regime.get("regime").and_then(Value::as_str) else {
                    continue;
                };
                let prefix = format!("conformance.{name}");
                copy_num(regime, "c_max", &format!("{prefix}.c_max"), out);
                copy_num(regime, "c_mean", &format!("{prefix}.c_mean"), out);
                copy_num(regime, "samples", &format!("{prefix}.samples"), out);
            }
        }
        _ => {}
    }
    // Embedded registry snapshots: `"metrics": [["name", value], ...]` —
    // names are already fully qualified by the emitter.
    for pair in v
        .get("metrics")
        .and_then(Value::as_array)
        .into_iter()
        .flatten()
    {
        if let Some([name, value]) = pair.as_array().map(Vec::as_slice) {
            if let (Some(name), Some(value)) = (name.as_str(), value.as_f64()) {
                out.insert(name.to_string(), value);
            }
        }
    }
}

fn copy_num(row: &Value, field: &str, key: &str, out: &mut BTreeMap<String, f64>) {
    if let Some(value) = row.get(field).and_then(Value::as_f64) {
        out.insert(key.to_string(), value);
    }
}

/// Builds an (unpinned) trajectory row from every `BENCH_*.json` under
/// `dir`: hashes each artifact, extracts its metrics, and unions the seed
/// sets from the embedded `meta` headers.
///
/// # Errors
///
/// When `dir` holds no artifacts or one fails to parse.
pub fn collect_dir(dir: &Path) -> Result<TrajectoryRow, String> {
    let mut artifacts = BTreeMap::new();
    let mut metrics = BTreeMap::new();
    let mut seeds = BTreeSet::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    names.sort_unstable();
    for name in &names {
        let path = dir.join(name);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        artifacts.insert(name.clone(), fnv1a_hex(text.as_bytes()));
        let v = serde_json::from_str(&text).map_err(|e| format!("parse {name}: {e}"))?;
        let stem = name.trim_end_matches(".json");
        extract_metrics(stem, &v, &mut metrics);
        for seed in v
            .get("meta")
            .and_then(|m| m.get("seeds"))
            .and_then(Value::as_array)
            .into_iter()
            .flatten()
        {
            if let Some(seed) = seed.as_u64() {
                seeds.insert(seed);
            }
        }
    }
    if artifacts.is_empty() {
        return Err(format!(
            "no BENCH_*.json artifacts under {} — run the experiments first \
             (e.g. `cargo run --release -p wdr-bench --bin tables -- --quick --exp e8`)",
            dir.display()
        ));
    }
    let seeds: Vec<u64> = seeds.into_iter().collect();
    Ok(TrajectoryRow {
        meta: RunMeta::capture(&seeds),
        pinned: false,
        artifacts,
        metrics,
    })
}

/// Loads every row of a trajectory file (empty when the file is absent).
///
/// # Errors
///
/// When a present file fails to read or a line fails to parse.
pub fn load_rows(path: &Path) -> Result<Vec<TrajectoryRow>, String> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            TrajectoryRow::from_json(line)
                .map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))
        })
        .collect()
}

/// The most recent pinned row — the comparison baseline.
pub fn last_pinned(rows: &[TrajectoryRow]) -> Option<&TrajectoryRow> {
    rows.iter().rev().find(|r| r.pinned)
}

/// Appends `row` as one canonical-JSON line, creating parents as needed.
///
/// # Errors
///
/// Propagates filesystem errors as strings.
pub fn append_row(path: &Path, row: &TrajectoryRow) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    writeln!(file, "{}", row.to_canonical_json())
        .map_err(|e| format!("write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(metrics: &[(&str, f64)], pinned: bool) -> TrajectoryRow {
        TrajectoryRow {
            meta: RunMeta {
                schema_version: crate::provenance::SCHEMA_VERSION,
                commit: "0123456789abcdef0123456789abcdef01234567".into(),
                recorded_at_utc: "2026-08-07T00:00:00Z".into(),
                host_threads: 8,
                seeds: vec![1, 2],
            },
            pinned,
            artifacts: BTreeMap::from([(
                "BENCH_conformance.json".to_string(),
                "deadbeefdeadbeef".to_string(),
            )]),
            metrics: metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn canonical_json_round_trips() {
        let r = row(
            &[
                ("conformance.x.c_max", 3.5),
                ("e8.n48.seq.t1.rounds_per_sec", 123.0),
            ],
            true,
        );
        let json = r.to_canonical_json();
        let back = TrajectoryRow::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_canonical_json(), json);
    }

    #[test]
    fn identical_rows_pass_the_gate() {
        let base = row(
            &[
                ("a.c_max", 3.0),
                ("b.speedup", 4.0),
                ("t.secs_per_run", 0.5),
            ],
            true,
        );
        let report = compare(&base, &base, DEFAULT_THRESHOLD);
        assert!(report.passed());
        assert!(report.regressions().is_empty());
        assert!(report.to_markdown().contains("GATE PASS"));
    }

    #[test]
    fn injected_regression_fails_the_gate() {
        let base = row(&[("a.c_max", 3.0), ("b.speedup", 4.0)], true);
        // c_max grows 20% (> 15% threshold, lower-is-better).
        let cur = row(&[("a.c_max", 3.6), ("b.speedup", 4.0)], false);
        let report = compare(&base, &cur, DEFAULT_THRESHOLD);
        assert!(!report.passed());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "a.c_max");
        assert!((regs[0].worse_by - 0.2).abs() < 1e-12);
        assert!(report.to_markdown().contains("REGRESSED"));
    }

    #[test]
    fn speedup_drop_is_a_regression_but_timing_noise_is_not() {
        let base = row(&[("b.speedup", 4.0), ("t.secs_per_run", 0.5)], true);
        // Speedup collapses 50%; timing doubles (machine-dependent: info only).
        let cur = row(&[("b.speedup", 2.0), ("t.secs_per_run", 1.0)], false);
        let report = compare(&base, &cur, DEFAULT_THRESHOLD);
        assert_eq!(report.regressions().len(), 1);
        assert_eq!(report.regressions()[0].name, "b.speedup");
        let timing = report
            .deltas
            .iter()
            .find(|d| d.name == "t.secs_per_run")
            .unwrap();
        assert!(!timing.gated && !timing.regressed);
    }

    #[test]
    fn improvements_never_fail() {
        let base = row(&[("a.c_max", 3.0), ("b.speedup", 4.0)], true);
        let cur = row(&[("a.c_max", 1.0), ("b.speedup", 9.0)], false);
        assert!(compare(&base, &cur, DEFAULT_THRESHOLD).passed());
    }

    /// Metrics the candidate run did not regenerate (a pinned row unions
    /// every experiment; CI lanes run subsets) warn but never fail the gate.
    #[test]
    fn missing_baseline_metric_warns_but_passes() {
        let base = row(&[("a.c_max", 3.0), ("e10.w8.repeat.hit_rate", 0.97)], true);
        let cur = row(&[("a.c_max", 3.0)], false);
        let report = compare(&base, &cur, DEFAULT_THRESHOLD);
        assert!(report.passed(), "missing metrics must not fail the gate");
        assert_eq!(report.missing, vec!["e10.w8.repeat.hit_rate".to_string()]);
        let md = report.to_markdown();
        assert!(md.contains("WARNING"), "{md}");
        assert!(md.contains("skipped"), "{md}");
        assert!(md.contains("GATE PASS"), "{md}");
    }

    #[test]
    fn extractors_read_all_three_artifacts() {
        let mut out = BTreeMap::new();
        let e8 = serde_json::from_str(
            r#"{"rows":[{"n":48,"mode":"parallel","threads":4,
                "rounds_per_sec":100.5,"secs_per_run":0.01,"speedup_vs_sequential":2.5}],
                "metrics":[["e8.sim.rounds",60]]}"#,
        )
        .unwrap();
        extract_metrics("BENCH_step_engine", &e8, &mut out);
        assert_eq!(out["e8.n48.parallel.t4.speedup"], 2.5);
        assert_eq!(out["e8.sim.rounds"], 60.0);

        let e9 = serde_json::from_str(
            r#"{"rows":[{"n":512,"density":"sparse","max_weight":128,"kernel":"sumsweep",
                "sweeps":12,"sweep_fraction":0.023,"secs_per_run":0.5,"speedup_vs_brute":4.0}]}"#,
        )
        .unwrap();
        extract_metrics("BENCH_metrics_kernels", &e9, &mut out);
        assert_eq!(out["e9.n512.sparse.w128.sumsweep.sweep_fraction"], 0.023);
        assert!(gated("e9.n512.sparse.w128.sumsweep.sweep_fraction"));

        let conf = serde_json::from_str(
            r#"{"regimes":[{"regime":"quantum|low-D|unit-w","samples":9,
                "c_min":0.5,"c_mean":1.0,"c_max":2.0,"ceiling":30.0,"passed":true}]}"#,
        )
        .unwrap();
        extract_metrics("BENCH_conformance", &conf, &mut out);
        assert_eq!(out["conformance.quantum|low-D|unit-w.c_max"], 2.0);
        assert!(gated("conformance.quantum|low-D|unit-w.c_max"));
        assert_eq!(
            direction("conformance.quantum|low-D|unit-w.samples"),
            Direction::HigherIsBetter
        );

        let serve = serde_json::from_str(
            r#"{"rows":[{"workers":4,"mix":"repeat","clients":8,"requests":600,
                "qps":1200.5,"p50_us":800.0,"p99_us":2600.0,"hit_rate":0.97,"rejected":0}],
                "metrics":[["e10.scaling.speedup",3.8]]}"#,
        )
        .unwrap();
        extract_metrics("BENCH_serve", &serve, &mut out);
        assert_eq!(out["e10.w4.repeat.qps"], 1200.5);
        assert_eq!(out["e10.w4.repeat.hit_rate"], 0.97);
        assert_eq!(out["e10.scaling.speedup"], 3.8);
        assert!(gated("e10.w4.repeat.hit_rate"));
        assert!(gated("e10.scaling.speedup"));
        assert!(!gated("e10.w4.repeat.qps"), "raw qps is machine-dependent");
        assert_eq!(direction("e10.w4.repeat.qps"), Direction::HigherIsBetter);
        assert_eq!(direction("e10.w4.repeat.p99_us"), Direction::LowerIsBetter);

        let giant = serde_json::from_str(
            r#"{"rows":[{"family":"power_law","n":1000000,"edges":9899000,
                "gen_ms":2300.0,"load_ms":0.4,"load_ratio":5750.0,"kernel":"sumsweep",
                "sweeps":14,"sweep_fraction":0.000014,"solve_secs":2.1,
                "nodes_per_sec":6666666.0,"diameter":19,"radius":11}]}"#,
        )
        .unwrap();
        extract_metrics("BENCH_giant", &giant, &mut out);
        assert_eq!(out["e11.power_law.n1000000.load_ratio"], 5750.0);
        assert_eq!(
            out["e11.power_law.n1000000.sumsweep.sweep_fraction"],
            0.000014
        );
        assert_eq!(
            out["e11.power_law.n1000000.sumsweep.nodes_per_sec"],
            6666666.0
        );
        assert!(gated("e11.power_law.n1000000.sumsweep.sweep_fraction"));
        assert!(
            !gated("e11.power_law.n1000000.load_ratio"),
            "load ratio is machine-dependent: info only"
        );
        assert_eq!(
            direction("e11.power_law.n1000000.load_ratio"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction("e11.power_law.n1000000.sumsweep.nodes_per_sec"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction("e11.power_law.n1000000.load_ms"),
            Direction::LowerIsBetter
        );

        let batch = serde_json::from_str(
            r#"{"rows":[{"lanes":0,"wall_secs":10.0,"setup_secs":1.0,"execute_secs":9.0,
                "scenarios_per_sec":50.0,"speedup":1.0,"shared_setups":0},
                {"lanes":8,"wall_secs":1.6,"setup_secs":0.2,"execute_secs":1.4,
                "scenarios_per_sec":312.5,"speedup":6.25,"shared_setups":120}],
                "metrics":[["e12.batch_speedup",6.25],["e12.lane_count",8]]}"#,
        )
        .unwrap();
        extract_metrics("BENCH_batch", &batch, &mut out);
        assert_eq!(out["e12.seq.wall_secs"], 10.0);
        assert_eq!(out["e12.lanes8.wall_secs"], 1.6);
        assert_eq!(out["e12.lanes8.scenarios_per_sec"], 312.5);
        assert_eq!(out["e12.batch_speedup"], 6.25);
        assert_eq!(out["e12.lane_count"], 8.0);
        assert!(gated("e12.batch_speedup"), "headline speedup is gated");
        assert!(
            !gated("e12.lanes8.wall_secs") && !gated("e12.lane_count"),
            "raw wall times and lane counts are informational"
        );
        assert_eq!(direction("e12.batch_speedup"), Direction::HigherIsBetter);
        assert_eq!(
            direction("e12.lanes8.scenarios_per_sec"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction("e12.seq.wall_secs"), Direction::LowerIsBetter);

        let ablate = serde_json::from_str(
            r#"{"rows":[{"job":"job-0000","eps":0.08,"fault_rate":0.0,"max_weight":1,
                "ratio":1.0,"hard_ok":1.0,"soft_ok":1.0,"failed":0.0},
                {"job":"job-0003","eps":0.45,"fault_rate":0.04,"max_weight":4096,
                "failed":1.0}],
                "metrics":[["e13.jobs",18],["e13.violations",0],["e13.worst_ratio",1.07]]}"#,
        )
        .unwrap();
        extract_metrics("BENCH_ablate", &ablate, &mut out);
        assert_eq!(out["e13.eps0.08.f0.0.w1.ratio"], 1.0);
        assert_eq!(out["e13.eps0.08.f0.0.w1.hard_ok"], 1.0);
        assert_eq!(out["e13.eps0.45.f0.04.w4096.failed"], 1.0);
        assert!(
            !out.contains_key("e13.eps0.45.f0.04.w4096.ratio"),
            "errored jobs carry no ratio"
        );
        assert_eq!(out["e13.jobs"], 18.0);
        assert_eq!(out["e13.worst_ratio"], 1.07);
        assert!(
            !gated("e13.eps0.08.f0.0.w1.ratio") && !gated("e13.worst_ratio"),
            "ablation ratios are correctness evidence, not perf gates"
        );
    }

    #[test]
    fn trajectory_file_round_trips_and_finds_last_pin() {
        let dir = std::env::temp_dir().join(format!("wdr-metrics-test-{}", std::process::id()));
        let path = dir.join("trajectory.jsonl");
        let _ = std::fs::remove_file(&path);
        append_row(&path, &row(&[("a.c_max", 1.0)], true)).unwrap();
        append_row(&path, &row(&[("a.c_max", 2.0)], false)).unwrap();
        append_row(&path, &row(&[("a.c_max", 3.0)], true)).unwrap();
        append_row(&path, &row(&[("a.c_max", 4.0)], false)).unwrap();
        let rows = load_rows(&path).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(last_pinned(&rows).unwrap().metrics["a.c_max"], 3.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
