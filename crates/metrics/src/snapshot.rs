//! Point-in-time registry snapshots with a hand-rolled canonical JSON
//! encoding.
//!
//! The vendored `serde` stand-in has no map impls (by design — nothing in
//! the workspace serialized maps before this crate), so the snapshot writes
//! its JSON object directly: keys in `BTreeMap` order, no whitespace,
//! strings escaped through [`serde::write_json_string`]. Two snapshots with
//! equal contents therefore produce byte-identical JSON — the property the
//! trajectory rows and their FNV artifact hashes rely on.

use crate::histogram::HistogramSummary;
use std::collections::BTreeMap;

/// One metric's value at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(f64),
    /// A histogram digest.
    Histogram(HistogramSummary),
}

/// A sorted name → value map frozen from a [`crate::MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The frozen values, sorted by metric name.
    pub entries: BTreeMap<String, MetricValue>,
}

/// Writes `v` the way the vendored serde writes `f64` (finite → shortest
/// round-trip decimal, non-finite → `null`).
pub fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

impl MetricsSnapshot {
    /// Flattens to scalar metrics: counters and gauges map to their value;
    /// a histogram `h` expands to `h.count`, `h.sum`, `h.max`, `h.p50`,
    /// `h.p90`, `h.p99`.
    pub fn flatten(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    out.insert(name.clone(), *v as f64);
                }
                MetricValue::Gauge(v) => {
                    out.insert(name.clone(), *v);
                }
                MetricValue::Histogram(h) => {
                    out.insert(format!("{name}.count"), h.count as f64);
                    out.insert(format!("{name}.sum"), h.sum as f64);
                    out.insert(format!("{name}.max"), h.max as f64);
                    out.insert(format!("{name}.p50"), h.p50 as f64);
                    out.insert(format!("{name}.p90"), h.p90 as f64);
                    out.insert(format!("{name}.p99"), h.p99 as f64);
                }
            }
        }
        out
    }

    /// The flattened metrics as sorted `(name, value)` pairs — the shape the
    /// vendored serde can serialize inside `BENCH_*.json` reports.
    pub fn to_pairs(&self) -> Vec<(String, f64)> {
        self.flatten().into_iter().collect()
    }

    /// Canonical JSON: `{"name":{"type":"counter","value":N},...}` with keys
    /// in sorted order and no whitespace.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::write_json_string(name, &mut out);
            out.push(':');
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{{\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str("{\"type\":\"gauge\",\"value\":");
                    write_f64(*v, &mut out);
                    out.push('}');
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"type\":\"histogram\",\"count\":{},\"max\":{},\"p50\":{},\
                         \"p90\":{},\"p99\":{},\"sum\":{}}}",
                        h.count, h.max, h.p50, h.p90, h.p99, h.sum
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_is_sorted_and_parseable() {
        let mut entries = BTreeMap::new();
        entries.insert("z.last".to_string(), MetricValue::Gauge(2.5));
        entries.insert("a.first".to_string(), MetricValue::Counter(3));
        entries.insert(
            "m.hist".to_string(),
            MetricValue::Histogram(HistogramSummary {
                count: 2,
                sum: 12,
                max: 8,
                p50: 7,
                p90: 8,
                p99: 8,
            }),
        );
        let snap = MetricsSnapshot { entries };
        let json = snap.to_canonical_json();
        assert!(json.find("a.first").unwrap() < json.find("m.hist").unwrap());
        assert!(json.find("m.hist").unwrap() < json.find("z.last").unwrap());
        let v = serde_json::from_str(&json).unwrap();
        assert_eq!(
            v.get("a.first")
                .and_then(|m| m.get("value"))
                .and_then(serde_json::Value::as_u64),
            Some(3)
        );
        assert_eq!(
            v.get("m.hist")
                .and_then(|m| m.get("p50"))
                .and_then(serde_json::Value::as_u64),
            Some(7)
        );
    }

    #[test]
    fn non_finite_gauges_serialize_as_null() {
        let mut entries = BTreeMap::new();
        entries.insert("bad".to_string(), MetricValue::Gauge(f64::NAN));
        let snap = MetricsSnapshot { entries };
        assert!(snap.to_canonical_json().contains("\"value\":null"));
    }
}
