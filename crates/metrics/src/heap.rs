//! Counting-allocator machinery and peak-memory probes.
//!
//! Every `zero_alloc`-style integration test in the workspace used to carry
//! its own copy of the counting `GlobalAlloc` shim (libraries forbid
//! `unsafe`, so the shim lived in test crates). This module centralizes it:
//! a test crate declares
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: wdr_metrics::heap::CountingAlloc<std::alloc::System> =
//!     wdr_metrics::heap::CountingAlloc::new(std::alloc::System);
//! ```
//!
//! calls [`track_current_thread`] at the top of the test, and then asserts
//! on [`heap_ops`] deltas around the code under test. Counting is opt-in
//! per thread: the libtest harness's own main thread lazily initializes
//! its channel-receive context *while the test body runs*, so a
//! process-wide count is racy by construction (two stray allocations land
//! in the measured window on perhaps a third of runs) — gating on a
//! thread-local keeps harness bookkeeping out of the delta. The counters
//! themselves are still process-global statics, so each such test file
//! must contain exactly **one** `#[test]` — a second tracked test running
//! concurrently would pollute the delta.
//!
//! [`peak_rss_bytes`] complements the allocator-level numbers with the
//! OS-level high-water mark (`VmHWM` from `/proc/self/status`), which the
//! bench harness surfaces as an informational trajectory metric.

use std::alloc::{GlobalAlloc, Layout};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

std::thread_local! {
    // Const-initialized and `!needs_drop`, so reading it never allocates
    // or registers a TLS destructor — safe to consult inside `alloc`.
    static TRACKED: Cell<bool> = const { Cell::new(false) };
}

/// Opts the current thread into allocation counting. Threads that never
/// call this (the test harness's main thread, background runtime threads)
/// stay invisible to [`heap_ops`]/[`heap_stats`].
pub fn track_current_thread() {
    TRACKED.with(|t| t.set(true));
}

fn tracked() -> bool {
    // `try_with` so late allocations during thread teardown (after TLS
    // destruction) are simply not counted instead of panicking.
    TRACKED.try_with(Cell::get).unwrap_or(false)
}

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static DEALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static REALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static CURRENT_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// A `GlobalAlloc` wrapper counting every allocation, reallocation, and
/// deallocation routed through it, plus live/peak byte totals.
#[derive(Debug, Default)]
pub struct CountingAlloc<A> {
    inner: A,
}

impl<A> CountingAlloc<A> {
    /// Wraps `inner` (usually `std::alloc::System`).
    pub const fn new(inner: A) -> CountingAlloc<A> {
        CountingAlloc { inner }
    }
}

unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = self.inner.alloc(layout);
        if !ptr.is_null() && tracked() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            let live = CURRENT_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.inner.dealloc(ptr, layout);
        if tracked() {
            DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            CURRENT_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let out = self.inner.realloc(ptr, layout, new_size);
        if !out.is_null() && tracked() {
            REALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            if new_size >= layout.size() {
                let grown = new_size - layout.size();
                let live = CURRENT_BYTES.fetch_add(grown, Ordering::Relaxed) + grown;
                PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
            } else {
                CURRENT_BYTES.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        out
    }
}

/// Allocator-level statistics since process start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Successful `alloc` calls.
    pub allocations: usize,
    /// `dealloc` calls.
    pub deallocations: usize,
    /// Successful `realloc` calls.
    pub reallocations: usize,
    /// Bytes currently live.
    pub current_bytes: usize,
    /// High-water mark of live bytes.
    pub peak_bytes: usize,
}

/// Allocations + reallocations from [`track_current_thread`]-opted threads
/// — the "heap ops" delta the zero-allocation tests assert on
/// (deallocations are deliberately excluded: dropping a buffer that was
/// allocated during warm-up is not a steady-state cost).
pub fn heap_ops() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed) + REALLOCATIONS.load(Ordering::Relaxed)
}

/// A full snapshot of the counting-allocator state.
pub fn heap_stats() -> HeapStats {
    HeapStats {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        deallocations: DEALLOCATIONS.load(Ordering::Relaxed),
        reallocations: REALLOCATIONS.load(Ordering::Relaxed),
        current_bytes: CURRENT_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// The process's OS-level peak resident set size in bytes (`VmHWM`), or
/// `None` where `/proc/self/status` is unavailable (non-Linux hosts).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    // The shim itself is exercised end-to-end by the workspace's
    // `zero_alloc` integration tests (which install it as the global
    // allocator); here we only check the passive probes.

    #[test]
    fn peak_rss_parses_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM present on Linux");
            assert!(rss > 0);
        }
    }

    #[test]
    fn heap_stats_is_monotone_in_ops() {
        let before = heap_stats();
        let v: Vec<u64> = (0..64).collect();
        drop(v);
        let after = heap_stats();
        // Without the shim installed as #[global_allocator] the counters
        // stay flat; with it they grow. Either way they never go backward.
        assert!(after.allocations >= before.allocations);
        assert!(heap_ops() >= before.allocations + before.reallocations);
    }
}
