//! Rectangular result tables with markdown / JSON / CSV renderers.
//!
//! Originally part of the `wdr-bench` harness; hoisted here so report
//! producers below the bench layer (the ablation harness, the perf CLI)
//! can render tables without depending on the experiment crate.
//! `wdr_bench::harness` re-exports [`Table`], so experiment code is
//! unchanged.

use std::fmt::Write as _;

/// A rendered experiment: a title, a commentary line, and a rectangular
/// table.
#[derive(Clone, Debug, serde::Serialize)]
pub struct Table {
    /// Experiment id (e.g. "E1").
    pub id: String,
    /// Human title.
    pub title: String,
    /// One-paragraph commentary (what the paper says vs what we measured).
    pub commentary: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            commentary: String::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        writeln!(out, "### {} — {}\n", self.id, self.title).unwrap();
        writeln!(out, "| {} |", self.headers.join(" | ")).unwrap();
        writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )
        .unwrap();
        for row in &self.rows {
            writeln!(out, "| {} |", row.join(" | ")).unwrap();
        }
        if !self.commentary.is_empty() {
            writeln!(out, "\n{}", self.commentary).unwrap();
        }
        out
    }

    /// Renders as one JSON object:
    /// `{"id":…,"title":…,"commentary":…,"headers":[…],"rows":[[…]]}`.
    pub fn to_json(&self) -> String {
        serde::Serialize::to_json(self)
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{}", self.headers.join(",")).unwrap();
        for row in &self.rows {
            writeln!(out, "{}", row.join(",")).unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_render() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn json_renders_and_parses() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.commentary = "note \"quoted\"".into();
        t.push(vec!["1".into(), "2".into()]);
        let v = serde_json::from_str(&t.to_json()).expect("table JSON parses");
        assert_eq!(v.get("id").and_then(serde_json::Value::as_str), Some("E0"));
        let rows = v.get("rows").and_then(serde_json::Value::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        let row0 = rows[0].as_array().expect("row is an array");
        assert_eq!(row0[1].as_str(), Some("2"));
        assert_eq!(
            v.get("commentary").and_then(serde_json::Value::as_str),
            Some("note \"quoted\"")
        );
    }

    #[test]
    #[should_panic(expected = "width")]
    fn row_width_checked() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }
}
