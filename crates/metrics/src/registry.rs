//! The named metrics registry and its counter/gauge handles.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a mutex and may
//! allocate; the returned handles are `Arc`-backed and their hot paths
//! (`inc`, `add`, `set`, `observe`) are single relaxed atomic operations
//! with **zero heap operations** — pinned by the counting-allocator test in
//! `tests/zero_alloc.rs`. Register once up front, clone handles freely.

use crate::histogram::Histogram;
use crate::snapshot::{MetricValue, MetricsSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic `u64` counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a free-standing counter (not attached to a registry).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as IEEE-754 bits in an atomic).
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Creates a free-standing gauge initialized to `0.0`.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// One registered metric (a cloned handle, not a reference).
#[derive(Clone, Debug)]
pub enum Metric {
    /// A monotonic counter.
    Counter(Counter),
    /// A point-in-time gauge.
    Gauge(Gauge),
    /// A log₂ histogram.
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A shared, name-keyed metrics registry.
///
/// Registration is idempotent: asking twice for the same name returns
/// handles to the same underlying metric. Asking for a name that is
/// already registered as a *different* kind panics — that is a programming
/// error, not a runtime condition.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Registers (or retrieves) the counter `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a gauge or histogram.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Registers (or retrieves) the gauge `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a counter or histogram.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Registers (or retrieves) the histogram `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a counter or gauge.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("metrics registry poisoned").len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every metric's value, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let entries = map
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn gauges_round_trip_floats() {
        let r = MetricsRegistry::new();
        let g = r.gauge("c_max");
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
        g.set(-0.5);
        assert_eq!(r.gauge("c_max").get(), -0.5);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_reflects_all_kinds() {
        let r = MetricsRegistry::new();
        r.counter("a.count").add(7);
        r.gauge("b.gauge").set(1.5);
        r.histogram("c.hist").observe(10);
        let snap = r.snapshot();
        let flat = snap.flatten();
        assert_eq!(flat["a.count"], 7.0);
        assert_eq!(flat["b.gauge"], 1.5);
        assert_eq!(flat["c.hist.count"], 1.0);
        assert_eq!(flat["c.hist.max"], 10.0);
    }
}
