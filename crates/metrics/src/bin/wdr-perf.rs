//! `wdr-perf` — record and gate the checked-in perf trajectory.
//!
//! ```text
//! wdr-perf record  [--dir DIR] [--trajectory FILE] [--pin] [--dry-run]
//! wdr-perf compare [--dir DIR] [--trajectory FILE] [--threshold PCT] [--out FILE]
//! wdr-perf report  [--trajectory FILE] [--last N]
//! ```
//!
//! `record` scans `--dir` (default `target/experiments`) for `BENCH_*.json`
//! artifacts, builds one canonical-JSON trajectory row (provenance header,
//! FNV artifact fingerprints, extracted metrics), and appends it to
//! `--trajectory` (default `perf/trajectory.jsonl`). `--pin` marks the row
//! as a comparison baseline; `--dry-run` prints the row without writing.
//!
//! `compare` rebuilds the current row the same way, gates it against the
//! last pinned row with per-metric relative thresholds (default 15%, gated
//! metrics only — see `wdr_metrics::trajectory::gated`), prints the
//! markdown delta table (also to `--out`), and exits non-zero on any
//! regression. Baseline metrics the current run did not regenerate are
//! skipped with a warning rather than failed, so a pinned row that unions
//! many experiments still gates runs that produce only a subset.

use std::path::PathBuf;
use std::process::ExitCode;
use wdr_metrics::trajectory::{self, DEFAULT_THRESHOLD};

fn usage() -> String {
    "usage:\n  wdr-perf record  [--dir DIR] [--trajectory FILE] [--pin] [--dry-run]\n  \
     wdr-perf compare [--dir DIR] [--trajectory FILE] [--threshold PCT] [--out FILE]\n  \
     wdr-perf report  [--trajectory FILE] [--last N]"
        .to_string()
}

fn next_value(args: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    args.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    let mut dir = PathBuf::from("target/experiments");
    let mut trajectory_path = PathBuf::from("perf/trajectory.jsonl");
    match it.next().map(String::as_str) {
        Some("record") => {
            let (mut pin, mut dry_run) = (false, false);
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--dir" => dir = PathBuf::from(next_value(&mut it, flag)?),
                    "--trajectory" => trajectory_path = PathBuf::from(next_value(&mut it, flag)?),
                    "--pin" => pin = true,
                    "--dry-run" => dry_run = true,
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            let mut row = trajectory::collect_dir(&dir)?;
            row.pinned = pin;
            if dry_run {
                println!("{}", row.to_canonical_json());
                eprintln!(
                    "dry run: row with {} metric(s) from {} artifact(s) not written",
                    row.metrics.len(),
                    row.artifacts.len()
                );
            } else {
                trajectory::append_row(&trajectory_path, &row)?;
                println!(
                    "recorded {}row with {} metric(s) from {} artifact(s) to {}",
                    if pin { "pinned " } else { "" },
                    row.metrics.len(),
                    row.artifacts.len(),
                    trajectory_path.display()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("compare") => {
            let mut threshold = DEFAULT_THRESHOLD;
            let mut out_path: Option<PathBuf> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--dir" => dir = PathBuf::from(next_value(&mut it, flag)?),
                    "--trajectory" => trajectory_path = PathBuf::from(next_value(&mut it, flag)?),
                    "--threshold" => {
                        let pct: f64 = next_value(&mut it, flag)?
                            .parse()
                            .map_err(|e| format!("--threshold: {e}"))?;
                        if !(0.0..100.0).contains(&pct) {
                            return Err("--threshold: expected a percentage in [0, 100)".into());
                        }
                        threshold = pct / 100.0;
                    }
                    "--out" => out_path = Some(PathBuf::from(next_value(&mut it, flag)?)),
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            let rows = trajectory::load_rows(&trajectory_path)?;
            let baseline = trajectory::last_pinned(&rows).ok_or_else(|| {
                format!(
                    "no pinned row in {} — record one with `wdr-perf record --pin`",
                    trajectory_path.display()
                )
            })?;
            let current = trajectory::collect_dir(&dir)?;
            let report = trajectory::compare(baseline, &current, threshold);
            let markdown = report.to_markdown();
            print!("{markdown}");
            if let Some(path) = out_path {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)
                            .map_err(|e| format!("create {}: {e}", parent.display()))?;
                    }
                }
                std::fs::write(&path, &markdown)
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
            }
            Ok(if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        Some("report") => {
            let mut last: Option<usize> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--trajectory" => trajectory_path = PathBuf::from(next_value(&mut it, flag)?),
                    "--last" => {
                        last = Some(
                            next_value(&mut it, flag)?
                                .parse()
                                .map_err(|e| format!("--last: {e}"))?,
                        );
                    }
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            let rows = trajectory::load_rows(&trajectory_path)?;
            if rows.is_empty() {
                println!("trajectory {} is empty", trajectory_path.display());
                return Ok(ExitCode::SUCCESS);
            }
            let skip = last.map_or(0, |n| rows.len().saturating_sub(n));
            println!("| recorded (UTC) | commit | pinned | artifacts | metrics | host threads |");
            println!("|---|---|---|---:|---:|---:|");
            for row in &rows[skip..] {
                let commit = &row.meta.commit;
                let commit_short = if commit.len() > 12 {
                    &commit[..12]
                } else {
                    commit
                };
                println!(
                    "| {} | {} | {} | {} | {} | {} |",
                    row.meta.recorded_at_utc,
                    commit_short,
                    if row.pinned { "yes" } else { "" },
                    row.artifacts.len(),
                    row.metrics.len(),
                    row.meta.host_threads
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(usage()),
    }
}
