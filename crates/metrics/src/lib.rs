//! # wdr-metrics
//!
//! The aggregate observability layer of the WDR reproduction: a
//! zero-steady-state-allocation metrics registry plus the perf-trajectory
//! tooling built on top of it.
//!
//! PR 1's [`Tracer`](https://docs.rs/congest-sim) gives *event-level*
//! traces; this crate is the complementary *aggregate* layer — cheap enough
//! to stay on in every run:
//!
//! * [`Counter`] — monotonic `u64` counters (one relaxed atomic add);
//! * [`Gauge`] — last-written `f64` values (stored as bit patterns);
//! * [`Histogram`] — 65-bucket log₂ histograms with p50/p90/p99/max,
//!   mergeable across threads with index-ordered reduction so parallel
//!   runs stay bit-identical to sequential ones;
//! * [`MetricsRegistry`] — a named, idempotent registry handing out cloned
//!   handles; registration allocates, the increment/observe paths do not
//!   (pinned by `tests/zero_alloc.rs`);
//! * [`heap`] — the counting-allocator machinery shared by every
//!   `zero_alloc`-style integration test, plus a peak-RSS probe;
//! * [`provenance`] — the [`RunMeta`] header stamped
//!   on every `BENCH_*.json` artifact;
//! * [`trajectory`] — canonical-JSON trajectory rows, the FNV artifact
//!   hashes, and the `compare` gate behind the `wdr-perf` binary.
//!
//! # Examples
//!
//! ```
//! use wdr_metrics::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let rounds = registry.counter("sim.rounds");
//! let latency = registry.histogram("sim.bits_per_round");
//! rounds.inc();
//! latency.observe(96);
//! let snap = registry.snapshot();
//! assert_eq!(snap.flatten()["sim.rounds"], 1.0);
//! assert!(snap.to_canonical_json().starts_with('{'));
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

#[allow(unsafe_code)]
pub mod heap;
pub mod histogram;
pub mod provenance;
pub mod registry;
pub mod snapshot;
pub mod table;
pub mod trajectory;

pub use histogram::{Histogram, HistogramSummary};
pub use provenance::RunMeta;
pub use registry::{Counter, Gauge, Metric, MetricsRegistry};
pub use snapshot::{MetricValue, MetricsSnapshot};
pub use table::Table;
