//! Log₂-bucketed histograms with lock-free observation and exact,
//! order-independent merging.
//!
//! Bucket `0` holds the value `0`; bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`
//! (bucket 64 is capped at `u64::MAX`). A quantile estimate returns the upper
//! bound of the bucket holding the requested rank, clamped to the observed
//! maximum, which gives the provable sandwich
//!
//! ```text
//! v ≤ quantile(q) ≤ 2·v
//! ```
//!
//! for the true rank-`q` value `v` — tight enough for round/bit
//! distributions whose interesting structure is multiplicative.
//!
//! Every piece of state is a `u64` updated with relaxed atomic adds (and a
//! `fetch_max` for the maximum), so merging two histograms is a per-index
//! integer addition: exactly associative, exactly commutative, and therefore
//! bit-identical whether partials are folded sequentially or reduced across
//! threads in index order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one for the value `0` plus one per bit length 1..=64.
pub const BUCKETS: usize = 65;

/// The bucket holding `value`: `0` for zero, otherwise the bit length.
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The largest value bucket `index` can hold.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

#[derive(Debug)]
struct Core {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A cloneable handle to one shared log₂ histogram.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<Core>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A point-in-time digest of a histogram (what snapshots serialize).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Median estimate (`v ≤ p50 ≤ 2v`).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            core: Arc::new(Core {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one value. Lock-free; performs no heap operations.
    pub fn observe(&self, value: u64) {
        let c = &self.core;
        c.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        // `fetch_add` wraps on overflow, which is the right behavior here:
        // `sum` is diagnostic, and a panic inside the round engine's hot
        // loop would be far worse than a wrapped sum.
        c.sum.fetch_add(value, Ordering::Relaxed);
        c.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wrapping).
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.core.max.load(Ordering::Relaxed)
    }

    /// The per-bucket counts — the histogram's complete distributional
    /// state, used by the bit-identity proptests.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Upper-bound estimate of the `q`-quantile (`0 ≤ q ≤ 1`).
    ///
    /// Guarantees `v ≤ quantile(q) ≤ 2·v` for the true rank value `v`, and
    /// never exceeds the observed maximum. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.core.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Adds every observation of `other` into `self`, bucket by bucket in
    /// ascending index order. Integer adds make this exactly associative
    /// and commutative, so any reduction tree over disjoint partials yields
    /// bit-identical state.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.core.buckets.iter().zip(other.core.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.core.count.fetch_add(other.count(), Ordering::Relaxed);
        self.core.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.core.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Index-ordered reduction of disjoint partial histograms into a fresh
    /// one — the canonical way to fold per-thread partials.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a Histogram>) -> Histogram {
        let out = Histogram::new();
        for part in parts {
            out.merge_from(part);
        }
        out
    }

    /// The serializable digest of the current state.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn quantiles_sandwich_the_exact_values() {
        let h = Histogram::new();
        let values = [3u64, 9, 9, 17, 100, 1000, 1000, 1001, 4096, 70000];
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values;
        sorted.sort_unstable();
        for (q, exact) in [(0.5, sorted[4]), (0.9, sorted[8]), (1.0, sorted[9])] {
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: {est} < exact {exact}");
            assert!(est <= exact.saturating_mul(2), "q={q}: {est} > 2·{exact}");
        }
        assert_eq!(h.max(), 70000);
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), values.iter().sum::<u64>());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn merge_equals_joint_observation() {
        let (a, b, joint) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..100u64 {
            if v % 2 == 0 { &a } else { &b }.observe(v * v);
            joint.observe(v * v);
        }
        let merged = Histogram::merged([&a, &b]);
        assert_eq!(merged.bucket_counts(), joint.bucket_counts());
        assert_eq!(merged.count(), joint.count());
        assert_eq!(merged.sum(), joint.sum());
        assert_eq!(merged.max(), joint.max());
    }
}
