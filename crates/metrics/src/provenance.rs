//! The shared `RunMeta` provenance header stamped on every `BENCH_*.json`
//! artifact, making trajectory rows self-describing.

use std::time::{SystemTime, UNIX_EPOCH};

/// Version of the provenance/trajectory row schema. Bump on any change to
/// field names or semantics; `wdr-perf compare` refuses to gate across
/// schema versions.
pub const SCHEMA_VERSION: u32 = 1;

/// Provenance of one benchmark/conformance run.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct RunMeta {
    /// [`SCHEMA_VERSION`] at the time the artifact was written.
    pub schema_version: u32,
    /// `git rev-parse HEAD` of the working tree (or `"unknown"` outside a
    /// repository; the `WDR_COMMIT` environment variable overrides both).
    pub commit: String,
    /// UTC wall-clock time of the run, ISO-8601 (`YYYY-MM-DDThh:mm:ssZ`).
    pub recorded_at_utc: String,
    /// `std::thread::available_parallelism` on the recording host.
    pub host_threads: usize,
    /// Every RNG seed that fed the run, sorted and deduplicated.
    pub seeds: Vec<u64>,
}

impl RunMeta {
    /// Captures the current provenance with the given seed set.
    pub fn capture(seeds: &[u64]) -> RunMeta {
        let mut seeds = seeds.to_vec();
        seeds.sort_unstable();
        seeds.dedup();
        RunMeta {
            schema_version: SCHEMA_VERSION,
            commit: git_commit(),
            recorded_at_utc: utc_timestamp(),
            host_threads: host_threads(),
            seeds,
        }
    }
}

/// Threads available to this process (1 when the query fails).
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The current commit hash: `WDR_COMMIT` if set, else `git rev-parse HEAD`,
/// else `"unknown"`.
pub fn git_commit() -> String {
    if let Ok(commit) = std::env::var("WDR_COMMIT") {
        let commit = commit.trim().to_string();
        if !commit.is_empty() {
            return commit;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The current UTC time as `YYYY-MM-DDThh:mm:ssZ` (no external time crate:
/// derived from `SystemTime` with the classic days-from-civil inverse).
pub fn utc_timestamp() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    format_utc(secs)
}

/// Formats `secs` since the Unix epoch as ISO-8601 UTC.
pub fn format_utc(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (year, month, day) = civil_from_days(days);
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}Z",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60
    )
}

// Howard Hinnant's `civil_from_days`: proleptic-Gregorian date of the day
// `z` days after 1970-01-01.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_timestamps_format_correctly() {
        assert_eq!(format_utc(0), "1970-01-01T00:00:00Z");
        // 2000-02-29 (leap day) 12:34:56 UTC.
        assert_eq!(format_utc(951_827_696), "2000-02-29T12:34:56Z");
        // 2026-08-07 00:00:00 UTC.
        assert_eq!(format_utc(1_786_060_800), "2026-08-07T00:00:00Z");
    }

    #[test]
    fn capture_sorts_and_dedups_seeds() {
        let meta = RunMeta::capture(&[9, 1, 9, 4]);
        assert_eq!(meta.seeds, vec![1, 4, 9]);
        assert_eq!(meta.schema_version, SCHEMA_VERSION);
        assert!(meta.host_threads >= 1);
        assert!(meta.recorded_at_utc.ends_with('Z'));
        assert!(!meta.commit.is_empty());
    }

    #[test]
    fn meta_serializes_with_named_fields() {
        use serde::Serialize as _;
        let meta = RunMeta {
            schema_version: 1,
            commit: "abc".into(),
            recorded_at_utc: "1970-01-01T00:00:00Z".into(),
            host_threads: 8,
            seeds: vec![3, 5],
        };
        let json = meta.to_json();
        let v = serde_json::from_str(&json).unwrap();
        assert_eq!(
            v.get("commit").and_then(serde_json::Value::as_str),
            Some("abc")
        );
        assert_eq!(
            v.get("seeds")
                .and_then(serde_json::Value::as_array)
                .map(Vec::len),
            Some(2)
        );
    }
}
