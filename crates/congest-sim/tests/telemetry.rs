//! Integration tests of the telemetry layer: tracer equivalence (tracing
//! must never change what the simulator computes or charges) and the JSONL
//! interchange format.

mod common;

use common::SharedBuf;
use congest_graph::{generators, WeightedGraph};
use congest_sim::telemetry::{CountingTracer, JsonlTracer, Tracer};
use congest_sim::{primitives, SimConfig, Telemetry};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (4usize..20, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::erdos_renyi_connected(n, 0.25, 4, &mut rng)
    })
}

fn cfg(g: &WeightedGraph) -> SimConfig {
    SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(1_000_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A run under the default (off) telemetry and a run under a
    /// `CountingTracer` produce identical outputs and identical
    /// `RoundStats`, and the tracer's aggregate counters agree with the
    /// stats the simulator reports.
    #[test]
    fn counting_tracer_is_an_observer(g in arb_graph(), leader_pick in any::<usize>()) {
        let leader = leader_pick % g.n();

        let (tree_off, stats_off) = primitives::bfs_tree(&g, leader, &cfg(&g)).unwrap();

        let counting = Arc::new(CountingTracer::default());
        let traced_cfg = cfg(&g).with_telemetry(Telemetry::new(counting.clone()));
        let (tree_on, stats_on) = primitives::bfs_tree(&g, leader, &traced_cfg).unwrap();

        prop_assert_eq!(tree_off, tree_on);
        prop_assert_eq!(&stats_off, &stats_on);

        let snap = counting.snapshot();
        prop_assert_eq!(snap.rounds + snap.padded_rounds, stats_on.rounds as u64);
        prop_assert_eq!(snap.messages, stats_on.messages);
        prop_assert_eq!(snap.bits, stats_on.bits);
        prop_assert_eq!(snap.phases_started, 1);
        prop_assert_eq!(snap.phases_ended, 1);
    }

    /// Enabling the streaming channel profile changes neither outputs nor
    /// charged statistics.
    #[test]
    fn channel_profile_is_an_observer(g in arb_graph(), leader_pick in any::<usize>()) {
        let leader = leader_pick % g.n();
        let (tree_plain, stats_plain) = primitives::bfs_tree(&g, leader, &cfg(&g)).unwrap();
        let (tree_prof, stats_prof) =
            primitives::bfs_tree(&g, leader, &cfg(&g).with_channel_profile()).unwrap();
        prop_assert_eq!(tree_plain, tree_prof);
        prop_assert_eq!(&stats_plain, &stats_prof);
    }
}

/// The JSONL interchange format is pinned against a golden file: a change
/// to the serialized shape breaks `wdr-trace` compatibility and must be
/// deliberate (update `tests/golden/trace.jsonl` alongside the shared
/// fixture in `tests/common/mod.rs`).
#[test]
fn jsonl_format_matches_golden_file() {
    let buf = SharedBuf::default();
    let tracer = JsonlTracer::new(Box::new(buf.clone()));
    for event in common::golden_events() {
        tracer.record(&event);
    }
    tracer.flush();
    assert_eq!(buf.contents(), include_str!("golden/trace.jsonl"));
}

/// A real simulated phase written through `JsonlTracer` stays parseable
/// line-by-line and internally consistent with the reported stats.
#[test]
fn jsonl_trace_of_real_run_is_line_consistent() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = generators::erdos_renyi_connected(12, 0.3, 4, &mut rng);
    let buf = SharedBuf::default();
    let telemetry = Telemetry::new(Arc::new(JsonlTracer::new(Box::new(buf.clone()))));
    let (_, stats) =
        primitives::bfs_tree(&g, 0, &cfg(&g).with_telemetry(telemetry.clone())).unwrap();
    telemetry.flush();
    let written = buf.contents();
    let lines: Vec<&str> = written.lines().collect();
    assert_eq!(
        lines.first(),
        Some(&r#"{"PhaseStart":{"name":"bfs_tree"}}"#)
    );
    assert_eq!(lines.last(), Some(&r#"{"PhaseEnd":{"name":"bfs_tree"}}"#));
    let rounds = lines
        .iter()
        .filter(|l| l.starts_with(r#"{"RoundCompleted""#))
        .count();
    assert_eq!(rounds, stats.rounds);
}
