//! Integration properties of the fault-injection subsystem: trace
//! determinism (the same `FaultPlan` seed replays bit-for-bit) and
//! zero-fault transparency (an all-zero plan is indistinguishable from no
//! plan at all).

use congest_graph::{generators, NodeId, WeightedGraph};
use congest_sim::telemetry::JsonlTracer;
use congest_sim::{
    FaultPlan, Mailbox, Network, NodeCtx, NodeProgram, SimConfig, Status, Telemetry,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::{Arc, Mutex};

/// Leader-rooted flood with a fixed deadline: every node forwards the token
/// once and halts at `deadline` regardless of what the fault model did, so
/// runs terminate under arbitrary loss and crash schedules.
struct Flood {
    deadline: usize,
    heard: bool,
}

impl NodeProgram for Flood {
    type Msg = u32;
    type Output = bool;

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u32>) {
        if ctx.is_leader() {
            self.heard = true;
            mb.broadcast(ctx, 1);
        }
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &[(NodeId, u32)],
        mb: &mut Mailbox<u32>,
    ) -> Status {
        if !self.heard && !inbox.is_empty() {
            self.heard = true;
            mb.broadcast(ctx, 1);
        }
        if round >= self.deadline {
            Status::Done
        } else {
            Status::Running
        }
    }

    fn finish(self, _ctx: &NodeCtx) -> bool {
        self.heard
    }
}

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (4usize..20, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::erdos_renyi_connected(n, 0.3, 4, &mut rng)
    })
}

fn cfg(g: &WeightedGraph) -> SimConfig {
    SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(10_000)
}

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One traced flood under `plan`, returning the raw JSONL bytes, the
/// per-node outputs, and the stats.
fn traced_flood(
    g: &WeightedGraph,
    plan: FaultPlan,
) -> (String, Vec<bool>, congest_sim::RoundStats) {
    let buf = SharedBuf::default();
    let telemetry = Telemetry::new(Arc::new(JsonlTracer::new(Box::new(buf.clone()))));
    let config = cfg(g).with_telemetry(telemetry.clone()).with_faults(plan);
    let deadline = 3 * g.n();
    let mut net = Network::new(g, 0, config, |_, _| Flood {
        deadline,
        heard: false,
    });
    let out = net.run().expect("deadline flood always terminates");
    let stats = net.stats().clone();
    telemetry.flush();
    let trace = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    (trace, out, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying the same `FaultPlan` (same seed, same knobs) on the same
    /// graph produces a bit-identical JSONL trace, identical outputs, and
    /// identical stats: fault decisions are pure functions of the plan.
    #[test]
    fn same_plan_replays_bit_identically(
        g in arb_graph(),
        seed in any::<u64>(),
        rate in 0.0f64..0.45,
        with_crash in any::<bool>(),
        pick in any::<u64>(),
        from in 1usize..6,
        len in 1usize..5,
    ) {
        let mut plan = FaultPlan::new(seed).with_drop_rate(rate);
        if with_crash {
            // A transient crash of a non-leader node.
            let node = 1 + (pick as usize) % (g.n() - 1);
            plan = plan.with_crash(node, from, Some(from + len));
        }
        let (trace_a, out_a, stats_a) = traced_flood(&g, plan.clone());
        let (trace_b, out_b, stats_b) = traced_flood(&g, plan);
        prop_assert_eq!(trace_a, trace_b);
        prop_assert_eq!(out_a, out_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    /// An all-zero plan is pay-as-you-go: outputs, qualities, and the full
    /// `RoundStats` (rounds included) are identical to a plain network with
    /// no fault oracle installed at all.
    #[test]
    fn zero_plan_is_indistinguishable_from_no_plan(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let deadline = 3 * g.n();
        let make = |_: usize, _: &NodeCtx| Flood { deadline, heard: false };

        let mut plain = Network::new(&g, 0, cfg(&g), make);
        let out_plain = plain.run().unwrap();

        let zero_cfg = cfg(&g).with_faults(FaultPlan::new(seed));
        let mut zeroed = Network::new(&g, 0, zero_cfg, make);
        let out_zeroed = zeroed.run_with_quality().unwrap();

        prop_assert!(out_zeroed.iter().all(|(_, q)| q.is_exact()));
        let outputs: Vec<bool> = out_zeroed.into_iter().map(|(o, _)| o).collect();
        prop_assert_eq!(out_plain, outputs);
        prop_assert_eq!(plain.stats(), zeroed.stats());
        prop_assert!(zeroed.stats().resilience.is_zero());
    }
}
