//! Integration properties of the fault-injection subsystem: trace
//! determinism (the same `FaultPlan` seed replays bit-for-bit) and
//! zero-fault transparency (an all-zero plan is indistinguishable from no
//! plan at all).

mod common;

use common::SharedBuf;
use congest_graph::{generators, NodeId, WeightedGraph};
use congest_sim::telemetry::JsonlTracer;
use congest_sim::{
    primitives, FaultPlan, Mailbox, Network, NodeCtx, NodeProgram, SimConfig, SimError, Status,
    Telemetry,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Leader-rooted flood with a fixed deadline: every node forwards the token
/// once and halts at `deadline` regardless of what the fault model did, so
/// runs terminate under arbitrary loss and crash schedules.
struct Flood {
    deadline: usize,
    heard: bool,
}

impl NodeProgram for Flood {
    type Msg = u32;
    type Output = bool;

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u32>) {
        if ctx.is_leader() {
            self.heard = true;
            mb.broadcast(ctx, 1);
        }
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &[(NodeId, u32)],
        mb: &mut Mailbox<u32>,
    ) -> Status {
        if !self.heard && !inbox.is_empty() {
            self.heard = true;
            mb.broadcast(ctx, 1);
        }
        if round >= self.deadline {
            Status::Done
        } else {
            Status::Running
        }
    }

    fn finish(self, _ctx: &NodeCtx) -> bool {
        self.heard
    }
}

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (4usize..20, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::erdos_renyi_connected(n, 0.3, 4, &mut rng)
    })
}

fn cfg(g: &WeightedGraph) -> SimConfig {
    SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(10_000)
}

/// One traced flood under `plan`, returning the raw JSONL bytes, the
/// per-node outputs, and the stats.
fn traced_flood(
    g: &WeightedGraph,
    plan: FaultPlan,
) -> (String, Vec<bool>, congest_sim::RoundStats) {
    let buf = SharedBuf::default();
    let telemetry = Telemetry::new(Arc::new(JsonlTracer::new(Box::new(buf.clone()))));
    let config = cfg(g).with_telemetry(telemetry.clone()).with_faults(plan);
    let deadline = 3 * g.n();
    let mut net = Network::new(g, 0, config, |_, _| Flood {
        deadline,
        heard: false,
    });
    let out = net.run().expect("deadline flood always terminates");
    let stats = net.stats().clone();
    telemetry.flush();
    (buf.contents(), out, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying the same `FaultPlan` (same seed, same knobs) on the same
    /// graph produces a bit-identical JSONL trace, identical outputs, and
    /// identical stats: fault decisions are pure functions of the plan.
    #[test]
    fn same_plan_replays_bit_identically(
        g in arb_graph(),
        seed in any::<u64>(),
        rate in 0.0f64..0.45,
        with_crash in any::<bool>(),
        pick in any::<u64>(),
        from in 1usize..6,
        len in 1usize..5,
    ) {
        let mut plan = FaultPlan::new(seed).with_drop_rate(rate);
        if with_crash {
            // A transient crash of a non-leader node.
            let node = 1 + (pick as usize) % (g.n() - 1);
            plan = plan.with_crash(node, from, Some(from + len));
        }
        let (trace_a, out_a, stats_a) = traced_flood(&g, plan.clone());
        let (trace_b, out_b, stats_b) = traced_flood(&g, plan);
        prop_assert_eq!(trace_a, trace_b);
        prop_assert_eq!(out_a, out_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    /// An all-zero plan is pay-as-you-go: outputs, qualities, and the full
    /// `RoundStats` (rounds included) are identical to a plain network with
    /// no fault oracle installed at all.
    #[test]
    fn zero_plan_is_indistinguishable_from_no_plan(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let deadline = 3 * g.n();
        let make = |_: usize, _: &NodeCtx| Flood { deadline, heard: false };

        let mut plain = Network::new(&g, 0, cfg(&g), make);
        let out_plain = plain.run().unwrap();

        let zero_cfg = cfg(&g).with_faults(FaultPlan::new(seed));
        let mut zeroed = Network::new(&g, 0, zero_cfg, make);
        let out_zeroed = zeroed.run_with_quality().unwrap();

        prop_assert!(out_zeroed.iter().all(|(_, q)| q.is_exact()));
        let outputs: Vec<bool> = out_zeroed.into_iter().map(|(o, _)| o).collect();
        prop_assert_eq!(out_plain, outputs);
        prop_assert_eq!(plain.stats(), zeroed.stats());
        prop_assert!(zeroed.stats().resilience.is_zero());
    }
}

/// Regression tests for the convergecast primitives under crash-window
/// fault plans. These used to `expect("convergecast completed")` /
/// `expect("vector cast completed")` inside `finish`, panicking whenever a
/// crash left a node without its result at quiescence; they must now either
/// succeed (the leader got its answer) or surface a typed
/// [`SimError::PhaseIncomplete`].
mod phase_incomplete {
    use super::*;
    use primitives::Aggregate;

    /// Path `0-1-2-3`, leader 0, with the clean BFS tree computed up front
    /// so the cast itself is the only faulted phase.
    fn path_tree() -> (WeightedGraph, Vec<primitives::TreeInfo>) {
        let g = generators::path(4, 1);
        let clean = SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(10_000);
        let (tree, _) = primitives::bfs_tree(&g, 0, &clean).unwrap();
        (g, tree)
    }

    /// Every node crashed from round 1 onward: the network quiesces
    /// immediately with the leader result-less. Previously a panic; now a
    /// typed error naming the phase and the missing node.
    #[test]
    fn converge_cast_under_total_crash_is_a_typed_error() {
        let (g, tree) = path_tree();
        let mut plan = FaultPlan::new(7);
        for v in 0..g.n() {
            plan = plan.with_crash(v, 1, None);
        }
        let config = cfg(&g).with_faults(plan);
        let err = primitives::converge_cast(&g, 0, &config, &tree, &[3, 1, 4, 1], Aggregate::Sum)
            .unwrap_err();
        assert!(
            matches!(
                err,
                SimError::PhaseIncomplete {
                    phase: "converge_cast",
                    node: 0,
                }
            ),
            "expected PhaseIncomplete for the leader, got: {err}"
        );
    }

    /// Same total-crash schedule over the pipelined vector cast.
    #[test]
    fn converge_cast_vec_under_total_crash_is_a_typed_error() {
        let (g, tree) = path_tree();
        let mut plan = FaultPlan::new(7);
        for v in 0..g.n() {
            plan = plan.with_crash(v, 1, None);
        }
        let config = cfg(&g).with_faults(plan);
        let values: Vec<Vec<u128>> = (0..g.n() as u128).map(|v| vec![v, 10 + v]).collect();
        let err = primitives::converge_cast_vec(&g, 0, &config, &tree, &values, Aggregate::Max)
            .unwrap_err();
        assert!(
            matches!(
                err,
                SimError::PhaseIncomplete {
                    phase: "vector_cast",
                    node: 0,
                }
            ),
            "expected PhaseIncomplete for the leader, got: {err}"
        );
    }

    /// The deepest leaf crashes *after* its contribution flowed up but
    /// before the downcast reaches it. The leader still aggregates the full
    /// sum, so the call must return `Ok` — under the old `finish` this
    /// exact schedule panicked with "convergecast completed".
    #[test]
    fn crashed_leaf_during_downcast_no_longer_panics() {
        let (g, tree) = path_tree();
        // Node 3's `Up` is sent in `start` and delivered in round 1; crash
        // it from round 2 so only the downcast to it is lost.
        let plan = FaultPlan::new(7).with_crash(3, 2, None);
        let config = cfg(&g).with_faults(plan);
        let (sum, _) =
            primitives::converge_cast(&g, 0, &config, &tree, &[3, 1, 4, 1], Aggregate::Sum)
                .expect("leader aggregated the full sum before the leaf crashed");
        assert_eq!(sum, 9);
    }

    /// Vector-cast analogue: the leaf has forwarded both elements by round
    /// 2 (one per round, pipelined), so crashing it from round 3 loses only
    /// its copy of the downcast. Previously panicked with "vector cast
    /// completed".
    #[test]
    fn crashed_leaf_during_vector_downcast_no_longer_panics() {
        let (g, tree) = path_tree();
        let plan = FaultPlan::new(7).with_crash(3, 3, None);
        let config = cfg(&g).with_faults(plan);
        let values: Vec<Vec<u128>> = (0..g.n() as u128).map(|v| vec![v, 10 + v]).collect();
        let (maxes, _) =
            primitives::converge_cast_vec(&g, 0, &config, &tree, &values, Aggregate::Max)
                .expect("leader aggregated both elements before the leaf crashed");
        assert_eq!(maxes, vec![3, 13]);
    }
}
