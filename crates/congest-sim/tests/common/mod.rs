//! Shared fixtures for the congest-sim integration tests: the in-memory
//! trace sink and the canonical golden-trace event sequence (one instance,
//! used by every test that pins the JSONL interchange format — keep it in
//! sync with `tests/golden/trace.jsonl`).

use congest_sim::TraceEvent;
use std::sync::{Arc, Mutex};

/// An `io::Write` that appends into a shared buffer, for capturing
/// `JsonlTracer` output inside a test.
#[derive(Clone, Default)]
pub struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// The captured bytes as a UTF-8 string.
    pub fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The canonical event sequence behind `tests/golden/trace.jsonl`: one of
/// every `TraceEvent` variant, in a realistic nesting. Any change to the
/// serialized shape must update the golden file *and* this fixture together.
#[allow(dead_code)] // each integration-test binary uses a subset
pub fn golden_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent::PhaseStart {
            name: "outer".to_string(),
        },
        TraceEvent::PhaseStart {
            name: "inner".to_string(),
        },
        TraceEvent::RoundCompleted {
            round: 1,
            messages: 4,
            bits: 32,
            max_channel_bits: 8,
        },
        TraceEvent::ChannelSaturation {
            round: 1,
            from: 0,
            to: 1,
            bits: 30,
            budget_bits: 32,
        },
        TraceEvent::PhaseEnd {
            name: "inner".to_string(),
        },
        TraceEvent::PadRounds {
            rounds: 3,
            reason: "fixed schedule".to_string(),
        },
        TraceEvent::ChannelProfile {
            channel_rounds: 2,
            p50_bits: 8,
            p95_bits: 30,
            max_bits: 30,
            hot_edges: vec![congest_sim::telemetry::HotEdge {
                from: 0,
                to: 1,
                bits: 62,
            }],
        },
        TraceEvent::GroverIteration {
            label: "outer_search".to_string(),
            iterations: 17,
            oracle_queries: 19,
        },
        TraceEvent::MessageDropped {
            round: 2,
            from: 0,
            to: 1,
            bits: 8,
            reason: congest_sim::faults::DropReason::Random,
        },
        TraceEvent::NodeCrashed { node: 3, round: 2 },
        TraceEvent::NodeRecovered { node: 3, round: 5 },
        TraceEvent::LinkThrottled {
            round: 2,
            from: 1,
            to: 2,
            budget_bits: 16,
        },
        TraceEvent::MessageLogTruncated { round: 4, cap: 100 },
        TraceEvent::PhaseEnd {
            name: "outer".to_string(),
        },
    ]
}
