//! Property-based tests of the simulator primitives on random topologies.

use congest_graph::{generators, shortest_path, WeightedGraph};
use congest_sim::{primitives, SimConfig};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (4usize..24, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::erdos_renyi_connected(n, 0.2, 4, &mut rng)
    })
}

fn cfg(g: &WeightedGraph) -> SimConfig {
    SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(1_000_000)
}

/// Property tests feed arbitrary (up to 128-bit) payloads; real algorithms
/// only ship O(log n)-bit values, so the phases below get a widened budget.
fn wide(g: &WeightedGraph) -> SimConfig {
    SimConfig {
        bandwidth: congest_sim::Bandwidth::bits(160),
        ..cfg(g)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The BFS tree is a spanning tree with BFS depths, built in O(D).
    #[test]
    fn bfs_tree_invariants(g in arb_graph(), leader_pick in any::<usize>()) {
        let leader = leader_pick % g.n();
        let (tree, stats) = primitives::bfs_tree(&g, leader, &cfg(&g)).unwrap();
        let bfs = shortest_path::bfs(&g.unweighted_view(), leader);
        let mut edge_count = 0;
        for v in g.nodes() {
            prop_assert_eq!(tree[v].depth as u64, bfs[v].expect_finite());
            edge_count += tree[v].children.len();
            for &c in &tree[v].children {
                prop_assert_eq!(tree[c].parent, Some(v));
            }
            if v == leader {
                prop_assert_eq!(tree[v].parent, None);
            } else {
                prop_assert!(tree[v].parent.is_some());
            }
        }
        prop_assert_eq!(edge_count, g.n() - 1);
        let depth = tree.iter().map(|t| t.depth).max().unwrap();
        prop_assert!(stats.rounds <= depth + 3);
    }

    /// Convergecast equals the centralized fold for every aggregate.
    #[test]
    fn converge_cast_equals_fold(g in arb_graph(), values_seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(values_seed);
        use rand::Rng as _;
        let values: Vec<u128> = (0..g.n()).map(|_| rng.gen_range(0..1_000_000u128)).collect();
        let (tree, _) = primitives::bfs_tree(&g, 0, &cfg(&g)).unwrap();
        for (op, want) in [
            (primitives::Aggregate::Max, values.iter().copied().max().unwrap()),
            (primitives::Aggregate::Min, values.iter().copied().min().unwrap()),
            (primitives::Aggregate::Sum, values.iter().copied().sum::<u128>()),
        ] {
            let (got, _) = primitives::converge_cast(&g, 0, &wide(&g), &tree, &values, op).unwrap();
            prop_assert_eq!(got, want);
        }
    }

    /// Pipelined broadcast: everyone gets the list, in O(depth + k) rounds.
    #[test]
    fn broadcast_delivers_everywhere(g in arb_graph(), items in proptest::collection::vec(any::<u64>(), 0..20)) {
        let items: Vec<u128> = items.into_iter().map(u128::from).collect();
        let (tree, _) = primitives::bfs_tree(&g, 0, &cfg(&g)).unwrap();
        let (out, stats) = primitives::pipelined_broadcast(&g, 0, &wide(&g), &tree, &items).unwrap();
        for v in g.nodes() {
            prop_assert_eq!(&out[v], &items);
        }
        let depth = tree.iter().map(|t| t.depth).max().unwrap();
        prop_assert!(stats.rounds <= 2 * depth + items.len() + 6);
    }

    /// Collect gathers exactly the contributed multiset.
    #[test]
    fn collect_gathers_multiset(g in arb_graph(), density in 0u32..3) {
        let items: Vec<Vec<(u64, u128)>> = (0..g.n())
            .map(|v| {
                (0..(v as u32 % (density + 1)))
                    .map(|j| ((v * 10 + j as usize) as u64, (v * v) as u128))
                    .collect()
            })
            .collect();
        let (tree, _) = primitives::bfs_tree(&g, 0, &cfg(&g)).unwrap();
        let (got, _) = primitives::collect_at_leader(&g, 0, &wide(&g), &tree, &items).unwrap();
        let mut want: Vec<(u64, u128)> = items.iter().flatten().copied().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Vector convergecast equals the columnwise fold.
    #[test]
    fn vector_cast_equals_columnwise_fold(g in arb_graph(), k in 1usize..8, seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        use rand::Rng as _;
        let values: Vec<Vec<u128>> = (0..g.n())
            .map(|_| (0..k).map(|_| rng.gen_range(0..10_000u128)).collect())
            .collect();
        let (tree, _) = primitives::bfs_tree(&g, 0, &cfg(&g)).unwrap();
        let (got, _) = primitives::converge_cast_vec(
            &g, 0, &wide(&g), &tree, &values, primitives::Aggregate::Max,
        ).unwrap();
        for j in 0..k {
            let want = (0..g.n()).map(|v| values[v][j]).max().unwrap();
            prop_assert_eq!(got[j], want, "column {}", j);
        }
    }

    /// The simulator never lets a run exceed its bandwidth budget (peak
    /// channel load is within the configured bits).
    #[test]
    fn bandwidth_budget_respected(g in arb_graph()) {
        let config = cfg(&g);
        let budget = config.bandwidth.get();
        let (_, stats) = primitives::bfs_tree(&g, 0, &config).unwrap();
        prop_assert!(stats.max_channel_bits <= budget);
    }
}
