//! The round engine's zero-allocation claim, measured: once the arenas have
//! warmed up (a handful of rounds grows every inbox, outbox, and scratch
//! buffer to its steady-state capacity), `Network::step` must not touch the
//! heap at all. A counting global allocator makes any regression — a stray
//! `clone`, a rebuilt `Vec`, a formatted string — an immediate test failure
//! rather than a slow perf drift.
//!
//! The library itself is `#![forbid(unsafe_code)]`; the `GlobalAlloc` shim
//! below lives in this integration-test crate, where that lint does not
//! apply. This file holds exactly one `#[test]` so no sibling test can
//! allocate concurrently and pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use congest_graph::{generators, NodeId};
use congest_sim::{Bandwidth, Mailbox, Network, NodeCtx, NodeProgram, SimConfig, Status};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static REALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn heap_ops() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst) + REALLOCATIONS.load(Ordering::SeqCst)
}

/// Endless gossip: every node rebroadcasts a mixed digest every round, so
/// each steady-state round moves `2m` messages through the full pipeline
/// (dispatch, bandwidth accounting, arena merge).
struct EndlessGossip {
    digest: u64,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 31)
}

impl NodeProgram for EndlessGossip {
    type Msg = u64;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
        self.digest = mix(ctx.id as u64 + 1);
        mb.broadcast(ctx, self.digest);
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        _round: usize,
        inbox: &[(NodeId, u64)],
        mb: &mut Mailbox<u64>,
    ) -> Status {
        for &(_, d) in inbox {
            self.digest = mix(self.digest ^ d);
        }
        mb.broadcast(ctx, self.digest);
        Status::Running
    }

    fn finish(self, _ctx: &NodeCtx) -> u64 {
        self.digest
    }
}

#[test]
fn steady_state_rounds_do_not_allocate() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = generators::erdos_renyi_connected(40, 0.15, 1, &mut rng);
    let config = SimConfig {
        bandwidth: Bandwidth::bits(160),
        ..SimConfig::standard(g.n(), 1)
    };
    let mut net = Network::new(&g, 0, config, |_, _| EndlessGossip { digest: 0 });

    // Warm-up: the first steps grow every arena (inboxes, pending, outboxes,
    // channel scratch) to steady-state capacity.
    for _ in 0..8 {
        net.step().expect("warm-up step succeeds");
    }

    let before = heap_ops();
    for _ in 0..32 {
        net.step().expect("steady-state step succeeds");
    }
    let delta = heap_ops() - before;
    assert_eq!(
        delta, 0,
        "steady-state rounds must be allocation-free, saw {delta} heap ops over 32 rounds"
    );
}
