//! The round engine's zero-allocation claim, measured: once the arenas have
//! warmed up (a handful of rounds grows every inbox, outbox, and scratch
//! buffer to its steady-state capacity), `Network::step` must not touch the
//! heap at all — **including with a live [`SimMetrics`] bundle attached**,
//! whose per-round updates are relaxed atomic adds on pre-registered
//! handles. A counting global allocator makes any regression — a stray
//! `clone`, a rebuilt `Vec`, a formatted string — an immediate test failure
//! rather than a slow perf drift.
//!
//! The library itself is `#![forbid(unsafe_code)]`; the `GlobalAlloc` shim
//! comes from `wdr_metrics::heap`, which carries the only `unsafe` in the
//! metrics stack. This file holds exactly one `#[test]` so no sibling test
//! can allocate concurrently and pollute the counters.

use std::alloc::System;

use congest_graph::{generators, NodeId};
use congest_sim::{
    Bandwidth, Mailbox, Network, NodeCtx, NodeProgram, SimConfig, SimMetrics, Status,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wdr_metrics::heap::{heap_ops, track_current_thread, CountingAlloc};
use wdr_metrics::MetricsRegistry;

#[global_allocator]
static GLOBAL: CountingAlloc<System> = CountingAlloc::new(System);

/// Endless gossip: every node rebroadcasts a mixed digest every round, so
/// each steady-state round moves `2m` messages through the full pipeline
/// (dispatch, bandwidth accounting, arena merge).
struct EndlessGossip {
    digest: u64,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 31)
}

impl NodeProgram for EndlessGossip {
    type Msg = u64;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
        self.digest = mix(ctx.id as u64 + 1);
        mb.broadcast(ctx, self.digest);
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        _round: usize,
        inbox: &[(NodeId, u64)],
        mb: &mut Mailbox<u64>,
    ) -> Status {
        for &(_, d) in inbox {
            self.digest = mix(self.digest ^ d);
        }
        mb.broadcast(ctx, self.digest);
        Status::Running
    }

    fn finish(self, _ctx: &NodeCtx) -> u64 {
        self.digest
    }
}

#[test]
fn steady_state_rounds_do_not_allocate() {
    track_current_thread();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = generators::erdos_renyi_connected(40, 0.15, 1, &mut rng);
    let registry = MetricsRegistry::new();
    let metrics = SimMetrics::register(&registry, "sim");
    let config = SimConfig {
        bandwidth: Bandwidth::bits(160),
        ..SimConfig::standard(g.n(), 1)
    }
    .with_metrics(metrics.clone());
    let mut net = Network::new(&g, 0, config, |_, _| EndlessGossip { digest: 0 });

    // Warm-up: the first steps grow every arena (inboxes, pending, outboxes,
    // channel scratch) to steady-state capacity.
    for _ in 0..8 {
        net.step().expect("warm-up step succeeds");
    }

    let rounds_before = metrics.rounds.get();
    let before = heap_ops();
    for _ in 0..32 {
        net.step().expect("steady-state step succeeds");
    }
    let delta = heap_ops() - before;
    assert_eq!(
        delta, 0,
        "steady-state rounds (metrics attached) must be allocation-free, \
         saw {delta} heap ops over 32 rounds"
    );
    assert_eq!(
        metrics.rounds.get() - rounds_before,
        32,
        "the metrics bundle observed every steady-state round"
    );
    assert_eq!(metrics.messages.get(), net.stats().messages);
    assert_eq!(metrics.bits.get(), net.stats().bits);
}
