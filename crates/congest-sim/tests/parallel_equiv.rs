//! The parallel round engine's load-bearing property, tested: under the
//! `parallel` feature, [`Parallelism::Parallel`] produces **bit-identical**
//! observable behavior to the sequential engine — node outputs, the full
//! [`RoundStats`] (including the [`ResilienceBudget`] and message log),
//! per-node [`Quality`], and the exact trace-event sequence — across random
//! graphs, payload seeds, fault plans, and thread-pool sizes.
//!
//! CI's parallel lane greps for these tests by name; renaming them breaks
//! the "equivalence tests actually ran" check in `.github/workflows/ci.yml`.

#![cfg(feature = "parallel")]

use std::sync::Arc;

use congest_graph::{generators, NodeId, WeightedGraph};
use congest_sim::telemetry::CollectingTracer;
use congest_sim::{
    FaultPlan, Mailbox, Network, NodeCtx, NodeProgram, Parallelism, Quality, RoundStats, SimConfig,
    Status, Telemetry, TraceEvent,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Gossip workload: each node folds its inbox into a digest and rebroadcasts
/// for a fixed number of rounds. The digest is sensitive to message *order*,
/// so any merge-order divergence between the engines shows up in the output.
struct Gossip {
    digest: u64,
    rounds: usize,
}

impl NodeProgram for Gossip {
    type Msg = u64;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
        self.digest = mix(ctx.id as u64 + 1);
        mb.broadcast(ctx, self.digest);
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &[(NodeId, u64)],
        mb: &mut Mailbox<u64>,
    ) -> Status {
        // Deliberately order-sensitive fold (not commutative).
        for &(from, d) in inbox {
            self.digest = mix(self.digest.rotate_left(7) ^ d ^ from as u64);
        }
        if round < self.rounds {
            mb.broadcast(ctx, self.digest);
            Status::Running
        } else {
            Status::Done
        }
    }

    fn finish(self, _ctx: &NodeCtx) -> u64 {
        self.digest
    }
}

/// Everything an engine run observably produces.
#[derive(Debug, PartialEq)]
struct Observed {
    outputs: Vec<(u64, Quality)>,
    stats: RoundStats,
    events: Vec<TraceEvent>,
}

fn run_engine(g: &WeightedGraph, base: &SimConfig, mode: Parallelism, rounds: usize) -> Observed {
    let tracer = Arc::new(CollectingTracer::default());
    let config = base
        .clone()
        .with_telemetry(Telemetry::new(tracer.clone()))
        .with_parallelism(mode);
    let mut net = Network::new(g, 0, config, |_, _| Gossip { digest: 0, rounds });
    let outputs = net.run_with_quality().expect("run succeeds");
    let stats = net.stats().clone();
    Observed {
        outputs,
        stats,
        events: tracer.events(),
    }
}

fn arb_case() -> impl Strategy<Value = (WeightedGraph, usize, Option<FaultPlan>)> {
    (
        4usize..20,
        any::<u64>(),
        3usize..10,
        any::<u64>(),
        0usize..4,
    )
        .prop_map(|(n, gseed, rounds, fseed, faultiness)| {
            let mut rng = ChaCha8Rng::seed_from_u64(gseed);
            let g = generators::erdos_renyi_connected(n, 0.25, 4, &mut rng);
            // faultiness 0 = lossless run; 1..=3 = drops plus that many
            // transient non-leader crashes (so the run still quiesces).
            let plan = (faultiness > 0 && n > 4).then(|| {
                let mut plan = FaultPlan::new(fseed).with_drop_rate(0.15);
                for c in 0..faultiness - 1 {
                    plan = plan.with_crash(1 + c, 1 + c, Some(3 + c));
                }
                plan
            });
            (g, rounds, plan)
        })
}

fn base_cfg(g: &WeightedGraph, plan: Option<FaultPlan>) -> SimConfig {
    let mut cfg = SimConfig {
        bandwidth: congest_sim::Bandwidth::bits(160),
        ..SimConfig::standard(g.n(), g.max_weight())
    }
    .with_message_log()
    .with_channel_profile();
    if let Some(plan) = plan {
        cfg = cfg.with_faults(plan);
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential and parallel engines agree bit-for-bit on outputs, stats
    /// (rounds, messages, bits, message log, resilience budget), per-node
    /// quality, and the complete trace-event sequence.
    #[test]
    fn parallel_engine_is_bit_identical(case in arb_case()) {
        let (g, rounds, plan) = case;
        let cfg = base_cfg(&g, plan);
        let seq = run_engine(&g, &cfg, Parallelism::Sequential, rounds);
        let par = run_engine(&g, &cfg, Parallelism::Parallel, rounds);
        prop_assert_eq!(&seq.outputs, &par.outputs);
        prop_assert_eq!(&seq.stats, &par.stats);
        prop_assert_eq!(&seq.events, &par.events);
    }

    /// The agreement is independent of the thread-pool size.
    #[test]
    fn parallel_engine_is_pool_size_invariant(case in arb_case(), threads in 1usize..9) {
        let (g, rounds, plan) = case;
        let cfg = base_cfg(&g, plan);
        let seq = run_engine(&g, &cfg, Parallelism::Sequential, rounds);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool builds");
        let par = pool.install(|| run_engine(&g, &cfg, Parallelism::Parallel, rounds));
        prop_assert_eq!(&seq.outputs, &par.outputs);
        prop_assert_eq!(&seq.stats, &par.stats);
        prop_assert_eq!(&seq.events, &par.events);
    }
}

/// Fixed-seed smoke version so `cargo test parallel_engine` always has a
/// deterministic, fast member even under `--test-threads=1`.
#[test]
fn parallel_engine_matches_on_fixed_case() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let g = generators::erdos_renyi_connected(16, 0.3, 4, &mut rng);
    let plan = FaultPlan::new(7)
        .with_drop_rate(0.2)
        .with_crash(3, 2, Some(5));
    let cfg = base_cfg(&g, Some(plan));
    let seq = run_engine(&g, &cfg, Parallelism::Sequential, 8);
    let par = run_engine(&g, &cfg, Parallelism::Parallel, 8);
    assert_eq!(seq, par);
}
