//! The synchronous round-by-round network runner.

use crate::faults::{DropReason, FaultOracle, FaultPlan};
use crate::model::{
    MaybeSend, MessageRecord, NodeCtx, Payload, RoundStats, SimConfig, SimError, Status,
};
use crate::telemetry::{BandwidthProfile, TraceEvent};
use congest_graph::{NodeId, WeightedGraph};
use serde::Serialize;
use std::collections::BTreeSet;

#[cfg(feature = "parallel")]
use crate::model::Parallelism;

/// A per-node algorithm.
///
/// One instance runs at every node. In each round the simulator delivers the
/// messages sent to this node in the previous round, and the program replies
/// with messages for the next round via [`Mailbox`].
///
/// Local computation is free (the CONGEST model only counts communication).
///
/// Under the `parallel` cargo feature the [`MaybeSend`] supertrait resolves
/// to [`Send`], so programs can be fanned across the compute-phase thread
/// pool; without it the bound is empty and nothing changes.
pub trait NodeProgram: MaybeSend {
    /// Message type exchanged by this program.
    type Msg: Payload;
    /// Per-node result extracted when the run finishes.
    type Output;

    /// Called once before round 1; may already send messages.
    fn start(&mut self, ctx: &NodeCtx, mailbox: &mut Mailbox<Self::Msg>);

    /// Called every round with the messages received this round
    /// (`(sender, message)` pairs). Returns the node's status.
    fn round(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &[(NodeId, Self::Msg)],
        mailbox: &mut Mailbox<Self::Msg>,
    ) -> Status;

    /// Extracts the node's output after the network has quiesced.
    fn finish(self, ctx: &NodeCtx) -> Self::Output;
}

/// Collects the messages a node sends in one round.
///
/// The network owns one mailbox per node for the whole run and drains it in
/// place every round, so a steady-state round performs no allocation — see
/// DESIGN.md §"Round engine".
#[derive(Debug)]
pub struct Mailbox<M> {
    out: Vec<(NodeId, M)>,
}

impl<M: Payload> Mailbox<M> {
    pub(crate) fn new() -> Mailbox<M> {
        Mailbox { out: Vec::new() }
    }

    pub(crate) fn with_capacity(capacity: usize) -> Mailbox<M> {
        Mailbox {
            out: Vec::with_capacity(capacity),
        }
    }

    /// Queues `msg` for neighbor `to` (delivered next round).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.out.push((to, msg));
    }

    /// Queues `msg` for every neighbor (cloning once per neighbor except
    /// the last, which receives the original).
    pub fn broadcast(&mut self, ctx: &NodeCtx, msg: M) {
        if let Some((&(last, _), rest)) = ctx.neighbors.split_last() {
            for &(v, _) in rest {
                self.out.push((v, msg.clone()));
            }
            self.out.push((last, msg));
        }
    }

    /// Moves every queued message to the back of `scratch`, leaving this
    /// mailbox empty but with its buffer capacity intact — the
    /// reuse-friendly alternative to moving the buffer out and allocating a
    /// fresh one next round.
    pub fn drain_into(&mut self, scratch: &mut Vec<(NodeId, M)>) {
        scratch.append(&mut self.out);
    }
}

/// A synchronous CONGEST network executing one [`NodeProgram`] per node.
///
/// # Examples
///
/// Flood a token from the leader and count rounds:
///
/// ```
/// use congest_sim::{Mailbox, Network, NodeCtx, NodeProgram, SimConfig, Status};
/// use congest_graph::{generators, NodeId};
///
/// struct Flood { seen: bool }
/// impl NodeProgram for Flood {
///     type Msg = ();
///     type Output = bool;
///     fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<()>) {
///         if ctx.is_leader() {
///             self.seen = true;
///             mb.broadcast(ctx, ());
///         }
///     }
///     fn round(&mut self, ctx: &NodeCtx, _r: usize, inbox: &[(NodeId, ())], mb: &mut Mailbox<()>) -> Status {
///         if !inbox.is_empty() && !self.seen {
///             self.seen = true;
///             mb.broadcast(ctx, ());
///         }
///         if self.seen { Status::Done } else { Status::Running }
///     }
///     fn finish(self, _ctx: &NodeCtx) -> bool { self.seen }
/// }
///
/// let g = generators::path(5, 1);
/// let mut net = Network::new(&g, 0, SimConfig::standard(5, 1), |_, _| Flood { seen: false });
/// let out = net.run()?;
/// assert!(out.iter().all(|&b| b));
/// assert_eq!(net.stats().rounds, 5); // token reaches node 4 in round 4, node halts detecting quiescence next round
/// # Ok::<(), congest_sim::SimError>(())
/// ```
pub struct Network<P: NodeProgram> {
    ctxs: Vec<NodeCtx>,
    programs: Vec<P>,
    status: Vec<Status>,
    /// Messages to deliver next round: `pending[v] = (from, msg)*`.
    /// Double-buffered with `inboxes`: the two arenas swap every round and
    /// are recycled via `clear()`, so a steady-state round allocates nothing.
    pending: Vec<Vec<(NodeId, P::Msg)>>,
    /// Messages being delivered this round (the other arena half).
    inboxes: Vec<Vec<(NodeId, P::Msg)>>,
    /// One pre-owned outbox per node, drained in place by the merge phase.
    mailboxes: Vec<Mailbox<P::Msg>>,
    /// Per-destination accounting for the sender currently merging.
    per_channel: Vec<ChannelLoad>,
    /// Maps a neighbor position of the current sender to `index + 1` in
    /// `per_channel` (0 = untouched), giving O(1) per-message lookup while
    /// preserving first-use order; only touched slots are re-zeroed.
    chan_slot: Vec<u32>,
    config: SimConfig,
    stats: RoundStats,
    started: bool,
    /// Peak per-channel bit load of the round currently executing.
    round_peak: u32,
    /// Streaming per-channel load histogram (when profiling is enabled).
    profile: Option<BandwidthProfile>,
    /// Compiled fault plan (when [`SimConfig::with_faults`] is set).
    faults: Option<FaultOracle>,
    /// Senders whose messages to node `v` the fault model discarded.
    lost_from: Vec<BTreeSet<NodeId>>,
    /// Crash state of each node in the round most recently executed.
    crashed_now: Vec<bool>,
    /// `true` for nodes that were crashed in at least one executed round.
    ever_crashed: Vec<bool>,
    /// Whether the one-time message-log truncation warning fired.
    log_truncated: bool,
}

/// Bits and message count one sender put on one channel this round; the
/// running count keys the fault oracle's per-message drop decisions.
#[derive(Clone, Copy, Debug)]
struct ChannelLoad {
    to: NodeId,
    bits: u32,
    count: u64,
    /// `to`'s position in the sender's neighbor list (the `chan_slot` key).
    pos: u32,
}

/// Per-node delivery quality of a run under a fault plan.
///
/// Returned by [`Network::run_with_quality`]; without faults every node is
/// [`Quality::Exact`].
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub enum Quality {
    /// The node saw every message addressed to it and missed no rounds:
    /// its output is what the ideal lossless network would have produced.
    Exact,
    /// The node's output may be stale or wrong: the fault model discarded
    /// at least one message addressed to it, or the node itself spent
    /// rounds crashed (in which case `missing_sources` may be empty).
    Degraded {
        /// Senders whose messages to this node were lost, ascending.
        missing_sources: Vec<NodeId>,
    },
    /// The node was crashed when the network quiesced; its output is
    /// whatever state it held when it went down.
    Failed,
}

impl Quality {
    /// `true` for [`Quality::Exact`].
    pub fn is_exact(&self) -> bool {
        *self == Quality::Exact
    }
}

impl<P: NodeProgram> Network<P> {
    /// Builds a network over `graph` with the given `leader`, constructing a
    /// program per node via `make`.
    ///
    /// # Panics
    ///
    /// Panics if `leader >= graph.n()`.
    pub fn new(
        graph: &WeightedGraph,
        leader: NodeId,
        config: SimConfig,
        mut make: impl FnMut(NodeId, &NodeCtx) -> P,
    ) -> Network<P> {
        assert!(leader < graph.n(), "leader out of range");
        let n = graph.n();
        let max_weight = graph.max_weight();
        let ctxs: Vec<NodeCtx> = (0..n)
            .map(|v| NodeCtx {
                id: v,
                n,
                neighbors: graph.neighbors(v).collect(),
                leader,
                max_weight,
            })
            .collect();
        let programs = ctxs.iter().map(|c| make(c.id, c)).collect();
        let profile = config
            .profile_channels
            .then(|| BandwidthProfile::new(config.bandwidth.get()));
        let faults = config.faults.as_deref().map(FaultPlan::compile);
        let max_degree = ctxs.iter().map(NodeCtx::degree).max().unwrap_or(0);
        // Outboxes start sized for one broadcast; inbox arenas grow to their
        // high-water mark during warm-up and are then recycled in place.
        let mailboxes = ctxs
            .iter()
            .map(|c| Mailbox::with_capacity(c.degree()))
            .collect();
        Network {
            ctxs,
            programs,
            status: vec![Status::Running; n],
            pending: (0..n).map(|_| Vec::new()).collect(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            mailboxes,
            per_channel: Vec::with_capacity(max_degree),
            chan_slot: vec![0; max_degree],
            config,
            stats: RoundStats::default(),
            started: false,
            round_peak: 0,
            profile,
            faults,
            lost_from: vec![BTreeSet::new(); n],
            crashed_now: vec![false; n],
            ever_crashed: vec![false; n],
            log_truncated: false,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.ctxs.len()
    }

    /// The accumulated statistics so far.
    pub fn stats(&self) -> &RoundStats {
        &self.stats
    }

    /// The per-channel load histogram, if
    /// [`SimConfig::with_channel_profile`] was set.
    pub fn bandwidth_profile(&self) -> Option<&BandwidthProfile> {
        self.profile.as_ref()
    }

    /// Merges node `from`'s outbox into the per-destination inbox arenas,
    /// charging bandwidth and consulting the fault oracle.
    ///
    /// The caller invokes this for senders in ascending id order, and a
    /// sender's messages are processed in send order, so inbox contents are
    /// fully determined by what the programs sent — never by how the compute
    /// phase was scheduled.
    fn dispatch(&mut self, from: NodeId, round: usize) -> Result<(), SimError> {
        if self.mailboxes[from].out.is_empty() {
            return Ok(());
        }
        let result = self.deliver_outbox(from, round);
        if result.is_ok() {
            // On a violation the sim aborts mid-sender: skip the channel
            // roll-up, exactly as the pre-engine dispatch did.
            self.finalize_channels(from, round);
        }
        // Reset the scratch, re-zeroing only the slots this sender touched.
        for i in 0..self.per_channel.len() {
            self.chan_slot[self.per_channel[i].pos as usize] = 0;
        }
        self.per_channel.clear();
        result
    }

    fn deliver_outbox(&mut self, from: NodeId, round: usize) -> Result<(), SimError> {
        let budget = self.config.bandwidth.get();
        for (to, msg) in self.mailboxes[from].out.drain(..) {
            let Some(pos) = self.ctxs[from].neighbor_pos(to) else {
                return Err(SimError::NotAdjacent { from, to });
            };
            let bits = msg.size_bits();
            let slot = self.chan_slot[pos];
            let (total, index) = if slot == 0 {
                self.per_channel.push(ChannelLoad {
                    to,
                    bits,
                    count: 1,
                    pos: pos as u32,
                });
                self.chan_slot[pos] = self.per_channel.len() as u32;
                (bits, 0)
            } else {
                let entry = &mut self.per_channel[slot as usize - 1];
                entry.bits += bits;
                entry.count += 1;
                (entry.bits, entry.count - 1)
            };
            if total > budget {
                return Err(SimError::BandwidthExceeded {
                    from,
                    to,
                    round,
                    attempted_bits: total,
                    budget_bits: budget,
                });
            }
            // The sender used the channel whether or not the fault model
            // loses the message: attempted sends are charged to the
            // aggregate counters (and the log), and losses are accounted
            // separately in `stats.resilience`.
            self.stats.messages += 1;
            self.stats.bits += u64::from(bits);
            if self.config.log_messages {
                if self.stats.message_log.len() < self.config.message_log_cap {
                    self.stats.message_log.push(MessageRecord {
                        round,
                        from,
                        to,
                        bits,
                    });
                } else if !self.log_truncated {
                    self.log_truncated = true;
                    let cap = self.config.message_log_cap;
                    self.config
                        .telemetry
                        .emit_with(|| TraceEvent::MessageLogTruncated { round, cap });
                }
            }
            if let Some(oracle) = &self.faults {
                if let Some(throttle) = oracle.throttle(from, to) {
                    if total > throttle {
                        self.stats.resilience.dropped_messages += 1;
                        self.stats.resilience.dropped_bits += u64::from(bits);
                        self.stats.resilience.throttled_messages += 1;
                        self.lost_from[to].insert(from);
                        if let Some(m) = &self.config.metrics {
                            m.record_drop(DropReason::Throttled);
                        }
                        self.config
                            .telemetry
                            .emit_with(|| TraceEvent::LinkThrottled {
                                round,
                                from,
                                to,
                                budget_bits: throttle,
                            });
                        continue;
                    }
                }
                if let Some(reason) = oracle.drops(round, from, to, index) {
                    self.stats.resilience.dropped_messages += 1;
                    self.stats.resilience.dropped_bits += u64::from(bits);
                    self.lost_from[to].insert(from);
                    if let Some(m) = &self.config.metrics {
                        m.record_drop(reason);
                    }
                    self.config
                        .telemetry
                        .emit_with(|| TraceEvent::MessageDropped {
                            round,
                            from,
                            to,
                            bits,
                            reason,
                        });
                    continue;
                }
                if !oracle.node_alive(to, round) {
                    self.stats.resilience.dropped_messages += 1;
                    self.stats.resilience.dropped_bits += u64::from(bits);
                    self.lost_from[to].insert(from);
                    if let Some(m) = &self.config.metrics {
                        m.record_drop(DropReason::ReceiverCrashed);
                    }
                    self.config
                        .telemetry
                        .emit_with(|| TraceEvent::MessageDropped {
                            round,
                            from,
                            to,
                            bits,
                            reason: DropReason::ReceiverCrashed,
                        });
                    continue;
                }
            }
            self.pending[to].push((from, msg));
        }
        Ok(())
    }

    /// Rolls this sender's per-channel totals into the round statistics, in
    /// first-use order (the order `per_channel` accumulated in).
    fn finalize_channels(&mut self, from: NodeId, round: usize) {
        let budget = self.config.bandwidth.get();
        for i in 0..self.per_channel.len() {
            let ChannelLoad { to, bits: b, .. } = self.per_channel[i];
            self.stats.max_channel_bits = self.stats.max_channel_bits.max(b);
            self.round_peak = self.round_peak.max(b);
            if let Some(profile) = &mut self.profile {
                profile.record(from, to, b);
            }
            // Announce channels at ≥90% of budget: the congestion frontier
            // an algorithm designer actually tunes against.
            if u64::from(b) * 10 >= u64::from(budget) * 9 {
                if let Some(m) = &self.config.metrics {
                    m.saturated_channels.inc();
                }
                self.config
                    .telemetry
                    .emit_with(|| TraceEvent::ChannelSaturation {
                        round,
                        from,
                        to,
                        bits: b,
                        budget_bits: budget,
                    });
            }
        }
    }

    /// Executes one synchronous round; returns `true` if the network is
    /// quiescent afterwards (all programs [`Status::Done`] and no messages in
    /// flight).
    ///
    /// Each round runs in two phases. **Compute**: every live node's
    /// [`NodeProgram::round`] executes against its own inbox and its own
    /// pre-owned outbox — no shared state, so under the `parallel` feature
    /// (with [`crate::Parallelism::Parallel`]) the nodes fan across a thread
    /// pool. **Merge**: outboxes drain into the per-destination inbox arenas
    /// in ascending sender order, where bandwidth accounting, telemetry, and
    /// fault decisions happen single-threaded. Fault decisions are pure
    /// hashes of `(seed, round, edge, message index)`, so the merge — and
    /// with it every output, statistic, and trace event — is bit-identical
    /// however the compute phase was scheduled.
    ///
    /// # Errors
    ///
    /// Propagates adjacency and bandwidth violations.
    pub fn step(&mut self) -> Result<bool, SimError> {
        let messages_before = self.stats.messages;
        let bits_before = self.stats.bits;
        self.round_peak = 0;
        if !self.started {
            self.started = true;
            // `start` sends arrive in round 1; charge them to round 1.
            for v in 0..self.n() {
                self.programs[v].start(&self.ctxs[v], &mut self.mailboxes[v]);
            }
            for v in 0..self.n() {
                self.dispatch(v, 1)?;
            }
        }
        let round = self.stats.rounds + 1;
        if round > self.config.max_rounds {
            return Err(SimError::RoundLimitExceeded {
                max_rounds: self.config.max_rounds,
                rounds_executed: self.stats.rounds,
            });
        }
        if let Some(oracle) = &self.faults {
            for v in 0..self.ctxs.len() {
                let crashed = !oracle.node_alive(v, round);
                if crashed != self.crashed_now[v] {
                    self.config.telemetry.emit_with(|| {
                        if crashed {
                            TraceEvent::NodeCrashed { node: v, round }
                        } else {
                            TraceEvent::NodeRecovered { node: v, round }
                        }
                    });
                }
                self.crashed_now[v] = crashed;
                if crashed {
                    self.ever_crashed[v] = true;
                    self.stats.resilience.crashed_node_rounds += 1;
                    if let Some(m) = &self.config.metrics {
                        m.crashed_node_rounds.inc();
                    }
                }
            }
        }
        // Flip the double buffer: last round's accumulation arena becomes
        // this round's inboxes, and the cleared former inboxes take over as
        // the accumulation arena. Capacities persist across the swap.
        std::mem::swap(&mut self.inboxes, &mut self.pending);
        self.stats.rounds = round;
        self.compute(round);
        let mut merged = Ok(());
        for v in 0..self.n() {
            // A crashed node executed nothing this round (its outbox is
            // empty; messages addressed to it were already discarded at
            // dispatch time) and its program state is preserved for when
            // (if) the crash window closes.
            if self.crashed_now[v] {
                continue;
            }
            if let Err(err) = self.dispatch(v, round + 1) {
                merged = Err(err);
                break;
            }
        }
        // Recycle the delivery arena even when the merge aborted, so the
        // network's buffers stay consistent for post-mortem inspection.
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        merged?;
        // Attribute everything sent while executing this round (including
        // `start` sends on the first step) to this round's event, so the
        // events sum to the aggregate counters exactly.
        let messages = self.stats.messages - messages_before;
        let bits = self.stats.bits - bits_before;
        let max_channel_bits = self.round_peak;
        if let Some(m) = &self.config.metrics {
            m.record_round(messages, bits);
        }
        self.config
            .telemetry
            .emit_with(|| TraceEvent::RoundCompleted {
                round,
                messages,
                bits,
                max_channel_bits,
            });
        // A crashed node cannot act, so it does not hold up quiescence; if
        // the network settles while it is down, its quality is `Failed`.
        let quiescent = self
            .status
            .iter()
            .zip(&self.crashed_now)
            .all(|(&s, &crashed)| s == Status::Done || crashed)
            && self.pending.iter().all(Vec::is_empty);
        Ok(quiescent)
    }

    /// The compute phase: runs every live node's [`NodeProgram::round`],
    /// each reading only its own inbox and writing only its own outbox.
    fn compute(&mut self, round: usize) {
        #[cfg(feature = "parallel")]
        if self.config.parallelism == Parallelism::Parallel {
            self.compute_parallel(round);
            return;
        }
        for v in 0..self.ctxs.len() {
            if self.crashed_now[v] {
                continue;
            }
            self.status[v] = self.programs[v].round(
                &self.ctxs[v],
                round,
                &self.inboxes[v],
                &mut self.mailboxes[v],
            );
        }
    }

    /// Fans the compute phase across the ambient thread pool in contiguous
    /// node chunks. Safe because each node's slice elements (program,
    /// status, outbox) are disjoint `&mut`, and everything shared (ctxs,
    /// inboxes, crash flags) is read-only; equivalent to the sequential
    /// loop because no node can observe another's round-`r` activity.
    #[cfg(feature = "parallel")]
    fn compute_parallel(&mut self, round: usize) {
        let n = self.ctxs.len();
        let threads = rayon::current_num_threads().max(1);
        let chunk = n.div_ceil(threads);
        let ctxs = &self.ctxs;
        let crashed = &self.crashed_now;
        let inboxes = &self.inboxes;
        let programs = &mut self.programs;
        let statuses = &mut self.status;
        let mailboxes = &mut self.mailboxes;
        rayon::scope(|s| {
            for (((programs, statuses), mailboxes), base) in programs
                .chunks_mut(chunk)
                .zip(statuses.chunks_mut(chunk))
                .zip(mailboxes.chunks_mut(chunk))
                .zip((0..n).step_by(chunk))
            {
                s.spawn(move || {
                    for (i, program) in programs.iter_mut().enumerate() {
                        let v = base + i;
                        if crashed[v] {
                            continue;
                        }
                        statuses[i] =
                            program.round(&ctxs[v], round, &inboxes[v], &mut mailboxes[i]);
                    }
                });
            }
        });
    }

    /// Runs until quiescence and returns every node's output.
    ///
    /// # Errors
    ///
    /// Returns an error on adjacency/bandwidth violations or if
    /// `max_rounds` elapse first.
    pub fn run(&mut self) -> Result<Vec<P::Output>, SimError> {
        self.run_to_quiescence()?;
        let programs = std::mem::take(&mut self.programs);
        Ok(programs
            .into_iter()
            .zip(&self.ctxs)
            .map(|(p, c)| p.finish(c))
            .collect())
    }

    /// Runs until quiescence and returns every node's output tagged with
    /// its delivery [`Quality`].
    ///
    /// Without a fault plan every node is [`Quality::Exact`]; under faults
    /// a node is [`Quality::Degraded`] when the fault model discarded a
    /// message addressed to it (listing the affected senders) or when it
    /// spent rounds crashed, and [`Quality::Failed`] when it was down at
    /// the moment the network quiesced.
    ///
    /// # Errors
    ///
    /// Same as [`Network::run`].
    pub fn run_with_quality(&mut self) -> Result<Vec<(P::Output, Quality)>, SimError> {
        self.run_to_quiescence()?;
        let qualities = self.qualities();
        let programs = std::mem::take(&mut self.programs);
        Ok(programs
            .into_iter()
            .zip(&self.ctxs)
            .map(|(p, c)| p.finish(c))
            .zip(qualities)
            .collect())
    }

    /// The per-node delivery quality accumulated so far (see
    /// [`Network::run_with_quality`]).
    pub fn qualities(&self) -> Vec<Quality> {
        (0..self.ctxs.len()).map(|v| self.quality_of(v)).collect()
    }

    fn quality_of(&self, v: NodeId) -> Quality {
        if self.crashed_now[v] {
            Quality::Failed
        } else if self.ever_crashed[v] || !self.lost_from[v].is_empty() {
            Quality::Degraded {
                missing_sources: self.lost_from[v].iter().copied().collect(),
            }
        } else {
            Quality::Exact
        }
    }

    /// Runs until quiescence, keeping the programs in place (use
    /// [`Network::into_outputs`] to extract results).
    ///
    /// # Errors
    ///
    /// Same as [`Network::run`].
    pub fn run_to_quiescence(&mut self) -> Result<(), SimError> {
        loop {
            if self.step()? {
                return Ok(());
            }
        }
    }

    /// Consumes the network, extracting each node's output.
    pub fn into_outputs(self) -> Vec<P::Output> {
        self.programs
            .into_iter()
            .zip(&self.ctxs)
            .map(|(p, c)| p.finish(c))
            .collect()
    }
}

/// Runs a fresh network to quiescence and returns `(outputs, stats)` — the
/// common single-phase pattern.
///
/// The run executes inside a telemetry phase span called `name` (a no-op
/// when the config's [`crate::telemetry::Telemetry`] is disabled, the
/// default). When channel profiling is enabled, the per-channel load
/// summary is emitted just before the span closes; on failure, a
/// [`TraceEvent::SimFailed`] records the error in the trace.
///
/// # Errors
///
/// Same as [`Network::run`].
pub fn run_phase<P: NodeProgram>(
    graph: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
    name: &str,
    make: impl FnMut(NodeId, &NodeCtx) -> P,
) -> Result<(Vec<P::Output>, RoundStats), SimError> {
    let telemetry = config.telemetry.clone();
    let span = telemetry.span(name);
    let mut net = Network::new(graph, leader, config.clone(), make);
    if let Err(err) = net.run_to_quiescence() {
        telemetry.emit_with(|| TraceEvent::SimFailed { error: err.clone() });
        span.end();
        return Err(err);
    }
    if let Some(profile) = net.bandwidth_profile() {
        telemetry.emit_with(|| profile.summary(HOT_EDGE_TOP_K));
    }
    let stats = net.stats().clone();
    span.end();
    Ok((net.into_outputs(), stats))
}

/// Hot edges reported in each end-of-run [`TraceEvent::ChannelProfile`].
const HOT_EDGE_TOP_K: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Bandwidth;
    use congest_graph::generators;

    /// Every node forwards a counter along the path; checks delivery order
    /// and round accounting.
    struct Relay {
        value: Option<u64>,
    }

    impl NodeProgram for Relay {
        type Msg = u64;
        type Output = Option<u64>;

        fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
            if ctx.id == 0 {
                self.value = Some(0);
                mb.send(1, 1);
            }
        }

        fn round(
            &mut self,
            ctx: &NodeCtx,
            _round: usize,
            inbox: &[(NodeId, u64)],
            mb: &mut Mailbox<u64>,
        ) -> Status {
            for &(_, v) in inbox {
                if self.value.is_none() {
                    self.value = Some(v);
                    if ctx.id + 1 < ctx.n {
                        mb.send(ctx.id + 1, v + 1);
                    }
                }
            }
            if self.value.is_some() {
                Status::Done
            } else {
                Status::Running
            }
        }

        fn finish(self, _ctx: &NodeCtx) -> Option<u64> {
            self.value
        }
    }

    #[test]
    fn relay_along_path() {
        let g = generators::path(6, 1);
        let (out, stats) = run_phase(&g, 0, &SimConfig::standard(6, 1), "relay", |_, _| Relay {
            value: None,
        })
        .unwrap();
        assert_eq!(
            out,
            vec![Some(0), Some(1), Some(2), Some(3), Some(4), Some(5)]
        );
        // Value reaches node 5 in round 5 and nothing remains in flight.
        assert_eq!(stats.rounds, 5);
        assert_eq!(stats.messages, 5);
    }

    /// A program that sends to a non-neighbor: must error.
    struct BadSender;

    impl NodeProgram for BadSender {
        type Msg = ();
        type Output = ();
        fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<()>) {
            if ctx.id == 0 {
                mb.send(2, ()); // 0 and 2 are not adjacent on a path
            }
        }
        fn round(
            &mut self,
            _: &NodeCtx,
            _: usize,
            _: &[(NodeId, ())],
            _: &mut Mailbox<()>,
        ) -> Status {
            Status::Done
        }
        fn finish(self, _: &NodeCtx) {}
    }

    #[test]
    fn non_adjacent_send_is_error() {
        let g = generators::path(3, 1);
        let err = run_phase(&g, 0, &SimConfig::standard(3, 1), "bad_sender", |_, _| {
            BadSender
        })
        .unwrap_err();
        assert!(matches!(err, SimError::NotAdjacent { from: 0, to: 2 }));
    }

    /// A program that overloads a channel: must error.
    struct Hog;

    impl NodeProgram for Hog {
        type Msg = u64;
        type Output = ();
        fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
            if ctx.id == 0 {
                for _ in 0..100 {
                    mb.send(1, u64::MAX);
                }
            }
        }
        fn round(
            &mut self,
            _: &NodeCtx,
            _: usize,
            _: &[(NodeId, u64)],
            _: &mut Mailbox<u64>,
        ) -> Status {
            Status::Done
        }
        fn finish(self, _: &NodeCtx) {}
    }

    #[test]
    fn bandwidth_violation_is_error() {
        let g = generators::path(2, 1);
        let cfg = SimConfig {
            bandwidth: Bandwidth::bits(128),
            ..SimConfig::standard(2, 1).with_max_rounds(10)
        };
        let err = run_phase(&g, 0, &cfg, "hog", |_, _| Hog).unwrap_err();
        assert!(matches!(
            err,
            SimError::BandwidthExceeded { from: 0, to: 1, .. }
        ));
    }

    /// A program that never halts: the round cap fires.
    struct Forever;

    impl NodeProgram for Forever {
        type Msg = ();
        type Output = ();
        fn start(&mut self, _: &NodeCtx, _: &mut Mailbox<()>) {}
        fn round(
            &mut self,
            _: &NodeCtx,
            _: usize,
            _: &[(NodeId, ())],
            _: &mut Mailbox<()>,
        ) -> Status {
            Status::Running
        }
        fn finish(self, _: &NodeCtx) {}
    }

    #[test]
    fn round_cap_fires() {
        let g = generators::path(2, 1);
        let cfg = SimConfig::standard(2, 1).with_max_rounds(7);
        let err = run_phase(&g, 0, &cfg, "forever", |_, _| Forever).unwrap_err();
        assert!(matches!(
            err,
            SimError::RoundLimitExceeded {
                max_rounds: 7,
                rounds_executed: 7,
            }
        ));
    }

    /// Regression (PR 2): hitting the round cap must leave the partial
    /// statistics readable, and the error must name the executed count.
    #[test]
    fn round_cap_preserves_partial_stats() {
        let g = generators::path(2, 1);
        let cfg = SimConfig::standard(2, 1).with_max_rounds(7);
        let mut net = Network::new(&g, 0, cfg, |_, _| Forever);
        let err = net.run_to_quiescence().unwrap_err();
        assert_eq!(net.stats().rounds, 7, "executed rounds survive the error");
        assert_eq!(
            err,
            SimError::RoundLimitExceeded {
                max_rounds: 7,
                rounds_executed: 7,
            }
        );
        assert!(err.to_string().contains("7 executed"));
    }

    /// Satellite (PR 2): the first record lost to the message-log cap emits
    /// a one-time warning event instead of truncating silently.
    #[test]
    fn message_log_cap_warns_once() {
        use crate::telemetry::{CollectingTracer, Telemetry};
        use std::sync::Arc;

        let tracer = Arc::new(CollectingTracer::default());
        let g = generators::path(6, 1);
        let cfg = SimConfig::standard(6, 1)
            .with_message_log()
            .with_message_log_cap(2)
            .with_telemetry(Telemetry::new(tracer.clone()));
        let (_, stats) = run_phase(&g, 0, &cfg, "relay", |_, _| Relay { value: None }).unwrap();
        assert_eq!(stats.message_log.len(), 2, "log stops at the cap");
        assert_eq!(stats.messages, 5, "aggregate counters keep counting");
        let truncations: Vec<_> = tracer
            .events()
            .into_iter()
            .filter(|e| matches!(e, TraceEvent::MessageLogTruncated { .. }))
            .collect();
        assert_eq!(
            truncations,
            vec![TraceEvent::MessageLogTruncated { round: 3, cap: 2 }],
            "exactly one warning, at the first lost record"
        );
    }

    /// Relay-style forwarding that gives up (and halts) at a fixed round,
    /// so runs terminate even when every message is lost.
    struct Deadline {
        value: Option<u64>,
        deadline: usize,
    }

    impl NodeProgram for Deadline {
        type Msg = u64;
        type Output = Option<u64>;

        fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
            if ctx.id == 0 {
                self.value = Some(0);
                mb.send(1, 1);
            }
        }

        fn round(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &[(NodeId, u64)],
            mb: &mut Mailbox<u64>,
        ) -> Status {
            for &(_, v) in inbox {
                if self.value.is_none() {
                    self.value = Some(v);
                    if ctx.id + 1 < ctx.n {
                        mb.send(ctx.id + 1, v + 1);
                    }
                }
            }
            if round >= self.deadline {
                Status::Done
            } else {
                Status::Running
            }
        }

        fn finish(self, _ctx: &NodeCtx) -> Option<u64> {
            self.value
        }
    }

    #[test]
    fn dropped_messages_degrade_receivers() {
        use crate::faults::FaultPlan;

        // Forwarding on a path with every message dropped: only the leader
        // knows its value; the first hop is degraded and names the sender.
        let g = generators::path(3, 1);
        let cfg = SimConfig::standard(3, 1)
            .with_max_rounds(50)
            .with_faults(FaultPlan::new(1).with_drop_rate(1.0));
        let mut net = Network::new(&g, 0, cfg, |_, _| Deadline {
            value: None,
            deadline: 5,
        });
        let out = net.run_with_quality().unwrap();
        assert_eq!(out[0].0, Some(0));
        assert_eq!(out[0].1, Quality::Exact, "the leader lost nothing");
        assert_eq!(out[1].0, None);
        assert_eq!(
            out[1].1,
            Quality::Degraded {
                missing_sources: vec![0]
            }
        );
        assert!(net.stats().resilience.dropped_messages > 0);
    }

    #[test]
    fn crashed_node_is_failed_and_does_not_block_quiescence() {
        use crate::faults::FaultPlan;

        let g = generators::path(3, 1);
        let cfg = SimConfig::standard(3, 1)
            .with_max_rounds(50)
            .with_faults(FaultPlan::new(1).with_crash(2, 1, None));
        let mut net = Network::new(&g, 0, cfg, |_, _| Deadline {
            value: None,
            deadline: 5,
        });
        let out = net.run_with_quality().unwrap();
        assert_eq!(out[1].0, Some(1), "the healthy hop still hears the leader");
        assert_eq!(out[2].1, Quality::Failed);
        assert!(net.stats().resilience.crashed_node_rounds > 0);
    }

    #[test]
    fn crash_window_recovery_resumes_with_state_intact() {
        use crate::faults::FaultPlan;

        // Node 1 is down for rounds 1–3; the leader's message is lost, but
        // a (cheating, test-only) re-send in round 5 reaches it after
        // recovery and it still forwards correctly.
        struct Resend {
            inner: Deadline,
        }
        impl NodeProgram for Resend {
            type Msg = u64;
            type Output = Option<u64>;
            fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
                self.inner.start(ctx, mb);
            }
            fn round(
                &mut self,
                ctx: &NodeCtx,
                round: usize,
                inbox: &[(NodeId, u64)],
                mb: &mut Mailbox<u64>,
            ) -> Status {
                if ctx.id == 0 && round == 5 {
                    mb.send(1, 1);
                }
                self.inner.round(ctx, round, inbox, mb)
            }
            fn finish(self, ctx: &NodeCtx) -> Option<u64> {
                self.inner.finish(ctx)
            }
        }

        let g = generators::path(3, 1);
        let cfg = SimConfig::standard(3, 1)
            .with_max_rounds(50)
            .with_faults(FaultPlan::new(1).with_crash(1, 1, Some(4)));
        let mut net = Network::new(&g, 0, cfg, |_, _| Resend {
            inner: Deadline {
                value: None,
                deadline: 10,
            },
        });
        let out = net.run_with_quality().unwrap();
        assert_eq!(out[1].0, Some(1), "recovered node processed the re-send");
        assert!(
            matches!(out[1].1, Quality::Degraded { .. }),
            "but it is still flagged: it missed rounds and a message"
        );
        assert_eq!(out[2].0, Some(2), "and forwarded onward after recovery");
    }

    #[test]
    fn message_log_records_everything() {
        let g = generators::path(3, 1);
        let cfg = SimConfig::standard(3, 1).with_message_log();
        let (_, stats) = run_phase(&g, 0, &cfg, "relay", |_, _| Relay { value: None }).unwrap();
        assert_eq!(stats.message_log.len(), 2);
        assert_eq!(stats.message_log[0].from, 0);
        assert_eq!(stats.message_log[0].to, 1);
        assert_eq!(stats.message_log[1].from, 1);
        assert_eq!(stats.message_log[1].to, 2);
        assert!(stats.message_log[1].round > stats.message_log[0].round);
    }

    #[test]
    fn stats_track_peak_channel_load() {
        let g = generators::path(6, 1);
        let (_, stats) = run_phase(&g, 0, &SimConfig::standard(6, 1), "relay", |_, _| Relay {
            value: None,
        })
        .unwrap();
        assert!(stats.max_channel_bits >= 1);
        assert!(u64::from(stats.max_channel_bits) <= stats.bits);
    }
}
