//! # congest-sim
//!
//! A synchronous CONGEST-model network simulator (paper Section 2.2) for the
//! reproduction of *Wu & Yao, "Quantum Complexity of Weighted Diameter and
//! Radius in CONGEST Networks"* (PODC 2022).
//!
//! A network is a weighted graph; each node runs a [`NodeProgram`] with free
//! local computation, and in every synchronous round exchanges messages of
//! at most `B = O(log n)` bits with each neighbor. The simulator:
//!
//! * counts **rounds** — the complexity measure all of the paper's results
//!   are about;
//! * enforces the per-channel **bandwidth** budget ([`Bandwidth`]), so an
//!   algorithm cannot accidentally cheat by shipping big payloads;
//! * optionally records a full **message log** ([`SimConfig::with_message_log`]),
//!   which the Lemma 4.1 Server-model simulation consumes;
//! * emits structured **[`telemetry`]**: named phase spans, one
//!   [`TraceEvent::RoundCompleted`] per simulated round, channel-saturation
//!   warnings, and (with [`SimConfig::with_channel_profile`]) a streaming
//!   per-channel bandwidth histogram — all through a pluggable [`Tracer`]
//!   sink that costs nothing when disabled (the default);
//! * provides the standard `O(D)` / `O(D + k)` [`primitives`]:
//!   BFS-tree construction, scalar and vector convergecasts, pipelined
//!   broadcast and pipelined collection — plus flood-max [`election`]
//!   for networks without a pre-defined leader;
//! * injects deterministic, seed-driven **[`faults`]** (message drops,
//!   link throttles, node crashes, adversarial bursts) when a
//!   [`FaultPlan`] is attached, reporting per-node output [`Quality`] and
//!   a separate [`ResilienceBudget`] so headline round counts stay
//!   comparable to the lossless model — with an ack/retransmit
//!   [`reliable`] layer to mask the losses;
//! * feeds a live **[`metrics`]** bundle ([`SimConfig::with_metrics`]):
//!   cross-run counters and per-round histograms updated with a few
//!   relaxed atomic adds per round, cheap enough to leave attached in
//!   benchmark runs (the `wdr-perf` trajectory records them).
//!
//! # Examples
//!
//! Build a BFS tree and aggregate a maximum at the leader:
//!
//! ```
//! use congest_sim::{primitives, SimConfig};
//! use congest_graph::generators;
//!
//! let g = generators::grid(4, 4, 1);
//! let cfg = SimConfig::standard(g.n(), 1);
//! let (tree, _) = primitives::bfs_tree(&g, 0, &cfg)?;
//! let values: Vec<u128> = (0..16).map(|v| v as u128).collect();
//! let (max, stats) =
//!     primitives::converge_cast(&g, 0, &cfg, &tree, &values, primitives::Aggregate::Max)?;
//! assert_eq!(max, 15);
//! assert!(stats.rounds <= 2 * 6 + 3); // up + down the depth-6 tree
//! # Ok::<(), congest_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod election;
pub mod faults;
pub mod metrics;
mod model;
mod network;
pub mod primitives;
pub mod reliable;
pub mod telemetry;

pub use faults::FaultPlan;
pub use metrics::SimMetrics;
pub use model::{
    bit_len, Bandwidth, MaybeSend, MaybeSendSync, MessageRecord, NodeCtx, Parallelism, Payload,
    ResilienceBudget, RoundStats, SimConfig, SimError, Status, DEFAULT_MESSAGE_LOG_CAP,
};
pub use network::{run_phase, Mailbox, Network, NodeProgram, Quality};
pub use telemetry::{Telemetry, TraceEvent, Tracer};
