//! Reliable-delivery primitives: ack/retransmit wrappers over lossy links.
//!
//! The [`crate::faults`] module makes links lossy; this module masks the
//! losses. [`Reliable`] wraps any [`NodeProgram`], framing each of its
//! messages as a sequence-numbered data frame that is acknowledged by the
//! receiver and retransmitted by the sender — bounded retries with
//! exponential backoff in rounds — while duplicates are filtered out, so
//! the inner program observes at-most-once delivery that is exactly-once
//! unless the retry budget is exhausted.
//!
//! # Accounting
//!
//! Retransmissions and acks are *recovery* traffic, not algorithm traffic.
//! [`run_reliable_phase`] folds each node's [`ReliableStats`] into the
//! run's [`RoundStats::resilience`](crate::RoundStats) budget so the
//! headline `rounds`/`messages` numbers remain comparable to the paper's
//! lossless accounting (the extra rounds a lossy run takes are visible by
//! comparing against a fault-free run of the same phase).
//!
//! # Flow control and bandwidth
//!
//! The wrapper sends at most **one data frame per neighbor per round**
//! (new or retransmitted; further frames queue), and a receiver acks at
//! most what it received, so a channel carries at most one data frame plus
//! one ack per round. Budget that with [`reliable_bandwidth`], which pads
//! the inner budget for framing (tag + sequence number) and the reverse
//! ack traffic.
//!
//! # Caveat: round-schedule-driven programs
//!
//! The inner program still sees real network round numbers. Programs that
//! hard-code a round schedule (e.g. pipelined convergecasts that expect
//! hop `i` to fire in round `i`) will observe *later* rounds under
//! retransmission delays; the wrapper suits event-driven programs that
//! react to message arrival, like flooding and iterative relaxation.

use crate::model::{bit_len, Bandwidth, NodeCtx, Payload, RoundStats, SimConfig, SimError, Status};
use crate::network::{Mailbox, Network, NodeProgram, Quality};
use crate::telemetry::TraceEvent;
use congest_graph::{NodeId, WeightedGraph};
use serde::Serialize;
use std::collections::HashSet;

/// Retry policy of the reliable layer.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize)]
pub struct ReliablePolicy {
    /// Retransmissions allowed per frame after the initial send; a frame
    /// still unacknowledged after the last retry is abandoned (counted in
    /// [`ReliableStats::gave_up`]).
    pub max_retries: u32,
    /// Base of the exponential backoff: after the `a`-th send of a frame in
    /// round `r`, the next retry waits until round
    /// `r + 1 + base_backoff · 2^(a-1)` (an ack needs two rounds to come
    /// back, so `base_backoff = 1` retries at the earliest useful round).
    pub base_backoff: usize,
}

impl Default for ReliablePolicy {
    fn default() -> ReliablePolicy {
        ReliablePolicy {
            max_retries: 4,
            base_backoff: 1,
        }
    }
}

/// Per-node counters of the reliable layer's recovery traffic.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Serialize)]
pub struct ReliableStats {
    /// Data frames sent for the first time.
    pub data_sent: u64,
    /// Data frames re-sent after an ack timeout.
    pub retransmissions: u64,
    /// Acknowledgement frames sent.
    pub acks_sent: u64,
    /// Frames abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// Duplicate data frames the dedup filter discarded (a duplicate means
    /// the frame got through but its ack was lost, so the sender re-sent).
    pub duplicates_filtered: u64,
    /// Rounds this node actually waited in exponential backoff before its
    /// retransmissions (the realized delay, not the scheduled one: frames
    /// acked before their retry fires contribute nothing).
    pub backoff_rounds: u64,
}

/// Wire frame of the reliable layer.
#[derive(Clone, Debug)]
pub enum ReliableMsg<M> {
    /// An application message with its per-sender sequence number.
    Data {
        /// Sender-assigned sequence number (deduplication key).
        seq: u64,
        /// The wrapped application message.
        msg: M,
    },
    /// Acknowledges receipt of the sender's frame `seq`.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
}

impl<M: Payload> Payload for ReliableMsg<M> {
    fn size_bits(&self) -> u32 {
        match self {
            ReliableMsg::Data { seq, msg } => 2 + bit_len(*seq) + msg.size_bits(),
            ReliableMsg::Ack { seq } => 2 + bit_len(*seq),
        }
    }
}

/// One unacknowledged outbound frame.
#[derive(Clone, Debug)]
struct Frame<M> {
    to: NodeId,
    seq: u64,
    msg: M,
    /// Sends so far (0 = not yet sent).
    attempts: u32,
    /// Round from which the frame is eligible to (re)send.
    ready_at: usize,
}

/// Wraps an inner [`NodeProgram`] with ack/retransmit delivery (see the
/// module docs). Output is the inner output paired with this node's
/// [`ReliableStats`].
#[derive(Debug)]
pub struct Reliable<P: NodeProgram> {
    inner: P,
    policy: ReliablePolicy,
    next_seq: u64,
    frames: Vec<Frame<P::Msg>>,
    /// `(sender, seq)` pairs already delivered to the inner program.
    seen: HashSet<(NodeId, u64)>,
    /// Acks owed, queued for the next send opportunity.
    acks: Vec<(NodeId, u64)>,
    inner_status: Status,
    stats: ReliableStats,
    /// The inner program's persistent outbox, drained in place each round.
    inner_mb: Mailbox<P::Msg>,
    /// Scratch for moving inner sends into frames (reused across rounds).
    inner_out: Vec<(NodeId, P::Msg)>,
    /// Scratch inbox of deduplicated inner messages (reused across rounds).
    inner_inbox: Vec<(NodeId, P::Msg)>,
    /// Neighbors already sent a data frame this round (reused scratch).
    sent_to: Vec<NodeId>,
}

impl<P: NodeProgram> Reliable<P> {
    /// Wraps `inner` under the given retry `policy`.
    pub fn new(inner: P, policy: ReliablePolicy) -> Reliable<P> {
        Reliable {
            inner,
            policy,
            next_seq: 0,
            frames: Vec::new(),
            seen: HashSet::new(),
            acks: Vec::new(),
            inner_status: Status::Running,
            stats: ReliableStats::default(),
            inner_mb: Mailbox::new(),
            inner_out: Vec::new(),
            inner_inbox: Vec::new(),
            sent_to: Vec::new(),
        }
    }

    /// Queues `msg` for guaranteed-effort delivery to `to`: it will be
    /// framed, acknowledged, and retransmitted per the policy.
    pub fn reliable_send(&mut self, to: NodeId, msg: P::Msg) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.frames.push(Frame {
            to,
            seq,
            msg,
            attempts: 0,
            ready_at: 0,
        });
    }

    /// Queues `msg` for guaranteed-effort delivery to every neighbor.
    pub fn reliable_broadcast(&mut self, ctx: &NodeCtx, msg: P::Msg) {
        if let Some((&(last, _), rest)) = ctx.neighbors.split_last() {
            for &(v, _) in rest {
                self.reliable_send(v, msg.clone());
            }
            self.reliable_send(last, msg);
        }
    }

    /// This node's recovery-traffic counters so far.
    pub fn reliable_stats(&self) -> ReliableStats {
        self.stats
    }

    /// Moves the inner program's outgoing messages (drained from its
    /// persistent outbox) into reliable frames.
    fn enqueue_inner(&mut self) {
        // Borrow dance: `reliable_send` needs `&mut self`, so the scratch
        // buffer is taken out (keeping its capacity) and put back after.
        let mut out = std::mem::take(&mut self.inner_out);
        self.inner_mb.drain_into(&mut out);
        for (to, msg) in out.drain(..) {
            self.reliable_send(to, msg);
        }
        self.inner_out = out;
    }

    /// Sends queued acks plus at most one due data frame per neighbor;
    /// `round` is the current round (0 during `start`).
    fn pump(&mut self, round: usize, mb: &mut Mailbox<ReliableMsg<P::Msg>>) {
        for (to, seq) in self.acks.drain(..) {
            self.stats.acks_sent += 1;
            mb.send(to, ReliableMsg::Ack { seq });
        }
        self.sent_to.clear();
        let mut i = 0;
        while i < self.frames.len() {
            let due =
                self.frames[i].ready_at <= round && !self.sent_to.contains(&self.frames[i].to);
            if !due {
                i += 1;
                continue;
            }
            if self.frames[i].attempts > self.policy.max_retries {
                self.stats.gave_up += 1;
                self.frames.swap_remove(i);
                continue;
            }
            let frame = &mut self.frames[i];
            if frame.attempts == 0 {
                self.stats.data_sent += 1;
            } else {
                self.stats.retransmissions += 1;
                // The backoff scheduled at the previous send has now fully
                // elapsed — that's realized waiting, so count it.
                self.stats.backoff_rounds +=
                    (self.policy.base_backoff << (frame.attempts - 1)) as u64;
            }
            frame.attempts += 1;
            // Ack round-trip takes two rounds; back off exponentially past it.
            frame.ready_at = round + 1 + (self.policy.base_backoff << (frame.attempts - 1));
            self.sent_to.push(frame.to);
            mb.send(
                frame.to,
                ReliableMsg::Data {
                    seq: frame.seq,
                    msg: frame.msg.clone(),
                },
            );
            i += 1;
        }
    }
}

impl<P: NodeProgram> NodeProgram for Reliable<P> {
    type Msg = ReliableMsg<P::Msg>;
    type Output = (P::Output, ReliableStats);

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<Self::Msg>) {
        self.inner.start(ctx, &mut self.inner_mb);
        self.enqueue_inner();
        self.pump(0, mb);
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &[(NodeId, Self::Msg)],
        mb: &mut Mailbox<Self::Msg>,
    ) -> Status {
        self.inner_inbox.clear();
        for (from, frame) in inbox {
            match frame {
                ReliableMsg::Ack { seq } => {
                    self.frames.retain(|f| !(f.to == *from && f.seq == *seq));
                }
                ReliableMsg::Data { seq, msg } => {
                    // Always (re-)ack — the previous ack may have been lost —
                    // but deliver to the inner program only once.
                    self.acks.push((*from, *seq));
                    if self.seen.insert((*from, *seq)) {
                        self.inner_inbox.push((*from, msg.clone()));
                    } else {
                        self.stats.duplicates_filtered += 1;
                    }
                }
            }
        }
        self.inner_status = self
            .inner
            .round(ctx, round, &self.inner_inbox, &mut self.inner_mb);
        self.enqueue_inner();
        self.pump(round, mb);
        if self.inner_status == Status::Done && self.frames.is_empty() && self.acks.is_empty() {
            Status::Done
        } else {
            Status::Running
        }
    }

    fn finish(self, ctx: &NodeCtx) -> Self::Output {
        (self.inner.finish(ctx), self.stats)
    }
}

/// A per-channel budget that fits the reliable layer's framing on top of an
/// inner budget: one data frame (tag + sequence number + inner message)
/// plus one returning ack per round.
pub fn reliable_bandwidth(inner: Bandwidth) -> Bandwidth {
    // 2 tag bits and up to 64 sequence bits per frame, twice (data + ack).
    Bandwidth::bits(inner.get() + 2 * (2 + 64))
}

/// What [`run_reliable_phase`] returns: each node's quality-tagged output,
/// plus the run's statistics.
pub type ReliableRun<O> = (Vec<(O, Quality)>, RoundStats);

/// Runs `make`'s program on every node under the reliable layer, inside a
/// telemetry phase span, and returns quality-tagged outputs plus the run's
/// statistics with every node's recovery traffic folded into
/// [`RoundStats::resilience`](crate::RoundStats).
///
/// The configured bandwidth is widened with [`reliable_bandwidth`] to make
/// room for framing and acks.
///
/// # Errors
///
/// Same as [`Network::run`].
pub fn run_reliable_phase<P: NodeProgram>(
    graph: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
    name: &str,
    policy: ReliablePolicy,
    mut make: impl FnMut(NodeId, &NodeCtx) -> P,
) -> Result<ReliableRun<P::Output>, SimError> {
    let telemetry = config.telemetry.clone();
    let metrics = config.metrics.clone();
    let span = telemetry.span(name);
    let mut config = config.clone();
    config.bandwidth = reliable_bandwidth(config.bandwidth);
    let mut net = Network::new(graph, leader, config, |v, c| {
        Reliable::new(make(v, c), policy)
    });
    let tagged = match net.run_with_quality() {
        Ok(tagged) => tagged,
        Err(err) => {
            telemetry.emit_with(|| TraceEvent::SimFailed { error: err.clone() });
            span.end();
            return Err(err);
        }
    };
    let mut stats = net.stats().clone();
    let mut reliable_totals = ReliableStats::default();
    let mut outputs = Vec::with_capacity(tagged.len());
    for ((out, node_stats), quality) in tagged {
        stats.resilience.retransmissions += node_stats.retransmissions;
        stats.resilience.ack_messages += node_stats.acks_sent;
        stats.resilience.gave_up += node_stats.gave_up;
        reliable_totals.retransmissions += node_stats.retransmissions;
        reliable_totals.acks_sent += node_stats.acks_sent;
        reliable_totals.gave_up += node_stats.gave_up;
        reliable_totals.duplicates_filtered += node_stats.duplicates_filtered;
        reliable_totals.backoff_rounds += node_stats.backoff_rounds;
        outputs.push((out, quality));
    }
    if let Some(metrics) = &metrics {
        metrics.retransmissions.add(reliable_totals.retransmissions);
        metrics.acks.add(reliable_totals.acks_sent);
        metrics.gave_up.add(reliable_totals.gave_up);
        metrics
            .duplicates_filtered
            .add(reliable_totals.duplicates_filtered);
        metrics.backoff_rounds.add(reliable_totals.backoff_rounds);
    }
    span.end();
    Ok((outputs, stats))
}

/// Convenience: a zero-fault [`SimConfig`] clone of `config` for measuring
/// the fault-free baseline of the same phase (used by degradation
/// experiments to compute rounds overhead).
pub fn without_faults(mut config: SimConfig) -> SimConfig {
    config.faults = None;
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use congest_graph::generators;

    /// Leader floods a hop counter; every node records the first value it
    /// hears. Event-driven (tolerates delays), with a deadline so nodes a
    /// fault permanently cut off still halt.
    struct Flood {
        heard: Option<u64>,
        deadline: usize,
    }

    impl Flood {
        fn fresh() -> Flood {
            Flood {
                heard: None,
                deadline: 500,
            }
        }
    }

    impl NodeProgram for Flood {
        type Msg = u64;
        type Output = Option<u64>;

        fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
            if ctx.is_leader() {
                self.heard = Some(0);
                mb.broadcast(ctx, 1);
            }
        }

        fn round(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &[(NodeId, u64)],
            mb: &mut Mailbox<u64>,
        ) -> Status {
            for &(_, hops) in inbox {
                if self.heard.is_none() {
                    self.heard = Some(hops);
                    mb.broadcast(ctx, hops + 1);
                }
            }
            if self.heard.is_some() || round >= self.deadline {
                Status::Done
            } else {
                Status::Running
            }
        }

        fn finish(self, _ctx: &NodeCtx) -> Option<u64> {
            self.heard
        }
    }

    #[test]
    fn lossless_reliable_flood_delivers_everything() {
        let g = generators::grid(3, 3, 1);
        let cfg = SimConfig::standard(9, 1).with_max_rounds(2_000);
        let (out, stats) =
            run_reliable_phase(&g, 0, &cfg, "flood", ReliablePolicy::default(), |_, _| {
                Flood::fresh()
            })
            .unwrap();
        assert!(out.iter().all(|(h, q)| h.is_some() && q.is_exact()));
        assert_eq!(stats.resilience.retransmissions, 0, "nothing to recover");
        assert!(stats.resilience.ack_messages > 0, "acks still flow");
        assert_eq!(stats.resilience.gave_up, 0);
    }

    #[test]
    fn reliable_flood_masks_heavy_loss() {
        // 30% loss on every link: plain flooding would strand nodes, the
        // reliable layer retransmits until the token gets through.
        let g = generators::grid(3, 3, 1);
        let cfg = SimConfig::standard(9, 1)
            .with_max_rounds(2_000)
            .with_faults(FaultPlan::new(20_240_805).with_drop_rate(0.3));
        let (out, stats) =
            run_reliable_phase(&g, 0, &cfg, "flood", ReliablePolicy::default(), |_, _| {
                Flood::fresh()
            })
            .unwrap();
        assert!(
            out.iter().all(|(h, _)| h.is_some()),
            "every node heard the token despite 30% loss: {out:?}"
        );
        assert!(
            stats.resilience.retransmissions > 0,
            "losses were recovered"
        );
        assert!(stats.resilience.dropped_messages > 0);
    }

    #[test]
    fn retry_budget_gives_up_on_a_dead_link() {
        // The 1→2 link drops everything: node 1's frames to 2 are abandoned
        // after max_retries, and the run still terminates.
        let g = generators::path(3, 1);
        let cfg = SimConfig::standard(3, 1)
            .with_max_rounds(2_000)
            .with_faults(FaultPlan::new(7).with_link_drop(1, 2, 1.0));
        let (out, stats) =
            run_reliable_phase(&g, 0, &cfg, "flood", ReliablePolicy::default(), |_, _| {
                Flood::fresh()
            })
            .unwrap();
        assert_eq!(out[2].0, None, "node 2 is unreachable");
        assert!(!out[2].1.is_exact());
        assert!(stats.resilience.gave_up > 0);
        assert!(
            stats.resilience.retransmissions >= u64::from(ReliablePolicy::default().max_retries)
        );
    }

    #[test]
    fn metrics_bundle_sees_drops_and_recovery_traffic() {
        use crate::metrics::SimMetrics;
        use wdr_metrics::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let metrics = SimMetrics::register(&registry, "sim");
        let g = generators::grid(3, 3, 1);
        let cfg = SimConfig::standard(9, 1)
            .with_max_rounds(2_000)
            .with_faults(FaultPlan::new(20_240_805).with_drop_rate(0.3))
            .with_metrics(metrics.clone());
        let (_, stats) =
            run_reliable_phase(&g, 0, &cfg, "flood", ReliablePolicy::default(), |_, _| {
                Flood::fresh()
            })
            .unwrap();

        // The bundle agrees with the per-run statistics exactly.
        assert_eq!(metrics.rounds.get(), stats.rounds as u64);
        assert_eq!(metrics.messages.get(), stats.messages);
        assert_eq!(metrics.bits.get(), stats.bits);
        assert_eq!(
            metrics.dropped_random.get(),
            stats.resilience.dropped_messages,
            "every loss here comes from the background drop process"
        );
        assert_eq!(
            metrics.retransmissions.get(),
            stats.resilience.retransmissions
        );
        assert_eq!(metrics.acks.get(), stats.resilience.ack_messages);
        assert!(metrics.retransmissions.get() > 0, "losses were recovered");
        assert!(
            metrics.backoff_rounds.get() >= metrics.retransmissions.get(),
            "each retransmission waited at least one backoff round"
        );
        assert_eq!(metrics.bits_per_round.count(), stats.rounds as u64);
        assert!(metrics.bits_per_round.max() <= stats.bits);
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let policy = ReliablePolicy {
            max_retries: 3,
            base_backoff: 1,
        };
        // After the a-th send in round r: ready at r + 1 + 2^(a-1).
        let mut frame = Frame {
            to: 1,
            seq: 0,
            msg: 0u64,
            attempts: 0,
            ready_at: 0,
        };
        let mut schedule = Vec::new();
        let mut round = 0;
        for _ in 0..3 {
            frame.attempts += 1;
            frame.ready_at = round + 1 + (policy.base_backoff << (frame.attempts - 1));
            schedule.push(frame.ready_at);
            round = frame.ready_at;
        }
        assert_eq!(schedule, vec![2, 5, 10]);
    }
}
