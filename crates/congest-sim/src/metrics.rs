//! Aggregate metrics for the round engine, the fault oracle, and the
//! reliable layer.
//!
//! [`SimMetrics`] is a bundle of pre-registered [`wdr_metrics`] handles
//! attached to a [`crate::SimConfig`] via
//! [`crate::SimConfig::with_metrics`]. Registration happens once, up
//! front; the per-round updates are single relaxed atomic operations with
//! zero heap traffic (pinned by `tests/zero_alloc.rs`), so the bundle is
//! cheap enough to stay attached in every run — unlike the event-level
//! [`crate::telemetry`] tracers, which construct per-event values.
//!
//! Counters are exact and order-independent, and the per-round histograms
//! merge with index-ordered integer adds, so a metrics-on parallel run
//! remains bit-identical to its sequential twin in every observable
//! *including* the final metric values.

use crate::faults::DropReason;
use wdr_metrics::{Counter, Histogram, MetricsRegistry};

/// Pre-registered handles for every simulator-level metric.
///
/// Names are `{prefix}.{metric}` (prefix conventionally `"sim"`):
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `rounds` | counter | rounds executed |
/// | `messages` | counter | messages delivered |
/// | `bits` | counter | bits delivered |
/// | `messages_per_round` | histogram | per-round delivered messages |
/// | `bits_per_round` | histogram | per-round delivered bits |
/// | `saturated_channels` | counter | channels that ended a run ≥ 90% of budget |
/// | `dropped.random` … | counter | fault-oracle drops, by [`DropReason`] |
/// | `crashed_node_rounds` | counter | `(node, round)` pairs spent crashed |
/// | `reliable.retransmissions` … | counter | reliable-layer overhead |
#[derive(Clone, Debug)]
pub struct SimMetrics {
    /// Rounds executed across every attached run.
    pub rounds: Counter,
    /// Messages delivered.
    pub messages: Counter,
    /// Bits delivered.
    pub bits: Counter,
    /// Distribution of messages delivered per round.
    pub messages_per_round: Histogram,
    /// Distribution of bits delivered per round.
    pub bits_per_round: Histogram,
    /// Channels whose peak round load reached ≥ 90% of the bit budget.
    pub saturated_channels: Counter,
    /// Messages dropped by the background loss process.
    pub dropped_random: Counter,
    /// Messages dropped inside burst windows.
    pub dropped_burst: Counter,
    /// Messages dropped by link throttles.
    pub dropped_throttled: Counter,
    /// Messages dropped because the receiver was crashed.
    pub dropped_receiver_crashed: Counter,
    /// `(node, round)` pairs in which a node was crashed.
    pub crashed_node_rounds: Counter,
    /// Data frames re-sent by the reliable layer after an ack timeout.
    pub retransmissions: Counter,
    /// Acknowledgement frames sent by the reliable layer.
    pub acks: Counter,
    /// Data frames the reliable layer abandoned after exhausting retries.
    pub gave_up: Counter,
    /// Duplicate data frames the reliable layer's dedup filter discarded.
    pub duplicates_filtered: Counter,
    /// Rounds of exponential-backoff delay scheduled before retransmissions.
    pub backoff_rounds: Counter,
}

impl SimMetrics {
    /// Registers the full simulator bundle under `{prefix}.…` in `registry`
    /// (idempotent: registering the same prefix twice shares the metrics).
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> SimMetrics {
        let name = |metric: &str| format!("{prefix}.{metric}");
        SimMetrics {
            rounds: registry.counter(&name("rounds")),
            messages: registry.counter(&name("messages")),
            bits: registry.counter(&name("bits")),
            messages_per_round: registry.histogram(&name("messages_per_round")),
            bits_per_round: registry.histogram(&name("bits_per_round")),
            saturated_channels: registry.counter(&name("saturated_channels")),
            dropped_random: registry.counter(&name("dropped.random")),
            dropped_burst: registry.counter(&name("dropped.burst")),
            dropped_throttled: registry.counter(&name("dropped.throttled")),
            dropped_receiver_crashed: registry.counter(&name("dropped.receiver_crashed")),
            crashed_node_rounds: registry.counter(&name("crashed_node_rounds")),
            retransmissions: registry.counter(&name("reliable.retransmissions")),
            acks: registry.counter(&name("reliable.acks")),
            gave_up: registry.counter(&name("reliable.gave_up")),
            duplicates_filtered: registry.counter(&name("reliable.duplicates_filtered")),
            backoff_rounds: registry.counter(&name("reliable.backoff_rounds")),
        }
    }

    /// One dropped message, attributed to its [`DropReason`] counter.
    pub(crate) fn record_drop(&self, reason: DropReason) {
        match reason {
            DropReason::Random => self.dropped_random.inc(),
            DropReason::Burst => self.dropped_burst.inc(),
            DropReason::Throttled => self.dropped_throttled.inc(),
            DropReason::ReceiverCrashed => self.dropped_receiver_crashed.inc(),
        }
    }

    /// End-of-round bookkeeping: totals plus the per-round distributions.
    pub(crate) fn record_round(&self, messages: u64, bits: u64) {
        self.rounds.inc();
        self.messages.add(messages);
        self.bits.add(bits);
        self.messages_per_round.observe(messages);
        self.bits_per_round.observe(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_across_bundles() {
        let registry = MetricsRegistry::new();
        let a = SimMetrics::register(&registry, "sim");
        let b = SimMetrics::register(&registry, "sim");
        a.rounds.inc();
        b.rounds.inc();
        assert_eq!(a.rounds.get(), 2);
        assert_eq!(registry.snapshot().flatten()["sim.rounds"], 2.0);
    }

    #[test]
    fn drops_route_to_their_reason_counter() {
        let registry = MetricsRegistry::new();
        let m = SimMetrics::register(&registry, "sim");
        m.record_drop(DropReason::Random);
        m.record_drop(DropReason::Burst);
        m.record_drop(DropReason::Burst);
        m.record_drop(DropReason::Throttled);
        m.record_drop(DropReason::ReceiverCrashed);
        assert_eq!(m.dropped_random.get(), 1);
        assert_eq!(m.dropped_burst.get(), 2);
        assert_eq!(m.dropped_throttled.get(), 1);
        assert_eq!(m.dropped_receiver_crashed.get(), 1);
    }

    #[test]
    fn round_recording_feeds_totals_and_distributions() {
        let registry = MetricsRegistry::new();
        let m = SimMetrics::register(&registry, "sim");
        m.record_round(10, 300);
        m.record_round(2, 40);
        assert_eq!(m.rounds.get(), 2);
        assert_eq!(m.messages.get(), 12);
        assert_eq!(m.bits.get(), 340);
        assert_eq!(m.bits_per_round.count(), 2);
        assert_eq!(m.bits_per_round.max(), 300);
    }
}
