//! Leader election — the one assumption of the paper's Appendix A
//! ("a pre-defined node `leader ∈ V`") that a real deployment would have to
//! establish itself. Classic flood-max: every node floods the largest id it
//! has seen; after `D` quiet rounds the maximum id has won everywhere.
//! `O(D)` rounds, one `O(log n)`-bit value per channel per round.

use crate::model::{NodeCtx, RoundStats, SimConfig, SimError, Status};
use crate::network::{run_phase, Mailbox, NodeProgram};
use congest_graph::{NodeId, WeightedGraph};

struct FloodMaxProgram {
    best: NodeId,
}

impl NodeProgram for FloodMaxProgram {
    type Msg = u64;
    type Output = NodeId;

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
        self.best = ctx.id;
        mb.broadcast(ctx, ctx.id as u64);
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        _round: usize,
        inbox: &[(NodeId, u64)],
        mb: &mut Mailbox<u64>,
    ) -> Status {
        let mut improved = false;
        for &(_, id) in inbox {
            if (id as NodeId) > self.best {
                self.best = id as NodeId;
                improved = true;
            }
        }
        if improved {
            mb.broadcast(ctx, self.best as u64);
        }
        Status::Done // quiescence = no improvements anywhere
    }

    fn finish(self, _ctx: &NodeCtx) -> NodeId {
        self.best
    }
}

/// Elects the maximum-id node as leader by flood-max. Every node learns the
/// winner; `O(D)` rounds.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Examples
///
/// ```
/// use congest_sim::{election, SimConfig};
/// use congest_graph::generators;
/// let g = generators::cycle(9, 2);
/// let (leader, stats) = election::elect_leader(&g, &SimConfig::standard(9, 2))?;
/// assert_eq!(leader, 8);
/// assert!(stats.rounds <= 6); // ≈ unweighted diameter
/// # Ok::<(), congest_sim::SimError>(())
/// ```
pub fn elect_leader(
    graph: &WeightedGraph,
    config: &SimConfig,
) -> Result<(NodeId, RoundStats), SimError> {
    // Any node can serve as the runner's nominal leader; the election result
    // is the returned winner.
    let (out, stats) = run_phase(graph, 0, config, "flood_max_election", |_, _| {
        FloodMaxProgram { best: 0 }
    })?;
    let winner = out[0];
    debug_assert!(out.iter().all(|&w| w == winner), "all nodes agree");
    Ok((winner, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn elects_max_id_everywhere() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..5 {
            let g = generators::erdos_renyi_connected(20, 0.15, 3, &mut rng);
            let (leader, _) = elect_leader(&g, &SimConfig::standard(20, 3)).unwrap();
            assert_eq!(leader, 19);
        }
    }

    #[test]
    fn rounds_track_diameter() {
        let g = generators::path(30, 1);
        let (leader, stats) = elect_leader(&g, &SimConfig::standard(30, 1)).unwrap();
        assert_eq!(leader, 29);
        // The max id floods from one end: ≈ D rounds, not n².
        assert!(stats.rounds <= 31, "rounds = {}", stats.rounds);
    }

    #[test]
    fn single_channel_graph() {
        let g = generators::path(2, 1);
        let (leader, _) = elect_leader(&g, &SimConfig::standard(2, 1)).unwrap();
        assert_eq!(leader, 1);
    }
}
