//! Deterministic, seed-driven network fault injection.
//!
//! The CONGEST model (and the paper's Theorem 1.1 pipeline) assumes an
//! ideal, lossless synchronous network. This module models the ways a real
//! deployment deviates from that ideal — message loss, per-link bit
//! throttling, node crashes, and adversarial loss bursts — so the
//! degradation of an algorithm can be *measured* instead of assumed.
//!
//! # Fault taxonomy
//!
//! A [`FaultPlan`] describes, declaratively:
//!
//! * a global per-message **drop probability** ([`FaultPlan::with_drop_rate`]);
//! * per-directed-link drop-rate **overrides** ([`FaultPlan::with_link_drop`]);
//! * per-directed-link **bit throttles** tighter than the configured
//!   bandwidth ([`FaultPlan::with_throttle`]) — excess messages on a
//!   throttled link are discarded, emitting
//!   [`TraceEvent::LinkThrottled`](crate::TraceEvent::LinkThrottled);
//! * node **crash/recover windows** ([`FaultPlan::with_crash`]) — a crashed
//!   node executes no rounds and loses every message addressed to it, but
//!   keeps its local state and resumes where it left off when the window
//!   closes (crash-recovery with stable memory);
//! * adversarial **burst windows** ([`FaultPlan::with_burst`]) — round
//!   intervals during which the drop probability is elevated network-wide.
//!
//! # Determinism guarantee
//!
//! Every fault decision is a pure function of `(plan seed, round, sender,
//! receiver, per-link message index)` — no shared RNG stream, no dependence
//! on delivery order. Two runs with the same plan, graph, and program are
//! bit-identical: same outputs, same [`RoundStats`](crate::RoundStats),
//! same telemetry trace. A plan with no knobs set (all-zero) makes the
//! faulty delivery path behave *exactly* like the plain one; both
//! properties are enforced by proptests in `tests/faults.rs`.
//!
//! # Example
//!
//! ```
//! use congest_sim::faults::FaultPlan;
//! use congest_sim::SimConfig;
//!
//! let plan = FaultPlan::new(42)
//!     .with_drop_rate(0.05)
//!     .with_link_drop(0, 1, 0.5)
//!     .with_throttle(2, 3, 8)
//!     .with_crash(4, 10, Some(20))
//!     .with_burst(30, 40, 0.8);
//! let config = SimConfig::standard(16, 1).with_faults(plan);
//! assert!(config.faults.is_some());
//! ```

use congest_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A per-directed-link drop-rate override.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LinkFault {
    /// Sender side of the directed link.
    pub from: NodeId,
    /// Receiver side of the directed link.
    pub to: NodeId,
    /// Drop probability on this link (overrides the global rate).
    pub drop_rate: f64,
}

/// A per-directed-link bit throttle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LinkThrottle {
    /// Sender side of the directed link.
    pub from: NodeId,
    /// Receiver side of the directed link.
    pub to: NodeId,
    /// Bits this link actually carries per round; messages that would push
    /// the per-round total beyond this are dropped (the configured
    /// [`Bandwidth`](crate::Bandwidth) is still enforced first, as an
    /// error — the throttle models a *degraded* link, not a cheating one).
    pub budget_bits: u32,
}

/// A node crash window: the node is down for rounds
/// `from_round..until_round` (1-based, half-open); `until_round = None`
/// means it never recovers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CrashWindow {
    /// The crashing node.
    pub node: NodeId,
    /// First round (1-based) the node is down.
    pub from_round: usize,
    /// First round the node is back up (`None` = crashed forever).
    pub until_round: Option<usize>,
}

/// An adversarial burst window: rounds `from_round..until_round` during
/// which every link drops with probability at least `drop_rate`.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct BurstWindow {
    /// First round (1-based) of the burst.
    pub from_round: usize,
    /// First round after the burst.
    pub until_round: usize,
    /// Elevated drop probability during the window.
    pub drop_rate: f64,
}

/// Why a message was dropped (attached to
/// [`TraceEvent::MessageDropped`](crate::TraceEvent::MessageDropped)).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DropReason {
    /// Lost to the link's steady-state drop rate.
    Random,
    /// Lost during an adversarial burst window.
    Burst,
    /// Discarded because the link's throttle budget was exhausted.
    Throttled,
    /// The receiver was crashed in the delivery round.
    ReceiverCrashed,
}

/// A declarative, seed-driven description of the faults to inject into a
/// simulation. Attach with [`SimConfig::with_faults`](crate::SimConfig::with_faults).
///
/// All knobs default to "no fault"; [`FaultPlan::new`] with no further
/// builder calls is behaviorally identical to running without a plan.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-message drop decisions (see the module docs for the
    /// determinism guarantee).
    pub seed: u64,
    /// Global per-message drop probability (`0.0` = lossless).
    pub drop_rate: f64,
    /// Per-directed-link drop-rate overrides.
    pub link_faults: Vec<LinkFault>,
    /// Per-directed-link bit throttles.
    pub link_throttles: Vec<LinkThrottle>,
    /// Node crash/recover schedules.
    pub crashes: Vec<CrashWindow>,
    /// Adversarial burst windows.
    pub bursts: Vec<BurstWindow>,
}

impl FaultPlan {
    /// An all-zero plan (no faults) with the given decision seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            link_faults: Vec::new(),
            link_throttles: Vec::new(),
            crashes: Vec::new(),
            bursts: Vec::new(),
        }
    }

    /// Sets the global drop probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_drop_rate(mut self, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "drop rate must be in [0, 1]");
        self.drop_rate = p;
        self
    }

    /// Overrides the drop probability on the directed link `from → to`
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_link_drop(mut self, from: NodeId, to: NodeId, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "drop rate must be in [0, 1]");
        self.link_faults.push(LinkFault {
            from,
            to,
            drop_rate: p,
        });
        self
    }

    /// Throttles the directed link `from → to` to `budget_bits` bits per
    /// round (builder style); messages beyond the budget are discarded.
    pub fn with_throttle(mut self, from: NodeId, to: NodeId, budget_bits: u32) -> FaultPlan {
        self.link_throttles.push(LinkThrottle {
            from,
            to,
            budget_bits,
        });
        self
    }

    /// Crashes `node` for rounds `from_round..until_round` (builder style);
    /// `None` means the node never recovers.
    pub fn with_crash(
        mut self,
        node: NodeId,
        from_round: usize,
        until_round: Option<usize>,
    ) -> FaultPlan {
        self.crashes.push(CrashWindow {
            node,
            from_round,
            until_round,
        });
        self
    }

    /// Adds an adversarial burst window (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_burst(mut self, from_round: usize, until_round: usize, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "drop rate must be in [0, 1]");
        self.bursts.push(BurstWindow {
            from_round,
            until_round,
            drop_rate: p,
        });
        self
    }

    /// `true` if this plan can never inject a fault (behaviorally identical
    /// to running without one).
    pub fn is_zero(&self) -> bool {
        self.drop_rate == 0.0
            && self.link_faults.iter().all(|l| l.drop_rate == 0.0)
            && self.link_throttles.is_empty()
            && self.crashes.is_empty()
            && self.bursts.iter().all(|b| b.drop_rate == 0.0)
    }

    /// Compiles the plan into the per-round oracle the network consults.
    pub fn compile(&self) -> FaultOracle {
        FaultOracle {
            seed: self.seed,
            drop_rate: self.drop_rate,
            link_rates: self
                .link_faults
                .iter()
                .map(|l| ((l.from, l.to), l.drop_rate))
                .collect(),
            throttles: self
                .link_throttles
                .iter()
                .map(|t| ((t.from, t.to), t.budget_bits))
                .collect(),
            crashes: self.crashes.clone(),
            bursts: self.bursts.clone(),
        }
    }
}

/// The compiled form of a [`FaultPlan`]: O(1) per-message decisions,
/// consulted by the network's delivery path.
#[derive(Clone, Debug)]
pub struct FaultOracle {
    seed: u64,
    drop_rate: f64,
    link_rates: HashMap<(NodeId, NodeId), f64>,
    throttles: HashMap<(NodeId, NodeId), u32>,
    crashes: Vec<CrashWindow>,
    bursts: Vec<BurstWindow>,
}

/// SplitMix64 finalizer: a high-quality 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultOracle {
    /// A uniform draw in `[0, 1)`, keyed purely on the decision coordinates
    /// (see the module docs: this is what makes traces replayable).
    fn unit(&self, round: usize, from: NodeId, to: NodeId, k: u64) -> f64 {
        let h = mix(self
            .seed
            .wrapping_add(mix(round as u64))
            .wrapping_add(mix((from as u64).wrapping_mul(0x517c_c1b7_2722_0a95)))
            .wrapping_add(mix((to as u64).wrapping_mul(0x2545_f491_4f6c_dd1d)))
            .wrapping_add(mix(k)));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The burst drop rate active in `round`, if any.
    fn burst_rate(&self, round: usize) -> Option<f64> {
        self.bursts
            .iter()
            .filter(|b| round >= b.from_round && round < b.until_round)
            .map(|b| b.drop_rate)
            .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.max(p))))
    }

    /// Decides whether the `k`-th message on link `from → to` in delivery
    /// round `round` is lost; returns the cause if so.
    pub fn drops(&self, round: usize, from: NodeId, to: NodeId, k: u64) -> Option<DropReason> {
        let link = *self.link_rates.get(&(from, to)).unwrap_or(&self.drop_rate);
        let burst = self.burst_rate(round);
        let (p, reason) = match burst {
            Some(b) if b > link => (b, DropReason::Burst),
            _ => (link, DropReason::Random),
        };
        (p > 0.0 && self.unit(round, from, to, k) < p).then_some(reason)
    }

    /// The throttle budget of link `from → to`, if throttled.
    pub fn throttle(&self, from: NodeId, to: NodeId) -> Option<u32> {
        self.throttles.get(&(from, to)).copied()
    }

    /// `true` if `node` is up in `round` (1-based).
    pub fn node_alive(&self, node: NodeId, round: usize) -> bool {
        !self.crashes.iter().any(|c| {
            c.node == node && round >= c.from_round && c.until_round.is_none_or(|u| round < u)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_never_faults() {
        let oracle = FaultPlan::new(7).compile();
        assert!(FaultPlan::new(7).is_zero());
        for round in 1..50 {
            for k in 0..4 {
                assert_eq!(oracle.drops(round, 0, 1, k), None);
            }
            assert!(oracle.node_alive(0, round));
        }
        assert_eq!(oracle.throttle(0, 1), None);
    }

    #[test]
    fn decisions_are_reproducible_and_order_free() {
        let oracle = FaultPlan::new(99).with_drop_rate(0.5).compile();
        let again = FaultPlan::new(99).with_drop_rate(0.5).compile();
        for round in 1..20 {
            for k in 0..8 {
                assert_eq!(
                    oracle.drops(round, 3, 4, k),
                    again.drops(round, 3, 4, k),
                    "decision must be a pure function of its coordinates"
                );
            }
        }
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let oracle = FaultPlan::new(1).with_drop_rate(0.25).compile();
        let mut dropped = 0u32;
        let trials = 10_000usize;
        for i in 0..trials {
            if oracle
                .drops(1 + i % 100, i % 7, (i + 1) % 7, (i / 100) as u64)
                .is_some()
            {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / trials as f64;
        assert!((rate - 0.25).abs() < 0.03, "empirical rate {rate}");
    }

    #[test]
    fn link_override_beats_global_rate() {
        let oracle = FaultPlan::new(5)
            .with_drop_rate(1.0)
            .with_link_drop(0, 1, 0.0)
            .compile();
        for k in 0..20 {
            assert_eq!(oracle.drops(1, 0, 1, k), None, "overridden link lossless");
            assert_eq!(oracle.drops(1, 1, 0, k), Some(DropReason::Random));
        }
    }

    #[test]
    fn burst_window_elevates_and_labels() {
        let oracle = FaultPlan::new(3).with_burst(5, 8, 1.0).compile();
        assert_eq!(oracle.drops(4, 0, 1, 0), None);
        assert_eq!(oracle.drops(5, 0, 1, 0), Some(DropReason::Burst));
        assert_eq!(oracle.drops(7, 0, 1, 0), Some(DropReason::Burst));
        assert_eq!(oracle.drops(8, 0, 1, 0), None);
    }

    #[test]
    fn crash_windows_cover_rounds() {
        let oracle = FaultPlan::new(0)
            .with_crash(2, 3, Some(6))
            .with_crash(4, 10, None)
            .compile();
        assert!(oracle.node_alive(2, 2));
        assert!(!oracle.node_alive(2, 3));
        assert!(!oracle.node_alive(2, 5));
        assert!(oracle.node_alive(2, 6));
        assert!(oracle.node_alive(4, 9));
        assert!(!oracle.node_alive(4, 1_000_000));
        assert!(oracle.node_alive(0, 1));
    }

    #[test]
    fn plan_serializes_to_inspectable_json() {
        let plan = FaultPlan::new(11)
            .with_drop_rate(0.1)
            .with_throttle(1, 2, 8)
            .with_crash(0, 5, Some(9))
            .with_burst(2, 4, 0.9);
        let json = serde_json::to_string(&plan).unwrap();
        let v = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get("seed").and_then(|s| s.as_u64()), Some(11));
        assert_eq!(v.get("drop_rate").and_then(|d| d.as_f64()), Some(0.1));
        let crashes = v.get("crashes").and_then(|c| c.as_array()).unwrap();
        assert_eq!(
            crashes[0].get("until_round").and_then(|u| u.as_u64()),
            Some(9)
        );
    }
}
