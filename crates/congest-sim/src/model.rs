//! The CONGEST model: node context, message payloads, bandwidth, statistics.
//!
//! A network is a weighted graph `(G, w)`; each node is a processor with
//! unlimited local computation, each edge a channel of `B = O(log n)` bits
//! per round (Section 2.2 of the paper). Every node initially knows its own
//! identifier, its incident edges with weights, `n = |V|`, the maximum
//! weight `W`, and the identity of a pre-defined `leader` node (the paper's
//! Appendix A assumptions).

use crate::faults::FaultPlan;
use crate::telemetry::Telemetry;
use congest_graph::{NodeId, Weight};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Marker supertrait of [`crate::NodeProgram`]: [`Send`] when the
/// `parallel` feature is enabled (node programs move to pool threads during
/// the compute phase), satisfied by every type otherwise.
#[cfg(feature = "parallel")]
pub trait MaybeSend: Send {}
#[cfg(feature = "parallel")]
impl<T: Send + ?Sized> MaybeSend for T {}

/// Marker supertrait of [`crate::NodeProgram`]: [`Send`] when the
/// `parallel` feature is enabled (node programs move to pool threads during
/// the compute phase), satisfied by every type otherwise.
#[cfg(not(feature = "parallel"))]
pub trait MaybeSend {}
#[cfg(not(feature = "parallel"))]
impl<T: ?Sized> MaybeSend for T {}

/// Marker supertrait of [`Payload`]: [`Send`]` + `[`Sync`] when the
/// `parallel` feature is enabled (inboxes are read, and outboxes filled,
/// from pool threads), satisfied by every type otherwise.
#[cfg(feature = "parallel")]
pub trait MaybeSendSync: Send + Sync {}
#[cfg(feature = "parallel")]
impl<T: Send + Sync + ?Sized> MaybeSendSync for T {}

/// Marker supertrait of [`Payload`]: [`Send`]` + `[`Sync`] when the
/// `parallel` feature is enabled (inboxes are read, and outboxes filled,
/// from pool threads), satisfied by every type otherwise.
#[cfg(not(feature = "parallel"))]
pub trait MaybeSendSync {}
#[cfg(not(feature = "parallel"))]
impl<T: ?Sized> MaybeSendSync for T {}

/// Data a message payload must expose so the simulator can charge bandwidth.
///
/// `size_bits` should be the length of a reasonable binary encoding of the
/// message — e.g. a node id costs `⌈log₂ n⌉` bits, a distance value costs its
/// bit length. The simulator enforces the per-channel per-round budget
/// against these sizes, which keeps algorithm implementations honest about
/// what fits in one CONGEST round.
pub trait Payload: Clone + fmt::Debug + MaybeSendSync {
    /// Size of this message in bits.
    fn size_bits(&self) -> u32;
}

/// Bit length of an integer value (at least 1).
pub fn bit_len(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

impl Payload for u64 {
    fn size_bits(&self) -> u32 {
        bit_len(*self)
    }
}

impl Payload for u32 {
    fn size_bits(&self) -> u32 {
        bit_len(u64::from(*self))
    }
}

impl Payload for usize {
    fn size_bits(&self) -> u32 {
        bit_len(*self as u64)
    }
}

impl Payload for bool {
    fn size_bits(&self) -> u32 {
        1
    }
}

impl Payload for () {
    fn size_bits(&self) -> u32 {
        1
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn size_bits(&self) -> u32 {
        self.0.size_bits() + self.1.size_bits()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn size_bits(&self) -> u32 {
        self.0.size_bits() + self.1.size_bits() + self.2.size_bits()
    }
}

impl<T: Payload> Payload for Option<T> {
    fn size_bits(&self) -> u32 {
        1 + self.as_ref().map_or(0, Payload::size_bits)
    }
}

/// Static knowledge available to a node at the start of an algorithm.
#[derive(Clone, Debug)]
pub struct NodeCtx {
    /// This node's identifier (`0..n`).
    pub id: NodeId,
    /// Number of nodes in the network.
    pub n: usize,
    /// Incident edges: `(neighbor id, edge weight)`, sorted by neighbor id.
    pub neighbors: Vec<(NodeId, Weight)>,
    /// The pre-defined leader node (Appendix A assumes one exists).
    pub leader: NodeId,
    /// The maximum edge weight `W` (known to all nodes, Appendix A).
    pub max_weight: Weight,
}

impl NodeCtx {
    /// `true` if this node is the leader.
    pub fn is_leader(&self) -> bool {
        self.id == self.leader
    }

    /// This node's degree.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// The weight of the edge to `v`, if `v` is adjacent.
    pub fn weight_to(&self, v: NodeId) -> Option<Weight> {
        self.neighbor_pos(v).map(|i| self.neighbors[i].1)
    }

    /// The position of `v` in this node's sorted neighbor list, if adjacent.
    ///
    /// Positions index a contiguous `0..degree()` range, which lets the
    /// round engine keep O(1)-reset per-neighbor scratch tables instead of
    /// searching a per-destination list for every message.
    pub fn neighbor_pos(&self, v: NodeId) -> Option<usize> {
        self.neighbors.binary_search_by_key(&v, |&(u, _)| u).ok()
    }
}

/// Per-channel bandwidth in bits per round.
///
/// The CONGEST model allows `B = O(log n)`-bit messages; distances on graphs
/// with weights `≤ W` need `O(log(nW))` bits, which is still `O(log n)` for
/// polynomially bounded weights. [`Bandwidth::standard`] budgets one
/// `(node id, distance)` pair plus constant framing per round.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Bandwidth {
    bits: u32,
}

impl Bandwidth {
    /// A custom budget of `bits` per channel per round.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn bits(bits: u32) -> Bandwidth {
        assert!(bits > 0, "bandwidth must be positive");
        Bandwidth { bits }
    }

    /// The standard CONGEST budget for an `n`-node network with maximum
    /// weight `w`: room for one node id, one distance value on the graph
    /// (`≤ n·w`), and 16 bits of framing.
    pub fn standard(n: usize, max_weight: Weight) -> Bandwidth {
        let id_bits = bit_len(n as u64);
        let dist_bits = bit_len((n as u64).saturating_mul(max_weight.max(1)));
        Bandwidth {
            bits: id_bits + dist_bits + 16,
        }
    }

    /// The budget in bits.
    pub fn get(self) -> u32 {
        self.bits
    }
}

/// What a node does at the end of a round.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Status {
    /// Keep participating in subsequent rounds.
    Running,
    /// This node has finished the algorithm (it still relays nothing).
    Done,
}

/// Default cap on [`RoundStats::message_log`] entries; see
/// [`SimConfig::message_log_cap`].
pub const DEFAULT_MESSAGE_LOG_CAP: usize = 4_000_000;

/// How the network executes the per-node compute phase of each round.
///
/// The two engines are **bit-identical** in every observable — outputs,
/// [`RoundStats`], per-node [`crate::Quality`], and the emitted trace-event
/// sequence — because node programs only read their own inbox and write
/// their own outbox during compute, and the merge phase always processes
/// outboxes in ascending sender order on the calling thread (fault
/// decisions are pure hashes of their coordinates, so they cannot observe
/// scheduling either). See DESIGN.md §"Round engine".
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum Parallelism {
    /// Run nodes one after another on the calling thread (the default).
    #[default]
    Sequential,
    /// Fan the compute phase across the ambient thread pool (the pool a
    /// surrounding `rayon::ThreadPool::install` provides, else the global
    /// one). Requires the `parallel` cargo feature; without it this variant
    /// falls back to sequential execution.
    Parallel,
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Per-channel per-round bit budget.
    pub bandwidth: Bandwidth,
    /// If `true`, record every message in [`RoundStats::message_log`]
    /// (needed by the Server-model simulation of Lemma 4.1).
    pub log_messages: bool,
    /// Hard cap on executed rounds; exceeding it is an error.
    pub max_rounds: usize,
    /// Upper bound on entries recorded in [`RoundStats::message_log`]:
    /// once the log holds this many records, further messages are counted
    /// in the aggregate statistics but dropped from the log (detectable as
    /// `message_log.len() == message_log_cap`; the network also emits a
    /// one-time [`crate::telemetry::TraceEvent::MessageLogTruncated`] when
    /// the first record is lost). Keeps a forgotten `with_message_log` from
    /// ballooning memory on long runs.
    pub message_log_cap: usize,
    /// If `true`, the network maintains a streaming per-channel load
    /// histogram ([`crate::telemetry::BandwidthProfile`]) and emits a
    /// [`crate::telemetry::TraceEvent::ChannelProfile`] summary at the end
    /// of each run. Needs no message log.
    pub profile_channels: bool,
    /// Telemetry sink; disabled ([`Telemetry::off`]) by default, in which
    /// case no events are constructed at all.
    pub telemetry: Telemetry,
    /// Fault-injection plan (see [`crate::faults`]); `None` (the default)
    /// runs the ideal lossless network. A plan with all knobs at zero is
    /// behaviorally identical to `None`. Shared behind an [`Arc`] so that
    /// cloning a config between algorithm phases never copies the plan's
    /// link/crash/burst tables.
    pub faults: Option<Arc<FaultPlan>>,
    /// Round-engine execution mode (see [`Parallelism`]); sequential by
    /// default.
    pub parallelism: Parallelism,
    /// Live metrics bundle (see [`crate::metrics::SimMetrics`]); `None`
    /// (the default) records nothing. Unlike [`Self::telemetry`], the
    /// bundle is updated with a handful of relaxed atomic adds per round —
    /// no per-event values are constructed — so it is cheap enough to stay
    /// attached in benchmark runs. Shared behind an [`Arc`] so cloning a
    /// config between phases keeps accumulating into the same counters.
    pub metrics: Option<Arc<crate::metrics::SimMetrics>>,
}

impl SimConfig {
    /// Standard configuration for a network of `n` nodes with max weight `w`.
    pub fn standard(n: usize, max_weight: Weight) -> SimConfig {
        SimConfig {
            bandwidth: Bandwidth::standard(n, max_weight),
            log_messages: false,
            max_rounds: 10_000_000,
            message_log_cap: DEFAULT_MESSAGE_LOG_CAP,
            profile_channels: false,
            telemetry: Telemetry::off(),
            faults: None,
            parallelism: Parallelism::Sequential,
            metrics: None,
        }
    }

    /// Enables message logging (builder style).
    pub fn with_message_log(mut self) -> SimConfig {
        self.log_messages = true;
        self
    }

    /// Sets the round cap (builder style).
    pub fn with_max_rounds(mut self, max_rounds: usize) -> SimConfig {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the message-log entry cap (builder style); see
    /// [`SimConfig::message_log_cap`].
    pub fn with_message_log_cap(mut self, cap: usize) -> SimConfig {
        self.message_log_cap = cap;
        self
    }

    /// Enables the streaming per-channel bandwidth profile (builder style).
    pub fn with_channel_profile(mut self) -> SimConfig {
        self.profile_channels = true;
        self
    }

    /// Attaches a telemetry sink (builder style).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> SimConfig {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a fault-injection plan (builder style); see [`crate::faults`].
    pub fn with_faults(mut self, plan: FaultPlan) -> SimConfig {
        self.faults = Some(Arc::new(plan));
        self
    }

    /// Selects the round-engine execution mode (builder style); see
    /// [`Parallelism`].
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> SimConfig {
        self.parallelism = parallelism;
        self
    }

    /// Attaches a live metrics bundle (builder style); see
    /// [`crate::metrics::SimMetrics`].
    pub fn with_metrics(mut self, metrics: crate::metrics::SimMetrics) -> SimConfig {
        self.metrics = Some(Arc::new(metrics));
        self
    }
}

/// One logged message (when [`SimConfig::log_messages`] is set).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MessageRecord {
    /// Round in which the message was delivered (1-based).
    pub round: usize,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Charged size in bits.
    pub bits: u32,
}

/// Fault and recovery overhead, accounted separately from the algorithmic
/// counters of [`RoundStats`].
///
/// The paper's round counts (e.g. Theorem 1.1's
/// `Õ(min{n^{9/10} D^{3/10}, n})`) assume a lossless network; this budget
/// keeps those headline numbers comparable under faults by tracking what
/// the fault model cost *on top*: messages the network discarded, rounds
/// nodes spent crashed, and the retransmission traffic the
/// [`crate::reliable`] layer added to mask the losses. All fields are zero
/// for a fault-free run, so `RoundStats` equality with the ideal path is
/// preserved exactly.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct ResilienceBudget {
    /// Messages the fault model discarded (any [`crate::faults::DropReason`]).
    pub dropped_messages: u64,
    /// Bits of discarded messages.
    pub dropped_bits: u64,
    /// Messages discarded specifically by link throttles.
    pub throttled_messages: u64,
    /// Total `(node, round)` pairs in which a node was crashed.
    pub crashed_node_rounds: u64,
    /// Data frames re-sent by the reliable layer after an ack timeout.
    pub retransmissions: u64,
    /// Acknowledgement frames sent by the reliable layer.
    pub ack_messages: u64,
    /// Data frames the reliable layer abandoned after exhausting retries.
    pub gave_up: u64,
}

impl ResilienceBudget {
    /// `true` if no fault or recovery overhead was recorded.
    pub fn is_zero(&self) -> bool {
        *self == ResilienceBudget::default()
    }

    /// Accumulates another phase's overhead into this one.
    pub fn absorb(&mut self, other: &ResilienceBudget) {
        self.dropped_messages += other.dropped_messages;
        self.dropped_bits += other.dropped_bits;
        self.throttled_messages += other.throttled_messages;
        self.crashed_node_rounds += other.crashed_node_rounds;
        self.retransmissions += other.retransmissions;
        self.ack_messages += other.ack_messages;
        self.gave_up += other.gave_up;
    }
}

/// Execution statistics of a simulation (or of several, accumulated).
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct RoundStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Total messages delivered.
    pub messages: u64,
    /// Total bits delivered.
    pub bits: u64,
    /// The largest per-channel bit load observed in any single round.
    pub max_channel_bits: u32,
    /// Fault and recovery overhead (all zero without faults); see
    /// [`ResilienceBudget`].
    pub resilience: ResilienceBudget,
    /// Individual messages (empty unless logging was enabled).
    ///
    /// Truncated at [`SimConfig::message_log_cap`] entries: the aggregate
    /// counters above keep counting, but no further records are appended.
    /// A log whose length equals the cap should be assumed incomplete.
    pub message_log: Vec<MessageRecord>,
}

impl RoundStats {
    /// Accumulates another phase's statistics into this one (rounds add up,
    /// as when algorithm phases run back to back).
    pub fn absorb(&mut self, other: &RoundStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_channel_bits = self.max_channel_bits.max(other.max_channel_bits);
        self.resilience.absorb(&other.resilience);
        self.message_log.extend(other.message_log.iter().copied());
    }
}

impl fmt::Display for RoundStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} messages, {} bits (peak {} bits/channel/round)",
            self.rounds, self.messages, self.bits, self.max_channel_bits
        )?;
        if !self.resilience.is_zero() {
            write!(
                f,
                "; faults: {} dropped ({} bits), {} crashed node-rounds, {} retransmissions",
                self.resilience.dropped_messages,
                self.resilience.dropped_bits,
                self.resilience.crashed_node_rounds,
                self.resilience.retransmissions
            )?;
        }
        Ok(())
    }
}

/// Errors raised by the simulator.
///
/// Serializes to externally tagged JSON (e.g. for
/// [`crate::telemetry::TraceEvent::SimFailed`] trace lines).
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub enum SimError {
    /// A node sent to a non-neighbor.
    NotAdjacent {
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
    },
    /// The per-channel bit budget was exceeded in one round.
    BandwidthExceeded {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Round (1-based).
        round: usize,
        /// Bits the sender tried to push through the channel this round.
        attempted_bits: u32,
        /// The budget.
        budget_bits: u32,
    },
    /// `max_rounds` elapsed without quiescence.
    ///
    /// [`crate::Network::stats`] still reflects every round that executed
    /// before the cap fired, so partial statistics survive the failure.
    RoundLimitExceeded {
        /// The cap that was hit.
        max_rounds: usize,
        /// Rounds that actually executed before the cap fired.
        rounds_executed: usize,
    },
    /// The network quiesced, but a node whose output the phase needs never
    /// reached its final state — e.g. the aggregation root of a
    /// [`crate::primitives::converge_cast`] was inside a
    /// [`crate::faults::CrashWindow`] when the run ended, so it holds no
    /// result to return. Only fault plans can produce this: on a lossless
    /// network every phase either completes or hits another error.
    PhaseIncomplete {
        /// The phase name (as passed to [`crate::run_phase`]).
        phase: &'static str,
        /// The node whose output was required but missing.
        node: NodeId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotAdjacent { from, to } => {
                write!(f, "node {from} attempted to send to non-neighbor {to}")
            }
            SimError::BandwidthExceeded { from, to, round, attempted_bits, budget_bits } => write!(
                f,
                "channel {from}->{to} overloaded in round {round}: {attempted_bits} bits > budget {budget_bits}"
            ),
            SimError::RoundLimitExceeded {
                max_rounds,
                rounds_executed,
            } => {
                write!(
                    f,
                    "simulation did not finish within {max_rounds} rounds ({rounds_executed} executed)"
                )
            }
            SimError::PhaseIncomplete { phase, node } => {
                write!(
                    f,
                    "phase '{phase}' quiesced without node {node} reaching its result (crashed under faults?)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_len_values() {
        assert_eq!(bit_len(0), 1);
        assert_eq!(bit_len(1), 1);
        assert_eq!(bit_len(2), 2);
        assert_eq!(bit_len(255), 8);
        assert_eq!(bit_len(256), 9);
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(7u64.size_bits(), 3);
        assert_eq!((3u64, 5u64).size_bits(), 2 + 3);
        assert_eq!(Some(1u64).size_bits(), 2);
        assert_eq!(None::<u64>.size_bits(), 1);
        assert_eq!(true.size_bits(), 1);
    }

    #[test]
    fn standard_bandwidth_is_logarithmic() {
        let b1 = Bandwidth::standard(1 << 10, 1);
        let b2 = Bandwidth::standard(1 << 20, 1);
        assert!(b2.get() > b1.get());
        assert!(b2.get() < 100, "still O(log n)");
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = RoundStats {
            rounds: 5,
            messages: 10,
            bits: 100,
            max_channel_bits: 8,
            resilience: ResilienceBudget::default(),
            message_log: vec![],
        };
        let b = RoundStats {
            rounds: 3,
            messages: 1,
            bits: 9,
            max_channel_bits: 12,
            resilience: ResilienceBudget {
                dropped_messages: 2,
                dropped_bits: 16,
                ..ResilienceBudget::default()
            },
            message_log: vec![],
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 8);
        assert_eq!(a.messages, 11);
        assert_eq!(a.bits, 109);
        assert_eq!(a.max_channel_bits, 12);
        assert_eq!(a.resilience.dropped_messages, 2);
        assert_eq!(a.resilience.dropped_bits, 16);
        assert!(!a.resilience.is_zero());
    }

    #[test]
    fn ctx_weight_lookup() {
        let ctx = NodeCtx {
            id: 0,
            n: 3,
            neighbors: vec![(1, 4), (2, 9)],
            leader: 0,
            max_weight: 9,
        };
        assert!(ctx.is_leader());
        assert_eq!(ctx.degree(), 2);
        assert_eq!(ctx.weight_to(2), Some(9));
        assert_eq!(ctx.weight_to(0), None);
    }

    #[test]
    fn errors_display() {
        let e = SimError::NotAdjacent { from: 1, to: 2 };
        assert!(e.to_string().contains("non-neighbor"));
        let e = SimError::RoundLimitExceeded {
            max_rounds: 10,
            rounds_executed: 10,
        };
        assert!(e.to_string().contains("within 10 rounds"));
        assert!(e.to_string().contains("10 executed"));
    }

    #[test]
    fn stats_display_mentions_faults_only_when_present() {
        let mut stats = RoundStats {
            rounds: 2,
            messages: 3,
            bits: 12,
            ..RoundStats::default()
        };
        assert!(!stats.to_string().contains("faults"));
        stats.resilience.dropped_messages = 1;
        assert!(stats.to_string().contains("faults: 1 dropped"));
    }
}
