//! Structured simulation telemetry: phase spans, round events, channel
//! saturation, and bandwidth profiles.
//!
//! The simulator's headline numbers ([`crate::RoundStats`]) answer *how much* an
//! algorithm communicated; telemetry answers *where* and *when*. Algorithms
//! open named, nestable **phase spans** around their sub-protocols, the
//! network runner emits a [`TraceEvent::RoundCompleted`] per synchronous
//! round, and sinks ([`Tracer`] implementations) consume the resulting
//! event stream:
//!
//! * [`NullTracer`] — discards everything (the default; a disabled
//!   [`Telemetry`] handle never even constructs events);
//! * [`CountingTracer`] — lock-free counters, for overhead-free assertions;
//! * [`CollectingTracer`] — buffers events in memory, for tests and for
//!   in-process analysis via [`build_phase_tree`];
//! * [`JsonlTracer`] — writes one JSON object per line, the interchange
//!   format read back by the `wdr-trace` report tool.
//!
//! # Phase accounting invariant
//!
//! Every round the simulator executes is attributed to the innermost open
//! span at the time (or to the trace root if none is open). Algorithms that
//! *pad* their round count to a worst-case schedule without simulating the
//! extra rounds (e.g. `bounded_distance_sssp` charging its full `h+1`-round
//! schedule) announce the padding with [`TraceEvent::PadRounds`]. With both
//! in place, the per-phase subtree rounds of [`build_phase_tree`] sum to
//! exactly the `RoundStats::rounds` an algorithm reports — a property the
//! test-suite checks end-to-end on `three_halves_diameter`.
//!
//! # Example
//!
//! Trace two primitives under named spans and break the rounds down per
//! phase (higher up the stack, `congest_algos::three_halves_diameter` does
//! exactly this around each of its sub-protocols):
//!
//! ```
//! use congest_sim::telemetry::{build_phase_tree, CollectingTracer, Telemetry};
//! use congest_sim::{primitives, SimConfig};
//! use congest_graph::generators;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), congest_sim::SimError> {
//! let tracer = Arc::new(CollectingTracer::default());
//! let g = generators::grid(4, 4, 1);
//! let config =
//!     SimConfig::standard(g.n(), 1).with_telemetry(Telemetry::new(tracer.clone()));
//!
//! let (tree, tree_stats) = {
//!     let _span = config.telemetry.span("bfs_tree");
//!     primitives::bfs_tree(&g, 0, &config)?
//! };
//! let values: Vec<u128> = (0..16).collect();
//! let (_max, cast_stats) = {
//!     let _span = config.telemetry.span("converge_cast");
//!     primitives::converge_cast(&g, 0, &config, &tree, &values,
//!         primitives::Aggregate::Max)?
//! };
//!
//! let phases = build_phase_tree(&tracer.events());
//! assert_eq!(phases.children[0].name, "bfs_tree");
//! assert_eq!(phases.children[0].subtree().rounds, tree_stats.rounds);
//! assert_eq!(phases.children[1].subtree().rounds, cast_stats.rounds);
//! assert_eq!(phases.subtree().rounds, tree_stats.rounds + cast_stats.rounds);
//! # Ok(()) }
//! ```

use crate::faults::DropReason;
use crate::model::SimError;
use congest_graph::NodeId;
use serde::Serialize;
use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One structured event in a simulation trace.
///
/// Serialized as externally tagged JSON, one event per line (JSONL), e.g.
/// `{"RoundCompleted":{"round":3,"messages":12,"bits":96,"max_channel_bits":8}}`.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum TraceEvent {
    /// A named phase span opened. Spans nest: a `PhaseStart` before the
    /// matching `PhaseEnd` of an outer span makes this phase its child.
    PhaseStart {
        /// Span name (e.g. `"three_halves/sample_bfs"`).
        name: String,
    },
    /// The innermost open phase span closed.
    PhaseEnd {
        /// Span name; must match the innermost open `PhaseStart`.
        name: String,
    },
    /// One synchronous round finished executing.
    RoundCompleted {
        /// Round number within the current network run (1-based).
        round: usize,
        /// Messages sent during this round.
        messages: u64,
        /// Bits sent during this round.
        bits: u64,
        /// The largest per-channel bit load of this round.
        max_channel_bits: u32,
    },
    /// An algorithm charged rounds to its schedule without simulating them
    /// (worst-case padding, e.g. the fixed `h+1`-round schedule of
    /// bounded-hop SSSP finishing early).
    PadRounds {
        /// Number of padded rounds.
        rounds: usize,
        /// What schedule the padding accounts for.
        reason: String,
    },
    /// A channel carried at least 90% of its per-round bit budget.
    ChannelSaturation {
        /// Round number (1-based).
        round: usize,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Bits pushed through the channel this round.
        bits: u32,
        /// The per-channel budget.
        budget_bits: u32,
    },
    /// Summary of the per-channel load distribution of one network run
    /// (emitted when [`crate::SimConfig::with_channel_profile`] is set).
    ChannelProfile {
        /// Number of (channel, round) samples with at least one message.
        channel_rounds: u64,
        /// Median bits per active channel per round.
        p50_bits: u32,
        /// 95th-percentile bits per active channel per round.
        p95_bits: u32,
        /// Maximum bits per active channel per round.
        max_bits: u32,
        /// The heaviest directed edges by total bits, descending.
        hot_edges: Vec<HotEdge>,
    },
    /// A quantum search subroutine ran Grover iterations (bridged from
    /// `quantum-sim`'s `SearchTrace` by the caller).
    GroverIteration {
        /// Which search invocation (e.g. `"durr_hoyer/eccentricity"`).
        label: String,
        /// Grover iterations executed by this invocation.
        iterations: u64,
        /// Oracle queries charged by this invocation.
        oracle_queries: u64,
    },
    /// The fault model discarded a message (see [`crate::faults`]).
    MessageDropped {
        /// Delivery round the message was scheduled for (1-based).
        round: usize,
        /// Sender.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Charged size of the lost message.
        bits: u32,
        /// Why the fault model discarded it.
        reason: DropReason,
    },
    /// A node entered a crash window (see
    /// [`crate::faults::FaultPlan::with_crash`]).
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
        /// First round (1-based) the node is down.
        round: usize,
    },
    /// A crashed node came back up (with its pre-crash state intact).
    NodeRecovered {
        /// The recovered node.
        node: NodeId,
        /// First round (1-based) the node is back up.
        round: usize,
    },
    /// A throttled link's per-round bit budget was exhausted and a message
    /// was discarded (see [`crate::faults::FaultPlan::with_throttle`]).
    LinkThrottled {
        /// Delivery round (1-based).
        round: usize,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The throttle's per-round budget in bits.
        budget_bits: u32,
    },
    /// The [`crate::RoundStats::message_log`] hit its cap and dropped its
    /// first record (emitted once per network; see
    /// [`crate::SimConfig::message_log_cap`]).
    MessageLogTruncated {
        /// Round in which the first record was lost (1-based).
        round: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The simulation aborted with an error.
    SimFailed {
        /// The simulator error.
        error: SimError,
    },
}

/// One entry of [`TraceEvent::ChannelProfile`]'s hot-edge table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct HotEdge {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Total bits this directed edge carried over the run.
    pub bits: u64,
}

/// A sink consuming [`TraceEvent`]s.
///
/// Implementations must be cheap per call and internally synchronized: one
/// tracer may be shared (via [`Telemetry`] clones) across every phase of a
/// multi-phase algorithm.
pub trait Tracer: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &TraceEvent);

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// The tracer handle carried by [`crate::SimConfig`].
///
/// Cloning is cheap (an `Arc` clone); the default [`Telemetry::off`] carries
/// no tracer at all, so disabled telemetry never constructs an event — the
/// closures passed to [`Telemetry::emit_with`] are not even called.
#[derive(Clone, Default)]
pub struct Telemetry {
    tracer: Option<Arc<dyn Tracer>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A disabled handle (the default): all emission is skipped.
    pub fn off() -> Telemetry {
        Telemetry { tracer: None }
    }

    /// A handle feeding `tracer`.
    pub fn new(tracer: Arc<dyn Tracer>) -> Telemetry {
        Telemetry {
            tracer: Some(tracer),
        }
    }

    /// `true` if events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Records the event built by `make` — which is only called (and its
    /// captures only touched) when a tracer is attached.
    pub fn emit_with(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(tracer) = &self.tracer {
            tracer.record(&make());
        }
    }

    /// Opens a named phase span; the span closes (emitting
    /// [`TraceEvent::PhaseEnd`]) when the returned guard drops.
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span(&self, name: &str) -> PhaseSpan {
        if let Some(tracer) = &self.tracer {
            tracer.record(&TraceEvent::PhaseStart {
                name: name.to_string(),
            });
            PhaseSpan {
                telemetry: self.clone(),
                name: Some(name.to_string()),
            }
        } else {
            PhaseSpan {
                telemetry: Telemetry::off(),
                name: None,
            }
        }
    }

    /// Flushes the underlying tracer.
    pub fn flush(&self) {
        if let Some(tracer) = &self.tracer {
            tracer.flush();
        }
    }
}

/// Guard for an open phase span; emits [`TraceEvent::PhaseEnd`] on drop.
#[derive(Debug)]
pub struct PhaseSpan {
    telemetry: Telemetry,
    name: Option<String>,
}

impl PhaseSpan {
    /// Closes the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            self.telemetry.emit_with(|| TraceEvent::PhaseEnd { name });
        }
    }
}

/// A tracer that discards every event.
///
/// [`Telemetry::off`] short-circuits before the sink, so the two are
/// behaviorally identical; `NullTracer` exists for code that must hand out
/// a real `Arc<dyn Tracer>`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn record(&self, _event: &TraceEvent) {}
}

/// Atomic counters over the event stream — cheap enough to leave on.
#[derive(Debug, Default)]
pub struct CountingTracer {
    events: AtomicU64,
    phases_started: AtomicU64,
    phases_ended: AtomicU64,
    rounds: AtomicU64,
    padded_rounds: AtomicU64,
    messages: AtomicU64,
    bits: AtomicU64,
    saturated_channel_rounds: AtomicU64,
    grover_iterations: AtomicU64,
    dropped_messages: AtomicU64,
    node_crashes: AtomicU64,
    throttled_messages: AtomicU64,
}

/// A point-in-time copy of a [`CountingTracer`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CountingSnapshot {
    /// Total events recorded.
    pub events: u64,
    /// `PhaseStart` events.
    pub phases_started: u64,
    /// `PhaseEnd` events.
    pub phases_ended: u64,
    /// Rounds completed (count of `RoundCompleted` events).
    pub rounds: u64,
    /// Rounds charged via `PadRounds` events.
    pub padded_rounds: u64,
    /// Messages summed over `RoundCompleted` events.
    pub messages: u64,
    /// Bits summed over `RoundCompleted` events.
    pub bits: u64,
    /// `ChannelSaturation` events.
    pub saturated_channel_rounds: u64,
    /// Grover iterations summed over `GroverIteration` events.
    pub grover_iterations: u64,
    /// Messages the fault model discarded (`MessageDropped` plus
    /// `LinkThrottled` events).
    pub dropped_messages: u64,
    /// `NodeCrashed` events.
    pub node_crashes: u64,
    /// `LinkThrottled` events.
    pub throttled_messages: u64,
}

impl CountingTracer {
    /// Reads all counters.
    pub fn snapshot(&self) -> CountingSnapshot {
        CountingSnapshot {
            events: self.events.load(Ordering::Relaxed),
            phases_started: self.phases_started.load(Ordering::Relaxed),
            phases_ended: self.phases_ended.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
            padded_rounds: self.padded_rounds.load(Ordering::Relaxed),
            messages: self.messages.load(Ordering::Relaxed),
            bits: self.bits.load(Ordering::Relaxed),
            saturated_channel_rounds: self.saturated_channel_rounds.load(Ordering::Relaxed),
            grover_iterations: self.grover_iterations.load(Ordering::Relaxed),
            dropped_messages: self.dropped_messages.load(Ordering::Relaxed),
            node_crashes: self.node_crashes.load(Ordering::Relaxed),
            throttled_messages: self.throttled_messages.load(Ordering::Relaxed),
        }
    }
}

impl Tracer for CountingTracer {
    fn record(&self, event: &TraceEvent) {
        self.events.fetch_add(1, Ordering::Relaxed);
        match event {
            TraceEvent::PhaseStart { .. } => {
                self.phases_started.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::PhaseEnd { .. } => {
                self.phases_ended.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::RoundCompleted { messages, bits, .. } => {
                self.rounds.fetch_add(1, Ordering::Relaxed);
                self.messages.fetch_add(*messages, Ordering::Relaxed);
                self.bits.fetch_add(*bits, Ordering::Relaxed);
            }
            TraceEvent::PadRounds { rounds, .. } => {
                self.padded_rounds
                    .fetch_add(*rounds as u64, Ordering::Relaxed);
            }
            TraceEvent::ChannelSaturation { .. } => {
                self.saturated_channel_rounds
                    .fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::GroverIteration { iterations, .. } => {
                self.grover_iterations
                    .fetch_add(*iterations, Ordering::Relaxed);
            }
            TraceEvent::MessageDropped { .. } => {
                self.dropped_messages.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::NodeCrashed { .. } => {
                self.node_crashes.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::LinkThrottled { .. } => {
                self.dropped_messages.fetch_add(1, Ordering::Relaxed);
                self.throttled_messages.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::ChannelProfile { .. }
            | TraceEvent::NodeRecovered { .. }
            | TraceEvent::MessageLogTruncated { .. }
            | TraceEvent::SimFailed { .. } => {}
        }
    }
}

/// Buffers every event in memory, in order.
#[derive(Debug, Default)]
pub struct CollectingTracer {
    events: Mutex<Vec<TraceEvent>>,
}

impl CollectingTracer {
    /// A copy of the events recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("collecting tracer poisoned")
            .clone()
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events
            .lock()
            .expect("collecting tracer poisoned")
            .clear();
    }
}

impl Tracer for CollectingTracer {
    fn record(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("collecting tracer poisoned")
            .push(event.clone());
    }
}

/// Writes each event as one line of JSON (the JSONL interchange format read
/// by `wdr-trace`).
pub struct JsonlTracer {
    out: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for JsonlTracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlTracer").finish_non_exhaustive()
    }
}

impl JsonlTracer {
    /// Wraps an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> JsonlTracer {
        JsonlTracer {
            out: Mutex::new(out),
        }
    }

    /// Creates (truncating) the file at `path` and writes the trace there,
    /// buffered.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonlTracer> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlTracer::new(Box::new(std::io::BufWriter::new(file))))
    }
}

impl Tracer for JsonlTracer {
    fn record(&self, event: &TraceEvent) {
        let line = event.to_json();
        let mut out = self.out.lock().expect("jsonl tracer poisoned");
        // I/O errors cannot be surfaced through the infallible trait; a
        // truncated trace is detectable downstream, so swallow them here.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl tracer poisoned").flush();
    }
}

/// Aggregate communication volume attributed to one phase (or trace root).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct PhaseTotals {
    /// Rounds (simulated plus padded).
    pub rounds: usize,
    /// Messages sent.
    pub messages: u64,
    /// Bits sent.
    pub bits: u64,
    /// Peak per-channel bits in any single round.
    pub max_channel_bits: u32,
}

impl PhaseTotals {
    fn add(&mut self, other: &PhaseTotals) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_channel_bits = self.max_channel_bits.max(other.max_channel_bits);
    }
}

/// One node of the phase tree produced by [`build_phase_tree`].
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct PhaseNode {
    /// Span name (`"trace"` for the synthetic root).
    pub name: String,
    /// Volume attributed directly to this span (excluding children).
    pub own: PhaseTotals,
    /// Nested spans, in order of opening.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    fn named(name: &str) -> PhaseNode {
        PhaseNode {
            name: name.to_string(),
            ..PhaseNode::default()
        }
    }

    /// Totals over this span and all nested spans.
    pub fn subtree(&self) -> PhaseTotals {
        let mut totals = self.own;
        for child in &self.children {
            totals.add(&child.subtree());
        }
        totals
    }

    /// Depth-first traversal yielding `(depth, node)` pairs, self first.
    pub fn walk(&self) -> Vec<(usize, &PhaseNode)> {
        let mut out = Vec::new();
        self.walk_into(0, &mut out);
        out
    }

    fn walk_into<'a>(&'a self, depth: usize, out: &mut Vec<(usize, &'a PhaseNode)>) {
        out.push((depth, self));
        for child in &self.children {
            child.walk_into(depth + 1, out);
        }
    }
}

/// Folds an event stream into a phase tree.
///
/// Rounds (and padding) are attributed to the innermost span open at the
/// time; events outside any span accrue to the synthetic `"trace"` root.
/// Unbalanced spans are tolerated: a stray `PhaseEnd` is ignored and spans
/// left open at the end of the stream are closed implicitly.
pub fn build_phase_tree(events: &[TraceEvent]) -> PhaseNode {
    // `stack` holds the chain root → … → innermost; nodes are re-attached to
    // their parents as their spans close.
    let mut stack: Vec<PhaseNode> = vec![PhaseNode::named("trace")];
    for event in events {
        match event {
            TraceEvent::PhaseStart { name } => {
                stack.push(PhaseNode::named(name));
            }
            TraceEvent::PhaseEnd { .. } => {
                if stack.len() > 1 {
                    let done = stack.pop().expect("stack non-empty");
                    stack.last_mut().expect("root remains").children.push(done);
                }
            }
            TraceEvent::RoundCompleted {
                messages,
                bits,
                max_channel_bits,
                ..
            } => {
                let own = &mut stack.last_mut().expect("root remains").own;
                own.rounds += 1;
                own.messages += messages;
                own.bits += bits;
                own.max_channel_bits = own.max_channel_bits.max(*max_channel_bits);
            }
            TraceEvent::PadRounds { rounds, .. } => {
                stack.last_mut().expect("root remains").own.rounds += rounds;
            }
            TraceEvent::ChannelSaturation { .. }
            | TraceEvent::ChannelProfile { .. }
            | TraceEvent::GroverIteration { .. }
            | TraceEvent::MessageDropped { .. }
            | TraceEvent::NodeCrashed { .. }
            | TraceEvent::NodeRecovered { .. }
            | TraceEvent::LinkThrottled { .. }
            | TraceEvent::MessageLogTruncated { .. }
            | TraceEvent::SimFailed { .. } => {}
        }
    }
    while stack.len() > 1 {
        let done = stack.pop().expect("stack non-empty");
        stack.last_mut().expect("root remains").children.push(done);
    }
    stack.pop().expect("root remains")
}

/// Streaming per-channel load histogram, maintained by the network runner
/// when [`crate::SimConfig::with_channel_profile`] is set.
///
/// One *sample* is the total bit load of one directed channel in one round
/// in which it carried at least one message; loads never exceed the
/// bandwidth budget (the simulator rejects overloads), so the histogram is
/// exact with `budget + 1` buckets — no reservoir, no `message_log`.
#[derive(Clone, Debug)]
pub struct BandwidthProfile {
    counts: Vec<u64>,
    per_edge: HashMap<(NodeId, NodeId), u64>,
    channel_rounds: u64,
}

impl BandwidthProfile {
    /// An empty profile for channels with the given bit budget.
    pub fn new(budget_bits: u32) -> BandwidthProfile {
        BandwidthProfile {
            counts: vec![0; budget_bits as usize + 1],
            per_edge: HashMap::new(),
            channel_rounds: 0,
        }
    }

    /// Records that channel `from → to` carried `bits` in some round.
    pub fn record(&mut self, from: NodeId, to: NodeId, bits: u32) {
        let idx = (bits as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        *self.per_edge.entry((from, to)).or_insert(0) += u64::from(bits);
        self.channel_rounds += 1;
    }

    /// Number of recorded samples.
    pub fn channel_rounds(&self) -> u64 {
        self.channel_rounds
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of bits per active channel-round.
    pub fn percentile(&self, q: f64) -> u32 {
        if self.channel_rounds == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.channel_rounds as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bits, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bits as u32;
            }
        }
        (self.counts.len() - 1) as u32
    }

    /// The maximum observed bits per channel per round.
    pub fn max_bits(&self) -> u32 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|bits| bits as u32)
            .unwrap_or(0)
    }

    /// The `k` directed edges with the largest total bit volume, descending
    /// (ties broken by `(from, to)` for determinism).
    pub fn hottest_edges(&self, k: usize) -> Vec<HotEdge> {
        let mut edges: Vec<HotEdge> = self
            .per_edge
            .iter()
            .map(|(&(from, to), &bits)| HotEdge { from, to, bits })
            .collect();
        edges.sort_by(|a, b| {
            b.bits
                .cmp(&a.bits)
                .then_with(|| (a.from, a.to).cmp(&(b.from, b.to)))
        });
        edges.truncate(k);
        edges
    }

    /// Renders the profile as a [`TraceEvent::ChannelProfile`] summary with
    /// the `top_k` hottest edges.
    pub fn summary(&self, top_k: usize) -> TraceEvent {
        TraceEvent::ChannelProfile {
            channel_rounds: self.channel_rounds,
            p50_bits: self.percentile(0.50),
            p95_bits: self.percentile(0.95),
            max_bits: self.max_bits(),
            hot_edges: self.hottest_edges(top_k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(messages: u64, bits: u64, peak: u32) -> TraceEvent {
        TraceEvent::RoundCompleted {
            round: 1,
            messages,
            bits,
            max_channel_bits: peak,
        }
    }

    #[test]
    fn span_guard_emits_balanced_events() {
        let tracer = Arc::new(CollectingTracer::default());
        let telemetry = Telemetry::new(tracer.clone());
        {
            let _outer = telemetry.span("outer");
            let _inner = telemetry.span("inner");
        }
        let events = tracer.events();
        assert_eq!(
            events,
            vec![
                TraceEvent::PhaseStart {
                    name: "outer".into()
                },
                TraceEvent::PhaseStart {
                    name: "inner".into()
                },
                TraceEvent::PhaseEnd {
                    name: "inner".into()
                },
                TraceEvent::PhaseEnd {
                    name: "outer".into()
                },
            ]
        );
    }

    #[test]
    fn disabled_telemetry_never_builds_events() {
        let telemetry = Telemetry::off();
        let mut built = false;
        telemetry.emit_with(|| {
            built = true;
            round(0, 0, 0)
        });
        assert!(!built);
        assert!(!telemetry.is_enabled());
        let _span = telemetry.span("ignored");
    }

    #[test]
    fn phase_tree_attributes_rounds_to_innermost_span() {
        let events = vec![
            round(1, 8, 8), // before any span: root
            TraceEvent::PhaseStart { name: "a".into() },
            round(2, 16, 16),
            TraceEvent::PhaseStart { name: "b".into() },
            round(3, 24, 24),
            round(1, 4, 4),
            TraceEvent::PadRounds {
                rounds: 5,
                reason: "schedule".into(),
            },
            TraceEvent::PhaseEnd { name: "b".into() },
            round(1, 1, 1),
            TraceEvent::PhaseEnd { name: "a".into() },
        ];
        let tree = build_phase_tree(&events);
        assert_eq!(tree.own.rounds, 1);
        let a = &tree.children[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.own.rounds, 2);
        let b = &a.children[0];
        assert_eq!(b.name, "b");
        assert_eq!(b.own.rounds, 7); // 2 simulated + 5 padded
        assert_eq!(b.own.messages, 4);
        assert_eq!(tree.subtree().rounds, 1 + 2 + 7);
        assert_eq!(tree.subtree().messages, 8);
        assert_eq!(tree.subtree().max_channel_bits, 24);
    }

    #[test]
    fn phase_tree_tolerates_unbalanced_spans() {
        let stray_end = vec![TraceEvent::PhaseEnd { name: "x".into() }, round(1, 1, 1)];
        assert_eq!(build_phase_tree(&stray_end).own.rounds, 1);

        let left_open = vec![TraceEvent::PhaseStart { name: "y".into() }, round(1, 1, 1)];
        let tree = build_phase_tree(&left_open);
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].own.rounds, 1);
    }

    #[test]
    fn counting_tracer_totals() {
        let tracer = CountingTracer::default();
        tracer.record(&TraceEvent::PhaseStart { name: "p".into() });
        tracer.record(&round(3, 30, 10));
        tracer.record(&round(2, 20, 12));
        tracer.record(&TraceEvent::PadRounds {
            rounds: 4,
            reason: "pad".into(),
        });
        tracer.record(&TraceEvent::ChannelSaturation {
            round: 1,
            from: 0,
            to: 1,
            bits: 30,
            budget_bits: 32,
        });
        tracer.record(&TraceEvent::GroverIteration {
            label: "s".into(),
            iterations: 17,
            oracle_queries: 17,
        });
        tracer.record(&TraceEvent::PhaseEnd { name: "p".into() });
        let snap = tracer.snapshot();
        assert_eq!(snap.events, 7);
        assert_eq!(snap.phases_started, 1);
        assert_eq!(snap.phases_ended, 1);
        assert_eq!(snap.rounds, 2);
        assert_eq!(snap.padded_rounds, 4);
        assert_eq!(snap.messages, 5);
        assert_eq!(snap.bits, 50);
        assert_eq!(snap.saturated_channel_rounds, 1);
        assert_eq!(snap.grover_iterations, 17);
    }

    #[test]
    fn jsonl_tracer_writes_one_event_per_line() {
        use std::sync::atomic::AtomicBool;

        // A shared Vec<u8> sink.
        #[derive(Clone, Default)]
        struct Sink(Arc<Mutex<Vec<u8>>>, Arc<AtomicBool>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.1.store(true, Ordering::Relaxed);
                Ok(())
            }
        }

        let sink = Sink::default();
        let tracer = JsonlTracer::new(Box::new(sink.clone()));
        tracer.record(&TraceEvent::PhaseStart { name: "p".into() });
        tracer.record(&round(1, 8, 8));
        tracer.flush();
        assert!(sink.1.load(Ordering::Relaxed));
        let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"PhaseStart":{"name":"p"}}"#);
        assert_eq!(
            lines[1],
            r#"{"RoundCompleted":{"round":1,"messages":1,"bits":8,"max_channel_bits":8}}"#
        );
    }

    #[test]
    fn bandwidth_profile_percentiles_and_hot_edges() {
        let mut profile = BandwidthProfile::new(32);
        // 18 light samples on edge (0,1), 2 heavy ones on (2,3).
        for _ in 0..18 {
            profile.record(0, 1, 4);
        }
        profile.record(2, 3, 30);
        profile.record(2, 3, 32);
        assert_eq!(profile.channel_rounds(), 20);
        assert_eq!(profile.percentile(0.50), 4);
        assert_eq!(profile.percentile(0.95), 30);
        assert_eq!(profile.max_bits(), 32);
        let hot = profile.hottest_edges(2);
        assert_eq!(
            hot[0],
            HotEdge {
                from: 0,
                to: 1,
                bits: 72
            }
        );
        assert_eq!(
            hot[1],
            HotEdge {
                from: 2,
                to: 3,
                bits: 62
            }
        );
        match profile.summary(1) {
            TraceEvent::ChannelProfile {
                channel_rounds,
                hot_edges,
                max_bits,
                ..
            } => {
                assert_eq!(channel_rounds, 20);
                assert_eq!(hot_edges.len(), 1);
                assert_eq!(max_bits, 32);
            }
            other => panic!("unexpected summary {other:?}"),
        }
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let profile = BandwidthProfile::new(16);
        assert_eq!(profile.percentile(0.5), 0);
        assert_eq!(profile.max_bits(), 0);
        assert!(profile.hottest_edges(3).is_empty());
    }
}
