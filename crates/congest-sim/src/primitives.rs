//! Reusable CONGEST building blocks: BFS-tree construction, convergecast
//! aggregation, pipelined broadcast, and pipelined collection.
//!
//! These are the `O(D)`- and `O(D + k)`-round primitives the paper's
//! algorithms lean on ("the node leader can collect S_i in O(D + r) rounds",
//! "broadcasts them by pipelining in O(D + b) rounds", "convergecasting in
//! O(D) rounds", …).

#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
use crate::model::{NodeCtx, Payload, RoundStats, SimConfig, SimError, Status};
use crate::network::{run_phase, Mailbox, NodeProgram};
use congest_graph::{NodeId, WeightedGraph};

/// A node's view of a rooted BFS tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TreeInfo {
    /// Parent in the tree (`None` at the root).
    pub parent: Option<NodeId>,
    /// Children in the tree.
    pub children: Vec<NodeId>,
    /// Depth (root is 0).
    pub depth: usize,
}

enum TreeMsg {
    Token,
    Adopt,
}

impl Clone for TreeMsg {
    fn clone(&self) -> TreeMsg {
        match self {
            TreeMsg::Token => TreeMsg::Token,
            TreeMsg::Adopt => TreeMsg::Adopt,
        }
    }
}

impl std::fmt::Debug for TreeMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeMsg::Token => write!(f, "Token"),
            TreeMsg::Adopt => write!(f, "Adopt"),
        }
    }
}

impl Payload for TreeMsg {
    fn size_bits(&self) -> u32 {
        1
    }
}

struct BfsTreeProgram {
    joined: bool,
    depth: usize,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    joined_round: Option<usize>,
}

impl BfsTreeProgram {
    fn new() -> BfsTreeProgram {
        BfsTreeProgram {
            joined: false,
            depth: 0,
            parent: None,
            children: Vec::new(),
            joined_round: None,
        }
    }
}

impl NodeProgram for BfsTreeProgram {
    type Msg = TreeMsg;
    type Output = TreeInfo;

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<TreeMsg>) {
        if ctx.is_leader() {
            self.joined = true;
            self.joined_round = Some(0);
            mb.broadcast(ctx, TreeMsg::Token);
        }
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &[(NodeId, TreeMsg)],
        mb: &mut Mailbox<TreeMsg>,
    ) -> Status {
        for (from, msg) in inbox {
            match msg {
                TreeMsg::Token => {
                    if !self.joined {
                        self.joined = true;
                        self.joined_round = Some(round);
                        self.depth = round;
                        self.parent = Some(*from);
                        mb.send(*from, TreeMsg::Adopt);
                        mb.broadcast(ctx, TreeMsg::Token);
                    }
                }
                TreeMsg::Adopt => self.children.push(*from),
            }
        }
        // A node that joined in round t hears every Adopt by round t + 2.
        match self.joined_round {
            Some(t) if round >= t + 2 => Status::Done,
            Some(_) if ctx.degree() == 0 => Status::Done,
            _ => Status::Running,
        }
    }

    fn finish(mut self, _ctx: &NodeCtx) -> TreeInfo {
        self.children.sort_unstable();
        TreeInfo {
            parent: self.parent,
            children: self.children,
            depth: self.depth,
        }
    }
}

/// Builds a BFS tree rooted at `leader` in `O(D)` rounds; returns each
/// node's [`TreeInfo`] and the phase statistics.
///
/// # Errors
///
/// Propagates simulator errors (a disconnected graph hits the round cap).
///
/// # Examples
///
/// ```
/// use congest_sim::{primitives, SimConfig};
/// use congest_graph::generators;
/// let g = generators::path(4, 1);
/// let (tree, stats) = primitives::bfs_tree(&g, 0, &SimConfig::standard(4, 1))?;
/// assert_eq!(tree[3].depth, 3);
/// assert_eq!(tree[0].children, vec![1]);
/// assert!(stats.rounds <= 3 + 2);
/// # Ok::<(), congest_sim::SimError>(())
/// ```
pub fn bfs_tree(
    graph: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
) -> Result<(Vec<TreeInfo>, RoundStats), SimError> {
    run_phase(graph, leader, config, "bfs_tree", |_, _| {
        BfsTreeProgram::new()
    })
}

/// Associative aggregation used by [`converge_cast`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Aggregate {
    /// Maximum of the values.
    Max,
    /// Minimum of the values.
    Min,
    /// Sum of the values (saturating).
    Sum,
}

impl Aggregate {
    fn combine(self, a: u128, b: u128) -> u128 {
        match self {
            Aggregate::Max => a.max(b),
            Aggregate::Min => a.min(b),
            Aggregate::Sum => a.saturating_add(b),
        }
    }
}

impl Payload for u128 {
    fn size_bits(&self) -> u32 {
        (128 - self.leading_zeros()).max(1)
    }
}

enum CastMsg {
    Up(u128),
    Down(u128),
}

impl Clone for CastMsg {
    fn clone(&self) -> CastMsg {
        match self {
            CastMsg::Up(v) => CastMsg::Up(*v),
            CastMsg::Down(v) => CastMsg::Down(*v),
        }
    }
}

impl std::fmt::Debug for CastMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CastMsg::Up(v) => write!(f, "Up({v})"),
            CastMsg::Down(v) => write!(f, "Down({v})"),
        }
    }
}

impl Payload for CastMsg {
    fn size_bits(&self) -> u32 {
        1 + match self {
            CastMsg::Up(v) | CastMsg::Down(v) => v.size_bits(),
        }
    }
}

struct ConvergeCastProgram {
    tree: TreeInfo,
    op: Aggregate,
    acc: u128,
    waiting: usize,
    sent_up: bool,
    result: Option<u128>,
}

impl NodeProgram for ConvergeCastProgram {
    type Msg = CastMsg;
    // `None` when the node never learned the aggregate — possible only when
    // a fault plan crashed it past the downcast; the wrapper turns a missing
    // *leader* result into `SimError::PhaseIncomplete` instead of panicking.
    type Output = Option<u128>;

    fn start(&mut self, _ctx: &NodeCtx, mb: &mut Mailbox<CastMsg>) {
        if self.waiting == 0 {
            if let Some(p) = self.tree.parent {
                mb.send(p, CastMsg::Up(self.acc));
                self.sent_up = true;
            } else {
                self.result = Some(self.acc);
            }
        }
    }

    fn round(
        &mut self,
        _ctx: &NodeCtx,
        _round: usize,
        inbox: &[(NodeId, CastMsg)],
        mb: &mut Mailbox<CastMsg>,
    ) -> Status {
        for (_, msg) in inbox {
            match msg {
                CastMsg::Up(v) => {
                    self.acc = self.op.combine(self.acc, *v);
                    self.waiting -= 1;
                }
                CastMsg::Down(v) => {
                    self.result = Some(*v);
                    for &c in &self.tree.children {
                        mb.send(c, CastMsg::Down(*v));
                    }
                }
            }
        }
        if self.waiting == 0 && !self.sent_up {
            match self.tree.parent {
                Some(p) => {
                    mb.send(p, CastMsg::Up(self.acc));
                    self.sent_up = true;
                }
                None => {
                    // Root: aggregation finished, start the downcast.
                    self.sent_up = true;
                    self.result = Some(self.acc);
                    for &c in &self.tree.children {
                        mb.send(c, CastMsg::Down(self.acc));
                    }
                }
            }
        }
        if self.result.is_some() {
            Status::Done
        } else {
            Status::Running
        }
    }

    fn finish(self, _ctx: &NodeCtx) -> Option<u128> {
        self.result
    }
}

/// Aggregates `values[v]` over all nodes with `op` along `tree`, then
/// broadcasts the result back down; every node ends up knowing it.
/// `O(depth)` rounds each way.
///
/// # Errors
///
/// Propagates simulator errors; returns [`SimError::PhaseIncomplete`] when
/// an injected fault plan left the leader without a result at quiescence
/// (e.g. a [`crate::faults::CrashWindow`] covering the whole cast).
///
/// # Panics
///
/// Panics if `values.len() != graph.n()` or `tree.len() != graph.n()`.
pub fn converge_cast(
    graph: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
    tree: &[TreeInfo],
    values: &[u128],
    op: Aggregate,
) -> Result<(u128, RoundStats), SimError> {
    assert_eq!(values.len(), graph.n());
    assert_eq!(tree.len(), graph.n());
    let (out, stats) = run_phase(graph, leader, config, "converge_cast", |v, _| {
        ConvergeCastProgram {
            tree: tree[v].clone(),
            op,
            acc: values[v],
            waiting: tree[v].children.len(),
            sent_up: false,
            result: None,
        }
    })?;
    let result = out[leader].ok_or(SimError::PhaseIncomplete {
        phase: "converge_cast",
        node: leader,
    })?;
    // Every node that did learn a result learned the same one (the value
    // originates at the root; faults can only drop it, not alter it).
    debug_assert!(out.iter().flatten().all(|&x| x == result));
    Ok((result, stats))
}

struct VecCastProgram {
    tree: TreeInfo,
    op: Aggregate,
    /// acc[j] = elementwise aggregate over own value and children seen so far.
    acc: Vec<u128>,
    /// how many children have contributed element j.
    seen: Vec<usize>,
    next_send: usize,
    result: Vec<Option<u128>>,
}

enum VecCastMsg {
    Up(u64, u128),
    Down(u64, u128),
}

impl Clone for VecCastMsg {
    fn clone(&self) -> VecCastMsg {
        match self {
            VecCastMsg::Up(j, v) => VecCastMsg::Up(*j, *v),
            VecCastMsg::Down(j, v) => VecCastMsg::Down(*j, *v),
        }
    }
}

impl std::fmt::Debug for VecCastMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VecCastMsg::Up(j, v) => write!(f, "Up({j},{v})"),
            VecCastMsg::Down(j, v) => write!(f, "Down({j},{v})"),
        }
    }
}

impl Payload for VecCastMsg {
    fn size_bits(&self) -> u32 {
        match self {
            VecCastMsg::Up(j, v) | VecCastMsg::Down(j, v) => 1 + j.size_bits() + v.size_bits(),
        }
    }
}

impl NodeProgram for VecCastProgram {
    type Msg = VecCastMsg;
    // Per-element `None` marks entries the node never learned (crash-window
    // fault plans only); see [`ConvergeCastProgram`].
    type Output = Vec<Option<u128>>;

    fn start(&mut self, _ctx: &NodeCtx, _mb: &mut Mailbox<VecCastMsg>) {}

    fn round(
        &mut self,
        _ctx: &NodeCtx,
        _round: usize,
        inbox: &[(NodeId, VecCastMsg)],
        mb: &mut Mailbox<VecCastMsg>,
    ) -> Status {
        for (_, msg) in inbox {
            match msg {
                VecCastMsg::Up(j, v) => {
                    let j = *j as usize;
                    self.acc[j] = self.op.combine(self.acc[j], *v);
                    self.seen[j] += 1;
                }
                VecCastMsg::Down(j, v) => {
                    self.result[*j as usize] = Some(*v);
                    for &c in &self.tree.children {
                        mb.send(c, VecCastMsg::Down(*j, *v));
                    }
                }
            }
        }
        // Elements become ready in index order (children drain in order
        // too), so a single cursor suffices: forward element j upward once
        // every child contributed it.
        if self.next_send < self.acc.len() && self.seen[self.next_send] == self.tree.children.len()
        {
            let j = self.next_send;
            self.next_send += 1;
            match self.tree.parent {
                Some(p) => mb.send(p, VecCastMsg::Up(j as u64, self.acc[j])),
                None => {
                    self.result[j] = Some(self.acc[j]);
                    for &c in &self.tree.children {
                        mb.send(c, VecCastMsg::Down(j as u64, self.acc[j]));
                    }
                }
            }
        }
        if self.result.iter().all(Option::is_some) {
            Status::Done
        } else {
            Status::Running
        }
    }

    fn finish(self, _ctx: &NodeCtx) -> Vec<Option<u128>> {
        self.result
    }
}

/// Elementwise aggregation of per-node **vectors** along `tree`, pipelined
/// (`O(depth + k)` rounds for `k`-element vectors), with the result
/// broadcast back down. Every node ends up knowing the aggregated vector.
///
/// # Errors
///
/// Propagates simulator errors; returns [`SimError::PhaseIncomplete`] when
/// an injected fault plan left the leader without some element of the
/// aggregated vector at quiescence.
///
/// # Panics
///
/// Panics if vector lengths are inconsistent or `tree.len() != graph.n()`.
pub fn converge_cast_vec(
    graph: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
    tree: &[TreeInfo],
    values: &[Vec<u128>],
    op: Aggregate,
) -> Result<(Vec<u128>, RoundStats), SimError> {
    assert_eq!(values.len(), graph.n());
    assert_eq!(tree.len(), graph.n());
    let k = values[0].len();
    assert!(
        values.iter().all(|v| v.len() == k),
        "vector length mismatch"
    );
    if k == 0 {
        return Ok((Vec::new(), RoundStats::default()));
    }
    let (mut out, stats) = run_phase(graph, leader, config, "vector_cast", |v, _| {
        VecCastProgram {
            tree: tree[v].clone(),
            op,
            acc: values[v].clone(),
            seen: vec![0; k],
            next_send: 0,
            result: vec![None; k],
        }
    })?;
    let result = std::mem::take(&mut out[leader])
        .into_iter()
        .collect::<Option<Vec<u128>>>()
        .ok_or(SimError::PhaseIncomplete {
            phase: "vector_cast",
            node: leader,
        })?;
    Ok((result, stats))
}

type SeqItem = (u64, u128); // (sequence number, value)

enum PipeMsg {
    Count(u64),
    Item(SeqItem),
}

impl Clone for PipeMsg {
    fn clone(&self) -> PipeMsg {
        match self {
            PipeMsg::Count(c) => PipeMsg::Count(*c),
            PipeMsg::Item(it) => PipeMsg::Item(*it),
        }
    }
}

impl std::fmt::Debug for PipeMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipeMsg::Count(c) => write!(f, "Count({c})"),
            PipeMsg::Item((s, v)) => write!(f, "Item({s},{v})"),
        }
    }
}

impl Payload for PipeMsg {
    fn size_bits(&self) -> u32 {
        match self {
            PipeMsg::Count(c) => 1 + c.size_bits(),
            PipeMsg::Item((s, v)) => 1 + s.size_bits() + v.size_bits(),
        }
    }
}

struct PipelinedBroadcastProgram {
    tree: TreeInfo,
    items: Vec<u128>,       // leader's payload; empty elsewhere initially
    expected: Option<u64>,  // how many items to expect
    received: Vec<SeqItem>, // items received so far (in order of arrival)
    send_cursor: usize,     // next item index to forward down
    announced: bool,
}

impl NodeProgram for PipelinedBroadcastProgram {
    type Msg = PipeMsg;
    type Output = Vec<u128>;

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<PipeMsg>) {
        if ctx.is_leader() {
            self.expected = Some(self.items.len() as u64);
            for (i, &v) in self.items.iter().enumerate() {
                self.received.push((i as u64, v));
            }
            for &c in &self.tree.children {
                mb.send(c, PipeMsg::Count(self.items.len() as u64));
            }
            self.announced = true;
        }
    }

    fn round(
        &mut self,
        _ctx: &NodeCtx,
        _round: usize,
        inbox: &[(NodeId, PipeMsg)],
        mb: &mut Mailbox<PipeMsg>,
    ) -> Status {
        for (_, msg) in inbox {
            match msg {
                PipeMsg::Count(c) => {
                    self.expected = Some(*c);
                    if !self.announced {
                        for &ch in &self.tree.children {
                            mb.send(ch, PipeMsg::Count(*c));
                        }
                        self.announced = true;
                    }
                }
                PipeMsg::Item(it) => self.received.push(*it),
            }
        }
        // Forward one item per child per round (pipelining).
        if self.send_cursor < self.received.len() {
            let it = self.received[self.send_cursor];
            for &c in &self.tree.children {
                mb.send(c, PipeMsg::Item(it));
            }
            self.send_cursor += 1;
        }
        match self.expected {
            Some(c)
                if self.received.len() as u64 == c && self.send_cursor == self.received.len() =>
            {
                Status::Done
            }
            _ => Status::Running,
        }
    }

    fn finish(self, _ctx: &NodeCtx) -> Vec<u128> {
        let mut items = self.received;
        items.sort_unstable_by_key(|&(s, _)| s);
        items.into_iter().map(|(_, v)| v).collect()
    }
}

/// The leader broadcasts a list of `k` values to every node, pipelined along
/// `tree`: `O(depth + k)` rounds.
///
/// Returns the list as received at every node (all equal) plus statistics.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `tree.len() != graph.n()`.
pub fn pipelined_broadcast(
    graph: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
    tree: &[TreeInfo],
    items: &[u128],
) -> Result<(Vec<Vec<u128>>, RoundStats), SimError> {
    assert_eq!(tree.len(), graph.n());
    run_phase(graph, leader, config, "pipelined_broadcast", |v, _| {
        PipelinedBroadcastProgram {
            tree: tree[v].clone(),
            items: if v == leader {
                items.to_vec()
            } else {
                Vec::new()
            },
            expected: None,
            received: Vec::new(),
            send_cursor: 0,
            announced: false,
        }
    })
}

struct CollectProgram {
    tree: TreeInfo,
    /// Items this node contributes: (tag, value).
    own: Vec<SeqItem>,
    /// Items buffered for upward forwarding.
    queue: Vec<SeqItem>,
    cursor: usize,
    /// How many descendants' "end" markers are still missing.
    open_children: usize,
    finished_self: bool,
    collected: Vec<SeqItem>,
}

enum CollectMsg {
    Item(SeqItem),
    EndOfStream,
}

impl Clone for CollectMsg {
    fn clone(&self) -> CollectMsg {
        match self {
            CollectMsg::Item(it) => CollectMsg::Item(*it),
            CollectMsg::EndOfStream => CollectMsg::EndOfStream,
        }
    }
}

impl std::fmt::Debug for CollectMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectMsg::Item((t, v)) => write!(f, "Item({t},{v})"),
            CollectMsg::EndOfStream => write!(f, "End"),
        }
    }
}

impl Payload for CollectMsg {
    fn size_bits(&self) -> u32 {
        match self {
            CollectMsg::Item((t, v)) => 1 + t.size_bits() + v.size_bits(),
            CollectMsg::EndOfStream => 1,
        }
    }
}

impl NodeProgram for CollectProgram {
    type Msg = CollectMsg;
    type Output = Vec<SeqItem>;

    fn start(&mut self, _ctx: &NodeCtx, _mb: &mut Mailbox<CollectMsg>) {
        self.queue = self.own.clone();
        if self.tree.parent.is_none() {
            self.collected = self.own.clone();
        }
    }

    fn round(
        &mut self,
        _ctx: &NodeCtx,
        _round: usize,
        inbox: &[(NodeId, CollectMsg)],
        mb: &mut Mailbox<CollectMsg>,
    ) -> Status {
        for (_, msg) in inbox {
            match msg {
                CollectMsg::Item(it) => {
                    if self.tree.parent.is_none() {
                        self.collected.push(*it);
                    } else {
                        self.queue.push(*it);
                    }
                }
                CollectMsg::EndOfStream => self.open_children -= 1,
            }
        }
        if let Some(p) = self.tree.parent {
            if self.cursor < self.queue.len() {
                mb.send(p, CollectMsg::Item(self.queue[self.cursor]));
                self.cursor += 1;
            } else if self.open_children == 0 && !self.finished_self {
                mb.send(p, CollectMsg::EndOfStream);
                self.finished_self = true;
            }
            if self.finished_self && self.cursor == self.queue.len() {
                Status::Done
            } else {
                Status::Running
            }
        } else {
            // Root is done once every child closed its stream.
            if self.open_children == 0 {
                Status::Done
            } else {
                Status::Running
            }
        }
    }

    fn finish(mut self, _ctx: &NodeCtx) -> Vec<SeqItem> {
        self.collected.sort_unstable();
        self.collected
    }
}

/// Pipelined upcast: every node contributes tagged values, the leader
/// collects them all. `O(depth + total items)` rounds.
///
/// Returns the `(tag, value)` pairs gathered at the leader (sorted), plus
/// statistics.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `tree.len() != graph.n()` or `items.len() != graph.n()`.
pub fn collect_at_leader(
    graph: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
    tree: &[TreeInfo],
    items: &[Vec<(u64, u128)>],
) -> Result<(Vec<(u64, u128)>, RoundStats), SimError> {
    assert_eq!(tree.len(), graph.n());
    assert_eq!(items.len(), graph.n());
    let (out, stats) = run_phase(graph, leader, config, "pipelined_collect", |v, _| {
        CollectProgram {
            tree: tree[v].clone(),
            own: items[v].clone(),
            queue: Vec::new(),
            cursor: 0,
            open_children: tree[v].children.len(),
            finished_self: false,
            collected: Vec::new(),
        }
    })?;
    Ok((out[leader].clone(), stats))
}

/// There is a subtlety in [`collect_at_leader`]'s round bound: one item per
/// round per tree edge gives `O(depth + total)` only because streams merge.
/// This helper exposes the measured bound for tests.
pub fn collect_round_bound(depth: usize, total_items: usize) -> usize {
    // depth to drain the deepest stream, +1 end-marker per level, + items.
    2 * depth + total_items + 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn std_cfg(g: &WeightedGraph) -> SimConfig {
        SimConfig::standard(g.n(), g.max_weight())
    }

    #[test]
    fn bfs_tree_on_star() {
        let g = generators::star(6, 1);
        let (tree, stats) = bfs_tree(&g, 0, &std_cfg(&g)).unwrap();
        assert_eq!(tree[0].children.len(), 5);
        for v in 1..6 {
            assert_eq!(tree[v].parent, Some(0));
            assert_eq!(tree[v].depth, 1);
        }
        assert!(stats.rounds <= 4);
    }

    #[test]
    fn bfs_tree_depths_match_bfs() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::erdos_renyi_connected(30, 0.1, 4, &mut rng);
        let (tree, _) = bfs_tree(&g, 3, &std_cfg(&g)).unwrap();
        let d = congest_graph::shortest_path::bfs(&g.unweighted_view(), 3);
        for v in g.nodes() {
            assert_eq!(tree[v].depth as u64, d[v].expect_finite(), "node {v}");
        }
    }

    #[test]
    fn bfs_tree_children_are_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::erdos_renyi_connected(25, 0.15, 2, &mut rng);
        let (tree, _) = bfs_tree(&g, 0, &std_cfg(&g)).unwrap();
        for v in g.nodes() {
            for &c in &tree[v].children {
                assert_eq!(tree[c].parent, Some(v));
                assert_eq!(tree[c].depth, tree[v].depth + 1);
            }
        }
        let child_count: usize = tree.iter().map(|t| t.children.len()).sum();
        assert_eq!(child_count, g.n() - 1, "spanning tree has n-1 edges");
    }

    #[test]
    fn converge_cast_all_ops() {
        let g = generators::path(7, 1);
        let (tree, _) = bfs_tree(&g, 2, &std_cfg(&g)).unwrap();
        let values: Vec<u128> = (0..7).map(|v| (v as u128) * 10 + 1).collect();
        let (mx, _) = converge_cast(&g, 2, &std_cfg(&g), &tree, &values, Aggregate::Max).unwrap();
        assert_eq!(mx, 61);
        let (mn, _) = converge_cast(&g, 2, &std_cfg(&g), &tree, &values, Aggregate::Min).unwrap();
        assert_eq!(mn, 1);
        let (sm, _) = converge_cast(&g, 2, &std_cfg(&g), &tree, &values, Aggregate::Sum).unwrap();
        assert_eq!(sm, values.iter().sum::<u128>());
    }

    #[test]
    fn converge_cast_rounds_linear_in_depth() {
        let g = generators::path(20, 1);
        let (tree, _) = bfs_tree(&g, 0, &std_cfg(&g)).unwrap();
        let values = vec![1u128; 20];
        let (_, stats) =
            converge_cast(&g, 0, &std_cfg(&g), &tree, &values, Aggregate::Sum).unwrap();
        // Up 19 rounds + down 19 rounds + O(1).
        assert!(stats.rounds <= 2 * 19 + 3, "rounds = {}", stats.rounds);
    }

    #[test]
    fn pipelined_broadcast_delivers_in_order() {
        let g = generators::path(8, 1);
        let (tree, _) = bfs_tree(&g, 0, &std_cfg(&g)).unwrap();
        let items: Vec<u128> = (0..10u128).map(|x| x * x).collect();
        let (out, stats) = pipelined_broadcast(&g, 0, &std_cfg(&g), &tree, &items).unwrap();
        for v in 0..8 {
            assert_eq!(out[v], items, "node {v}");
        }
        // O(depth + k): depth 7, k 10.
        assert!(stats.rounds <= 7 + 10 + 4, "rounds = {}", stats.rounds);
    }

    #[test]
    fn pipelined_broadcast_empty_list() {
        let g = generators::star(4, 1);
        let (tree, _) = bfs_tree(&g, 0, &std_cfg(&g)).unwrap();
        let (out, _) = pipelined_broadcast(&g, 0, &std_cfg(&g), &tree, &[]).unwrap();
        assert!(out.iter().all(Vec::is_empty));
    }

    #[test]
    fn collect_gathers_everything() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::erdos_renyi_connected(16, 0.2, 3, &mut rng);
        let (tree, _) = bfs_tree(&g, 0, &std_cfg(&g)).unwrap();
        let items: Vec<Vec<(u64, u128)>> = (0..16)
            .map(|v| {
                if v % 3 == 0 {
                    vec![(v as u64, (v * v) as u128)]
                } else {
                    vec![]
                }
            })
            .collect();
        let (got, stats) = collect_at_leader(&g, 0, &std_cfg(&g), &tree, &items).unwrap();
        let mut want: Vec<(u64, u128)> = items.iter().flatten().copied().collect();
        want.sort_unstable();
        assert_eq!(got, want);
        let depth = tree.iter().map(|t| t.depth).max().unwrap();
        assert!(stats.rounds <= collect_round_bound(depth, want.len()));
    }

    #[test]
    fn collect_pipelines_rather_than_serializes() {
        // 40 items over a depth-10 path must take ≈ depth + items rounds,
        // far below items × depth.
        let g = generators::path(11, 1);
        let (tree, _) = bfs_tree(&g, 0, &std_cfg(&g)).unwrap();
        let items: Vec<Vec<(u64, u128)>> = (0..11)
            .map(|v| (0..4).map(|j| ((v * 4 + j) as u64, 1u128)).collect())
            .collect();
        let (got, stats) = collect_at_leader(&g, 0, &std_cfg(&g), &tree, &items).unwrap();
        assert_eq!(got.len(), 44);
        assert!(
            stats.rounds <= collect_round_bound(10, 44),
            "rounds = {} not pipelined",
            stats.rounds
        );
    }

    use congest_graph::WeightedGraph;

    #[test]
    fn vector_converge_cast_elementwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = generators::erdos_renyi_connected(14, 0.2, 2, &mut rng);
        let (tree, _) = bfs_tree(&g, 0, &std_cfg(&g)).unwrap();
        let k = 6;
        let values: Vec<Vec<u128>> = (0..14)
            .map(|v| (0..k).map(|j| ((v * 7 + j * 13) % 50) as u128).collect())
            .collect();
        let (got, stats) =
            converge_cast_vec(&g, 0, &std_cfg(&g), &tree, &values, Aggregate::Max).unwrap();
        for j in 0..k {
            let want = (0..14).map(|v| values[v][j]).max().unwrap();
            assert_eq!(got[j], want, "element {j}");
        }
        let depth = tree.iter().map(|t| t.depth).max().unwrap();
        assert!(
            stats.rounds <= 2 * (depth + k) + 8,
            "pipelined: {}",
            stats.rounds
        );
    }

    #[test]
    fn vector_converge_cast_pipelines() {
        // k = 30 elements over a depth-12 path: O(depth + k), not O(depth·k).
        let g = generators::path(13, 1);
        let (tree, _) = bfs_tree(&g, 0, &std_cfg(&g)).unwrap();
        let values: Vec<Vec<u128>> = (0..13)
            .map(|v| (0..30).map(|j| (v + j) as u128).collect())
            .collect();
        let (got, stats) =
            converge_cast_vec(&g, 0, &std_cfg(&g), &tree, &values, Aggregate::Min).unwrap();
        assert_eq!(got.len(), 30);
        for (j, &x) in got.iter().enumerate() {
            assert_eq!(x, j as u128);
        }
        assert!(
            stats.rounds <= 2 * (12 + 30) + 8,
            "rounds = {}",
            stats.rounds
        );
    }

    #[test]
    fn vector_converge_cast_empty() {
        let g = generators::path(3, 1);
        let (tree, _) = bfs_tree(&g, 0, &std_cfg(&g)).unwrap();
        let values = vec![Vec::new(); 3];
        let (got, _) =
            converge_cast_vec(&g, 0, &std_cfg(&g), &tree, &values, Aggregate::Sum).unwrap();
        assert!(got.is_empty());
    }
}
