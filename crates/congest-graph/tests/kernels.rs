//! Ground-truth kernel equivalence, property-tested.
//!
//! The pruned sweep computer ([`congest_graph::sweep`]), the flat
//! [`DistMatrix`] APSP kernels and the feature-gated parallel fan-out must
//! all be *exactly* interchangeable with the seed's brute-force
//! formulations — same distances, same extremes, same witnesses, bit for
//! bit. These proptests pin that contract on random connected AND
//! disconnected graphs, so any future tweak to source selection, bound
//! maintenance or reduction order that drifts from the reference fails
//! loudly here.

use congest_graph::sweep::{self, EdgeMetric};
use congest_graph::{generators, metrics, shortest_path, Dist, WeightedGraph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_connected() -> impl Strategy<Value = WeightedGraph> {
    (2usize..28, any::<u64>(), 1u64..200).prop_map(|(n, seed, w)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::erdos_renyi_connected(n, 0.15, w, &mut rng)
    })
}

/// Two connected components glued into one node set — every distance across
/// the cut is infinite, so the extremes must report disconnection.
fn arb_disconnected() -> impl Strategy<Value = WeightedGraph> {
    (2usize..12, 2usize..12, any::<u64>(), 1u64..50).prop_map(|(n1, n2, seed, w)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = generators::erdos_renyi_connected(n1, 0.3, w, &mut rng);
        let b = generators::erdos_renyi_connected(n2, 0.3, w, &mut rng);
        let mut edges: Vec<(usize, usize, u64)> = a.edges().map(|e| (e.u, e.v, e.w)).collect();
        edges.extend(b.edges().map(|e| (e.u + n1, e.v + n1, e.w)));
        WeightedGraph::from_edges(n1 + n2, edges).expect("valid disjoint union")
    })
}

/// Pins the full [`sweep::SweepResult`] contract against brute force:
/// identical diameter/radius, witnesses whose eccentricities realize them,
/// and a sweep count within the graceful-degradation budget.
fn assert_sweep_matches_brute(g: &WeightedGraph, metric: EdgeMetric) -> Result<(), TestCaseError> {
    let pruned = sweep::extremes_with(g, metric);
    let brute = sweep::brute_force_extremes(g, metric);
    prop_assert_eq!(pruned.diameter, brute.diameter);
    prop_assert_eq!(pruned.radius, brute.radius);
    prop_assert_eq!(pruned.is_connected(), brute.is_connected());
    prop_assert!(pruned.sweeps <= g.n().max(1), "sweep budget exceeded");
    let eccs = sweep::all_eccentricities(g, metric);
    if pruned.is_connected() {
        prop_assert_eq!(eccs[pruned.diameter_witness], pruned.diameter);
        prop_assert_eq!(eccs[pruned.radius_witness], pruned.radius);
    } else {
        // Disconnected graphs use the seed fold's witness convention.
        prop_assert_eq!(pruned.diameter_witness, brute.diameter_witness);
        prop_assert_eq!(pruned.radius_witness, brute.radius_witness);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pruned sweeps equal brute force on connected graphs, both metrics.
    #[test]
    fn sweep_matches_brute_on_connected(g in arb_connected()) {
        assert_sweep_matches_brute(&g, EdgeMetric::Weighted)?;
        assert_sweep_matches_brute(&g, EdgeMetric::Unweighted)?;
    }

    /// Pruned sweeps equal brute force on disconnected graphs too — the
    /// early-exit path must preserve the seed's infinity-and-witness fold.
    #[test]
    fn sweep_matches_brute_on_disconnected(g in arb_disconnected()) {
        assert_sweep_matches_brute(&g, EdgeMetric::Weighted)?;
        assert_sweep_matches_brute(&g, EdgeMetric::Unweighted)?;
        let r = sweep::extremes(&g);
        prop_assert_eq!(r.diameter, Dist::INFINITY);
        prop_assert_eq!(r.radius, Dist::INFINITY);
    }

    /// The metrics facade answers every extremal query identically to the
    /// per-query seed semantics (witness values realize the extremes).
    #[test]
    fn metrics_facade_is_consistent(g in arb_connected()) {
        let ex = metrics::extremes(&g);
        prop_assert_eq!(metrics::diameter(&g), ex.diameter);
        prop_assert_eq!(metrics::radius(&g), ex.radius);
        let (dw, dv) = metrics::diameter_witness(&g);
        let (rw, rv) = metrics::radius_witness(&g);
        prop_assert_eq!(dv, ex.diameter);
        prop_assert_eq!(rv, ex.radius);
        prop_assert_eq!(metrics::eccentricity(&g, dw), ex.diameter);
        prop_assert_eq!(metrics::eccentricity(&g, rw), ex.radius);
    }

    /// The flat APSP matrix agrees entry-for-entry with per-source Dijkstra
    /// and flat Floyd–Warshall, through every access path it offers.
    #[test]
    fn dist_matrix_matches_reference(g in arb_connected()) {
        let apsp = shortest_path::apsp(&g);
        let fw = shortest_path::floyd_warshall(&g);
        prop_assert_eq!(apsp.n(), g.n());
        prop_assert_eq!(apsp.as_flat().len(), g.n() * g.n());
        for s in g.nodes() {
            let dj = shortest_path::dijkstra(&g, s);
            prop_assert_eq!(&dj, &apsp[s]);
            prop_assert_eq!(&dj, &fw[s]);
            prop_assert_eq!(apsp.row(s), fw.row(s));
            for v in g.nodes() {
                prop_assert_eq!(apsp[(s, v)], dj[v]);
                prop_assert_eq!(apsp.as_flat()[s * g.n() + v], dj[v]);
            }
        }
        for (u, row) in apsp.rows() {
            prop_assert_eq!(row, &apsp[u]);
        }
    }

    /// Disconnected pairs are infinite in the matrix kernels as well.
    #[test]
    fn dist_matrix_handles_disconnection(g in arb_disconnected()) {
        let apsp = shortest_path::apsp(&g);
        let fw = shortest_path::floyd_warshall(&g);
        prop_assert_eq!(apsp.as_flat(), fw.as_flat());
        prop_assert!(apsp.as_flat().iter().any(|d| !d.is_finite()));
    }
}

/// Sequential/parallel bit-identity: the rayon fan-out must reproduce the
/// sequential kernels exactly, for every metric, connected or not.
#[cfg(feature = "parallel")]
mod parallel_identity {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn parallel_kernels_are_bit_identical(g in arb_connected()) {
            for metric in [EdgeMetric::Weighted, EdgeMetric::Unweighted] {
                prop_assert_eq!(
                    sweep::par_all_eccentricities(&g, metric),
                    sweep::all_eccentricities(&g, metric)
                );
                prop_assert_eq!(
                    sweep::par_brute_force_extremes(&g, metric),
                    sweep::brute_force_extremes(&g, metric)
                );
            }
        }

        #[test]
        fn parallel_kernels_match_on_disconnected(g in arb_disconnected()) {
            prop_assert_eq!(
                sweep::par_brute_force_extremes(&g, EdgeMetric::Weighted),
                sweep::brute_force_extremes(&g, EdgeMetric::Weighted)
            );
        }
    }
}
