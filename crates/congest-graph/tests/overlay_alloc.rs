//! The overlay scratch's zero-allocation claim, measured: once one
//! broadcast-subgraph build and one k-nearest query have grown an
//! [`OverlayScratch`]'s flat CSR and Dijkstra buffers, repeated skeleton
//! queries — the inner loop of every skeleton-sampling experiment — must
//! not touch the heap. The seed implementation rebuilt a
//! `Vec<Vec<(usize, f64)>>` plus a pair `HashSet` per call; this pin keeps
//! that garbage from coming back.
//!
//! This file holds exactly one `#[test]` so no sibling test can allocate
//! concurrently and pollute the counters (same harness as
//! `kernel_alloc.rs`).

use std::alloc::System;

use congest_graph::generators;
use congest_graph::overlay::{Overlay, OverlayScratch};
use congest_graph::rounding::RoundingScheme;
use wdr_metrics::heap::{heap_ops, track_current_thread, CountingAlloc};

#[global_allocator]
static GLOBAL: CountingAlloc<System> = CountingAlloc::new(System);

/// One pass of the repeated-query loop: rebuild the broadcast subgraph and
/// ask for a k-neighborhood, cycling the source and `k`.
fn exercise(ov: &Overlay, scratch: &mut OverlayScratch, out: &mut Vec<usize>, round: usize) -> f64 {
    let k = 2 + round % 4;
    let v = round % ov.len();
    ov.broadcast_subgraph_into(k, scratch);
    let mut acc = scratch.edge_count() as f64;
    ov.k_nearest_into(v, k, scratch, out);
    for &u in out.iter() {
        acc += scratch.distances()[u];
    }
    acc
}

#[test]
fn warm_overlay_queries_do_not_allocate() {
    track_current_thread();
    let g = generators::grid(6, 7, 4);
    let skeleton: Vec<usize> = (0..g.n()).step_by(2).collect();
    let ov = Overlay::from_skeleton(&g, &skeleton, RoundingScheme::new(g.n(), 0.25));
    let mut scratch = OverlayScratch::new();
    let mut out = Vec::new();

    // Warm-up: grow the selection row, picked list, CSR arrays, and
    // Dijkstra labels across every (source, k) combination the loop uses.
    let mut sink = 0.0f64;
    for round in 0..2 * ov.len() {
        sink += exercise(&ov, &mut scratch, &mut out, round);
    }

    let before = heap_ops();
    for round in 0..32 {
        sink += exercise(&ov, &mut scratch, &mut out, round);
    }
    let delta = heap_ops() - before;
    assert_eq!(
        delta, 0,
        "warm overlay skeleton queries must be allocation-free, \
         saw {delta} heap ops over 32 passes"
    );
    assert!(sink.is_finite(), "keep the queries observable");
}
