//! The SSSP workspace's zero-allocation claim, measured: once one call per
//! kernel has grown every scratch buffer (distance rows, heaps, Dial
//! buckets, BFS frontiers) to its steady-state capacity, repeated sweeps
//! over the same graph must not touch the heap at all. A counting global
//! allocator turns any regression — a rebuilt `Vec`, a per-scale graph
//! clone, a stray `collect` — into an immediate failure, mirroring the
//! round engine's `zero_alloc` harness in `congest-sim`.
//!
//! The library itself is `#![deny(unsafe_code)]` (the only allowed
//! exceptions are the documented mmap shim and slice reinterpretation in
//! `io`); the `GlobalAlloc` shim comes from `wdr_metrics::heap`, which
//! carries the only `unsafe` in the metrics stack. This file holds exactly
//! one `#[test]` so no sibling test can allocate concurrently and pollute
//! the counters.

use std::alloc::System;

use congest_graph::rounding::{approx_hop_bounded_into, RoundingScheme};
use congest_graph::{generators, Dist, SsspWorkspace, WeightedGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wdr_metrics::heap::{heap_ops, track_current_thread, CountingAlloc};

#[global_allocator]
static GLOBAL: CountingAlloc<System> = CountingAlloc::new(System);

/// One full pass over every workspace kernel, cycling sources so each
/// iteration exercises genuinely different sweeps. `light` has small
/// weights (the Dial bucket-queue path), `heavy` forces the binary heap.
fn exercise(
    ws: &mut SsspWorkspace,
    light: &WeightedGraph,
    heavy: &WeightedGraph,
    approx_out: &mut [f64],
    scheme: RoundingScheme,
    round: usize,
) -> Dist {
    let n = light.n();
    let s = round % n;
    let mut acc = Dist::ZERO;
    acc = acc + ws.dijkstra_into(light, s)[n - 1 - s];
    acc = acc + ws.dijkstra_into(heavy, s)[n - 1 - s];
    acc = acc + ws.bfs_into(light, s)[n - 1 - s];
    acc = acc + ws.hop_bounded_into(light, s, 3)[(s + 1) % n];
    acc = acc + ws.bounded_distance_into(light, s, Dist::from(6u64))[(s + 1) % n];
    let (dist, hops) = ws.dijkstra_with_hops_into(light, s);
    acc = acc + dist[n - 1 - s] + Dist::from(hops[n - 1 - s] as u64);
    acc = acc + ws.eccentricity(light, s) + ws.unweighted_eccentricity(light, s);
    approx_hop_bounded_into(light, s, scheme, ws, approx_out);
    if approx_out[(s + 1) % n].is_finite() {
        acc = acc + Dist::from(approx_out[(s + 1) % n] as u64);
    }
    acc
}

#[test]
fn warmed_up_kernels_do_not_allocate() {
    track_current_thread();
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let light = generators::erdos_renyi_connected(48, 0.12, 5, &mut rng);
    let heavy = generators::erdos_renyi_connected(48, 0.12, 100_000, &mut rng);
    assert!(heavy.max_weight() > congest_graph::DIAL_MAX_WEIGHT);
    let scheme = RoundingScheme::new(4, 0.5);
    let mut ws = SsspWorkspace::new();
    let mut approx_out = vec![0.0f64; light.n()];

    // Warm-up: one pass from every source grows each buffer, heap and Dial
    // bucket to its worst-case steady-state capacity.
    let mut sink = Dist::ZERO;
    for round in 0..light.n() {
        sink = sink + exercise(&mut ws, &light, &heavy, &mut approx_out, scheme, round);
    }

    let before = heap_ops();
    for round in 0..32 {
        sink = sink + exercise(&mut ws, &light, &heavy, &mut approx_out, scheme, round);
    }
    let delta = heap_ops() - before;
    assert_eq!(
        delta, 0,
        "warmed-up SSSP kernels must be allocation-free, saw {delta} heap ops over 32 passes"
    );
    assert!(sink >= Dist::ZERO, "keep the sweeps observable");
    // The kernel counters ride along for free: plain integer increments,
    // covered by the zero-heap-ops assertion above.
    let counters = ws.counters();
    assert!(counters.dial_runs > 0 && counters.heap_runs > 0);
    assert!(counters.bfs_runs > 0 && counters.relaxations > 0);
}
