//! Property-based tests of the binary on-disk graph format: build → write →
//! mmap-open round-trips bit-exactly, digests survive the trip, and every
//! way a file can be mangled surfaces as a typed [`GraphIoError`] — never a
//! panic.

use congest_graph::io::{read_header, write_graph};
use congest_graph::{generators, sweep, GraphIoError, StorageKind, WeightedGraph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (2usize..24, any::<u64>(), 1u64..1000).prop_map(|(n, seed, w)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::erdos_renyi_connected(n, 0.3, w, &mut rng)
    })
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wdrg-io-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// write → open_mmap round-trips the graph exactly: same CSR content
    /// (graph equality compares the three arrays), same digest as the
    /// header records, and identical sweep results from the mapped view.
    #[test]
    fn round_trip_is_exact(g in arb_graph()) {
        let path = tmp("prop-roundtrip.wdrg");
        write_graph(&g, &path).unwrap();

        let mapped = WeightedGraph::open_mmap(&path).unwrap();
        prop_assert_eq!(&mapped, &g);
        prop_assert_eq!(mapped.n(), g.n());
        prop_assert_eq!(mapped.m(), g.m());
        prop_assert_eq!(mapped.max_weight(), g.max_weight());

        // Digest: header value == O(1) digest() == O(m) recompute == owned.
        let header = read_header(&path).unwrap();
        prop_assert_eq!(header.digest, g.digest().0);
        prop_assert_eq!(mapped.digest(), g.digest());
        prop_assert_eq!(mapped.recompute_digest(), g.digest());

        // The verified open path accepts its own writer's output.
        let verified = WeightedGraph::open_mmap_verified(&path).unwrap();
        prop_assert_eq!(&verified, &g);

        // Kernels can't tell the storage kinds apart.
        let from_mapped = sweep::extremes(&mapped);
        let from_owned = sweep::extremes(&g);
        prop_assert_eq!(from_mapped, from_owned);
    }

    /// Flipping any single byte of the payload makes the *verified* open
    /// fail with a digest mismatch (plain `open_mmap` stays O(header) and
    /// is allowed to trust it), unless the flip lands in the header, where
    /// a typed header error is also acceptable.
    #[test]
    fn corrupted_byte_is_detected(g in arb_graph(), pos_seed in any::<u64>()) {
        let path = tmp("prop-corrupt.wdrg");
        write_graph(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        match WeightedGraph::open_mmap_verified(&path) {
            Ok(reopened) => {
                // The flip must have produced a *different but valid* file
                // (e.g. a weight byte that still round-trips); it can never
                // silently reproduce the original graph.
                prop_assert_ne!(reopened, g);
            }
            Err(
                GraphIoError::DigestMismatch { .. }
                | GraphIoError::BadMagic { .. }
                | GraphIoError::UnsupportedVersion { .. }
                | GraphIoError::HeaderCorrupt { .. }
                | GraphIoError::Truncated { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// Truncating the file anywhere yields a typed error, never a panic or
    /// an out-of-bounds read.
    #[test]
    fn truncation_is_typed(g in arb_graph(), cut_seed in any::<u64>()) {
        let path = tmp("prop-trunc.wdrg");
        write_graph(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = WeightedGraph::open_mmap(&path).unwrap_err();
        prop_assert!(
            matches!(err, GraphIoError::Truncated { .. }),
            "cut at {cut}/{} gave {err:?}",
            bytes.len()
        );
    }
}

#[test]
fn mapped_graph_reports_its_storage_kind() {
    let g = generators::grid(5, 6, 3);
    let path = tmp("storage-kind.wdrg");
    write_graph(&g, &path).unwrap();
    let mapped = WeightedGraph::open_mmap(&path).unwrap();
    assert_eq!(mapped.storage_kind(), StorageKind::Mapped);
    assert_eq!(g.storage_kind(), StorageKind::Owned);
    // Clones of a mapped graph share the mapping (Arc), still compare equal.
    let clone = mapped.clone();
    assert_eq!(clone, mapped);
    assert_eq!(clone.storage_kind(), StorageKind::Mapped);
}

#[test]
fn appended_garbage_is_rejected() {
    let g = generators::path(9, 2);
    let path = tmp("overlong.wdrg");
    write_graph(&g, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&[0u8; 24]);
    std::fs::write(&path, &bytes).unwrap();
    let err = WeightedGraph::open_mmap(&path).unwrap_err();
    assert!(matches!(err, GraphIoError::Truncated { .. }), "got {err:?}");
}
