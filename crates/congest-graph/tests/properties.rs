//! Property-based tests of the graph substrate.

#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
use congest_graph::overlay::{Overlay, SkeletonDistances};
use congest_graph::rounding::RoundingScheme;
use congest_graph::{generators, metrics, shortest_path, Dist, GraphBuilder, WeightedGraph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (4usize..20, any::<u64>(), 1u64..16).prop_map(|(n, seed, w)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::erdos_renyi_connected(n, 0.25, w, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Builder canonicalization: edge count, symmetry, weight positivity.
    #[test]
    fn builder_invariants(edges in proptest::collection::vec((0usize..10, 0usize..10, 1u64..100), 1..40)) {
        let valid: Vec<_> = edges.into_iter().filter(|&(u, v, _)| u != v).collect();
        prop_assume!(!valid.is_empty());
        let mut b = GraphBuilder::new(10);
        for &(u, v, w) in &valid {
            b.add_edge(u, v, w);
        }
        let g = b.build().unwrap();
        for e in g.edges() {
            prop_assert!(e.u < e.v, "canonical orientation");
            prop_assert!(e.w >= 1);
            prop_assert_eq!(g.edge_weight(e.u, e.v), Some(e.w));
            prop_assert_eq!(g.edge_weight(e.v, e.u), Some(e.w));
            // Minimum over parallel edges.
            let min_w = valid.iter()
                .filter(|&&(a, b2, _)| (a.min(b2), a.max(b2)) == (e.u, e.v))
                .map(|&(_, _, w)| w)
                .min()
                .unwrap();
            prop_assert_eq!(e.w, min_w);
        }
    }

    /// Distances are symmetric on undirected graphs.
    #[test]
    fn distance_symmetry(g in arb_graph()) {
        let apsp = shortest_path::apsp(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(apsp[u][v], apsp[v][u]);
            }
        }
    }

    /// Eccentricity bounds: R ≤ e(v) ≤ D = max ecc, D ≤ 2R.
    #[test]
    fn eccentricity_bounds(g in arb_graph()) {
        let d = metrics::diameter(&g);
        let r = metrics::radius(&g);
        prop_assert!(r <= d);
        prop_assert!(d <= r.saturating_mul(2));
        for v in g.nodes() {
            let e = metrics::eccentricity(&g, v);
            prop_assert!(e >= r && e <= d);
        }
    }

    /// Unweighted diameter never exceeds weighted diameter (weights ≥ 1),
    /// and hop diameter ≥ unweighted diameter.
    #[test]
    fn diameter_orderings(g in arb_graph()) {
        let du = metrics::unweighted_diameter(&g) as u64;
        let dw = metrics::diameter(&g).expect_finite();
        prop_assert!(du <= dw);
        let h = metrics::hop_diameter(&g);
        prop_assert!(h >= du as usize);
    }

    /// The k-shortcut graph never increases weights and keeps them above
    /// true overlay distances; its hop diameter obeys Theorem 3.10's bound.
    #[test]
    fn shortcut_invariants(g in arb_graph(), k in 1usize..5) {
        prop_assume!(g.n() >= 8);
        let skeleton: Vec<_> = (0..g.n()).step_by(2).collect();
        let scheme = RoundingScheme::new(g.n(), 0.5);
        let ov = Overlay::from_skeleton(&g, &skeleton, scheme);
        let sc = ov.shortcut(k);
        for i in 0..ov.len() {
            let d = ov.dijkstra(i);
            for j in 0..ov.len() {
                if i != j {
                    prop_assert!(sc.weight(i, j) <= ov.weight(i, j) + 1e-9);
                    prop_assert!(sc.weight(i, j) >= d[j] - 1e-9);
                }
            }
        }
        let bound = (4 * ov.len()) as f64 / k as f64;
        prop_assert!((sc.hop_diameter() as f64) < bound);
    }

    /// The full Lemma 3.3 sandwich for the composed approximate distance.
    #[test]
    fn skeleton_distance_sandwich(g in arb_graph(), k in 1usize..4) {
        prop_assume!(g.n() >= 6);
        let skeleton: Vec<_> = (0..g.n()).step_by(3).collect();
        prop_assume!(skeleton.len() >= 2);
        let eps = 0.5;
        let scheme = RoundingScheme::new(g.n(), eps);
        let sd = SkeletonDistances::compute(&g, &skeleton, scheme, k);
        for &s in &sd.skeleton {
            let exact = shortest_path::dijkstra(&g, s);
            let approx = sd.approx_distances_from(s);
            for v in g.nodes() {
                prop_assert!(approx[v] >= exact[v].as_f64() - 1e-6);
                prop_assert!(approx[v] <= (1.0 + eps) * (1.0 + eps) * exact[v].as_f64() + 1e-6);
            }
        }
    }

    /// Digest stability: any insertion order of the same edge multiset —
    /// including flipped endpoints and duplicated edges — builds a graph
    /// with the identical content digest, while dropping an edge or
    /// changing one weight changes it.
    #[test]
    fn digest_is_insertion_order_invariant(
        edges in proptest::collection::vec((0usize..12, 0usize..12, 1u64..50), 1..40),
        perm_seed in any::<u64>(),
    ) {
        let valid: Vec<_> = edges.into_iter().filter(|&(u, v, _)| u != v).collect();
        prop_assume!(!valid.is_empty());
        let n = 12;
        let base = WeightedGraph::from_edges(n, valid.iter().copied()).unwrap();

        // Deterministic Fisher–Yates shuffle + endpoint flips + a duplicate.
        let mut shuffled = valid.clone();
        let mut state = perm_seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in (1..shuffled.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in &shuffled {
            if next() % 2 == 0 {
                b.add_edge(v, u, w);
            } else {
                b.add_edge(u, v, w);
            }
        }
        let &(du, dv, dw) = &shuffled[0];
        b.add_edge(du, dv, dw); // a parallel duplicate must not change the hash
        let reordered = b.build().unwrap();
        prop_assert_eq!(base.digest(), reordered.digest());

        // Sensitivity: a different multiset hashes differently.
        if base.m() > 1 {
            let dropped =
                WeightedGraph::from_edges(n, base.edges().skip(1).map(|e| (e.u, e.v, e.w)))
                    .unwrap();
            prop_assert_ne!(base.digest(), dropped.digest());
        }
        let bumped = WeightedGraph::from_edges(
            n,
            base.edges()
                .enumerate()
                .map(|(i, e)| (e.u, e.v, if i == 0 { e.w + 1 } else { e.w })),
        )
        .unwrap();
        prop_assert_ne!(base.digest(), bumped.digest());
    }

    /// Bounded-distance truncation: values ≤ L are exact, others infinite.
    #[test]
    fn bounded_distance_truncation(g in arb_graph(), limit in 1u64..60) {
        let d = shortest_path::dijkstra(&g, 0);
        let t = shortest_path::bounded_distance(&g, 0, Dist::from(limit));
        for v in g.nodes() {
            if d[v] <= Dist::from(limit) {
                prop_assert_eq!(t[v], d[v]);
            } else {
                prop_assert_eq!(t[v], Dist::INFINITY);
            }
        }
    }
}
