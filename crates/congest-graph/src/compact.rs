//! `u32`-index compact CSR: the same adjacency structure as
//! [`WeightedGraph`], at half the bytes per entry.
//!
//! A 10⁷-edge graph stores 2·10⁷ directed CSR entries; at `u64` that is
//! 320 MB of targets + weights, at `u32` it is 160 MB — the difference
//! between thrashing and fitting comfortably in RAM (and far more of the
//! working set per cache line) on giant-scale sweeps. [`CompactGraph`]
//! implements [`CsrGraph`], so every [`crate::SsspWorkspace`] /
//! [`crate::SweepWorkspace`] kernel runs on it unchanged and produces
//! bit-identical distances (E11 pins sweep-result identity against the
//! `u64` representation).

use std::fmt;

use crate::graph::{CsrGraph, NodeId, Weight, WeightedGraph};

/// Why a graph cannot be represented compactly.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CompactError {
    /// More than `u32::MAX - 1` nodes.
    TooManyNodes {
        /// The node count.
        n: usize,
    },
    /// More than `u32::MAX` directed CSR entries.
    TooManyEntries {
        /// The directed entry count (`2m`).
        entries: usize,
    },
    /// An edge weight exceeds `u32::MAX`.
    WeightTooLarge {
        /// The offending weight.
        w: Weight,
    },
}

impl fmt::Display for CompactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompactError::TooManyNodes { n } => {
                write!(f, "{n} nodes exceed the u32 compact index range")
            }
            CompactError::TooManyEntries { entries } => {
                write!(
                    f,
                    "{entries} CSR entries exceed the u32 compact offset range"
                )
            }
            CompactError::WeightTooLarge { w } => {
                write!(f, "weight {w} exceeds the u32 compact weight range")
            }
        }
    }
}

impl std::error::Error for CompactError {}

/// The `u32`-index, `u32`-weight compact CSR graph.
///
/// # Examples
///
/// ```
/// use congest_graph::{generators, sweep, CompactGraph};
/// let g = generators::grid(6, 7, 3);
/// let c = CompactGraph::from_graph(&g).unwrap();
/// let full = sweep::extremes_with(&g, sweep::EdgeMetric::Weighted);
/// let compact = sweep::extremes_with(&c, sweep::EdgeMetric::Weighted);
/// assert_eq!(full, compact);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompactGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<u32>,
    max_weight: Weight,
}

impl CompactGraph {
    /// Converts a [`WeightedGraph`] (owned or mapped) to compact form.
    ///
    /// # Errors
    ///
    /// A typed [`CompactError`] when any index or weight does not fit in
    /// `u32`.
    pub fn from_graph(g: &WeightedGraph) -> Result<CompactGraph, CompactError> {
        let n = g.n();
        if n >= u32::MAX as usize {
            return Err(CompactError::TooManyNodes { n });
        }
        let entries = g.csr_targets().len();
        if entries > u32::MAX as usize {
            return Err(CompactError::TooManyEntries { entries });
        }
        if g.m() > 0 && g.max_weight() > u64::from(u32::MAX) {
            return Err(CompactError::WeightTooLarge { w: g.max_weight() });
        }
        Ok(CompactGraph {
            offsets: g.csr_offsets().iter().map(|&x| x as u32).collect(),
            targets: g.csr_targets().iter().map(|&x| x as u32).collect(),
            weights: g.csr_weights().iter().map(|&x| x as u32).collect(),
            max_weight: g.max_weight(),
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Maximum edge weight (1 for edgeless graphs).
    #[inline]
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// `(neighbor, weight)` pairs of `v` in ascending neighbor order.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let range = self.offsets[v] as usize..self.offsets[v + 1] as usize;
        self.targets[range.clone()]
            .iter()
            .map(|&t| t as NodeId)
            .zip(self.weights[range].iter().map(|&w| Weight::from(w)))
    }

    /// Heap bytes held by the three CSR arrays (for reporting).
    pub fn csr_bytes(&self) -> usize {
        4 * (self.offsets.len() + self.targets.len() + self.weights.len())
    }
}

impl CsrGraph for CompactGraph {
    #[inline]
    fn n(&self) -> usize {
        CompactGraph::n(self)
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        CompactGraph::degree(self, v)
    }

    #[inline]
    fn max_weight(&self) -> Weight {
        CompactGraph::max_weight(self)
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        CompactGraph::neighbors(self, v)
    }

    #[inline]
    fn for_each_neighbor(&self, v: NodeId, f: &mut impl FnMut(NodeId, Weight)) {
        let (lo, hi) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
        let targets = &self.targets[lo..hi];
        let weights = &self.weights[lo..hi];
        for i in 0..targets.len() {
            f(targets[i] as NodeId, Weight::from(weights[i]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::shortest_path;
    use crate::SsspWorkspace;

    #[test]
    fn conversion_preserves_structure() {
        let g = generators::barbell(5, 4, 3);
        let c = CompactGraph::from_graph(&g).unwrap();
        assert_eq!(c.n(), g.n());
        assert_eq!(c.m(), g.m());
        assert_eq!(c.max_weight(), g.max_weight());
        for v in g.nodes() {
            assert_eq!(c.degree(v), g.degree(v));
            let a: Vec<_> = g.neighbors(v).collect();
            let b: Vec<_> = c.neighbors(v).collect();
            assert_eq!(a, b);
        }
        assert!(c.csr_bytes() > 0);
    }

    #[test]
    fn kernels_agree_with_full_width_graph() {
        let g = generators::grid(5, 8, 4);
        let c = CompactGraph::from_graph(&g).unwrap();
        let mut ws = SsspWorkspace::new();
        for s in [0usize, 13, g.n() - 1] {
            let reference = shortest_path::dijkstra(&g, s);
            assert_eq!(ws.dijkstra_into(&c, s), &reference[..]);
            let bfs_full = ws.bfs_into(&g, s).to_vec();
            assert_eq!(ws.bfs_into(&c, s), &bfs_full[..]);
        }
    }

    #[test]
    fn oversized_weight_is_rejected() {
        let g = crate::WeightedGraph::from_edges(2, [(0, 1, u64::from(u32::MAX) + 1)]).unwrap();
        assert!(matches!(
            CompactGraph::from_graph(&g),
            Err(CompactError::WeightTooLarge { .. })
        ));
    }
}
