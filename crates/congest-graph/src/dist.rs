//! Distance arithmetic with an explicit "unreachable" value.
//!
//! Shortest-path code is riddled with `u64::MAX` sentinels and overflowing
//! additions. [`Dist`] makes the sentinel a first-class value with saturating
//! arithmetic, so `d(u, x) + w(x, v)` is always well defined even when `u`
//! cannot reach `x`.

use std::fmt;
use std::iter::Sum;
use std::ops::Add;

use serde::{Deserialize, Serialize};

/// A shortest-path distance: either a finite length or [`Dist::INFINITY`].
///
/// Finite values are bounded by `Dist::MAX_FINITE`, and addition saturates at
/// infinity, so arithmetic never overflows and never produces a bogus finite
/// value.
///
/// # Examples
///
/// ```
/// use congest_graph::Dist;
///
/// let d = Dist::from(3u64) + Dist::from(4u64);
/// assert_eq!(d, Dist::from(7u64));
/// assert!(Dist::INFINITY + Dist::from(1u64) == Dist::INFINITY);
/// assert!(Dist::from(0u64) < Dist::INFINITY);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Dist(u64);

impl Dist {
    /// The distance of a node from itself.
    pub const ZERO: Dist = Dist(0);

    /// The distance between nodes in different connected components.
    pub const INFINITY: Dist = Dist(u64::MAX);

    /// Largest representable finite distance.
    pub const MAX_FINITE: Dist = Dist(u64::MAX - 1);

    /// Creates a finite distance.
    ///
    /// # Panics
    ///
    /// Panics if `value == u64::MAX`, which is reserved for
    /// [`Dist::INFINITY`].
    #[inline]
    pub fn new(value: u64) -> Dist {
        assert_ne!(value, u64::MAX, "u64::MAX is reserved for Dist::INFINITY");
        Dist(value)
    }

    /// Returns `true` if this distance is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self != Dist::INFINITY
    }

    /// Returns the finite value, or `None` for [`Dist::INFINITY`].
    ///
    /// # Examples
    ///
    /// ```
    /// use congest_graph::Dist;
    /// assert_eq!(Dist::from(5u64).finite(), Some(5));
    /// assert_eq!(Dist::INFINITY.finite(), None);
    /// ```
    #[inline]
    pub fn finite(self) -> Option<u64> {
        if self.is_finite() {
            Some(self.0)
        } else {
            None
        }
    }

    /// Returns the finite value.
    ///
    /// # Panics
    ///
    /// Panics if the distance is [`Dist::INFINITY`].
    #[inline]
    pub fn expect_finite(self) -> u64 {
        self.finite().expect("distance is infinite")
    }

    /// Saturating addition: any sum involving infinity (or exceeding
    /// [`Dist::MAX_FINITE`]) is infinity.
    #[inline]
    pub fn saturating_add(self, other: Dist) -> Dist {
        match (self.finite(), other.finite()) {
            (Some(a), Some(b)) => match a.checked_add(b) {
                Some(s) if s != u64::MAX => Dist(s),
                _ => Dist::INFINITY,
            },
            _ => Dist::INFINITY,
        }
    }

    /// Multiplies a finite distance by a scalar, saturating at infinity.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Dist {
        match self.finite() {
            Some(a) => match a.checked_mul(k) {
                Some(s) if s != u64::MAX => Dist(s),
                _ => Dist::INFINITY,
            },
            None => Dist::INFINITY,
        }
    }

    /// Returns `self` as an `f64` (`f64::INFINITY` for the infinite value).
    ///
    /// Useful for approximation-ratio checks in tests and benches.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self.finite() {
            Some(v) => v as f64,
            None => f64::INFINITY,
        }
    }
}

impl From<u64> for Dist {
    /// Converts a finite length into a `Dist`.
    ///
    /// # Panics
    ///
    /// Panics if `value == u64::MAX` (reserved for infinity).
    fn from(value: u64) -> Dist {
        Dist::new(value)
    }
}

impl From<u32> for Dist {
    fn from(value: u32) -> Dist {
        Dist(u64::from(value))
    }
}

impl Add for Dist {
    type Output = Dist;

    /// Saturating addition; see [`Dist::saturating_add`].
    fn add(self, rhs: Dist) -> Dist {
        self.saturating_add(rhs)
    }
}

impl Sum for Dist {
    fn sum<I: Iterator<Item = Dist>>(iter: I) -> Dist {
        iter.fold(Dist::ZERO, Dist::saturating_add)
    }
}

impl Default for Dist {
    /// The default distance is [`Dist::ZERO`].
    fn default() -> Dist {
        Dist::ZERO
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.finite() {
            Some(v) => write!(f, "{v}"),
            None => write!(f, "∞"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_roundtrip() {
        assert_eq!(Dist::new(7).finite(), Some(7));
        assert_eq!(Dist::ZERO.finite(), Some(0));
    }

    #[test]
    fn infinity_is_absorbing() {
        assert_eq!(Dist::INFINITY + Dist::from(3u64), Dist::INFINITY);
        assert_eq!(Dist::from(3u64) + Dist::INFINITY, Dist::INFINITY);
        assert_eq!(Dist::INFINITY + Dist::INFINITY, Dist::INFINITY);
    }

    #[test]
    fn addition_saturates_to_infinity() {
        let big = Dist::MAX_FINITE;
        assert_eq!(big + Dist::from(1u64), Dist::INFINITY);
        assert_eq!(big + Dist::ZERO, big);
    }

    #[test]
    fn mul_saturates() {
        assert_eq!(Dist::from(10u64).saturating_mul(3), Dist::from(30u64));
        assert_eq!(Dist::MAX_FINITE.saturating_mul(2), Dist::INFINITY);
        assert_eq!(Dist::INFINITY.saturating_mul(0), Dist::INFINITY);
    }

    #[test]
    fn ordering_puts_infinity_last() {
        let mut v = vec![Dist::INFINITY, Dist::from(2u64), Dist::ZERO];
        v.sort();
        assert_eq!(v, vec![Dist::ZERO, Dist::from(2u64), Dist::INFINITY]);
    }

    #[test]
    fn sum_of_dists() {
        let s: Dist = [1u64, 2, 3].into_iter().map(Dist::from).sum();
        assert_eq!(s, Dist::from(6u64));
        let s: Dist = [Dist::from(1u64), Dist::INFINITY].into_iter().sum();
        assert_eq!(s, Dist::INFINITY);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn max_u64_rejected() {
        let _ = Dist::new(u64::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(Dist::from(42u64).to_string(), "42");
        assert_eq!(Dist::INFINITY.to_string(), "∞");
    }

    #[test]
    fn as_f64() {
        assert_eq!(Dist::from(2u64).as_f64(), 2.0);
        assert!(Dist::INFINITY.as_f64().is_infinite());
    }
}
