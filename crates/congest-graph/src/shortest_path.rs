//! Centralized shortest-path algorithms.
//!
//! These are the *reference* implementations the distributed algorithms are
//! tested against: Dijkstra, Bellman–Ford, BFS, Floyd–Warshall, and the
//! hop-bounded distance `d^ℓ` of Section 3.1 (least length over paths with at
//! most `ℓ` edges).

#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
use crate::dist::Dist;
use crate::graph::{NodeId, WeightedGraph};
use crate::matrix::DistMatrix;
use crate::workspace::SsspWorkspace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source shortest paths by Dijkstra's algorithm.
///
/// Returns `d` with `d[v] = d_{G,w}(s, v)` ([`Dist::INFINITY`] if
/// unreachable).
///
/// # Panics
///
/// Panics if `s >= g.n()`.
///
/// # Examples
///
/// ```
/// use congest_graph::{shortest_path, generators, Dist};
/// let g = generators::cycle(5, 1);
/// let d = shortest_path::dijkstra(&g, 0);
/// assert_eq!(d[2], Dist::from(2u64));
/// assert_eq!(d[4], Dist::from(1u64));
/// ```
pub fn dijkstra(g: &WeightedGraph, s: NodeId) -> Vec<Dist> {
    assert!(s < g.n(), "source {s} out of range");
    let mut dist = vec![Dist::INFINITY; g.n()];
    dist[s] = Dist::ZERO;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((Dist::ZERO, s)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for (u, w) in g.neighbors(v) {
            let nd = d + Dist::from(w);
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Dijkstra that also returns, for every node, the minimum number of edges
/// among all shortest paths from `s` — the *hop distance* `h_{G,w}(s, v)` of
/// Section 3.1.
///
/// Returns `(dist, hops)`; `hops[v] = usize::MAX` when `v` is unreachable.
///
/// # Panics
///
/// Panics if `s >= g.n()`.
pub fn dijkstra_with_hops(g: &WeightedGraph, s: NodeId) -> (Vec<Dist>, Vec<usize>) {
    assert!(s < g.n(), "source {s} out of range");
    let mut dist = vec![Dist::INFINITY; g.n()];
    let mut hops = vec![usize::MAX; g.n()];
    dist[s] = Dist::ZERO;
    hops[s] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((Dist::ZERO, 0usize, s)));
    while let Some(Reverse((d, h, v))) = heap.pop() {
        if (d, h) > (dist[v], hops[v]) {
            continue;
        }
        for (u, w) in g.neighbors(v) {
            let nd = d + Dist::from(w);
            let nh = h + 1;
            if (nd, nh) < (dist[u], hops[u]) {
                dist[u] = nd;
                hops[u] = nh;
                heap.push(Reverse((nd, nh, u)));
            }
        }
    }
    (dist, hops)
}

/// Single-source shortest paths by Bellman–Ford (used as an independent
/// cross-check of [`dijkstra`] in tests).
///
/// # Panics
///
/// Panics if `s >= g.n()`.
pub fn bellman_ford(g: &WeightedGraph, s: NodeId) -> Vec<Dist> {
    assert!(s < g.n(), "source {s} out of range");
    let mut dist = vec![Dist::INFINITY; g.n()];
    dist[s] = Dist::ZERO;
    // Positive weights: at most n-1 relaxation sweeps are needed.
    for _ in 1..g.n() {
        let mut changed = false;
        for e in g.edges() {
            let a = dist[e.u] + Dist::from(e.w);
            if a < dist[e.v] {
                dist[e.v] = a;
                changed = true;
            }
            let b = dist[e.v] + Dist::from(e.w);
            if b < dist[e.u] {
                dist[e.u] = b;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Breadth-first search distances on the *unweighted* view of `g` (every
/// edge counts 1), i.e. `d_{G,w*}(s, ·)`.
///
/// # Panics
///
/// Panics if `s >= g.n()`.
pub fn bfs(g: &WeightedGraph, s: NodeId) -> Vec<Dist> {
    assert!(s < g.n(), "source {s} out of range");
    let mut dist = vec![Dist::INFINITY; g.n()];
    dist[s] = Dist::ZERO;
    let mut frontier = vec![s];
    let mut level = 0u64;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for (u, _) in g.neighbors(v) {
                if dist[u] == Dist::INFINITY {
                    dist[u] = Dist::from(level);
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// All-pairs shortest paths by Floyd–Warshall into a flat [`DistMatrix`].
/// Intended for small graphs (`O(n³)` time, `O(n²)` memory); used to
/// validate gadget distance tables.
pub fn floyd_warshall(g: &WeightedGraph) -> DistMatrix {
    let n = g.n();
    let mut d = DistMatrix::filled(n, Dist::INFINITY);
    for v in 0..n {
        d[(v, v)] = Dist::ZERO;
    }
    for e in g.edges() {
        let w = Dist::from(e.w);
        if w < d[(e.u, e.v)] {
            d[(e.u, e.v)] = w;
            d[(e.v, e.u)] = w;
        }
    }
    // Row `k` is invariant during pass `k` (d[k][j] cannot improve through
    // k itself), so one reusable snapshot of it lets every other row update
    // over two contiguous slices.
    let mut row_k = vec![Dist::INFINITY; n];
    for k in 0..n {
        row_k.copy_from_slice(d.row(k));
        for i in 0..n {
            if i == k {
                continue;
            }
            let row_i = d.row_mut(i);
            let dik = row_i[k];
            if dik == Dist::INFINITY {
                continue;
            }
            for j in 0..n {
                let via = dik + row_k[j];
                if via < row_i[j] {
                    row_i[j] = via;
                }
            }
        }
    }
    d
}

/// All-pairs shortest paths into a flat [`DistMatrix`], by running one
/// workspace-reused Dijkstra per node (no per-source allocations).
pub fn apsp(g: &WeightedGraph) -> DistMatrix {
    let mut ws = SsspWorkspace::new();
    let mut m = DistMatrix::filled(g.n(), Dist::INFINITY);
    for s in g.nodes() {
        m.row_mut(s).copy_from_slice(ws.dijkstra_into(g, s));
    }
    m
}

/// The `ℓ`-hop-bounded distance `d^ℓ_{G,w}(s, ·)`: the least length over all
/// paths from `s` using at most `ℓ` edges (Section 3.1).
///
/// Computed by `ℓ` rounds of synchronous Bellman–Ford relaxation, which is
/// exactly the quantity the distributed Algorithm 2 family approximates.
///
/// # Panics
///
/// Panics if `s >= g.n()`.
///
/// # Examples
///
/// ```
/// use congest_graph::{shortest_path, WeightedGraph, Dist};
/// // Triangle where the 2-edge route is shorter than the direct edge.
/// let g = WeightedGraph::from_edges(3, [(0, 2, 10), (0, 1, 2), (1, 2, 3)])?;
/// assert_eq!(shortest_path::hop_bounded(&g, 0, 1)[2], Dist::from(10u64));
/// assert_eq!(shortest_path::hop_bounded(&g, 0, 2)[2], Dist::from(5u64));
/// # Ok::<(), congest_graph::BuildGraphError>(())
/// ```
pub fn hop_bounded(g: &WeightedGraph, s: NodeId, ell: usize) -> Vec<Dist> {
    assert!(s < g.n(), "source {s} out of range");
    let mut dist = vec![Dist::INFINITY; g.n()];
    dist[s] = Dist::ZERO;
    for _ in 0..ell {
        let prev = dist.clone();
        let mut changed = false;
        for v in g.nodes() {
            if prev[v] == Dist::INFINITY {
                continue;
            }
            for (u, w) in g.neighbors(v) {
                let nd = prev[v] + Dist::from(w);
                if nd < dist[u] {
                    dist[u] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Single-source shortest paths with predecessors, for path extraction.
///
/// Returns `(dist, pred)` where `pred[v]` is `v`'s predecessor on a
/// shortest path from `s` (`None` at `s` and at unreachable nodes).
///
/// # Panics
///
/// Panics if `s >= g.n()`.
pub fn dijkstra_with_predecessors(
    g: &WeightedGraph,
    s: NodeId,
) -> (Vec<Dist>, Vec<Option<NodeId>>) {
    assert!(s < g.n(), "source {s} out of range");
    let mut dist = vec![Dist::INFINITY; g.n()];
    let mut pred = vec![None; g.n()];
    dist[s] = Dist::ZERO;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((Dist::ZERO, s)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for (u, w) in g.neighbors(v) {
            let nd = d + Dist::from(w);
            if nd < dist[u] {
                dist[u] = nd;
                pred[u] = Some(v);
                heap.push(Reverse((nd, u)));
            }
        }
    }
    (dist, pred)
}

/// Reconstructs the shortest path `s → t` from a predecessor array
/// (as produced by [`dijkstra_with_predecessors`] from `s`).
///
/// Returns the node sequence `s, …, t`, or `None` when `t` is unreachable.
///
/// # Panics
///
/// Panics if `pred` is inconsistent (a cycle).
pub fn extract_path(pred: &[Option<NodeId>], s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
    let mut path = vec![t];
    let mut cur = t;
    while cur != s {
        cur = pred[cur]?;
        path.push(cur);
        assert!(
            path.len() <= pred.len(),
            "predecessor array contains a cycle"
        );
    }
    path.reverse();
    Some(path)
}

/// Distance from `s` truncated at `L`: `d(s,v)` if `d(s,v) ≤ L`, else
/// infinity. Matches the output contract of the paper's Algorithm 2
/// (Bounded-Distance SSSP).
pub fn bounded_distance(g: &WeightedGraph, s: NodeId, limit: Dist) -> Vec<Dist> {
    dijkstra(g, s)
        .into_iter()
        .map(|d| if d <= limit { d } else { Dist::INFINITY })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn ref_graph() -> WeightedGraph {
        WeightedGraph::from_edges(
            6,
            [
                (0, 1, 7),
                (0, 2, 9),
                (0, 5, 14),
                (1, 2, 10),
                (1, 3, 15),
                (2, 3, 11),
                (2, 5, 2),
                (3, 4, 6),
                (4, 5, 9),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dijkstra_classic_instance() {
        let d = dijkstra(&ref_graph(), 0);
        assert_eq!(
            d.iter().map(|x| x.finite().unwrap()).collect::<Vec<_>>(),
            vec![0, 7, 9, 20, 20, 11]
        );
    }

    #[test]
    fn dijkstra_matches_bellman_ford() {
        let g = ref_graph();
        for s in g.nodes() {
            assert_eq!(dijkstra(&g, s), bellman_ford(&g, s), "source {s}");
        }
    }

    #[test]
    fn dijkstra_matches_floyd_warshall() {
        let g = ref_graph();
        let fw = floyd_warshall(&g);
        for s in g.nodes() {
            assert_eq!(dijkstra(&g, s), fw[s], "source {s}");
        }
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1)]).unwrap();
        let d = dijkstra(&g, 0);
        assert_eq!(d[2], Dist::INFINITY);
        assert_eq!(bfs(&g, 0)[2], Dist::INFINITY);
    }

    #[test]
    fn bfs_equals_dijkstra_on_unit_weights() {
        let g = generators::erdos_renyi_connected(24, 0.2, 1, &mut rand_chacha_rng(7));
        let u = g.unweighted_view();
        for s in [0, 5, 11] {
            assert_eq!(bfs(&u, s), dijkstra(&u, s));
        }
    }

    #[test]
    fn hops_count_min_edges_on_shortest_paths() {
        // Two shortest paths 0->3 of length 4: 0-1-2-3 (3 hops) and 0-3 (1 hop, w=4).
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 2), (0, 3, 4)]).unwrap();
        let (d, h) = dijkstra_with_hops(&g, 0);
        assert_eq!(d[3], Dist::from(4u64));
        assert_eq!(h[3], 1);
    }

    #[test]
    fn hop_bounded_monotone_in_ell() {
        let g = ref_graph();
        for s in g.nodes() {
            let full = dijkstra(&g, s);
            let mut prev = hop_bounded(&g, s, 0);
            for ell in 1..=g.n() {
                let cur = hop_bounded(&g, s, ell);
                for v in g.nodes() {
                    assert!(cur[v] <= prev[v], "d^ℓ must be non-increasing in ℓ");
                    assert!(cur[v] >= full[v], "d^ℓ ≥ d");
                }
                prev = cur;
            }
            // With ℓ ≥ n-1 the bound is vacuous.
            assert_eq!(hop_bounded(&g, s, g.n() - 1), full);
        }
    }

    #[test]
    fn hop_bounded_zero_is_source_only() {
        let g = ref_graph();
        let d = hop_bounded(&g, 2, 0);
        for v in g.nodes() {
            if v == 2 {
                assert_eq!(d[v], Dist::ZERO);
            } else {
                assert_eq!(d[v], Dist::INFINITY);
            }
        }
    }

    #[test]
    fn bounded_distance_truncates() {
        let g = ref_graph();
        let d = bounded_distance(&g, 0, Dist::from(11u64));
        assert_eq!(d[5], Dist::from(11u64));
        assert_eq!(d[3], Dist::INFINITY);
        assert_eq!(d[4], Dist::INFINITY);
    }

    fn rand_chacha_rng(seed: u64) -> impl rand::Rng {
        use rand::SeedableRng;
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn predecessors_yield_valid_shortest_paths() {
        let g = ref_graph();
        let (dist, pred) = dijkstra_with_predecessors(&g, 0);
        assert_eq!(dist, dijkstra(&g, 0));
        for t in g.nodes() {
            let path = extract_path(&pred, 0, t).expect("connected");
            assert_eq!(path.first(), Some(&0));
            assert_eq!(path.last(), Some(&t));
            // The path's length equals the shortest distance.
            let len: u64 = path
                .windows(2)
                .map(|w| g.edge_weight(w[0], w[1]).expect("path uses real edges"))
                .sum();
            assert_eq!(Dist::from(len), dist[t], "t={t}");
        }
    }

    #[test]
    fn extract_path_unreachable_is_none() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1)]).unwrap();
        let (_, pred) = dijkstra_with_predecessors(&g, 0);
        assert_eq!(extract_path(&pred, 0, 2), None);
        assert_eq!(extract_path(&pred, 0, 0), Some(vec![0]));
    }
}
