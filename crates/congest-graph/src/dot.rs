//! Graphviz DOT emission, used to regenerate the paper's Figures 1–4.

use crate::graph::{NodeId, WeightedGraph};
use std::fmt::Write as _;

/// Options controlling DOT output.
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    /// Graph name in the `graph <name> { … }` header.
    pub name: String,
    /// Optional node labels; nodes without a label use their index.
    pub labels: Vec<(NodeId, String)>,
    /// If `true`, edge weights are rendered as labels.
    pub show_weights: bool,
}

impl DotOptions {
    /// Options with a graph name, weight labels on.
    pub fn named(name: impl Into<String>) -> DotOptions {
        DotOptions {
            name: name.into(),
            labels: Vec::new(),
            show_weights: true,
        }
    }
}

/// Renders `g` as an undirected Graphviz DOT document.
///
/// # Examples
///
/// ```
/// use congest_graph::{dot, generators};
/// let g = generators::path(3, 2);
/// let s = dot::to_dot(&g, &dot::DotOptions::named("p3"));
/// assert!(s.contains("graph p3"));
/// assert!(s.contains("0 -- 1"));
/// ```
pub fn to_dot(g: &WeightedGraph, opts: &DotOptions) -> String {
    let mut out = String::new();
    let name = if opts.name.is_empty() {
        "g"
    } else {
        &opts.name
    };
    writeln!(out, "graph {name} {{").unwrap();
    for (v, label) in &opts.labels {
        writeln!(out, "  {v} [label=\"{label}\"];").unwrap();
    }
    for e in g.edges() {
        if opts.show_weights {
            writeln!(out, "  {} -- {} [label=\"{}\"];", e.u, e.v, e.w).unwrap();
        } else {
            writeln!(out, "  {} -- {};", e.u, e.v).unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_contains_all_edges() {
        let g = generators::cycle(4, 3);
        let s = to_dot(&g, &DotOptions::named("c4"));
        assert_eq!(s.matches(" -- ").count(), 4);
        assert!(s.contains("label=\"3\""));
    }

    #[test]
    fn labels_rendered() {
        let g = generators::path(2, 1);
        let opts = DotOptions {
            name: "p".into(),
            labels: vec![(0, "leader".into())],
            show_weights: false,
        };
        let s = to_dot(&g, &opts);
        assert!(s.contains("label=\"leader\""));
        assert!(!s.contains("label=\"1\"];\n}"));
    }
}
