//! Skeleton overlays and the approximate distance `d̃_{G,w,S}`
//! (paper Lemma 3.3 / Nanongkai's Theorem 4.2).
//!
//! Given a skeleton `S ⊆ V`:
//!
//! * `(G'_S, w'_S)` is the complete graph on `S` with
//!   `w'({u,v}) = d̃^ℓ(u,v)` — the rounded bounded-hop distances of
//!   [`crate::rounding`];
//! * `N^k_S(v)` are the `k` nodes of `S` nearest to `v` *on `G'_S`*;
//! * `(G''_S, w''_S)` is the **k-shortcut graph**: pairs within each other's
//!   `k`-neighborhood get their exact `G'_S` distance, everything else keeps
//!   `w'`. Its hop diameter is `< 4|S|/k` (Nanongkai's Theorem 3.10);
//! * the approximate distance from `s ∈ S` to any `v ∈ V` is
//!   `d̃_{G,w,S}(s,v) = min_{u∈S} { d̃^{4|S|/k}_{G'',w''}(s,u) + d̃^ℓ(u,v) }`.
//!
//! With `ℓ = n·log n / r` and `S` sampled at rate `r/n`, Lemma 3.3 gives
//! `d ≤ d̃_{G,w,S} ≤ (1+ε)²·d` with overwhelming probability.
//!
//! Everything here is the centralized *reference*; the distributed versions
//! live in the `congest-algos` crate and are tested against these.

#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
use crate::graph::{NodeId, WeightedGraph};
use crate::rounding::{approx_hop_bounded_into, ApproxDist, RoundingScheme};
use crate::workspace::SsspWorkspace;
use rand::Rng;

/// Samples a skeleton: each node joins independently with probability
/// `rate = r/n` (Section 3's construction of the sets `S_i`).
pub fn sample_skeleton<R: Rng + ?Sized>(n: usize, rate: f64, rng: &mut R) -> Vec<NodeId> {
    assert!(
        (0.0..=1.0).contains(&rate),
        "sampling rate must be in [0,1]"
    );
    (0..n).filter(|_| rng.gen_bool(rate)).collect()
}

/// A complete weighted graph on a skeleton `S`, with real-valued weights.
///
/// Represents both `(G'_S, w'_S)` and `(G''_S, w''_S)` of Lemma 3.3.
#[derive(Clone, Debug)]
pub struct Overlay {
    nodes: Vec<NodeId>,
    /// Flattened symmetric `|S| × |S|` weight matrix; `w[i*s+j]` is the edge
    /// weight between skeleton indices `i` and `j` (`0.0` on the diagonal).
    w: Vec<ApproxDist>,
}

impl Overlay {
    /// Builds `(G'_S, w'_S)`: for every `u ∈ S`, runs the bounded-hop
    /// approximation from `u` and records `w'({u,v}) = d̃^ℓ(u,v)`.
    ///
    /// # Panics
    ///
    /// Panics if `skeleton` contains an out-of-range or duplicate node.
    pub fn from_skeleton(
        g: &WeightedGraph,
        skeleton: &[NodeId],
        scheme: RoundingScheme,
    ) -> Overlay {
        let mut nodes = skeleton.to_vec();
        nodes.sort_unstable();
        let before = nodes.len();
        nodes.dedup();
        assert_eq!(nodes.len(), before, "skeleton contains duplicates");
        if let Some(&max) = nodes.last() {
            assert!(max < g.n(), "skeleton node {max} out of range");
        }
        let s = nodes.len();
        let mut w = vec![0.0; s * s];
        // One workspace and one distance row serve the whole skeleton loop.
        let mut ws = SsspWorkspace::new();
        let mut d = vec![f64::INFINITY; g.n()];
        for (i, &u) in nodes.iter().enumerate() {
            approx_hop_bounded_into(g, u, scheme, &mut ws, &mut d);
            for (j, &v) in nodes.iter().enumerate() {
                if i != j {
                    // Keep the matrix symmetric: d̃ is symmetric analytically,
                    // min() guards against float noise.
                    let val = d[v];
                    let cur = w[j * s + i];
                    let best = if cur > 0.0 { val.min(cur) } else { val };
                    w[i * s + j] = best;
                    w[j * s + i] = best;
                }
            }
        }
        Overlay { nodes, w }
    }

    /// Builds an overlay directly from a weight matrix (used by tests and by
    /// the distributed implementation to compare states).
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != nodes.len()²` or the matrix is asymmetric.
    pub fn from_matrix(nodes: Vec<NodeId>, w: Vec<ApproxDist>) -> Overlay {
        let s = nodes.len();
        assert_eq!(w.len(), s * s, "matrix size mismatch");
        for i in 0..s {
            for j in 0..s {
                assert!(
                    (w[i * s + j] - w[j * s + i]).abs() < 1e-9
                        || (w[i * s + j].is_infinite() && w[j * s + i].is_infinite()),
                    "matrix must be symmetric"
                );
            }
        }
        Overlay { nodes, w }
    }

    /// The skeleton nodes (sorted original graph ids).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of skeleton nodes `|S|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the skeleton is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The overlay index of an original node, if it is in the skeleton.
    pub fn index_of(&self, v: NodeId) -> Option<usize> {
        self.nodes.binary_search(&v).ok()
    }

    /// The edge weight between skeleton indices `i` and `j`.
    pub fn weight(&self, i: usize, j: usize) -> ApproxDist {
        self.w[i * self.len() + j]
    }

    /// Dijkstra on the overlay from skeleton index `src`; returns distances
    /// indexed by skeleton index.
    ///
    /// # Panics
    ///
    /// Panics if `src >= self.len()`.
    pub fn dijkstra(&self, src: usize) -> Vec<ApproxDist> {
        let s = self.len();
        assert!(src < s);
        let mut dist = vec![f64::INFINITY; s];
        let mut done = vec![false; s];
        dist[src] = 0.0;
        for _ in 0..s {
            let mut best = None;
            for i in 0..s {
                if !done[i] && dist[i].is_finite() {
                    match best {
                        None => best = Some(i),
                        Some(b) if dist[i] < dist[b] => best = Some(i),
                        _ => {}
                    }
                }
            }
            let Some(v) = best else { break };
            done[v] = true;
            for u in 0..s {
                if u != v {
                    let nd = dist[v] + self.weight(v, u);
                    if nd < dist[u] {
                        dist[u] = nd;
                    }
                }
            }
        }
        dist
    }

    /// The `k` shortest edges incident to skeleton index `v`, as
    /// `(other endpoint, weight)` pairs, ties broken by index.
    ///
    /// This is exactly what each skeleton node broadcasts in the paper's
    /// Algorithm 4, so the distributed implementation can reproduce the
    /// shortcut graph bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.len()`.
    pub fn k_shortest_edges(&self, v: usize, k: usize) -> Vec<(usize, ApproxDist)> {
        let mut edges = Vec::new();
        self.k_shortest_into(v, k, &mut edges);
        edges
    }

    /// [`k_shortest_edges`](Overlay::k_shortest_edges) into a reusable
    /// buffer (cleared first); no allocation once `row` has grown.
    fn k_shortest_into(&self, v: usize, k: usize, row: &mut Vec<(usize, ApproxDist)>) {
        row.clear();
        row.extend(
            (0..self.len())
                .filter(|&u| u != v)
                .map(|u| (u, self.weight(v, u)))
                .filter(|&(_, w)| w.is_finite()),
        );
        row.sort_unstable_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        row.truncate(k);
    }

    /// Builds the *broadcast subgraph* `H` — the union over all skeleton
    /// nodes of their `k` shortest incident edges (what is globally known
    /// after the Algorithm 4 broadcast; Nanongkai's Observation 3.12) —
    /// into `scratch`'s flat CSR arrays.
    ///
    /// Repeated queries against one long-lived [`OverlayScratch`] are
    /// allocation-free once its buffers are warm (pinned by
    /// `tests/overlay_alloc.rs`); the nested-`Vec` convenience wrapper
    /// [`broadcast_subgraph`](Overlay::broadcast_subgraph) costs `s + 1`
    /// fresh vectors per call.
    pub fn broadcast_subgraph_into(&self, k: usize, scratch: &mut OverlayScratch) {
        let s = self.len();
        // Select every node's k shortest edges, normalized to (lo, hi, w);
        // sorting + dedup replaces the HashSet the seed version hashed every
        // candidate pair through.
        scratch.picked.clear();
        for v in 0..s {
            self.k_shortest_into(v, k, &mut scratch.row);
            for &(u, w) in &scratch.row {
                scratch.picked.push((v.min(u), v.max(u), w));
            }
        }
        scratch.picked.sort_unstable_by_key(|a| (a.0, a.1));
        scratch
            .picked
            .dedup_by(|next, prev| (prev.0, prev.1) == (next.0, next.1));

        // Two-pass CSR fill, offsets doubling as write cursors (same scheme
        // as GraphBuilder::build).
        scratch.offsets.clear();
        scratch.offsets.resize(s + 1, 0);
        for &(a, b, _) in &scratch.picked {
            scratch.offsets[a + 1] += 1;
            scratch.offsets[b + 1] += 1;
        }
        for i in 1..=s {
            scratch.offsets[i] += scratch.offsets[i - 1];
        }
        let total = scratch.offsets[s];
        scratch.to.clear();
        scratch.to.resize(total, 0);
        scratch.wt.clear();
        scratch.wt.resize(total, 0.0);
        for &(a, b, w) in &scratch.picked {
            let ca = scratch.offsets[a];
            scratch.to[ca] = b;
            scratch.wt[ca] = w;
            scratch.offsets[a] += 1;
            let cb = scratch.offsets[b];
            scratch.to[cb] = a;
            scratch.wt[cb] = w;
            scratch.offsets[b] += 1;
        }
        for i in (1..=s).rev() {
            scratch.offsets[i] = scratch.offsets[i - 1];
        }
        scratch.offsets[0] = 0;
    }

    /// The broadcast subgraph as a nested adjacency list over skeleton
    /// indices — a convenience wrapper over
    /// [`broadcast_subgraph_into`](Overlay::broadcast_subgraph_into) for
    /// callers that want an owned structure. Rows list lower-indexed
    /// neighbors first, each side ascending.
    pub fn broadcast_subgraph(&self, k: usize) -> Vec<Vec<(usize, ApproxDist)>> {
        let mut scratch = OverlayScratch::new();
        self.broadcast_subgraph_into(k, &mut scratch);
        (0..self.len())
            .map(|v| scratch.neighbors(v).collect())
            .collect()
    }

    /// `N^k_S(v)`: the `k` skeleton indices (excluding `v` itself) with least
    /// shortest-path distance from `v` **on the broadcast subgraph** (ties
    /// broken by index), written into `out`.
    ///
    /// Allocation-free once `scratch` and `out` are warm.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.len()`.
    pub fn k_nearest_into(
        &self,
        v: usize,
        k: usize,
        scratch: &mut OverlayScratch,
        out: &mut Vec<usize>,
    ) {
        assert!(v < self.len());
        self.broadcast_subgraph_into(k, scratch);
        scratch.dijkstra_from(v);
        out.clear();
        out.extend((0..self.len()).filter(|&i| i != v));
        let d = &scratch.dist;
        out.sort_unstable_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap().then(a.cmp(&b)));
        out.truncate(k);
    }

    /// Owning wrapper over [`k_nearest_into`](Overlay::k_nearest_into).
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.len()`.
    pub fn k_nearest(&self, v: usize, k: usize) -> Vec<usize> {
        let mut scratch = OverlayScratch::new();
        let mut out = Vec::new();
        self.k_nearest_into(v, k, &mut scratch, &mut out);
        out
    }

    /// Builds the k-shortcut graph `(G''_S, w''_S)`: for pairs `{u,v}` with
    /// `u ∈ N^k(v)` or `v ∈ N^k(u)`, the weight becomes
    /// `min(w'({u,v}), d_H(u,v))` where `H` is the broadcast subgraph;
    /// other pairs keep `w'`.
    ///
    /// This is the construction each node can perform locally after
    /// Algorithm 4's broadcast. The invariants Lemma 3.3 needs —
    /// `d_{G'} ≤ w'' ≤ w'` and a hop diameter `< 4|S|/k` — are verified by
    /// the tests in this module.
    pub fn shortcut(&self, k: usize) -> Overlay {
        let s = self.len();
        let mut w = self.w.clone();
        let mut scratch = OverlayScratch::new();
        self.broadcast_subgraph_into(k, &mut scratch);
        // Per source: H-distances, then its k-neighborhood under them. The
        // weight updates only read `self` and H, so applying them per source
        // (instead of materializing an s × s distance matrix first) changes
        // nothing about the result.
        let mut order: Vec<usize> = Vec::with_capacity(s.saturating_sub(1));
        for v in 0..s {
            scratch.dijkstra_from(v);
            order.clear();
            order.extend((0..s).filter(|&i| i != v));
            let d = &scratch.dist;
            order.sort_unstable_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap().then(a.cmp(&b)));
            order.truncate(k);
            for &u in &order {
                let d = scratch.dist[u].min(self.weight(v, u));
                if d < w[v * s + u] {
                    w[v * s + u] = d;
                    w[u * s + v] = d;
                }
            }
        }
        Overlay {
            nodes: self.nodes.clone(),
            w,
        }
    }

    /// The hop diameter of the overlay (max over pairs of the minimum edge
    /// count among weight-shortest paths). `usize::MAX` if disconnected.
    ///
    /// Used to verify Nanongkai's Theorem 3.10: the k-shortcut graph has hop
    /// diameter `< 4|S|/k`.
    pub fn hop_diameter(&self) -> usize {
        let s = self.len();
        let mut best = 0;
        for src in 0..s {
            // Dijkstra with (dist, hops) lexicographic keys.
            let mut dist = vec![(f64::INFINITY, usize::MAX); s];
            let mut done = vec![false; s];
            dist[src] = (0.0, 0);
            for _ in 0..s {
                let mut pick = None;
                for i in 0..s {
                    if !done[i] && dist[i].0.is_finite() {
                        match pick {
                            None => pick = Some(i),
                            Some(p) if (dist[i].0, dist[i].1) < (dist[p].0, dist[p].1) => {
                                pick = Some(i)
                            }
                            _ => {}
                        }
                    }
                }
                let Some(v) = pick else { break };
                done[v] = true;
                for u in 0..s {
                    if u != v {
                        let cand = (dist[v].0 + self.weight(v, u), dist[v].1 + 1);
                        if cand.0 < dist[u].0 || (cand.0 == dist[u].0 && cand.1 < dist[u].1) {
                            dist[u] = cand;
                        }
                    }
                }
            }
            for i in 0..s {
                if dist[i].1 == usize::MAX {
                    return usize::MAX;
                }
                best = best.max(dist[i].1);
            }
        }
        best
    }

    /// The rounded bounded-hop approximation `d̃^{ℓ'}` **on the overlay
    /// itself** from skeleton index `src` (Lemma 3.2 applied to `(G'', w'')`,
    /// as used in the definition of `d̃_{G,w,S}`).
    ///
    /// Weights here are real; the rounding `⌈2ℓ'w/(ε2^i)⌉` still produces
    /// integers and the same sandwich `d ≤ d̃^{ℓ'} ≤ (1+ε)d^{ℓ'}` holds.
    pub fn approx_hop_bounded(&self, src: usize, ell: usize, eps: f64) -> Vec<ApproxDist> {
        let s = self.len();
        assert!(src < s);
        assert!(ell >= 1 && eps > 0.0 && eps <= 1.0);
        let max_w = self
            .w
            .iter()
            .copied()
            .filter(|x| x.is_finite())
            .fold(1.0f64, f64::max);
        let imax = ((2.0 * s as f64 * max_w / eps).log2().ceil()).max(0.0) as u32;
        let threshold = (1.0 + 2.0 / eps) * ell as f64;
        let mut best = vec![f64::INFINITY; s];
        best[src] = 0.0;
        for i in 0..=imax {
            let denom = eps * (2f64).powi(i as i32);
            let unscale = denom / (2.0 * ell as f64);
            // Dijkstra under rounded weights ⌈2ℓw/denom⌉.
            let mut dist = vec![f64::INFINITY; s];
            let mut done = vec![false; s];
            dist[src] = 0.0;
            for _ in 0..s {
                let mut pick = None;
                for x in 0..s {
                    if !done[x] && dist[x].is_finite() {
                        match pick {
                            None => pick = Some(x),
                            Some(p) if dist[x] < dist[p] => pick = Some(x),
                            _ => {}
                        }
                    }
                }
                let Some(v) = pick else { break };
                done[v] = true;
                if dist[v] > threshold {
                    continue;
                }
                for u in 0..s {
                    if u != v && self.weight(v, u).is_finite() {
                        let rw = ((2.0 * ell as f64 * self.weight(v, u)) / denom)
                            .ceil()
                            .max(1.0);
                        let nd = dist[v] + rw;
                        if nd < dist[u] {
                            dist[u] = nd;
                        }
                    }
                }
            }
            for v in 0..s {
                if dist[v] <= threshold {
                    let approx = dist[v] * unscale;
                    if approx < best[v] {
                        best[v] = approx;
                    }
                }
            }
        }
        best
    }
}

/// Reusable flat scratch for broadcast-subgraph queries.
///
/// The seed implementation of [`Overlay::broadcast_subgraph`] allocated a
/// fresh `Vec<Vec<(usize, ApproxDist)>>` (one inner vector per skeleton
/// node) plus a `HashSet` of seen pairs on every call — per-query garbage
/// that dominated repeated skeleton queries. This scratch holds the
/// subgraph as three flat CSR arrays plus the selection and Dijkstra
/// buffers, so a warm holder runs
/// [`broadcast_subgraph_into`](Overlay::broadcast_subgraph_into) /
/// [`k_nearest_into`](Overlay::k_nearest_into) with **zero heap
/// operations** (pinned by `tests/overlay_alloc.rs`).
#[derive(Clone, Debug, Default)]
pub struct OverlayScratch {
    /// One node's k-shortest-edge selection row.
    row: Vec<(usize, ApproxDist)>,
    /// Selected edges as `(lo, hi, w)`, sorted and deduplicated.
    picked: Vec<(usize, usize, ApproxDist)>,
    /// CSR row starts over skeleton indices (`len s + 1`).
    offsets: Vec<usize>,
    /// Flat CSR neighbor indices.
    to: Vec<usize>,
    /// Flat CSR edge weights, parallel to `to`.
    wt: Vec<ApproxDist>,
    /// Dijkstra distance labels of the latest
    /// [`dijkstra_from`](OverlayScratch::dijkstra_from) run.
    dist: Vec<ApproxDist>,
    /// Dijkstra settled flags.
    done: Vec<bool>,
}

impl OverlayScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> OverlayScratch {
        OverlayScratch::default()
    }

    /// Number of skeleton nodes in the currently built subgraph.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` until a subgraph has been built into this scratch.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Undirected edge count of the currently built subgraph.
    pub fn edge_count(&self) -> usize {
        self.to.len() / 2
    }

    /// `(neighbor, weight)` pairs of skeleton index `v` in the built
    /// subgraph: lower-indexed neighbors first, each side ascending.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, ApproxDist)> + '_ {
        let range = self.offsets[v]..self.offsets[v + 1];
        self.to[range.clone()]
            .iter()
            .copied()
            .zip(self.wt[range].iter().copied())
    }

    /// Shortest-path distances on the built subgraph from `src`, into the
    /// reusable label buffers; read them back via
    /// [`distances`](OverlayScratch::distances).
    fn dijkstra_from(&mut self, src: usize) {
        let s = self.len();
        self.dist.clear();
        self.dist.resize(s, f64::INFINITY);
        self.done.clear();
        self.done.resize(s, false);
        self.dist[src] = 0.0;
        for _ in 0..s {
            let mut best = None;
            for i in 0..s {
                if !self.done[i] && self.dist[i].is_finite() {
                    match best {
                        None => best = Some(i),
                        Some(b) if self.dist[i] < self.dist[b] => best = Some(i),
                        _ => {}
                    }
                }
            }
            let Some(v) = best else { break };
            self.done[v] = true;
            for e in self.offsets[v]..self.offsets[v + 1] {
                let u = self.to[e];
                let nd = self.dist[v] + self.wt[e];
                if nd < self.dist[u] {
                    self.dist[u] = nd;
                }
            }
        }
    }

    /// Distance labels of the latest Dijkstra run, indexed by skeleton
    /// index.
    pub fn distances(&self) -> &[ApproxDist] {
        &self.dist
    }
}

/// All the per-skeleton state needed to evaluate `d̃_{G,w,S}` and the
/// approximate eccentricity `ẽ` — the content of `|init_i⟩` and `|data_i(s)⟩`
/// in Lemma 3.5, computed centrally.
#[derive(Clone, Debug)]
pub struct SkeletonDistances {
    /// The skeleton `S` (sorted).
    pub skeleton: Vec<NodeId>,
    /// `bh[j][v] = d̃^ℓ(S[j], v)` for every node `v` of the original graph.
    pub bounded_hop: Vec<Vec<ApproxDist>>,
    /// The k-shortcut overlay `(G''_S, w''_S)`.
    pub shortcut: Overlay,
    /// The hop budget used on the overlay: `⌈4|S|/k⌉`.
    pub overlay_ell: usize,
    /// The accuracy parameter `ε`.
    pub eps: f64,
}

impl SkeletonDistances {
    /// Precomputes everything for a skeleton: bounded-hop distances from each
    /// skeleton node, the overlay `G'`, and the k-shortcut graph `G''`.
    ///
    /// # Panics
    ///
    /// Panics if the skeleton is empty or `k == 0`.
    pub fn compute(
        g: &WeightedGraph,
        skeleton: &[NodeId],
        scheme: RoundingScheme,
        k: usize,
    ) -> SkeletonDistances {
        assert!(!skeleton.is_empty(), "skeleton must be non-empty");
        assert!(k >= 1, "k must be ≥ 1");
        let overlay = Overlay::from_skeleton(g, skeleton, scheme);
        let mut ws = SsspWorkspace::new();
        let bounded_hop = overlay
            .nodes()
            .iter()
            .map(|&u| {
                let mut row = vec![f64::INFINITY; g.n()];
                approx_hop_bounded_into(g, u, scheme, &mut ws, &mut row);
                row
            })
            .collect();
        let shortcut = overlay.shortcut(k);
        let overlay_ell = ((4 * overlay.len()) as f64 / k as f64).ceil().max(1.0) as usize;
        SkeletonDistances {
            skeleton: overlay.nodes().to_vec(),
            bounded_hop,
            shortcut,
            overlay_ell,
            eps: scheme.eps,
        }
    }

    /// `d̃_{G,w,S}(s, ·)` for a skeleton member `s` (Lemma 3.3):
    /// `min_{u∈S} { d̃^{4|S|/k}_{G'',w''}(s,u) + d̃^ℓ(u,v) }`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not in the skeleton.
    pub fn approx_distances_from(&self, s: NodeId) -> Vec<ApproxDist> {
        let si = self
            .shortcut
            .index_of(s)
            .expect("source must be a skeleton node");
        let over = self
            .shortcut
            .approx_hop_bounded(si, self.overlay_ell, self.eps);
        let n = self.bounded_hop[0].len();
        let mut out = vec![f64::INFINITY; n];
        for (j, bh) in self.bounded_hop.iter().enumerate() {
            if over[j].is_finite() {
                for v in 0..n {
                    let cand = over[j] + bh[v];
                    if cand < out[v] {
                        out[v] = cand;
                    }
                }
            }
        }
        out[s] = 0.0;
        out
    }

    /// The approximate eccentricity `ẽ_{G,w,S}(s) = max_v d̃_{G,w,S}(s, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not in the skeleton.
    pub fn approx_eccentricity(&self, s: NodeId) -> ApproxDist {
        self.approx_distances_from(s)
            .into_iter()
            .fold(0.0f64, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::shortest_path::dijkstra;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn scheme_for(n: usize, r: f64) -> RoundingScheme {
        // ℓ = n log n / r as in Lemma 3.3, eps modest for tests.
        let ell = ((n as f64) * (n as f64).log2() / r).ceil() as usize;
        RoundingScheme::new(ell.max(1), 0.25)
    }

    #[test]
    fn overlay_weights_dominate_true_distance() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::erdos_renyi_connected(24, 0.15, 9, &mut rng);
        let skeleton = sample_skeleton(g.n(), 0.4, &mut rng);
        if skeleton.len() < 2 {
            return;
        }
        let ov = Overlay::from_skeleton(&g, &skeleton, scheme_for(g.n(), 8.0));
        for i in 0..ov.len() {
            let exact = dijkstra(&g, ov.nodes()[i]);
            for j in 0..ov.len() {
                if i != j {
                    assert!(
                        ov.weight(i, j) >= exact[ov.nodes()[j]].as_f64() - 1e-6,
                        "w' must be ≥ true distance"
                    );
                }
            }
        }
    }

    #[test]
    fn shortcut_weights_never_increase_and_stay_above_distance() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = generators::erdos_renyi_connected(20, 0.2, 5, &mut rng);
        let skeleton: Vec<_> = (0..g.n()).step_by(2).collect();
        let ov = Overlay::from_skeleton(&g, &skeleton, scheme_for(g.n(), 10.0));
        let sc = ov.shortcut(3);
        for i in 0..ov.len() {
            let exact = dijkstra(&g, ov.nodes()[i]);
            for j in 0..ov.len() {
                if i != j {
                    assert!(sc.weight(i, j) <= ov.weight(i, j) + 1e-9);
                    assert!(sc.weight(i, j) >= exact[ov.nodes()[j]].as_f64() - 1e-6);
                }
            }
        }
    }

    /// Nanongkai Theorem 3.10: hop diameter of the k-shortcut graph < 4|S|/k.
    #[test]
    fn theorem_3_10_shortcut_hop_diameter() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for trial in 0..5 {
            let g = generators::erdos_renyi_connected(30, 0.12, 7, &mut rng);
            let skeleton: Vec<_> = (0..g.n()).step_by(2).collect();
            // Use a large ℓ so the overlay is fully finite.
            let scheme = RoundingScheme::new(g.n(), 0.25);
            let ov = Overlay::from_skeleton(&g, &skeleton, scheme);
            for k in [2usize, 4, 8] {
                let sc = ov.shortcut(k);
                let bound = (4 * ov.len()) as f64 / k as f64;
                let h = sc.hop_diameter();
                assert!(
                    (h as f64) < bound,
                    "trial {trial} k={k}: hop diameter {h} ≥ 4|S|/k = {bound}"
                );
            }
        }
    }

    #[test]
    fn k_nearest_sorted_by_distance() {
        let nodes = vec![0, 1, 2, 3];
        #[rustfmt::skip]
        let w = vec![
            0.0, 1.0, 5.0, 9.0,
            1.0, 0.0, 2.0, 9.0,
            5.0, 2.0, 0.0, 9.0,
            9.0, 9.0, 9.0, 0.0,
        ];
        let ov = Overlay::from_matrix(nodes, w);
        // From 0: dist 1 to 1, 3 (via 1) to 2, 9 to 3.
        assert_eq!(ov.k_nearest(0, 2), vec![1, 2]);
        assert_eq!(ov.dijkstra(0)[2], 3.0);
    }

    /// Lemma 3.3: with ℓ = n log n / r and a rate-r/n skeleton,
    /// d ≤ d̃_{G,w,S} ≤ (1+ε)² d for all skeleton sources.
    #[test]
    fn lemma_3_3_sandwich() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for trial in 0..4 {
            let n = 26;
            let g = generators::erdos_renyi_connected(n, 0.15, 12, &mut rng);
            let r = 8.0;
            let skeleton = sample_skeleton(n, r / n as f64, &mut rng);
            if skeleton.is_empty() {
                continue;
            }
            let scheme = scheme_for(n, r);
            let sd = SkeletonDistances::compute(&g, &skeleton, scheme, 3);
            let eps = scheme.eps;
            for &s in &sd.skeleton {
                let exact = dijkstra(&g, s);
                let approx = sd.approx_distances_from(s);
                for v in g.nodes() {
                    let d = exact[v].as_f64();
                    assert!(
                        approx[v] >= d - 1e-6,
                        "trial {trial}: d̃({s},{v})={} < d={d}",
                        approx[v]
                    );
                    assert!(
                        approx[v] <= (1.0 + eps) * (1.0 + eps) * d + 1e-6,
                        "trial {trial}: d̃({s},{v})={} > (1+ε)²d={}",
                        approx[v],
                        (1.0 + eps) * (1.0 + eps) * d
                    );
                }
                // Eccentricity inherits the sandwich.
                let e = crate::metrics::eccentricity(&g, s).as_f64();
                let ea = sd.approx_eccentricity(s);
                assert!(ea >= e - 1e-6 && ea <= (1.0 + eps).powi(2) * e + 1e-6);
            }
        }
    }

    #[test]
    fn sample_skeleton_rate_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(sample_skeleton(50, 0.0, &mut rng).is_empty());
        assert_eq!(sample_skeleton(50, 1.0, &mut rng).len(), 50);
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn duplicate_skeleton_rejected() {
        let g = generators::path(4, 1);
        let _ = Overlay::from_skeleton(&g, &[1, 1], RoundingScheme::new(2, 0.5));
    }
}
