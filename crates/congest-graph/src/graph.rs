//! The weighted-graph type used throughout the workspace.
//!
//! [`WeightedGraph`] is an undirected graph with positive integer edge
//! weights (`w : E → ℕ⁺`, as in the paper's preliminaries), stored in
//! compressed-sparse-row form for cache-friendly traversal. Graphs are built
//! through [`GraphBuilder`], which validates weights and node indices, or
//! loaded zero-copy from the binary on-disk format via
//! [`WeightedGraph::open_mmap`](crate::io).
//!
//! Internally the CSR arrays live behind [`GraphStorage`]: either owned
//! `Vec`s (built in memory) or a memory-mapped file region (borrowed
//! zero-copy, see [`crate::io`]). Every accessor goes through the same slice
//! views, so kernels are oblivious to the storage backing.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::io::MappedCsr;

/// Index of a node in a graph. Nodes of an `n`-node graph are `0..n`.
pub type NodeId = usize;

/// A positive integer edge weight (`w : E → ℕ⁺`).
pub type Weight = u64;

/// An undirected edge `{u, v}` with weight `w`, as fed to [`GraphBuilder`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// The positive weight.
    pub w: Weight,
}

impl Edge {
    /// Creates an edge `{u, v}` of weight `w`.
    ///
    /// # Examples
    ///
    /// ```
    /// use congest_graph::Edge;
    /// let e = Edge::new(0, 1, 5);
    /// assert_eq!((e.u, e.v, e.w), (0, 1, 5));
    /// ```
    pub fn new(u: NodeId, v: NodeId, w: Weight) -> Edge {
        Edge { u, v, w }
    }

    /// The endpoints in sorted order, for canonical comparison of
    /// undirected edges.
    pub fn key(&self) -> (NodeId, NodeId) {
        (self.u.min(self.v), self.u.max(self.v))
    }
}

/// Errors produced while building a graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildGraphError {
    /// An edge referenced a node `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: NodeId,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An edge had weight `0`; weights must be positive.
    ZeroWeight {
        /// The offending edge endpoints.
        edge: (NodeId, NodeId),
    },
    /// A self-loop `{v, v}` was supplied.
    SelfLoop {
        /// The node with the loop.
        node: NodeId,
    },
}

impl fmt::Display for BuildGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildGraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge references node {node} but the graph has {n} nodes")
            }
            BuildGraphError::ZeroWeight { edge } => {
                write!(
                    f,
                    "edge {{{}, {}}} has weight 0; weights must be positive",
                    edge.0, edge.1
                )
            }
            BuildGraphError::SelfLoop { node } => {
                write!(f, "self-loop at node {node} is not allowed")
            }
        }
    }
}

impl std::error::Error for BuildGraphError {}

/// Read-only CSR access shared by every shortest-path and sweep kernel.
///
/// Implemented by [`WeightedGraph`] (owned or memory-mapped storage alike)
/// and the cache-compact [`crate::compact::CompactGraph`], so the kernels in
/// [`crate::SsspWorkspace`] and [`crate::SweepWorkspace`] run unchanged over
/// either representation and produce identical results.
pub trait CsrGraph {
    /// Number of nodes.
    fn n(&self) -> usize;
    /// Degree of `v`.
    fn degree(&self, v: NodeId) -> usize;
    /// Maximum edge weight `W` (1 for edgeless graphs).
    fn max_weight(&self) -> Weight;
    /// `(neighbor, weight)` pairs of `v` in ascending neighbor order.
    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_;
    /// Calls `f(u, w)` for every neighbor of `v`, in ascending order.
    ///
    /// The hot-kernel form of [`CsrGraph::neighbors`]: implementors override
    /// it with a direct slice loop, which the optimizer compiles to the same
    /// code as hand-indexed CSR arrays. The opaque iterator type above does
    /// not reliably get that treatment inside generic kernels (measured ~1.7×
    /// slower in the Dial relaxation loop), so every per-edge inner loop in
    /// `SsspWorkspace` goes through this instead.
    #[inline]
    fn for_each_neighbor(&self, v: NodeId, f: &mut impl FnMut(NodeId, Weight)) {
        for (u, w) in self.neighbors(v) {
            f(u, w);
        }
    }
}

/// Incrementally builds a [`WeightedGraph`].
///
/// Parallel edges are merged, keeping the minimum weight (the convention used
/// by the paper's contraction argument in Lemma 4.3).
///
/// # Examples
///
/// ```
/// use congest_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 2).add_edge(1, 2, 3);
/// let g = b.build()?;
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// # Ok::<(), congest_graph::BuildGraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes (`0..n`).
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds the undirected edge `{u, v}` of weight `w`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) -> &mut GraphBuilder {
        self.edges.push(Edge::new(u, v, w));
        self
    }

    /// Adds an unweighted (weight-1) edge.
    pub fn add_unit_edge(&mut self, u: NodeId, v: NodeId) -> &mut GraphBuilder {
        self.add_edge(u, v, 1)
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = Edge>>(&mut self, iter: I) -> &mut GraphBuilder {
        self.edges.extend(iter);
        self
    }

    /// Number of edges added so far (before merging parallels).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Validates and produces the graph.
    ///
    /// # Errors
    ///
    /// Returns an error if any edge references a node `>= n`, has weight 0,
    /// or is a self-loop.
    pub fn build(&self) -> Result<WeightedGraph, BuildGraphError> {
        for e in &self.edges {
            if e.u >= self.n {
                return Err(BuildGraphError::NodeOutOfRange {
                    node: e.u,
                    n: self.n,
                });
            }
            if e.v >= self.n {
                return Err(BuildGraphError::NodeOutOfRange {
                    node: e.v,
                    n: self.n,
                });
            }
            if e.w == 0 {
                return Err(BuildGraphError::ZeroWeight { edge: (e.u, e.v) });
            }
            if e.u == e.v {
                return Err(BuildGraphError::SelfLoop { node: e.u });
            }
        }
        // Merge parallel edges, keeping the minimum weight.
        let mut canon: Vec<Edge> = self
            .edges
            .iter()
            .map(|e| Edge::new(e.u.min(e.v), e.u.max(e.v), e.w))
            .collect();
        canon.sort_by_key(|e| (e.u, e.v, e.w));
        canon.dedup_by(|next, prev| prev.u == next.u && prev.v == next.v);

        let mut offsets = vec![0usize; self.n + 1];
        for e in &canon {
            offsets[e.u + 1] += 1;
            offsets[e.v + 1] += 1;
        }
        for i in 1..=self.n {
            offsets[i] += offsets[i - 1];
        }
        let total = offsets[self.n];
        let mut targets = vec![0 as NodeId; total];
        let mut weights = vec![0 as Weight; total];
        // `offsets[v]` doubles as the write cursor of row `v`; the final
        // shift restores the row starts, so no second cursor array exists.
        for e in &canon {
            targets[offsets[e.u]] = e.v;
            weights[offsets[e.u]] = e.w;
            offsets[e.u] += 1;
            targets[offsets[e.v]] = e.u;
            weights[offsets[e.v]] = e.w;
            offsets[e.v] += 1;
        }
        for i in (1..=self.n).rev() {
            offsets[i] = offsets[i - 1];
        }
        offsets[0] = 0;
        Ok(WeightedGraph::from_owned_csr(offsets, targets, weights))
    }
}

/// Backing storage of a [`WeightedGraph`]'s CSR arrays.
///
/// `Owned` is what [`GraphBuilder`] produces; `Mapped` borrows the arrays
/// zero-copy out of a memory-mapped [`crate::io`] graph file (cheap to
/// clone — clones share the mapping through an `Arc`).
#[derive(Clone)]
pub(crate) enum GraphStorage {
    /// Heap-owned CSR arrays.
    Owned {
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        weights: Vec<Weight>,
    },
    /// CSR arrays borrowed from a shared memory-mapped graph file.
    Mapped(Arc<MappedCsr>),
}

/// Which kind of storage backend (`GraphStorage`) backs a graph, for
/// reporting.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StorageKind {
    /// Heap-owned CSR arrays (built in memory).
    Owned,
    /// Arrays borrowed zero-copy from a memory-mapped file.
    Mapped,
}

/// An undirected graph with positive integer weights, in CSR form.
///
/// This is the `(G, w)` of the paper: `G = (V, E)`, `w : E → ℕ⁺`. The
/// *unweighted* view (`w* ≡ 1`) used for the network's hop structure is
/// available via [`WeightedGraph::unweighted_view`].
///
/// # Examples
///
/// ```
/// use congest_graph::{generators, Dist};
///
/// let g = generators::path(4, 10); // 0-1-2-3, each edge weight 10
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// let d = congest_graph::shortest_path::dijkstra(&g, 0);
/// assert_eq!(d[3], Dist::from(30u64));
/// ```
#[derive(Clone)]
pub struct WeightedGraph {
    storage: GraphStorage,
    /// Cached `max_e w(e)` so the Dial/heap dispatch is `O(1)` per search.
    max_weight: Weight,
}

impl WeightedGraph {
    /// Wraps already-canonical owned CSR arrays (crate-internal: callers
    /// guarantee rows are sorted, mirrored, and deduplicated).
    pub(crate) fn from_owned_csr(
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        weights: Vec<Weight>,
    ) -> WeightedGraph {
        debug_assert_eq!(targets.len(), weights.len());
        debug_assert_eq!(*offsets.last().expect("offsets non-empty"), targets.len());
        let max_weight = weights.iter().copied().max().unwrap_or(1);
        WeightedGraph {
            storage: GraphStorage::Owned {
                offsets,
                targets,
                weights,
            },
            max_weight,
        }
    }

    /// Wraps a memory-mapped CSR file (crate-internal; see [`crate::io`]).
    pub(crate) fn from_mapped(map: Arc<MappedCsr>) -> WeightedGraph {
        let max_weight = map.header().max_weight.max(1);
        WeightedGraph {
            storage: GraphStorage::Mapped(map),
            max_weight,
        }
    }

    /// The mapped backing, if this graph is memory-mapped.
    pub(crate) fn mapped(&self) -> Option<&MappedCsr> {
        match &self.storage {
            GraphStorage::Owned { .. } => None,
            GraphStorage::Mapped(m) => Some(m),
        }
    }

    /// Builds a graph directly from an edge list.
    ///
    /// Convenience wrapper over [`GraphBuilder`].
    ///
    /// # Errors
    ///
    /// Same as [`GraphBuilder::build`].
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId, Weight)>,
    ) -> Result<WeightedGraph, BuildGraphError> {
        let mut b = GraphBuilder::new(n);
        for (u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    /// Builds an unweighted graph (all weights 1) from an edge list.
    ///
    /// # Errors
    ///
    /// Same as [`GraphBuilder::build`].
    pub fn from_unit_edges(
        n: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<WeightedGraph, BuildGraphError> {
        WeightedGraph::from_edges(n, edges.into_iter().map(|(u, v)| (u, v, 1)))
    }

    /// The CSR row-offset array (`n + 1` entries; row `v` is
    /// `offsets[v]..offsets[v + 1]`).
    #[inline]
    pub fn csr_offsets(&self) -> &[usize] {
        match &self.storage {
            GraphStorage::Owned { offsets, .. } => offsets,
            GraphStorage::Mapped(m) => m.offsets(),
        }
    }

    /// The CSR neighbor array (each undirected edge appears twice).
    #[inline]
    pub fn csr_targets(&self) -> &[NodeId] {
        match &self.storage {
            GraphStorage::Owned { targets, .. } => targets,
            GraphStorage::Mapped(m) => m.targets(),
        }
    }

    /// The CSR weight array, parallel to [`WeightedGraph::csr_targets`].
    #[inline]
    pub fn csr_weights(&self) -> &[Weight] {
        match &self.storage {
            GraphStorage::Owned { weights, .. } => weights,
            GraphStorage::Mapped(m) => m.weights(),
        }
    }

    /// Whether the CSR arrays are heap-owned or memory-mapped.
    pub fn storage_kind(&self) -> StorageKind {
        match &self.storage {
            GraphStorage::Owned { .. } => StorageKind::Owned,
            GraphStorage::Mapped(_) => StorageKind::Mapped,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.csr_offsets().len() - 1
    }

    /// Number of (undirected, merged) edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.csr_targets().len() / 2
    }

    /// Iterator over all nodes `0..n`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.n()
    }

    /// The canonical edge list: deduplicated, `u < v`, sorted by `(u, v)`.
    ///
    /// Streamed straight out of the CSR rows (each edge is kept twice in
    /// CSR form; this yields the `u < v` copy), so no edge list is stored.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| v > u)
                .map(move |(v, w)| Edge::new(u, v, w))
        })
    }

    /// Neighbors of `v` with edge weights.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let offsets = self.csr_offsets();
        let range = offsets[v]..offsets[v + 1];
        self.csr_targets()[range.clone()]
            .iter()
            .copied()
            .zip(self.csr_weights()[range].iter().copied())
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let offsets = self.csr_offsets();
        offsets[v + 1] - offsets[v]
    }

    /// The weight of edge `{u, v}`, or `None` if absent.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.neighbors(u).find(|&(t, _)| t == v).map(|(_, w)| w)
    }

    /// `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Maximum edge weight `W = max_e w(e)` (1 for edgeless graphs).
    ///
    /// The paper's Appendix A assumes every node knows `W`; it is cached at
    /// construction so per-search kernel dispatch stays `O(1)`.
    #[inline]
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// The same topology with all weights replaced by 1 (`w*` in the paper).
    pub fn unweighted_view(&self) -> WeightedGraph {
        WeightedGraph::from_owned_csr(
            self.csr_offsets().to_vec(),
            self.csr_targets().to_vec(),
            vec![1; self.csr_targets().len()],
        )
    }

    /// Applies `f` to every edge weight, producing a new graph with the same
    /// topology. Used for the paper's weight rounding `w_i` (Lemma 3.2).
    ///
    /// `f` is applied to both stored directions of each undirected edge, so
    /// it must be a pure function of the weight.
    ///
    /// # Panics
    ///
    /// Panics if `f` produces a zero weight.
    pub fn map_weights(&self, mut f: impl FnMut(Weight) -> Weight) -> WeightedGraph {
        let weights: Vec<Weight> = self
            .csr_weights()
            .iter()
            .map(|&w| {
                let w = f(w);
                assert!(w > 0, "map_weights produced a zero weight");
                w
            })
            .collect();
        WeightedGraph::from_owned_csr(
            self.csr_offsets().to_vec(),
            self.csr_targets().to_vec(),
            weights,
        )
    }

    /// `true` if the graph is connected (or has at most one node).
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for (u, _) in self.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == n
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.edges().map(|e| e.w).sum()
    }

    /// The subgraph induced by `keep` (same node ids; nodes outside `keep`
    /// become isolated). Used by the figure-regeneration harness to carve
    /// `G[V_S]` out of a gadget.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.n()`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> WeightedGraph {
        assert_eq!(keep.len(), self.n(), "keep mask must cover every node");
        let edges = self
            .edges()
            .filter(|e| keep[e.u] && keep[e.v])
            .map(|e| (e.u, e.v, e.w));
        WeightedGraph::from_edges(self.n(), edges).expect("induced subgraph is valid")
    }
}

impl CsrGraph for WeightedGraph {
    #[inline]
    fn n(&self) -> usize {
        WeightedGraph::n(self)
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        WeightedGraph::degree(self, v)
    }

    #[inline]
    fn max_weight(&self) -> Weight {
        WeightedGraph::max_weight(self)
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        WeightedGraph::neighbors(self, v)
    }

    #[inline]
    fn for_each_neighbor(&self, v: NodeId, f: &mut impl FnMut(NodeId, Weight)) {
        let offsets = self.csr_offsets();
        let (lo, hi) = (offsets[v], offsets[v + 1]);
        let targets = &self.csr_targets()[lo..hi];
        let weights = &self.csr_weights()[lo..hi];
        for i in 0..targets.len() {
            f(targets[i], weights[i]);
        }
    }
}

impl PartialEq for WeightedGraph {
    /// Content equality: same CSR arrays, regardless of storage backing
    /// (an owned build compares equal to its memory-mapped round-trip).
    fn eq(&self, other: &WeightedGraph) -> bool {
        self.csr_offsets() == other.csr_offsets()
            && self.csr_targets() == other.csr_targets()
            && self.csr_weights() == other.csr_weights()
    }
}

impl Eq for WeightedGraph {}

impl fmt::Debug for WeightedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WeightedGraph")
            .field("n", &self.n())
            .field("m", &self.m())
            .field("storage", &self.storage_kind())
            .field("edges", &self.edges().collect::<Vec<_>>())
            .finish()
    }
}

impl Serialize for WeightedGraph {
    /// Serializes as `{"n": .., "edges": [[u, v, w], ..]}` — the canonical
    /// edge list, independent of storage backing.
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"n\":");
        out.push_str(&self.n().to_string());
        out.push_str(",\"edges\":[");
        for (i, e) in self.edges().enumerate() {
            if i > 0 {
                out.push(',');
            }
            (e.u, e.v, e.w).serialize_json(out);
        }
        out.push_str("]}");
    }
}

impl<'de> Deserialize<'de> for WeightedGraph {}

impl fmt::Display for WeightedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WeightedGraph(n={}, m={}, W={})",
            self.n(),
            self.m(),
            self.max_weight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g =
            WeightedGraph::from_edges(4, [(0, 1, 2), (1, 2, 3), (2, 3, 4), (0, 3, 10)]).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.edge_weight(1, 2), Some(3));
        assert_eq!(g.edge_weight(2, 1), Some(3));
        assert_eq!(g.edge_weight(0, 2), None);
        assert!(g.has_edge(0, 3));
        assert_eq!(g.max_weight(), 10);
        assert_eq!(g.storage_kind(), StorageKind::Owned);
    }

    #[test]
    fn parallel_edges_keep_minimum() {
        let g = WeightedGraph::from_edges(2, [(0, 1, 7), (1, 0, 3), (0, 1, 9)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn rejects_zero_weight() {
        let err = WeightedGraph::from_edges(2, [(0, 1, 0)]).unwrap_err();
        assert!(matches!(err, BuildGraphError::ZeroWeight { .. }));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = WeightedGraph::from_edges(2, [(0, 2, 1)]).unwrap_err();
        assert!(matches!(
            err,
            BuildGraphError::NodeOutOfRange { node: 2, n: 2 }
        ));
    }

    #[test]
    fn rejects_self_loop() {
        let err = WeightedGraph::from_edges(2, [(1, 1, 1)]).unwrap_err();
        assert!(matches!(err, BuildGraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn edges_iterates_canonical_sorted_triples() {
        let g = WeightedGraph::from_edges(4, [(3, 2, 4), (1, 0, 2), (2, 1, 3)]).unwrap();
        let edges: Vec<(NodeId, NodeId, Weight)> = g.edges().map(|e| (e.u, e.v, e.w)).collect();
        assert_eq!(edges, vec![(0, 1, 2), (1, 2, 3), (2, 3, 4)]);
        assert_eq!(g.edges().count(), g.m());
    }

    #[test]
    fn unweighted_view_resets_weights() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 5), (1, 2, 9)]).unwrap();
        let u = g.unweighted_view();
        assert_eq!(u.edge_weight(0, 1), Some(1));
        assert_eq!(u.edge_weight(1, 2), Some(1));
        assert_eq!(u.n(), 3);
        assert_eq!(u.max_weight(), 1);
    }

    #[test]
    fn map_weights_applies_function() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 4), (1, 2, 6)]).unwrap();
        let h = g.map_weights(|w| w / 2 + 1);
        assert_eq!(h.edge_weight(0, 1), Some(3));
        assert_eq!(h.edge_weight(1, 2), Some(4));
        assert_eq!(h.max_weight(), 4);
    }

    #[test]
    fn connectivity() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1)]).unwrap();
        assert!(!g.is_connected());
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        assert!(g.is_connected());
        let g = WeightedGraph::from_edges(1, []).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn neighbors_sorted_consistent_with_edges() {
        let g = WeightedGraph::from_edges(5, [(0, 4, 2), (0, 2, 3), (0, 1, 1)]).unwrap();
        let ns: Vec<_> = g.neighbors(0).collect();
        assert_eq!(ns, vec![(1, 1), (2, 3), (4, 2)]);
    }

    #[test]
    fn display_is_nonempty() {
        let g = WeightedGraph::from_edges(2, [(0, 1, 1)]).unwrap();
        assert!(!g.to_string().is_empty());
    }

    #[test]
    fn serialize_json_uses_canonical_edge_list() {
        let g = WeightedGraph::from_edges(3, [(2, 1, 3), (1, 0, 2)]).unwrap();
        assert_eq!(g.to_json(), r#"{"n":3,"edges":[[0,1,2],[1,2,3]]}"#);
    }

    #[test]
    fn induced_subgraph_filters_edges() {
        let g = WeightedGraph::from_edges(5, [(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5)]).unwrap();
        let keep = vec![true, true, true, false, false];
        let h = g.induced_subgraph(&keep);
        assert_eq!(h.n(), 5);
        assert_eq!(h.m(), 2);
        assert!(h.has_edge(0, 1) && h.has_edge(1, 2));
        assert!(!h.has_edge(2, 3));
        assert_eq!(h.degree(4), 0);
    }
}
