//! Versioned binary on-disk graph format with zero-copy mmap loading.
//!
//! The format (`WDRG`, version 1) lays a [`WeightedGraph`]'s CSR arrays out
//! flat so a graph file can be memory-mapped and used *in place* — load time
//! is `O(header)`, not `O(m)`:
//!
//! ```text
//! offset  size  field
//! ──────  ────  ─────────────────────────────────────────────
//!      0     8  magic  b"WDRGRAPH"
//!      8     4  format version (u32 LE) = 1
//!     12     4  endian marker (u32 LE) = 0x0A0B_0C0D
//!     16     8  n            (u64 LE)  node count
//!     24     8  m            (u64 LE)  undirected edge count
//!     32     8  max_weight   (u64 LE)  W = max_e w(e)
//!     40     8  digest       (u64 LE)  order-invariant GraphDigest
//!     48     8  entries      (u64 LE)  = 2m  (directed CSR entries)
//!     56     8  reserved     (u64 LE)  = 0
//!     64     …  offsets  (n+1) × u64 LE
//!      …     …  targets  entries × u64 LE
//!      …     …  weights  entries × u64 LE
//! ```
//!
//! Every section is 8-byte aligned (the header is exactly 64 bytes and each
//! array entry is 8 bytes), so on little-endian 64-bit targets the mapped
//! bytes are reinterpreted directly as the `&[usize]` / `&[u64]` slices the
//! kernels traverse. On other targets [`WeightedGraph::open_mmap`] silently
//! falls back to an owned `O(m)` read — results are identical, only the
//! zero-copy speedup is lost.
//!
//! # Safety invariants of the mapped path
//!
//! * The mapping is `PROT_READ`/`MAP_PRIVATE`: the arrays are never written
//!   through, and other processes' writes are not observed as tearing.
//! * Array starts are 8-aligned: `mmap` returns page-aligned bases and all
//!   section offsets are multiples of 8, so the `&[u64]` reinterpretation
//!   never reads misaligned.
//! * [`open_mmap`](WeightedGraph::open_mmap) validates the header and the
//!   exact file length before any slice is formed, so mapped slices never
//!   extend past the file. Truncating the file *while it is mapped* is
//!   undefined behavior at the OS level (SIGBUS); treat graph files as
//!   immutable once written, which [`write_graph`] guarantees by writing
//!   them in one pass.
//! * Header corruption is caught by typed errors; *content* corruption
//!   (e.g. a flipped target index) is detectable via
//!   [`WeightedGraph::open_mmap_verified`], which recomputes the digest
//!   in `O(m)`.
//!
//! # Examples
//!
//! ```
//! use congest_graph::{generators, io, WeightedGraph};
//! let dir = std::env::temp_dir().join("wdrg-doctest");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("path6.wdrg");
//! let g = generators::path(6, 2);
//! io::write_graph(&g, &path).unwrap();
//! let m = WeightedGraph::open_mmap(&path).unwrap();
//! assert_eq!(m, g);
//! assert_eq!(m.digest(), g.digest());
//! ```

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use crate::graph::{BuildGraphError, NodeId, Weight, WeightedGraph};

/// The 8-byte magic at offset 0 of every graph file.
pub const MAGIC: [u8; 8] = *b"WDRGRAPH";

/// The format version this build writes and accepts.
pub const FORMAT_VERSION: u32 = 1;

/// Marker pinning the file's byte order (always written little-endian).
const ENDIAN_MARKER: u32 = 0x0A0B_0C0D;

/// Fixed header size; the CSR sections start here (8-byte aligned).
pub const HEADER_BYTES: usize = 64;

/// Errors from reading or writing the binary graph format.
///
/// Every malformed input maps to a typed variant — no code path panics on
/// corrupted or truncated files (pinned by `tests/io_format.rs`).
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The first 8 bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// The version field actually found.
        found: u32,
    },
    /// The file is shorter than its header claims.
    Truncated {
        /// Bytes the header implies the file must hold.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// A header field or structural payload invariant is inconsistent.
    HeaderCorrupt {
        /// Which invariant failed.
        what: &'static str,
    },
    /// The recomputed content digest does not match the header digest.
    DigestMismatch {
        /// Digest stored in the header.
        header: u64,
        /// Digest recomputed from the CSR content.
        computed: u64,
    },
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "graph file i/o error: {e}"),
            GraphIoError::BadMagic { found } => {
                write!(f, "not a WDRG graph file (magic {found:02x?})")
            }
            GraphIoError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported graph format version {found} (expected {FORMAT_VERSION})"
                )
            }
            GraphIoError::Truncated { expected, found } => {
                write!(
                    f,
                    "graph file truncated: header implies {expected} bytes, found {found}"
                )
            }
            GraphIoError::HeaderCorrupt { what } => {
                write!(f, "graph file header corrupt: {what}")
            }
            GraphIoError::DigestMismatch { header, computed } => {
                write!(
                    f,
                    "graph content digest {computed:016x} does not match header {header:016x}"
                )
            }
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> GraphIoError {
        GraphIoError::Io(e)
    }
}

/// The parsed fixed-size header of a graph file.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct GraphHeader {
    /// Node count.
    pub n: u64,
    /// Undirected (canonical) edge count.
    pub m: u64,
    /// Maximum edge weight `W` (0 permitted only for edgeless graphs).
    pub max_weight: u64,
    /// Order-invariant [`crate::GraphDigest`] of the content.
    pub digest: u64,
    /// Directed CSR entries (`= 2m`).
    pub entries: u64,
}

impl GraphHeader {
    /// Total file size in bytes this header implies.
    pub fn file_bytes(&self) -> u64 {
        HEADER_BYTES as u64 + 8 * (self.n + 1) + 16 * self.entries
    }

    fn to_bytes(self) -> [u8; HEADER_BYTES] {
        let mut b = [0u8; HEADER_BYTES];
        b[0..8].copy_from_slice(&MAGIC);
        b[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        b[12..16].copy_from_slice(&ENDIAN_MARKER.to_le_bytes());
        b[16..24].copy_from_slice(&self.n.to_le_bytes());
        b[24..32].copy_from_slice(&self.m.to_le_bytes());
        b[32..40].copy_from_slice(&self.max_weight.to_le_bytes());
        b[40..48].copy_from_slice(&self.digest.to_le_bytes());
        b[48..56].copy_from_slice(&self.entries.to_le_bytes());
        b
    }

    fn parse(b: &[u8]) -> Result<GraphHeader, GraphIoError> {
        if b.len() < HEADER_BYTES {
            return Err(GraphIoError::Truncated {
                expected: HEADER_BYTES as u64,
                found: b.len() as u64,
            });
        }
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&b[0..8]);
        if magic != MAGIC {
            return Err(GraphIoError::BadMagic { found: magic });
        }
        let u32_at = |o: usize| u32::from_le_bytes(b[o..o + 4].try_into().expect("4 bytes"));
        let u64_at = |o: usize| u64::from_le_bytes(b[o..o + 8].try_into().expect("8 bytes"));
        let version = u32_at(8);
        if version != FORMAT_VERSION {
            return Err(GraphIoError::UnsupportedVersion { found: version });
        }
        if u32_at(12) != ENDIAN_MARKER {
            return Err(GraphIoError::HeaderCorrupt {
                what: "endian marker mismatch",
            });
        }
        let header = GraphHeader {
            n: u64_at(16),
            m: u64_at(24),
            max_weight: u64_at(32),
            digest: u64_at(40),
            entries: u64_at(48),
        };
        if header.entries != header.m.wrapping_mul(2) {
            return Err(GraphIoError::HeaderCorrupt {
                what: "entries != 2 * m",
            });
        }
        if header.m > 0 && header.max_weight == 0 {
            return Err(GraphIoError::HeaderCorrupt {
                what: "max_weight is 0 but edges exist",
            });
        }
        if header.n > (u64::MAX - HEADER_BYTES as u64) / 32 || header.entries > u64::MAX / 32 {
            return Err(GraphIoError::HeaderCorrupt {
                what: "size fields overflow",
            });
        }
        if b[56..HEADER_BYTES].iter().any(|&x| x != 0) {
            return Err(GraphIoError::HeaderCorrupt {
                what: "reserved bytes nonzero",
            });
        }
        Ok(header)
    }
}

/// Writes `g` to `path` in the binary format, in one buffered pass.
///
/// The header digest is `g.digest()` (recomputed here in `O(m)` so the file
/// is self-describing); [`WeightedGraph::open_mmap`] trusts it, giving
/// `O(header)` loads.
///
/// # Errors
///
/// Any filesystem error, as [`GraphIoError::Io`].
pub fn write_graph(g: &WeightedGraph, path: &Path) -> Result<(), GraphIoError> {
    let header = GraphHeader {
        n: g.n() as u64,
        m: g.m() as u64,
        max_weight: if g.m() == 0 { 0 } else { g.max_weight() },
        digest: g.recompute_digest().0,
        entries: g.csr_targets().len() as u64,
    };
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(&header.to_bytes())?;
    for &x in g.csr_offsets() {
        out.write_all(&(x as u64).to_le_bytes())?;
    }
    for &x in g.csr_targets() {
        out.write_all(&(x as u64).to_le_bytes())?;
    }
    for &x in g.csr_weights() {
        out.write_all(&x.to_le_bytes())?;
    }
    out.flush()?;
    Ok(())
}

/// Reads just the 64-byte header of a graph file.
///
/// # Errors
///
/// Typed [`GraphIoError`] variants for missing/short/corrupt headers.
pub fn read_header(path: &Path) -> Result<GraphHeader, GraphIoError> {
    let mut f = File::open(path)?;
    let mut buf = [0u8; HEADER_BYTES];
    let mut got = 0usize;
    while got < HEADER_BYTES {
        let k = f.read(&mut buf[got..])?;
        if k == 0 {
            return Err(GraphIoError::Truncated {
                expected: HEADER_BYTES as u64,
                found: got as u64,
            });
        }
        got += k;
    }
    GraphHeader::parse(&buf)
}

/// Reads a graph file into *owned* storage (`O(m)`, works on any target).
///
/// This is the portable fallback behind [`WeightedGraph::open_mmap`] and a
/// useful primitive in its own right (e.g. when the file lives on a
/// filesystem where mapping is undesirable).
///
/// # Errors
///
/// Typed [`GraphIoError`] variants; corrupted files never panic.
pub fn read_owned(path: &Path) -> Result<WeightedGraph, GraphIoError> {
    let mut f = File::open(path)?;
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    let header = GraphHeader::parse(&bytes)?;
    check_len(&header, bytes.len() as u64)?;
    let n = header.n as usize;
    let entries = header.entries as usize;
    let words = |start: usize, len: usize| -> Vec<u64> {
        bytes[start..start + 8 * len]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect()
    };
    let offsets64 = words(HEADER_BYTES, n + 1);
    let targets64 = words(HEADER_BYTES + 8 * (n + 1), entries);
    let weights = words(HEADER_BYTES + 8 * (n + 1) + 8 * entries, entries);
    validate_offsets_prefix(&offsets64, entries as u64)?;
    let offsets: Vec<usize> = offsets64.iter().map(|&x| x as usize).collect();
    let targets: Vec<NodeId> = targets64.iter().map(|&x| x as usize).collect();
    Ok(WeightedGraph::from_owned_csr(offsets, targets, weights))
}

fn check_len(header: &GraphHeader, found: u64) -> Result<(), GraphIoError> {
    let expected = header.file_bytes();
    if found != expected {
        return Err(GraphIoError::Truncated { expected, found });
    }
    Ok(())
}

/// `O(1)` structural check on the offsets array: first entry 0, last entry
/// equal to the directed entry count. (Full monotonicity would be `O(n)`,
/// defeating the `O(header)` load contract; content-level corruption is the
/// verified-open's job.)
fn validate_offsets_prefix(offsets: &[u64], entries: u64) -> Result<(), GraphIoError> {
    if offsets.first() != Some(&0) {
        return Err(GraphIoError::HeaderCorrupt {
            what: "offsets[0] != 0",
        });
    }
    if offsets.last() != Some(&entries) {
        return Err(GraphIoError::HeaderCorrupt {
            what: "offsets[n] != entries",
        });
    }
    Ok(())
}

impl WeightedGraph {
    /// Opens a graph file with memory-mapped (zero-copy) storage.
    ///
    /// Load time is `O(header)`: the header is validated, the file length
    /// checked against it, and the CSR arrays are *borrowed* from the
    /// mapping — no per-edge work happens until a kernel touches them. The
    /// header digest is trusted (it becomes [`WeightedGraph::digest`]);
    /// use [`Self::open_mmap_verified`] to pay `O(m)` for recomputation.
    ///
    /// On targets that are not little-endian 64-bit (or where mapping
    /// fails), this transparently falls back to an owned `O(m)` read with
    /// identical results.
    ///
    /// # Errors
    ///
    /// Typed [`GraphIoError`] variants; corrupted files never panic.
    pub fn open_mmap(path: &Path) -> Result<WeightedGraph, GraphIoError> {
        #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
        {
            let file = File::open(path)?;
            let map = sys::Mmap::map_file(&file)?;
            let header = GraphHeader::parse(map.bytes())?;
            check_len(&header, map.len() as u64)?;
            let mapped = MappedCsr::new(map, header)?;
            Ok(WeightedGraph::from_mapped(Arc::new(mapped)))
        }
        #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
        {
            read_owned(path)
        }
    }

    /// [`open_mmap`](WeightedGraph::open_mmap) plus full `O(n + m)` content
    /// validation: structural payload checks and a content-digest
    /// recomputation against the header.
    ///
    /// # Errors
    ///
    /// Everything `open_mmap` returns, plus
    /// [`GraphIoError::HeaderCorrupt`] for structural payload corruption
    /// (non-monotone offsets, out-of-range targets, a header `max_weight`
    /// the weights don't attain) and [`GraphIoError::DigestMismatch`] when
    /// the CSR content does not hash to the header digest.
    pub fn open_mmap_verified(path: &Path) -> Result<WeightedGraph, GraphIoError> {
        let header = read_header(path)?;
        let g = WeightedGraph::open_mmap(path)?;
        // Structural validation first: the O(header) open only checks the
        // offsets endpoints, so interior corruption must be ruled out here
        // before anything walks the rows (a slice panic is not a typed
        // error), and the digest does not cover `max_weight`.
        if g.csr_offsets().windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphIoError::HeaderCorrupt {
                what: "offsets array not monotone",
            });
        }
        let n = g.n();
        if g.csr_targets().iter().any(|&t| t >= n) {
            return Err(GraphIoError::HeaderCorrupt {
                what: "target index out of range",
            });
        }
        let max = g.csr_weights().iter().copied().max().unwrap_or(0);
        if max != header.max_weight {
            return Err(GraphIoError::HeaderCorrupt {
                what: "max_weight does not match content",
            });
        }
        let computed = g.recompute_digest().0;
        if computed != header.digest {
            return Err(GraphIoError::DigestMismatch {
                header: header.digest,
                computed,
            });
        }
        Ok(g)
    }

    /// Writes this graph to `path` in the binary format.
    ///
    /// # Errors
    ///
    /// Same as [`write_graph`].
    pub fn write_binary(&self, path: &Path) -> Result<(), GraphIoError> {
        write_graph(self, path)
    }
}

/// CSR arrays borrowed zero-copy from a memory-mapped graph file.
///
/// Constructed only on little-endian 64-bit targets (where `u64` file words
/// reinterpret directly as `usize`); [`WeightedGraph::open_mmap`] falls back
/// to owned storage elsewhere.
pub struct MappedCsr {
    map: sys::Mmap,
    header: GraphHeader,
}

impl MappedCsr {
    #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
    fn new(map: sys::Mmap, header: GraphHeader) -> Result<MappedCsr, GraphIoError> {
        let this = MappedCsr { map, header };
        validate_offsets_prefix(
            &[
                this.offsets()[0] as u64,
                *this.offsets().last().expect("n+1 >= 1") as u64,
            ],
            header.entries,
        )?;
        Ok(this)
    }

    /// The parsed file header.
    pub(crate) fn header(&self) -> &GraphHeader {
        &self.header
    }

    #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
    #[inline]
    fn words(&self, byte_off: usize, len: usize) -> &[u64] {
        self.map.words(byte_off, len)
    }

    /// The `n + 1` row offsets.
    #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
    #[inline]
    pub(crate) fn offsets(&self) -> &[usize] {
        let w = self.words(HEADER_BYTES, self.header.n as usize + 1);
        // SAFETY: on 64-bit targets `usize` and `u64` have identical size
        // and alignment; the slice stays within the mapping.
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts(w.as_ptr().cast::<usize>(), w.len())
        }
    }

    /// The directed neighbor entries.
    #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
    #[inline]
    pub(crate) fn targets(&self) -> &[NodeId] {
        let start = HEADER_BYTES + 8 * (self.header.n as usize + 1);
        let w = self.words(start, self.header.entries as usize);
        // SAFETY: as in `offsets`.
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts(w.as_ptr().cast::<usize>(), w.len())
        }
    }

    /// The directed weight entries.
    #[cfg(all(target_endian = "little", target_pointer_width = "64"))]
    #[inline]
    pub(crate) fn weights(&self) -> &[Weight] {
        let start =
            HEADER_BYTES + 8 * (self.header.n as usize + 1) + 8 * self.header.entries as usize;
        self.words(start, self.header.entries as usize)
    }

    #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
    pub(crate) fn offsets(&self) -> &[usize] {
        unreachable!("mapped storage is only constructed on little-endian 64-bit targets")
    }

    #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
    pub(crate) fn targets(&self) -> &[NodeId] {
        unreachable!("mapped storage is only constructed on little-endian 64-bit targets")
    }

    #[cfg(not(all(target_endian = "little", target_pointer_width = "64")))]
    pub(crate) fn weights(&self) -> &[Weight] {
        unreachable!("mapped storage is only constructed on little-endian 64-bit targets")
    }
}

impl fmt::Debug for MappedCsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MappedCsr")
            .field("n", &self.header.n)
            .field("m", &self.header.m)
            .field("bytes", &self.map.len())
            .finish()
    }
}

/// The tiny vendored-only mmap shim: raw `libc::mmap`/`munmap` through
/// hand-declared `extern "C"` bindings (no crates.io dependency), with a
/// heap-buffer fallback for non-unix targets or mapping failures.
mod sys {
    #![allow(unsafe_code)]

    use std::fs::File;
    use std::io::Read;

    /// A read-only byte region: an OS memory mapping where available, an
    /// 8-byte-aligned heap copy otherwise. Either way `words`/`bytes` views
    /// are 8-aligned, which the zero-copy CSR reinterpretation relies on.
    pub(super) struct Mmap {
        inner: Inner,
    }

    enum Inner {
        #[cfg(unix)]
        Os {
            ptr: *mut core::ffi::c_void,
            len: usize,
        },
        /// `Vec<u64>` (not `Vec<u8>`) so the base is 8-byte aligned.
        Heap { words: Vec<u64>, len: usize },
    }

    // SAFETY: the region is immutable for the mapping's lifetime and freed
    // exactly once in `Drop`; sharing read-only pages across threads is safe.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    #[cfg(unix)]
    mod ffi {
        use core::ffi::{c_int, c_void};

        pub const PROT_READ: c_int = 0x1;
        pub const MAP_PRIVATE: c_int = 0x2;

        extern "C" {
            pub fn mmap(
                addr: *mut c_void,
                len: usize,
                prot: c_int,
                flags: c_int,
                fd: c_int,
                offset: i64,
            ) -> *mut c_void;
            pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        }
    }

    impl Mmap {
        /// Maps `file` read-only. Falls back to a heap read if the target
        /// has no `mmap` or the call fails (empty files always use the heap
        /// path — `mmap(len = 0)` is `EINVAL`).
        pub(super) fn map_file(file: &File) -> std::io::Result<Mmap> {
            let len = file.metadata()?.len();
            let len = usize::try_from(len).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
            })?;
            #[cfg(unix)]
            if len > 0 {
                use std::os::unix::io::AsRawFd;
                // SAFETY: fd is a valid open file; we request a fresh
                // read-only private mapping of exactly `len` bytes.
                let ptr = unsafe {
                    ffi::mmap(
                        std::ptr::null_mut(),
                        len,
                        ffi::PROT_READ,
                        ffi::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr as isize != -1 {
                    return Ok(Mmap {
                        inner: Inner::Os { ptr, len },
                    });
                }
            }
            Mmap::read_heap(file, len)
        }

        fn read_heap(file: &File, len: usize) -> std::io::Result<Mmap> {
            let mut bytes = Vec::with_capacity(len);
            let mut f = file;
            f.read_to_end(&mut bytes)?;
            let mut words = vec![0u64; bytes.len().div_ceil(8)];
            for (i, chunk) in bytes.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b[..chunk.len()].copy_from_slice(chunk);
                // On the little-endian targets that reinterpret these words
                // this reproduces the raw file bytes exactly.
                words[i] = u64::from_le_bytes(b);
            }
            Ok(Mmap {
                inner: Inner::Heap {
                    words,
                    len: bytes.len(),
                },
            })
        }

        pub(super) fn len(&self) -> usize {
            match &self.inner {
                #[cfg(unix)]
                Inner::Os { len, .. } => *len,
                Inner::Heap { len, .. } => *len,
            }
        }

        fn base(&self) -> *const u8 {
            match &self.inner {
                #[cfg(unix)]
                Inner::Os { ptr, .. } => ptr.cast::<u8>().cast_const(),
                Inner::Heap { words, .. } => words.as_ptr().cast::<u8>(),
            }
        }

        /// The whole region as bytes.
        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: `base()` points at `len()` readable bytes for `self`'s
            // lifetime (OS mapping or backing Vec).
            unsafe { std::slice::from_raw_parts(self.base(), self.len()) }
        }

        /// `len` u64 words starting at `byte_off` (must be 8-aligned and in
        /// bounds — callers validate against the parsed header first).
        pub(super) fn words(&self, byte_off: usize, len: usize) -> &[u64] {
            assert!(byte_off.is_multiple_of(8), "unaligned word offset");
            let end = byte_off
                .checked_add(len.checked_mul(8).expect("word length overflow"))
                .expect("word range overflow");
            assert!(end <= self.len(), "word range out of bounds");
            // SAFETY: range checked above; base is 8-aligned (page-aligned
            // mapping or Vec<u64>), so `base + byte_off` is 8-aligned.
            unsafe { std::slice::from_raw_parts(self.base().add(byte_off).cast::<u64>(), len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            #[cfg(unix)]
            if let Inner::Os { ptr, len } = self.inner {
                // SAFETY: `ptr`/`len` came from a successful mmap and are
                // unmapped exactly once.
                unsafe {
                    ffi::munmap(ptr, len);
                }
            }
        }
    }
}

/// Errors from the streaming [`GraphWriter`] pipeline.
#[derive(Debug)]
pub enum StreamBuildError {
    /// An emitted edge failed [`GraphBuilder`](crate::GraphBuilder)-style
    /// validation (out-of-range node, zero weight, self-loop).
    Graph(BuildGraphError),
    /// The emitter did not replay the same edge count across the counting
    /// and filling passes (it must be deterministic).
    ReplayMismatch {
        /// Edges seen in the counting pass.
        counted: u64,
        /// Edges seen in the filling pass.
        filled: u64,
    },
}

impl fmt::Display for StreamBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamBuildError::Graph(e) => write!(f, "{e}"),
            StreamBuildError::ReplayMismatch { counted, filled } => write!(
                f,
                "edge emitter is not replayable: counted {counted} edges, refilled {filled}"
            ),
        }
    }
}

impl std::error::Error for StreamBuildError {}

impl From<BuildGraphError> for StreamBuildError {
    fn from(e: BuildGraphError) -> StreamBuildError {
        StreamBuildError::Graph(e)
    }
}

/// Streaming CSR assembler: edges flow in twice (count pass, fill pass) and
/// come out as a finished [`WeightedGraph`] — no intermediate `Vec<Edge>`.
///
/// Peak memory is the final CSR plus one reusable row-sort scratch, roughly
/// a third of what [`GraphBuilder`](crate::GraphBuilder) needs at the same
/// size (which keeps the canonical edge list alive alongside the CSR while
/// building). Parallel edges are merged to the minimum weight, exactly like
/// the builder.
///
/// Most callers want [`build_streamed`], which drives the two passes from a
/// replayable emitter closure; [`crate::generators::stream`] is built on it.
pub struct GraphWriter {
    n: usize,
    filling: bool,
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<Weight>,
    counted: u64,
    filled: u64,
    error: Option<BuildGraphError>,
}

impl GraphWriter {
    /// Starts the counting pass for an `n`-node graph.
    pub fn new(n: usize) -> GraphWriter {
        GraphWriter {
            n,
            filling: false,
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: Vec::new(),
            counted: 0,
            filled: 0,
            error: None,
        }
    }

    /// Feeds one undirected edge to the current pass.
    ///
    /// Invalid edges are recorded and surface as an error from
    /// [`start_fill`](GraphWriter::start_fill) / [`finish`](GraphWriter::finish);
    /// this method never panics on bad input.
    pub fn edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        if self.error.is_some() {
            return;
        }
        if u >= self.n || v >= self.n {
            self.error = Some(BuildGraphError::NodeOutOfRange {
                node: u.max(v),
                n: self.n,
            });
            return;
        }
        if w == 0 {
            self.error = Some(BuildGraphError::ZeroWeight { edge: (u, v) });
            return;
        }
        if u == v {
            self.error = Some(BuildGraphError::SelfLoop { node: u });
            return;
        }
        if self.filling {
            self.filled += 1;
            if self.filled > self.counted {
                // Over-emission: drop on the floor; finish() reports the
                // replay mismatch. Writing would run past the arrays.
                return;
            }
            let cu = self.offsets[u];
            self.targets[cu] = v;
            self.weights[cu] = w;
            self.offsets[u] += 1;
            let cv = self.offsets[v];
            self.targets[cv] = u;
            self.weights[cv] = w;
            self.offsets[v] += 1;
        } else {
            self.counted += 1;
            self.offsets[u + 1] += 1;
            self.offsets[v + 1] += 1;
        }
    }

    /// Ends the counting pass: allocates the CSR arrays and switches to the
    /// filling pass. The emitter must now replay the identical edges.
    ///
    /// # Errors
    ///
    /// The first validation error recorded during counting.
    pub fn start_fill(&mut self) -> Result<(), StreamBuildError> {
        if let Some(e) = self.error.take() {
            return Err(e.into());
        }
        for i in 1..=self.n {
            self.offsets[i] += self.offsets[i - 1];
        }
        let total = self.offsets[self.n];
        self.targets = vec![0; total];
        self.weights = vec![0; total];
        // After the prefix sum, offsets[v] is already row v's start and
        // doubles as its write cursor; filling advances it to row v's end
        // == row (v+1)'s start, which finish() undoes with a right shift.
        self.filling = true;
        Ok(())
    }

    /// Ends the filling pass: sorts each row, merges parallel edges to the
    /// minimum weight, and produces the graph.
    ///
    /// # Errors
    ///
    /// Validation errors from either pass, or
    /// [`StreamBuildError::ReplayMismatch`] if the two passes disagreed.
    pub fn finish(mut self) -> Result<WeightedGraph, StreamBuildError> {
        if let Some(e) = self.error.take() {
            return Err(e.into());
        }
        if !self.filling || self.filled != self.counted {
            return Err(StreamBuildError::ReplayMismatch {
                counted: self.counted,
                filled: self.filled,
            });
        }
        // Restore row starts (each offsets[v] advanced to its row end).
        for i in (1..=self.n).rev() {
            self.offsets[i] = self.offsets[i - 1];
        }
        self.offsets[0] = 0;

        // Per-row sort + parallel-edge merge, compacting in place. Rows are
        // processed in order with a single write cursor, so only one scratch
        // buffer (reused across rows) is needed.
        let mut scratch: Vec<(NodeId, Weight)> = Vec::new();
        let mut write = 0usize;
        let mut row_start = 0usize;
        for v in 0..self.n {
            let row_end = self.offsets[v + 1];
            scratch.clear();
            scratch.extend(
                self.targets[row_start..row_end]
                    .iter()
                    .copied()
                    .zip(self.weights[row_start..row_end].iter().copied()),
            );
            scratch.sort_unstable();
            self.offsets[v] = write;
            let mut last: Option<NodeId> = None;
            for &(t, w) in &scratch {
                if last == Some(t) {
                    continue; // parallel edge; first (t, w) pair is minimal
                }
                self.targets[write] = t;
                self.weights[write] = w;
                write += 1;
                last = Some(t);
            }
            row_start = row_end;
        }
        self.offsets[self.n] = write;
        self.targets.truncate(write);
        self.weights.truncate(write);
        Ok(WeightedGraph::from_owned_csr(
            self.offsets,
            self.targets,
            self.weights,
        ))
    }
}

/// Builds a graph by replaying a deterministic edge emitter twice through a
/// [`GraphWriter`] — the streaming analogue of
/// [`WeightedGraph::from_edges`], with no `Vec<Edge>` ever materialized.
///
/// `emit` is called twice with an edge sink and must produce the identical
/// edge sequence both times (e.g. by reseeding a PRNG from a fixed seed).
///
/// # Errors
///
/// Same as [`GraphWriter::finish`].
///
/// # Examples
///
/// ```
/// use congest_graph::io::build_streamed;
/// let g = build_streamed(4, |sink| {
///     for v in 1..4usize {
///         sink(v - 1, v, 2);
///     }
/// })
/// .unwrap();
/// assert_eq!((g.n(), g.m()), (4, 3));
/// ```
pub fn build_streamed(
    n: usize,
    mut emit: impl FnMut(&mut dyn FnMut(NodeId, NodeId, Weight)),
) -> Result<WeightedGraph, StreamBuildError> {
    let mut writer = GraphWriter::new(n);
    emit(&mut |u, v, w| writer.edge(u, v, w));
    writer.start_fill()?;
    emit(&mut |u, v, w| writer.edge(u, v, w));
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("congest-graph-io-tests");
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir.join(name)
    }

    #[test]
    fn round_trip_mmap_and_owned() {
        let g = generators::grid(7, 9, 5);
        let path = tmp("grid.wdrg");
        write_graph(&g, &path).unwrap();

        let header = read_header(&path).unwrap();
        assert_eq!(header.n, g.n() as u64);
        assert_eq!(header.m, g.m() as u64);
        assert_eq!(header.digest, g.digest().0);

        let mapped = WeightedGraph::open_mmap(&path).unwrap();
        assert_eq!(mapped, g);
        assert_eq!(mapped.digest(), g.digest());
        assert_eq!(mapped.max_weight(), g.max_weight());

        let owned = read_owned(&path).unwrap();
        assert_eq!(owned, g);
        assert_eq!(owned.digest(), g.digest());

        let verified = WeightedGraph::open_mmap_verified(&path).unwrap();
        assert_eq!(verified, g);
    }

    #[test]
    fn empty_and_edgeless_graphs_round_trip() {
        for (name, g) in [
            ("empty.wdrg", WeightedGraph::from_edges(0, []).unwrap()),
            ("lonely.wdrg", WeightedGraph::from_edges(3, []).unwrap()),
        ] {
            let path = tmp(name);
            write_graph(&g, &path).unwrap();
            let m = WeightedGraph::open_mmap_verified(&path).unwrap();
            assert_eq!(m, g);
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let path = tmp("magic.wdrg");
        std::fs::write(
            &path,
            b"NOTAGRPH________________________________________________________",
        )
        .unwrap();
        assert!(matches!(
            read_header(&path),
            Err(GraphIoError::BadMagic { .. })
        ));
        assert!(matches!(
            WeightedGraph::open_mmap(&path),
            Err(GraphIoError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncated_file_is_typed() {
        let g = generators::path(20, 3);
        let path = tmp("trunc.wdrg");
        write_graph(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 5, HEADER_BYTES - 1, HEADER_BYTES, bytes.len() - 8] {
            let path = tmp("trunc-cut.wdrg");
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = WeightedGraph::open_mmap(&path).unwrap_err();
            assert!(
                matches!(err, GraphIoError::Truncated { .. }),
                "cut={cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn writer_merges_parallel_edges_like_builder() {
        let g = build_streamed(3, |sink| {
            sink(0, 1, 9);
            sink(1, 0, 4);
            sink(1, 2, 2);
            sink(0, 1, 7);
        })
        .unwrap();
        let reference =
            WeightedGraph::from_edges(3, [(0, 1, 9), (1, 0, 4), (1, 2, 2), (0, 1, 7)]).unwrap();
        assert_eq!(g, reference);
        assert_eq!(g.edge_weight(0, 1), Some(4));
    }

    #[test]
    fn writer_reports_validation_errors() {
        let bad = build_streamed(3, |sink| sink(0, 3, 1));
        assert!(matches!(
            bad,
            Err(StreamBuildError::Graph(
                BuildGraphError::NodeOutOfRange { .. }
            ))
        ));
        let bad = build_streamed(3, |sink| sink(0, 1, 0));
        assert!(matches!(
            bad,
            Err(StreamBuildError::Graph(BuildGraphError::ZeroWeight { .. }))
        ));
        let bad = build_streamed(3, |sink| sink(2, 2, 1));
        assert!(matches!(
            bad,
            Err(StreamBuildError::Graph(BuildGraphError::SelfLoop { .. }))
        ));
    }

    #[test]
    fn writer_detects_non_replayable_emitters() {
        let mut calls = 0;
        let bad = build_streamed(4, |sink| {
            calls += 1;
            for v in 1..(if calls == 1 { 4 } else { 3 }) {
                sink(v - 1, v, 1);
            }
        });
        assert!(matches!(bad, Err(StreamBuildError::ReplayMismatch { .. })));

        let mut calls = 0;
        let bad = build_streamed(4, |sink| {
            calls += 1;
            for v in 1..(if calls == 1 { 3 } else { 4 }) {
                sink(v - 1, v, 1);
            }
        });
        assert!(matches!(bad, Err(StreamBuildError::ReplayMismatch { .. })));
    }
}
