//! Flat all-pairs distance matrix.
//!
//! The reference APSP routines used to return `Vec<Vec<Dist>>` — `n + 1`
//! separate heap allocations with rows scattered across the heap.
//! [`DistMatrix`] stores the same `n × n` table row-major in one allocation,
//! so Floyd–Warshall's inner loop walks contiguous memory and consumers
//! index it exactly like the nested vectors they replaced (`m[u][v]` still
//! works via `Index<usize> → &[Dist]`).

use crate::dist::Dist;
use crate::graph::NodeId;
use std::ops::{Index, IndexMut};

/// A dense `n × n` distance table in one flat, row-major allocation.
///
/// `m[u]` is the distance row of source `u` (a `&[Dist]` of length `n`), and
/// `m[(u, v)]` is the single entry `d(u, v)`, so code written against the old
/// `Vec<Vec<Dist>>` result keeps compiling unchanged.
///
/// # Examples
///
/// ```
/// use congest_graph::{generators, shortest_path, Dist};
/// let g = generators::path(4, 2);
/// let apsp = shortest_path::apsp(&g);
/// assert_eq!(apsp[0][3], Dist::from(6u64));
/// assert_eq!(apsp[(3, 0)], Dist::from(6u64));
/// assert_eq!(apsp.n(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DistMatrix {
    n: usize,
    data: Vec<Dist>,
}

impl DistMatrix {
    /// Creates an `n × n` matrix with every entry set to `fill`.
    pub fn filled(n: usize, fill: Dist) -> DistMatrix {
        DistMatrix {
            n,
            data: vec![fill; n * n],
        }
    }

    /// The number of nodes (the matrix is `n × n`).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The distance row of source `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[inline]
    pub fn row(&self, u: NodeId) -> &[Dist] {
        &self.data[u * self.n..(u + 1) * self.n]
    }

    /// Mutable access to the distance row of source `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[inline]
    pub fn row_mut(&mut self, u: NodeId) -> &mut [Dist] {
        &mut self.data[u * self.n..(u + 1) * self.n]
    }

    /// Iterator over `(source, row)` pairs in node order.
    pub fn rows(&self) -> impl Iterator<Item = (NodeId, &[Dist])> + '_ {
        self.data.chunks_exact(self.n.max(1)).enumerate()
    }

    /// The whole table as one flat row-major slice (row of node 0 first).
    #[inline]
    pub fn as_flat(&self) -> &[Dist] {
        &self.data
    }
}

impl Index<NodeId> for DistMatrix {
    type Output = [Dist];

    #[inline]
    fn index(&self, u: NodeId) -> &[Dist] {
        self.row(u)
    }
}

impl Index<(NodeId, NodeId)> for DistMatrix {
    type Output = Dist;

    #[inline]
    fn index(&self, (u, v): (NodeId, NodeId)) -> &Dist {
        &self.data[u * self.n + v]
    }
}

impl IndexMut<(NodeId, NodeId)> for DistMatrix {
    #[inline]
    fn index_mut(&mut self, (u, v): (NodeId, NodeId)) -> &mut Dist {
        &mut self.data[u * self.n + v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_index() {
        let mut m = DistMatrix::filled(3, Dist::INFINITY);
        assert_eq!(m.n(), 3);
        m[(0, 2)] = Dist::from(5u64);
        assert_eq!(m[(0, 2)], Dist::from(5u64));
        assert_eq!(m[0][2], Dist::from(5u64));
        assert_eq!(m.row(0)[2], Dist::from(5u64));
        assert_eq!(m[(2, 0)], Dist::INFINITY);
        assert_eq!(m.as_flat().len(), 9);
    }

    #[test]
    fn rows_iterate_in_node_order() {
        let mut m = DistMatrix::filled(2, Dist::ZERO);
        m[(1, 0)] = Dist::from(7u64);
        let rows: Vec<_> = m.rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, 0);
        assert_eq!(rows[1].1[0], Dist::from(7u64));
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = DistMatrix::filled(2, Dist::ZERO);
        m.row_mut(1)[1] = Dist::from(9u64);
        assert_eq!(m[(1, 1)], Dist::from(9u64));
    }
}
