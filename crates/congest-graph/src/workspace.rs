//! Reusable single-source shortest-path scratch space.
//!
//! Every multi-source loop in the workspace — eccentricity sweeps, skeleton
//! overlay construction, hop-bounded reference tables — used to allocate a
//! fresh distance vector, heap, and frontier per source. [`SsspWorkspace`]
//! owns all of that scratch once: the `*_into` methods reset it in `O(n)`
//! (no heap traffic after warm-up) and run the search in place, so an
//! `n`-source sweep performs zero steady-state allocations. The
//! `kernel_alloc` integration test pins that claim with a counting global
//! allocator.
//!
//! Two priority-queue strategies sit behind [`SsspWorkspace::dijkstra_into`]:
//! a binary heap (general weights) and a Dial-style circular bucket queue
//! used automatically when the maximum edge weight is small
//! ([`DIAL_MAX_WEIGHT`]). Both produce exactly the same distances — Dijkstra
//! settles exact values regardless of queue discipline — which the unit
//! tests here pin.

use crate::dist::Dist;
use crate::graph::{CsrGraph, NodeId, Weight};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Largest maximum edge weight for which [`SsspWorkspace::dijkstra_into`]
/// uses the Dial bucket queue instead of a binary heap.
///
/// With maximum weight `C`, Dial needs `C + 1` circular buckets and pays
/// `O(m + n·C)` total; for the small integer weights the experiments use
/// (`W ≤ 8` on most workloads) that handily beats the heap's `O(m log n)`.
pub const DIAL_MAX_WEIGHT: Weight = 128;

/// Zero-cost run counters of an [`SsspWorkspace`]: which kernel each search
/// dispatched to and how much queue work it did.
///
/// Updated with plain integer increments inside the kernels (no atomics, no
/// heap — the `kernel_alloc` pin covers the instrumented paths), read back
/// with [`SsspWorkspace::counters`], and flushed into a metrics registry
/// with [`KernelCounters::record`]. Counters accumulate across searches for
/// the lifetime of the workspace; [`SsspWorkspace::reset_counters`] zeroes
/// them between measured sections.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Searches the [`SsspWorkspace::dijkstra_into`] dispatcher (or a direct
    /// call) ran on the Dial bucket queue.
    pub dial_runs: u64,
    /// Searches run on the binary heap (including mapped-weight searches).
    pub heap_runs: u64,
    /// BFS (topology) searches.
    pub bfs_runs: u64,
    /// Hop-tracking Dijkstra searches.
    pub hop_dijkstra_runs: u64,
    /// Hop-bounded Bellman–Ford searches (one per `hop_bounded_into` call,
    /// however many sweeps it converged in).
    pub bellman_runs: u64,
    /// Nodes popped from a binary heap (both plain and hop-tracking,
    /// including stale lazy-deletion entries).
    pub heap_pops: u64,
    /// Nodes popped from Dial buckets (including stale entries).
    pub bucket_pops: u64,
    /// Successful edge relaxations (a distance label improved) across every
    /// kernel.
    pub relaxations: u64,
}

impl KernelCounters {
    /// Total searches run, over every kernel.
    pub fn total_runs(&self) -> u64 {
        self.dial_runs + self.heap_runs + self.bfs_runs + self.hop_dijkstra_runs + self.bellman_runs
    }

    /// Adds this snapshot to `{prefix}.{counter}` metrics in `registry`
    /// (registering them on first use) — typically called once after a
    /// measured section, so per-search paths stay free of atomics.
    pub fn record(&self, registry: &wdr_metrics::MetricsRegistry, prefix: &str) {
        for (name, value) in [
            ("dial_runs", self.dial_runs),
            ("heap_runs", self.heap_runs),
            ("bfs_runs", self.bfs_runs),
            ("hop_dijkstra_runs", self.hop_dijkstra_runs),
            ("bellman_runs", self.bellman_runs),
            ("heap_pops", self.heap_pops),
            ("bucket_pops", self.bucket_pops),
            ("relaxations", self.relaxations),
        ] {
            registry.counter(&format!("{prefix}.{name}")).add(value);
        }
    }
}

/// Reusable scratch buffers for single-source shortest-path runs.
///
/// Create one per long-lived loop and feed it to the `*_into` methods; all
/// buffers are grown on first use and reused afterwards. Results are
/// returned as borrows of the workspace, so copy them out (or fold them
/// down, as the eccentricity sweeps do) before the next call.
///
/// # Examples
///
/// ```
/// use congest_graph::{generators, Dist, SsspWorkspace};
/// let g = generators::cycle(6, 2);
/// let mut ws = SsspWorkspace::new();
/// let mut ecc = Dist::ZERO;
/// for v in g.nodes() {
///     let d = ws.dijkstra_into(&g, v);
///     ecc = ecc.max(d.iter().copied().max().unwrap());
/// }
/// assert_eq!(ecc, Dist::from(6u64)); // cycle diameter 3 · weight 2
/// ```
#[derive(Clone, Debug, Default)]
pub struct SsspWorkspace {
    dist: Vec<Dist>,
    hops: Vec<usize>,
    prev: Vec<Dist>,
    heap: BinaryHeap<Reverse<(Dist, NodeId)>>,
    hop_heap: BinaryHeap<Reverse<(Dist, usize, NodeId)>>,
    /// u64-word bitset BFS frontiers (current level / next level). A dense
    /// level touches one bit per node instead of a `Vec<NodeId>` push, and
    /// swapping levels is a pointer swap + word fill.
    cur_bits: Vec<u64>,
    next_bits: Vec<u64>,
    buckets: Vec<Vec<NodeId>>,
    counters: KernelCounters,
}

/// Grows `bits` to at least `words` u64 words and zeroes the live prefix.
fn reset_bits(bits: &mut Vec<u64>, words: usize) {
    if bits.len() < words {
        bits.resize(words, 0);
    }
    bits[..words].fill(0);
}

impl SsspWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> SsspWorkspace {
        SsspWorkspace::default()
    }

    /// The accumulated [`KernelCounters`] of every search run so far.
    pub fn counters(&self) -> KernelCounters {
        self.counters
    }

    /// Zeroes the [`KernelCounters`] (scratch buffers keep their capacity).
    pub fn reset_counters(&mut self) {
        self.counters = KernelCounters::default();
    }

    /// Resets the distance buffer for an `n`-node run.
    fn reset_dist(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, Dist::INFINITY);
        }
        self.dist[..n].fill(Dist::INFINITY);
    }

    /// Dijkstra from `s`, writing into the reusable distance buffer.
    ///
    /// Picks the Dial bucket queue when `g.max_weight() <= DIAL_MAX_WEIGHT`,
    /// the binary heap otherwise; the produced distances are identical.
    ///
    /// Generic over [`CsrGraph`], so it runs on [`crate::WeightedGraph`]
    /// (owned or memory-mapped) and [`crate::CompactGraph`] alike.
    ///
    /// # Panics
    ///
    /// Panics if `s >= g.n()`.
    pub fn dijkstra_into<G: CsrGraph>(&mut self, g: &G, s: NodeId) -> &[Dist] {
        if g.max_weight() <= DIAL_MAX_WEIGHT {
            self.dial_into(g, s)
        } else {
            self.dijkstra_heap_into(g, s)
        }
    }

    /// Heap-based Dijkstra from `s` (always available; used directly by the
    /// mapped-weight variant where the effective maximum weight is unknown).
    ///
    /// # Panics
    ///
    /// Panics if `s >= g.n()`.
    pub fn dijkstra_heap_into<G: CsrGraph>(&mut self, g: &G, s: NodeId) -> &[Dist] {
        self.dijkstra_mapped_into(g, s, |w| w)
    }

    /// Dijkstra from `s` under on-the-fly re-weighted edges: edge weight `w`
    /// is replaced by `f(w)` during relaxation, with no intermediate graph
    /// materialized. This is what lets the rounding scheme of Lemma 3.2 run
    /// one search per scale without cloning the graph per scale.
    ///
    /// # Panics
    ///
    /// Panics if `s >= g.n()` or `f` produces a zero weight.
    pub fn dijkstra_mapped_into<G: CsrGraph>(
        &mut self,
        g: &G,
        s: NodeId,
        mut f: impl FnMut(Weight) -> Weight,
    ) -> &[Dist] {
        let n = g.n();
        assert!(s < n, "source {s} out of range");
        self.counters.heap_runs += 1;
        self.reset_dist(n);
        self.heap.clear();
        // Split borrows so the relaxation closure can write dist/heap while
        // `g` is borrowed by `for_each_neighbor`.
        let dist = &mut self.dist;
        let heap = &mut self.heap;
        let counters = &mut self.counters;
        dist[s] = Dist::ZERO;
        heap.push(Reverse((Dist::ZERO, s)));
        while let Some(Reverse((d, v))) = heap.pop() {
            counters.heap_pops += 1;
            if d > dist[v] {
                continue;
            }
            g.for_each_neighbor(v, &mut |u, w| {
                let w = f(w);
                debug_assert!(w > 0, "mapped weight must stay positive");
                let nd = d + Dist::from(w);
                if nd < dist[u] {
                    dist[u] = nd;
                    counters.relaxations += 1;
                    heap.push(Reverse((nd, u)));
                }
            });
        }
        &self.dist[..n]
    }

    /// Dial's algorithm: Dijkstra with a circular bucket queue of
    /// `max_weight + 1` buckets. Exact for positive integer weights; used
    /// automatically by [`SsspWorkspace::dijkstra_into`] for small weights.
    ///
    /// # Panics
    ///
    /// Panics if `s >= g.n()`.
    pub fn dial_into<G: CsrGraph>(&mut self, g: &G, s: NodeId) -> &[Dist] {
        let n = g.n();
        assert!(s < n, "source {s} out of range");
        self.counters.dial_runs += 1;
        self.reset_dist(n);
        let nb = g.max_weight() as usize + 1;
        if self.buckets.len() < nb {
            self.buckets.resize_with(nb, Vec::new);
        }
        for b in &mut self.buckets {
            b.clear();
        }
        // Split borrows so the relaxation closure can write dist/buckets
        // while `g` is borrowed by `for_each_neighbor`.
        let dist = &mut self.dist;
        let buckets = &mut self.buckets;
        let counters = &mut self.counters;
        dist[s] = Dist::ZERO;
        buckets[0].push(s);
        let mut pending = 1usize;
        let mut d = 0u64; // distance represented by bucket `d % nb`
        while pending > 0 {
            while buckets[(d as usize) % nb].is_empty() {
                d += 1;
            }
            // Drain one node; stale entries (lazy deletion) are skipped.
            let v = buckets[(d as usize) % nb].pop().expect("non-empty");
            counters.bucket_pops += 1;
            pending -= 1;
            if dist[v] != Dist::from(d) {
                continue;
            }
            g.for_each_neighbor(v, &mut |u, w| {
                let nd = Dist::from(d + w);
                if nd < dist[u] {
                    dist[u] = nd;
                    counters.relaxations += 1;
                    // All pending labels lie in [d, d + C], so the circular
                    // index is unambiguous.
                    buckets[((d + w) as usize) % nb].push(u);
                    pending += 1;
                }
            });
        }
        &self.dist[..n]
    }

    /// BFS distances on the *topology* of `g` (every edge counts 1), without
    /// materializing an unweighted view.
    ///
    /// Levels are u64-word bitsets: visiting a dense frontier walks set bits
    /// (one word per 64 nodes) instead of pushing every node into a
    /// `Vec<NodeId>`, and advancing a level is a buffer swap plus a word
    /// fill. Distances are identical to the queue-based formulation — BFS
    /// levels do not depend on intra-level visit order.
    ///
    /// # Panics
    ///
    /// Panics if `s >= g.n()`.
    pub fn bfs_into<G: CsrGraph>(&mut self, g: &G, s: NodeId) -> &[Dist] {
        let n = g.n();
        assert!(s < n, "source {s} out of range");
        self.counters.bfs_runs += 1;
        self.reset_dist(n);
        let words = n.div_ceil(64);
        reset_bits(&mut self.cur_bits, words);
        reset_bits(&mut self.next_bits, words);
        // Split borrows so the visit closure can write dist/next_bits while
        // `g` is borrowed by `for_each_neighbor`.
        let dist = &mut self.dist;
        let cur_bits = &mut self.cur_bits;
        let next_bits = &mut self.next_bits;
        let counters = &mut self.counters;
        dist[s] = Dist::ZERO;
        cur_bits[s / 64] |= 1 << (s % 64);
        let mut level = 0u64;
        let mut live = true;
        while live {
            level += 1;
            live = false;
            for (wi, &word) in cur_bits[..words].iter().enumerate() {
                let mut wbits = word;
                while wbits != 0 {
                    let v = wi * 64 + wbits.trailing_zeros() as usize;
                    wbits &= wbits - 1;
                    g.for_each_neighbor(v, &mut |u, _| {
                        if dist[u] == Dist::INFINITY {
                            dist[u] = Dist::from(level);
                            counters.relaxations += 1;
                            next_bits[u / 64] |= 1 << (u % 64);
                            live = true;
                        }
                    });
                }
            }
            std::mem::swap(cur_bits, next_bits);
            next_bits[..words].fill(0);
        }
        &self.dist[..n]
    }

    /// Dijkstra with hop counts (minimum edges over weight-shortest paths),
    /// the workspace-backed version of
    /// [`crate::shortest_path::dijkstra_with_hops`].
    ///
    /// # Panics
    ///
    /// Panics if `s >= g.n()`.
    pub fn dijkstra_with_hops_into<G: CsrGraph>(
        &mut self,
        g: &G,
        s: NodeId,
    ) -> (&[Dist], &[usize]) {
        let n = g.n();
        assert!(s < n, "source {s} out of range");
        self.counters.hop_dijkstra_runs += 1;
        self.reset_dist(n);
        if self.hops.len() < n {
            self.hops.resize(n, usize::MAX);
        }
        self.hops[..n].fill(usize::MAX);
        self.hop_heap.clear();
        // Split borrows so the relaxation closure can write dist/hops/heap
        // while `g` is borrowed by `for_each_neighbor`.
        let dist = &mut self.dist;
        let hops = &mut self.hops;
        let hop_heap = &mut self.hop_heap;
        let counters = &mut self.counters;
        dist[s] = Dist::ZERO;
        hops[s] = 0;
        hop_heap.push(Reverse((Dist::ZERO, 0usize, s)));
        while let Some(Reverse((d, h, v))) = hop_heap.pop() {
            counters.heap_pops += 1;
            if (d, h) > (dist[v], hops[v]) {
                continue;
            }
            g.for_each_neighbor(v, &mut |u, w| {
                let nd = d + Dist::from(w);
                let nh = h + 1;
                if (nd, nh) < (dist[u], hops[u]) {
                    dist[u] = nd;
                    hops[u] = nh;
                    counters.relaxations += 1;
                    hop_heap.push(Reverse((nd, nh, u)));
                }
            });
        }
        (&self.dist[..n], &self.hops[..n])
    }

    /// The `ℓ`-hop-bounded distance `d^ℓ(s, ·)` (Section 3.1), computed by
    /// `ℓ` synchronous Bellman–Ford sweeps into reusable buffers.
    ///
    /// # Panics
    ///
    /// Panics if `s >= g.n()`.
    pub fn hop_bounded_into<G: CsrGraph>(&mut self, g: &G, s: NodeId, ell: usize) -> &[Dist] {
        let n = g.n();
        assert!(s < n, "source {s} out of range");
        self.counters.bellman_runs += 1;
        self.reset_dist(n);
        if self.prev.len() < n {
            self.prev.resize(n, Dist::INFINITY);
        }
        // Split borrows so the relaxation closure can write dist while `g`
        // is borrowed by `for_each_neighbor`.
        let dist = &mut self.dist;
        let prev = &mut self.prev;
        let counters = &mut self.counters;
        dist[s] = Dist::ZERO;
        for _ in 0..ell {
            prev[..n].copy_from_slice(&dist[..n]);
            let mut changed = false;
            for (v, &dv) in prev[..n].iter().enumerate() {
                if dv == Dist::INFINITY {
                    continue;
                }
                g.for_each_neighbor(v, &mut |u, w| {
                    let nd = dv + Dist::from(w);
                    if nd < dist[u] {
                        dist[u] = nd;
                        counters.relaxations += 1;
                        changed = true;
                    }
                });
            }
            if !changed {
                break;
            }
        }
        &self.dist[..n]
    }

    /// Distance from `s` truncated at `limit` (the Algorithm 2 output
    /// contract), workspace-backed.
    ///
    /// # Panics
    ///
    /// Panics if `s >= g.n()`.
    pub fn bounded_distance_into<G: CsrGraph>(&mut self, g: &G, s: NodeId, limit: Dist) -> &[Dist] {
        let n = g.n();
        self.dijkstra_into(g, s);
        for d in &mut self.dist[..n] {
            if *d > limit {
                *d = Dist::INFINITY;
            }
        }
        &self.dist[..n]
    }

    /// The eccentricity of `s` under true weights: `max_v d(s, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= g.n()`.
    pub fn eccentricity<G: CsrGraph>(&mut self, g: &G, s: NodeId) -> Dist {
        self.dijkstra_into(g, s)
            .iter()
            .copied()
            .max()
            .unwrap_or(Dist::ZERO)
    }

    /// The eccentricity of `s` on the topology (unit weights).
    ///
    /// # Panics
    ///
    /// Panics if `s >= g.n()`.
    pub fn unweighted_eccentricity<G: CsrGraph>(&mut self, g: &G, s: NodeId) -> Dist {
        self.bfs_into(g, s)
            .iter()
            .copied()
            .max()
            .unwrap_or(Dist::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::shortest_path;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dial_matches_heap_and_reference_dijkstra() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for trial in 0..12 {
            let n = 24 + trial;
            let g = generators::erdos_renyi_connected(n, 0.15, 9, &mut rng);
            let mut ws = SsspWorkspace::new();
            for s in [0, n / 2, n - 1] {
                let reference = shortest_path::dijkstra(&g, s);
                assert_eq!(ws.dial_into(&g, s), &reference[..], "dial s={s}");
                assert_eq!(ws.dijkstra_heap_into(&g, s), &reference[..], "heap s={s}");
                assert_eq!(ws.dijkstra_into(&g, s), &reference[..], "auto s={s}");
            }
        }
    }

    #[test]
    fn heavy_weights_take_heap_path_and_agree() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let g = generators::erdos_renyi_connected(20, 0.2, 10_000, &mut rng);
        assert!(g.max_weight() > DIAL_MAX_WEIGHT);
        let mut ws = SsspWorkspace::new();
        for s in g.nodes() {
            assert_eq!(ws.dijkstra_into(&g, s), &shortest_path::dijkstra(&g, s)[..]);
        }
    }

    #[test]
    fn bfs_into_matches_unweighted_dijkstra() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let g = generators::erdos_renyi_connected(30, 0.12, 7, &mut rng);
        let u = g.unweighted_view();
        let mut ws = SsspWorkspace::new();
        for s in [0usize, 11, 29] {
            assert_eq!(ws.bfs_into(&g, s), &shortest_path::dijkstra(&u, s)[..]);
        }
    }

    #[test]
    fn disconnected_sources_leave_infinities() {
        let g = crate::WeightedGraph::from_edges(5, [(0, 1, 2), (2, 3, 200)]).unwrap();
        let mut ws = SsspWorkspace::new();
        let d = ws.dijkstra_into(&g, 0);
        assert_eq!(d[1], Dist::from(2u64));
        assert_eq!(d[2], Dist::INFINITY);
        assert_eq!(d[4], Dist::INFINITY);
        let b = ws.bfs_into(&g, 2);
        assert_eq!(b[3], Dist::from(1u64));
        assert_eq!(b[0], Dist::INFINITY);
    }

    #[test]
    fn hops_and_bounds_match_allocating_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let g = generators::erdos_renyi_connected(22, 0.18, 6, &mut rng);
        let mut ws = SsspWorkspace::new();
        for s in [0usize, 9, 21] {
            let (rd, rh) = shortest_path::dijkstra_with_hops(&g, s);
            let (d, h) = ws.dijkstra_with_hops_into(&g, s);
            assert_eq!(d, &rd[..]);
            assert_eq!(h, &rh[..]);
            for ell in [0usize, 1, 3, 21] {
                let reference = shortest_path::hop_bounded(&g, s, ell);
                assert_eq!(ws.hop_bounded_into(&g, s, ell), &reference[..]);
            }
            let limit = Dist::from(7u64);
            let reference = shortest_path::bounded_distance(&g, s, limit);
            assert_eq!(ws.bounded_distance_into(&g, s, limit), &reference[..]);
        }
    }

    #[test]
    fn workspace_shrinks_gracefully_across_graph_sizes() {
        let mut ws = SsspWorkspace::new();
        let big = generators::path(30, 2);
        assert_eq!(ws.dijkstra_into(&big, 0).len(), 30);
        let small = generators::path(4, 2);
        let d = ws.dijkstra_into(&small, 0);
        assert_eq!(d.len(), 4);
        assert_eq!(d[3], Dist::from(6u64));
    }

    #[test]
    fn kernel_counters_track_dispatch_and_queue_work() {
        let mut rng = ChaCha8Rng::seed_from_u64(26);
        let g = generators::erdos_renyi_connected(24, 0.2, 9, &mut rng);
        let heavy = g.map_weights(|w| w * 1_000);
        assert!(heavy.max_weight() > DIAL_MAX_WEIGHT);
        let mut ws = SsspWorkspace::new();

        ws.dijkstra_into(&g, 0); // small weights → Dial
        ws.dijkstra_into(&heavy, 0); // heavy weights → heap
        ws.bfs_into(&g, 0);
        ws.dijkstra_with_hops_into(&g, 0);
        ws.hop_bounded_into(&g, 0, 3);

        let c = ws.counters();
        assert_eq!(c.dial_runs, 1);
        assert_eq!(c.heap_runs, 1);
        assert_eq!(c.bfs_runs, 1);
        assert_eq!(c.hop_dijkstra_runs, 1);
        assert_eq!(c.bellman_runs, 1);
        assert_eq!(c.total_runs(), 5);
        // Every search settles all 24 nodes, so each kernel did real work.
        assert!(c.heap_pops >= 2 * 24, "plain + hop heap searches");
        assert!(c.bucket_pops >= 24);
        assert!(c.relaxations >= 5 * 23, "≥ n−1 label improvements per run");

        let registry = wdr_metrics::MetricsRegistry::new();
        c.record(&registry, "kernels");
        let flat = registry.snapshot().flatten();
        assert_eq!(flat["kernels.dial_runs"], 1.0);
        assert_eq!(flat["kernels.relaxations"], c.relaxations as f64);

        ws.reset_counters();
        assert_eq!(ws.counters(), KernelCounters::default());
    }

    #[test]
    fn mapped_dijkstra_equals_mapped_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        let g = generators::erdos_renyi_connected(18, 0.2, 9, &mut rng);
        let doubled = g.map_weights(|w| 2 * w + 1);
        let mut ws = SsspWorkspace::new();
        for s in [0usize, 17] {
            let got = ws.dijkstra_mapped_into(&g, s, |w| 2 * w + 1).to_vec();
            assert_eq!(got, shortest_path::dijkstra(&doubled, s));
        }
    }
}
