//! # congest-graph
//!
//! Weighted-graph substrate for the reproduction of *Wu & Yao, "Quantum
//! Complexity of Weighted Diameter and Radius in CONGEST Networks"*
//! (PODC 2022).
//!
//! This crate provides everything the paper's Section 2.1 and Section 3.1
//! assume about graphs, implemented centrally (no network):
//!
//! * [`WeightedGraph`] — undirected graphs with positive integer weights in
//!   CSR form, built through [`GraphBuilder`];
//! * [`shortest_path`] — Dijkstra, Bellman–Ford, BFS, Floyd–Warshall, and
//!   the hop-bounded distance `d^ℓ`;
//! * [`metrics`] — eccentricity, diameter `D_{G,w}`, radius `R_{G,w}`,
//!   unweighted diameter `D_G`, hop distance and hop diameter `H_{G,w}`;
//! * [`sweep`] — pruned SumSweep-style diameter/radius computation with
//!   eccentricity bounds, the ground-truth kernel behind [`metrics`];
//! * [`SsspWorkspace`] — reusable scratch so multi-source shortest-path
//!   loops run allocation-free, with a Dial bucket queue for small weights;
//! * [`SweepWorkspace`] — the same reuse for whole extremes queries, plus
//!   [`GraphDigest`], the stable FNV-1a content hash serving-layer caches
//!   key on;
//! * [`DistMatrix`] — flat single-allocation all-pairs distance tables;
//! * [`rounding`] — the weight-rounding scheme `w_i` and approximate
//!   bounded-hop distance `d̃^ℓ` (Lemma 3.2);
//! * [`overlay`] — skeleton overlays `(G'_S, w'_S)`, k-shortcut graphs
//!   `(G''_S, w''_S)`, and the approximate distance `d̃_{G,w,S}`
//!   (Lemma 3.3);
//! * [`contract`] — contraction of weight-1 edges (Lemma 4.3);
//! * [`generators`] — deterministic and seeded-random workloads, including
//!   the streaming million-node families of [`generators::stream`];
//! * [`io`] — the versioned binary on-disk graph format with zero-copy
//!   mmap loading ([`WeightedGraph::open_mmap`]) and the streaming
//!   [`GraphWriter`];
//! * [`compact`] — [`CompactGraph`], the `u32`-index CSR variant that keeps
//!   10⁷-edge working sets cache- and RAM-friendly;
//! * [`context`] — [`context::GraphContext`], the shared-immutable graph +
//!   cached-metrics bundle the many-seed batch engine fans across lanes;
//! * [`dot`] — Graphviz emission for the figure-regeneration harness.
//!
//! # Examples
//!
//! Compute the exact weighted diameter of a random connected graph and
//! compare it with the skeleton-based approximation of Lemma 3.3:
//!
//! ```
//! use congest_graph::{generators, metrics, overlay, rounding::RoundingScheme};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let g = generators::erdos_renyi_connected(24, 0.2, 10, &mut rng);
//! let exact = metrics::diameter(&g).as_f64();
//!
//! let skeleton: Vec<_> = (0..g.n()).step_by(3).collect();
//! let scheme = RoundingScheme::new(g.n(), 0.25);
//! let sd = overlay::SkeletonDistances::compute(&g, &skeleton, scheme, 3);
//! let approx = sd
//!     .skeleton
//!     .iter()
//!     .map(|&s| sd.approx_eccentricity(s))
//!     .fold(0.0f64, f64::max);
//! assert!(approx <= 1.6 * exact); // (1+ε)² with ε = 0.25
//! ```

// `deny` rather than `forbid`: the whole crate is safe code except the
// explicitly-allowed mmap shim in `io::sys` and the slice reinterpretation
// in `io::MappedCsr`, which document their invariants inline.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod context;
pub mod contract;
mod digest;
mod dist;
pub mod dot;
pub mod generators;
mod graph;
pub mod io;
mod matrix;
pub mod metrics;
pub mod overlay;
pub mod rounding;
pub mod shortest_path;
pub mod sweep;
mod workspace;

pub use compact::CompactGraph;
pub use digest::GraphDigest;
pub use dist::Dist;
pub use graph::{
    BuildGraphError, CsrGraph, Edge, GraphBuilder, NodeId, StorageKind, Weight, WeightedGraph,
};
pub use io::{GraphIoError, GraphWriter};
pub use matrix::DistMatrix;
pub use sweep::{EdgeMetric, SweepResult, SweepWorkspace};
pub use workspace::{KernelCounters, SsspWorkspace, DIAL_MAX_WEIGHT};
