//! Streaming synthetic graph families for giant-scale experiments.
//!
//! The generators in the parent module collect a `Vec<Edge>` and hand it to
//! [`GraphBuilder`](crate::GraphBuilder) — fine at 10³ nodes, a second copy
//! of the whole graph at 10⁶. The families here instead *emit* edges,
//! deterministically from a seed, straight into the two-pass
//! [`GraphWriter`](crate::GraphWriter): the only allocations are the final
//! CSR arrays themselves, so a 10⁷-edge instance streams into memory without
//! ever materializing an edge list.
//!
//! Three families cover the degree-distribution regimes the giant-scale
//! experiment (E11) sweeps:
//!
//! * [`StreamSpec::PowerLaw`] — preferential-attachment-style skew: each new
//!   node attaches to earlier nodes with probability biased toward low
//!   indices (hubs), giving a heavy-tailed degree distribution like
//!   Barabási–Albert without keeping the repeated-endpoint urn in memory;
//! * [`StreamSpec::RoadGrid`] — near-planar road-network shape: a
//!   row-major grid plus a sprinkling of random long-range shortcuts;
//! * [`StreamSpec::WebLayered`] — a layered crawl frontier: a chain spine
//!   in layer 0, every deeper node linking back into the previous layer.
//!
//! Every family is connected by construction and replayable: the emitter is
//! a pure function of the spec, which is exactly the contract
//! [`crate::io::build_streamed`]'s two-pass protocol needs.

use crate::graph::{NodeId, Weight, WeightedGraph};
use crate::io::{build_streamed, StreamBuildError};

/// SplitMix64: the tiny, seedable, fully deterministic PRNG the emitters
/// replay from. (Chosen over the workspace's ChaCha generator because an
/// emitter is re-run from scratch for the fill pass — cheap reseeding
/// matters more than cryptographic quality here.)
#[derive(Copy, Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (`bound > 0`) by 128-bit multiply.
    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform weight in `[1, max_w]`.
    fn weight(&mut self, max_w: Weight) -> Weight {
        1 + self.below(max_w)
    }
}

/// A replayable streaming graph family: shape parameters plus a seed fully
/// determine the emitted edge sequence (and therefore the built graph and
/// its [`digest`](crate::WeightedGraph::digest)).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StreamSpec {
    /// Preferential-attachment-style skew: node `v` attaches to
    /// `min(attach, v)` distinct earlier nodes, drawn with probability
    /// density rising toward index 0 (the squared-uniform bias
    /// `t = ⌊r² · v⌋` — an urn-free approximation of Barabási–Albert that
    /// needs O(1) generator state). `m ≈ attach · n`.
    PowerLaw {
        /// Node count.
        n: usize,
        /// Edges each arriving node adds (clamped to its index).
        attach: usize,
        /// Weights are uniform in `[1, max_w]`.
        max_w: Weight,
        /// PRNG seed.
        seed: u64,
    },
    /// A `⌈n/c⌉ × c` row-major grid (`c = ⌊√n⌋`) with right/down edges,
    /// plus `n / 20` random long-range shortcut chords. `m ≈ 2n`.
    RoadGrid {
        /// Node count.
        n: usize,
        /// Weights are uniform in `[1, max_w]`.
        max_w: Weight,
        /// PRNG seed.
        seed: u64,
    },
    /// `layers` layers of width `⌈n/layers⌉`; layer 0 is a chain spine and
    /// every deeper node draws `fanout` links into the previous layer (at
    /// least one, guaranteeing connectivity). `m ≈ fanout · n`.
    WebLayered {
        /// Node count.
        n: usize,
        /// Layer count (clamped to `[1, n]`).
        layers: usize,
        /// Back-links per node (minimum 1).
        fanout: usize,
        /// Weights are uniform in `[1, max_w]`.
        max_w: Weight,
        /// PRNG seed.
        seed: u64,
    },
}

impl StreamSpec {
    /// Node count of the generated graph.
    pub fn n(&self) -> usize {
        match *self {
            StreamSpec::PowerLaw { n, .. }
            | StreamSpec::RoadGrid { n, .. }
            | StreamSpec::WebLayered { n, .. } => n,
        }
    }

    /// Short stable family name for reports and benchmark rows.
    pub fn label(&self) -> &'static str {
        match self {
            StreamSpec::PowerLaw { .. } => "power_law",
            StreamSpec::RoadGrid { .. } => "road_grid",
            StreamSpec::WebLayered { .. } => "web_layered",
        }
    }

    /// Replays the family's edge sequence into `sink`, identically on every
    /// call. Emitted duplicates (e.g. a shortcut chord that coincides with a
    /// grid edge) are legal — the writer merges them to the minimum weight.
    pub fn for_each_edge(&self, sink: &mut dyn FnMut(NodeId, NodeId, Weight)) {
        match *self {
            StreamSpec::PowerLaw {
                n,
                attach,
                max_w,
                seed,
            } => power_law(n, attach, max_w, seed, sink),
            StreamSpec::RoadGrid { n, max_w, seed } => road_grid(n, max_w, seed, sink),
            StreamSpec::WebLayered {
                n,
                layers,
                fanout,
                max_w,
                seed,
            } => web_layered(n, layers, fanout, max_w, seed, sink),
        }
    }

    /// Streams the family through a [`GraphWriter`](crate::GraphWriter) —
    /// the whole point: no intermediate edge list at any size.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamBuildError`]; the shipped families never produce
    /// one (their edges are valid by construction).
    ///
    /// # Examples
    ///
    /// ```
    /// use congest_graph::generators::stream::StreamSpec;
    /// let spec = StreamSpec::RoadGrid { n: 100, max_w: 9, seed: 7 };
    /// let g = spec.build().unwrap();
    /// assert_eq!(g.n(), 100);
    /// assert_eq!(g.digest(), spec.build().unwrap().digest()); // replayable
    /// ```
    pub fn build(&self) -> Result<WeightedGraph, StreamBuildError> {
        build_streamed(self.n(), |sink| self.for_each_edge(sink))
    }
}

/// Squared-uniform preferential bias: maps a uniform `r` to `⌊(r²) · v⌋`,
/// concentrating picks near index 0 so early nodes become hubs.
fn biased_pick(rng: &mut SplitMix64, v: usize) -> usize {
    let r = rng.next_u64();
    let r2 = ((u128::from(r) * u128::from(r)) >> 64) as u64;
    ((u128::from(r2) * (v as u128)) >> 64) as usize
}

fn power_law(
    n: usize,
    attach: usize,
    max_w: Weight,
    seed: u64,
    sink: &mut dyn FnMut(NodeId, NodeId, Weight),
) {
    let mut rng = SplitMix64::new(seed);
    // Small fixed-capacity dedup buffer: `attach` is tiny (≤ 64 in every
    // workload), so a linear scan beats any hash set.
    let mut picks: Vec<usize> = Vec::with_capacity(attach.min(64));
    for v in 1..n {
        let k = attach.min(v);
        picks.clear();
        while picks.len() < k {
            let mut t = biased_pick(&mut rng, v);
            // Deterministic probe: the draw landed on an already-picked
            // target; walk forward until a fresh one appears (k ≤ v
            // guarantees one exists).
            while picks.contains(&t) {
                t = (t + 1) % v;
            }
            picks.push(t);
            sink(t, v, rng.weight(max_w));
        }
    }
}

/// Largest `c` with `c² ≤ n` (integer square root; `n` fits f64 exactly for
/// every n ≤ 2⁵³, far past giant scale, but stay integral anyway).
fn isqrt(n: usize) -> usize {
    if n < 2 {
        return n;
    }
    let mut c = (n as f64).sqrt() as usize;
    while c.saturating_mul(c) > n {
        c -= 1;
    }
    while (c + 1).saturating_mul(c + 1) <= n {
        c += 1;
    }
    c
}

fn road_grid(n: usize, max_w: Weight, seed: u64, sink: &mut dyn FnMut(NodeId, NodeId, Weight)) {
    let mut rng = SplitMix64::new(seed);
    let c = isqrt(n).max(1);
    for v in 0..n {
        // Right neighbor, unless v ends its row.
        if (v + 1) % c != 0 && v + 1 < n {
            sink(v, v + 1, rng.weight(max_w));
        }
        // Down neighbor.
        if v + c < n {
            sink(v, v + c, rng.weight(max_w));
        }
    }
    // Shortcut chords — the "highways" that shrink the diameter below the
    // Θ(√n) grid distance. Self-pairs are skipped (the draw is replayed
    // identically on both passes, so the skip is too).
    if n > 1 {
        for _ in 0..n / 20 {
            let u = rng.below(n as u64) as usize;
            let v = rng.below(n as u64) as usize;
            let w = rng.weight(max_w);
            if u != v {
                sink(u, v, w);
            }
        }
    }
}

fn web_layered(
    n: usize,
    layers: usize,
    fanout: usize,
    max_w: Weight,
    seed: u64,
    sink: &mut dyn FnMut(NodeId, NodeId, Weight),
) {
    let mut rng = SplitMix64::new(seed);
    let layers = layers.clamp(1, n.max(1));
    let width = n.div_ceil(layers);
    let fanout = fanout.max(1);
    for v in 0..n {
        let layer = v / width;
        if layer == 0 {
            // Spine: a chain across the root layer.
            if v + 1 < width.min(n) {
                sink(v, v + 1, rng.weight(max_w));
            }
            continue;
        }
        // Every deeper node tethers to the previous layer: one guaranteed
        // link plus fanout−1 extra draws (duplicates merged by the writer).
        let prev_start = (layer - 1) * width;
        let prev_len = width as u64;
        for _ in 0..fanout {
            let t = prev_start + rng.below(prev_len) as usize;
            sink(t, v, rng.weight(max_w));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::sweep;

    fn specs() -> Vec<StreamSpec> {
        vec![
            StreamSpec::PowerLaw {
                n: 300,
                attach: 4,
                max_w: 9,
                seed: 11,
            },
            StreamSpec::RoadGrid {
                n: 300,
                max_w: 9,
                seed: 12,
            },
            StreamSpec::WebLayered {
                n: 300,
                layers: 10,
                fanout: 3,
                max_w: 9,
                seed: 13,
            },
        ]
    }

    #[test]
    fn families_are_deterministic_from_seed() {
        for spec in specs() {
            let a = spec.build().unwrap();
            let b = spec.build().unwrap();
            assert_eq!(a, b, "{}", spec.label());
            assert_eq!(a.digest(), b.digest());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = StreamSpec::RoadGrid {
            n: 200,
            max_w: 9,
            seed: 1,
        }
        .build()
        .unwrap();
        let b = StreamSpec::RoadGrid {
            n: 200,
            max_w: 9,
            seed: 2,
        }
        .build()
        .unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn families_are_connected() {
        for spec in specs() {
            let g = spec.build().unwrap();
            let r = sweep::extremes(&g);
            assert!(r.is_connected(), "{} must be connected", spec.label());
        }
    }

    #[test]
    fn streamed_build_matches_collected_builder() {
        // The writer path must agree edge-for-edge with GraphBuilder fed the
        // same emission — the two canonicalizations are interchangeable.
        for spec in specs() {
            let streamed = spec.build().unwrap();
            let mut b = GraphBuilder::new(spec.n());
            spec.for_each_edge(&mut |u, v, w| {
                b.add_edge(u, v, w);
            });
            let collected = b.build().unwrap();
            assert_eq!(streamed, collected, "{}", spec.label());
            assert_eq!(streamed.digest(), collected.digest());
        }
    }

    #[test]
    fn power_law_is_skewed() {
        let g = StreamSpec::PowerLaw {
            n: 2000,
            attach: 5,
            max_w: 9,
            seed: 3,
        }
        .build()
        .unwrap();
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        let hub = (0..g.n()).map(|v| g.degree(v)).max().unwrap();
        assert!(
            hub as f64 > 4.0 * avg,
            "expected a heavy tail: hub degree {hub}, average {avg:.1}"
        );
        // Skew lives at the low indices by construction.
        let low_max = (0..20).map(|v| g.degree(v)).max().unwrap();
        assert!(low_max as f64 > 2.0 * avg);
    }

    #[test]
    fn road_grid_has_near_grid_edge_count() {
        let n = 900usize;
        let g = StreamSpec::RoadGrid {
            n,
            max_w: 9,
            seed: 4,
        }
        .build()
        .unwrap();
        // 2n − 2√n grid edges plus at most n/20 chords (minus merges).
        assert!(g.m() >= 2 * n - 2 * isqrt(n) - 2 * (n / 20));
        assert!(g.m() <= 2 * n + n / 20);
    }

    #[test]
    fn isqrt_is_exact() {
        for n in 0..200usize {
            let c = isqrt(n);
            assert!(c * c <= n);
            assert!((c + 1) * (c + 1) > n);
        }
        assert_eq!(isqrt(1_000_000), 1000);
    }

    #[test]
    fn tiny_sizes_build() {
        for n in 1..6usize {
            for spec in [
                StreamSpec::PowerLaw {
                    n,
                    attach: 3,
                    max_w: 4,
                    seed: 5,
                },
                StreamSpec::RoadGrid {
                    n,
                    max_w: 4,
                    seed: 5,
                },
                StreamSpec::WebLayered {
                    n,
                    layers: 3,
                    fanout: 2,
                    max_w: 4,
                    seed: 5,
                },
            ] {
                let g = spec.build().unwrap();
                assert_eq!(g.n(), n);
                assert!(sweep::extremes(&g).is_connected());
            }
        }
    }
}
