//! Graph generators for tests, examples, and the benchmark workloads.
//!
//! Deterministic generators take shape parameters; randomized ones take an
//! explicit [`rand::Rng`] so every experiment is reproducible from a seed.

use crate::graph::{GraphBuilder, NodeId, Weight, WeightedGraph};
use rand::Rng;

pub mod stream;

/// A path `0 - 1 - … - (n-1)` with uniform edge weight `w`.
///
/// # Panics
///
/// Panics if `n == 0` or `w == 0`.
pub fn path(n: usize, w: Weight) -> WeightedGraph {
    assert!(n > 0 && w > 0);
    WeightedGraph::from_edges(n, (1..n).map(|v| (v - 1, v, w))).expect("valid path")
}

/// A cycle on `n ≥ 3` nodes with uniform edge weight `w`.
///
/// # Panics
///
/// Panics if `n < 3` or `w == 0`.
pub fn cycle(n: usize, w: Weight) -> WeightedGraph {
    assert!(n >= 3 && w > 0);
    WeightedGraph::from_edges(n, (0..n).map(|v| (v, (v + 1) % n, w))).expect("valid cycle")
}

/// A star: node 0 is the hub, connected to `1..n` with weight `w`.
///
/// # Panics
///
/// Panics if `n < 2` or `w == 0`.
pub fn star(n: usize, w: Weight) -> WeightedGraph {
    assert!(n >= 2 && w > 0);
    WeightedGraph::from_edges(n, (1..n).map(|v| (0, v, w))).expect("valid star")
}

/// The complete graph `K_n` with uniform edge weight `w`.
///
/// # Panics
///
/// Panics if `n == 0` or `w == 0`.
pub fn complete(n: usize, w: Weight) -> WeightedGraph {
    assert!(n > 0 && w > 0);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v, w);
        }
    }
    b.build().expect("valid complete graph")
}

/// A complete binary tree of height `h` (`2^{h+1} − 1` nodes, root 0),
/// children of `v` at `2v+1` and `2v+2`, uniform edge weight `w`.
///
/// # Panics
///
/// Panics if `w == 0`.
pub fn binary_tree(h: u32, w: Weight) -> WeightedGraph {
    assert!(w > 0);
    let n = (1usize << (h + 1)) - 1;
    WeightedGraph::from_edges(n, (1..n).map(|v| ((v - 1) / 2, v, w))).expect("valid tree")
}

/// A `rows × cols` grid with uniform edge weight `w`.
///
/// # Panics
///
/// Panics if `rows * cols == 0` or `w == 0`.
pub fn grid(rows: usize, cols: usize, w: Weight) -> WeightedGraph {
    assert!(rows > 0 && cols > 0 && w > 0);
    let id = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), w);
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), w);
            }
        }
    }
    b.build().expect("valid grid")
}

/// A "barbell": two cliques of size `k` joined by a path of `bridge` edges.
/// A classic high-diameter, high-congestion workload.
///
/// # Panics
///
/// Panics if `k < 2` or `w == 0`.
pub fn barbell(k: usize, bridge: usize, w: Weight) -> WeightedGraph {
    assert!(k >= 2 && w > 0);
    let n = 2 * k + bridge.saturating_sub(1);
    let mut b = GraphBuilder::new(n.max(2 * k));
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u, v, w);
        }
    }
    let right = k + bridge.saturating_sub(1);
    for u in right..right + k {
        for v in (u + 1)..right + k {
            b.add_edge(u, v, w);
        }
    }
    // Path from node k-1 (in left clique) through bridge nodes to node `right`.
    let mut prev = k - 1;
    for i in 0..bridge {
        let next = if i + 1 == bridge { right } else { k + i };
        b.add_edge(prev, next, w);
        prev = next;
    }
    // Recompute n as max node + 1 is already handled by builder size.
    b.build().expect("valid barbell")
}

/// A uniformly random spanning tree (random Prüfer-like attachment): node `v`
/// attaches to a uniformly random earlier node. Weights uniform in
/// `[1, max_w]`.
///
/// # Panics
///
/// Panics if `n == 0` or `max_w == 0`.
pub fn random_tree<R: Rng + ?Sized>(n: usize, max_w: Weight, rng: &mut R) -> WeightedGraph {
    assert!(n > 0 && max_w > 0);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        b.add_edge(parent, v, rng.gen_range(1..=max_w));
    }
    b.build().expect("valid random tree")
}

/// Erdős–Rényi `G(n, p)` conditioned on connectivity: a random spanning tree
/// is laid down first, then every remaining pair is added independently with
/// probability `p`. Weights uniform in `[1, max_w]`.
///
/// This is the main random workload of the benchmarks: connected, with
/// tunable density.
///
/// # Panics
///
/// Panics if `n == 0`, `max_w == 0`, or `p` is not in `[0, 1]`.
pub fn erdos_renyi_connected<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    max_w: Weight,
    rng: &mut R,
) -> WeightedGraph {
    assert!(n > 0 && max_w > 0 && (0.0..=1.0).contains(&p));
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        b.add_edge(parent, v, rng.gen_range(1..=max_w));
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u, v, rng.gen_range(1..=max_w));
            }
        }
    }
    b.build().expect("valid G(n,p)")
}

/// A connected graph with *controlled unweighted diameter*: a ring of
/// `hub_count` densely connected clusters. Used for the `D`-sweep experiments
/// (E3): the unweighted diameter grows with `hub_count` while `n` stays
/// fixed.
///
/// Each cluster is a clique of `n / hub_count` nodes; consecutive clusters
/// are joined by a single edge. Weights uniform in `[1, max_w]`.
///
/// # Panics
///
/// Panics if `hub_count == 0`, `n < 2 * hub_count`, or `max_w == 0`.
pub fn cluster_ring<R: Rng + ?Sized>(
    n: usize,
    hub_count: usize,
    max_w: Weight,
    rng: &mut R,
) -> WeightedGraph {
    assert!(hub_count > 0 && n >= 2 * hub_count && max_w > 0);
    let base = n / hub_count;
    let mut b = GraphBuilder::new(n);
    let cluster_of = |i: usize| (i / base).min(hub_count - 1);
    // Cliques within clusters.
    let mut starts = Vec::new();
    let mut i = 0;
    while i < n {
        let c = cluster_of(i);
        let end = if c == hub_count - 1 { n } else { i + base };
        starts.push(i);
        for u in i..end {
            for v in (u + 1)..end {
                b.add_edge(u, v, rng.gen_range(1..=max_w));
            }
        }
        i = end;
    }
    // Ring (or path for 2 clusters) between consecutive cluster heads.
    for c in 0..hub_count {
        let next = (c + 1) % hub_count;
        if hub_count == 2 && c == 1 {
            break;
        }
        if hub_count > 1 {
            b.add_edge(starts[c], starts[next], rng.gen_range(1..=max_w));
        }
    }
    b.build().expect("valid cluster ring")
}

/// Replaces every weight of `g` with a fresh uniform draw from `[1, max_w]`.
pub fn randomize_weights<R: Rng + ?Sized>(
    g: &WeightedGraph,
    max_w: Weight,
    rng: &mut R,
) -> WeightedGraph {
    assert!(max_w > 0);
    let edges: Vec<(NodeId, NodeId, Weight)> = g
        .edges()
        .map(|e| (e.u, e.v, rng.gen_range(1..=max_w)))
        .collect();
    WeightedGraph::from_edges(g.n(), edges).expect("same topology is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn path_shape() {
        let g = path(5, 2);
        assert_eq!((g.n(), g.m()), (5, 4));
        assert!(g.is_connected());
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6, 1);
        assert_eq!((g.n(), g.m()), (6, 6));
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn complete_shape() {
        let g = complete(5, 1);
        assert_eq!(g.m(), 10);
        assert_eq!(metrics::unweighted_diameter(&g), 1);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(3, 1);
        assert_eq!(g.n(), 15);
        assert_eq!(g.m(), 14);
        assert!(g.is_connected());
        assert_eq!(metrics::unweighted_diameter(&g), 6);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, 1);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert_eq!(metrics::unweighted_diameter(&g), 5);
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 3, 1);
        assert!(g.is_connected());
        // Two K4s plus 2 internal bridge nodes.
        assert_eq!(g.n(), 10);
        assert_eq!(metrics::unweighted_diameter(&g), 5);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = random_tree(40, 10, &mut rng);
        assert_eq!(g.m(), 39);
        assert!(g.is_connected());
        assert!(g.max_weight() <= 10);
    }

    #[test]
    fn er_connected_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for p in [0.0, 0.05, 0.3] {
            let g = erdos_renyi_connected(30, p, 6, &mut rng);
            assert!(g.is_connected(), "p={p}");
            assert!(g.m() >= 29);
        }
    }

    #[test]
    fn cluster_ring_diameter_grows_with_hubs() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let d2 = metrics::unweighted_diameter(&cluster_ring(48, 2, 1, &mut rng));
        let d8 = metrics::unweighted_diameter(&cluster_ring(48, 8, 1, &mut rng));
        assert!(
            d8 > d2,
            "more clusters should stretch the topology: {d2} vs {d8}"
        );
    }

    #[test]
    fn randomize_weights_keeps_topology() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = grid(3, 3, 5);
        let h = randomize_weights(&g, 9, &mut rng);
        assert_eq!(g.n(), h.n());
        assert_eq!(g.m(), h.m());
        for e in g.edges() {
            assert!(h.has_edge(e.u, e.v));
        }
        assert!(h.max_weight() <= 9);
    }

    #[test]
    fn generators_deterministic_under_seed() {
        let g1 = erdos_renyi_connected(20, 0.2, 5, &mut ChaCha8Rng::seed_from_u64(9));
        let g2 = erdos_renyi_connected(20, 0.2, 5, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }
}
