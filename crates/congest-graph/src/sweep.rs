//! Pruned diameter/radius computation by eccentricity-bound sweeps.
//!
//! The seed implementation of [`crate::metrics`] answered every
//! diameter/radius/witness query with `n` full shortest-path sweeps. This
//! module implements the SumSweep/ExactSumSweep strategy instead: maintain
//! per-node eccentricity *bounds*, sweep from adaptively chosen sources, and
//! stop as soon as the bounds certify the answer — typically after a handful
//! of sweeps on the Erdős–Rényi workloads the experiments use (E9 charts the
//! sweep counts).
//!
//! # The bound-pruning invariant
//!
//! For an undirected graph, one sweep from `s` with eccentricity
//! `ecc(s) = max_v d(s, v)` tightens every node's bounds:
//!
//! ```text
//! lo[v] = max(lo[v], d(s, v), ecc(s) − d(s, v))   ≤ ecc(v)
//! hi[v] = min(hi[v], ecc(s) + d(s, v))            ≥ ecc(v)
//! ```
//!
//! (both sides of the triangle inequality through `s`). The diameter is
//! settled once every unswept node has `hi[v] ≤ D_lo`, the best eccentricity
//! seen among swept sources; the radius once every unswept node has
//! `lo[v] ≥ R_hi`, the smallest swept eccentricity. Swept sources know their
//! eccentricity exactly, so in the worst case (e.g. a cycle, where all
//! eccentricities are equal and no bound can separate nodes) the loop
//! degrades gracefully into the brute-force `n`-sweep computation — never
//! more.
//!
//! # Determinism contract
//!
//! Source selection is fully deterministic: first the maximum-degree node
//! (smallest index on ties), then alternately the unswept node of maximum
//! upper bound (diameter step) or minimum lower bound (radius step),
//! tie-broken by the accumulated distance sum and then the smallest index.
//! The feature-gated parallel fan-out computes the same per-source sweeps on
//! worker threads and reduces in index order, so its results are
//! bit-identical to the sequential path (pinned in `tests/kernels.rs`).

use crate::dist::Dist;
use crate::graph::{CsrGraph, NodeId};
use crate::workspace::SsspWorkspace;
use std::cmp::Reverse;

/// Which edge metric a sweep measures distances under.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EdgeMetric {
    /// True edge weights (Dijkstra sweeps) — the paper's `d_{G,w}`.
    Weighted,
    /// Every edge counts 1 (BFS sweeps) — the paper's `d_{G,w*}`.
    Unweighted,
}

/// The four extremal quantities of one graph, from one shared computation.
///
/// Collapses what used to be four independent `n`-sweep passes
/// (`diameter`, `radius`, `diameter_witness`, `radius_witness`) into a
/// single result, plus the number of sweeps it took to certify it.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SweepResult {
    /// `D = max_v ecc(v)`; [`Dist::INFINITY`] when disconnected.
    pub diameter: Dist,
    /// `R = min_v ecc(v)`; [`Dist::INFINITY`] when disconnected.
    pub radius: Dist,
    /// A node with `ecc(v) = D` (`v*` of Section 3.1).
    pub diameter_witness: NodeId,
    /// A node with `ecc(v) = R` (a center).
    pub radius_witness: NodeId,
    /// Shortest-path sweeps performed before both answers were certified.
    pub sweeps: usize,
    /// Number of nodes, for reporting sweep fractions.
    pub n: usize,
}

impl SweepResult {
    /// `true` if every node can reach every other.
    pub fn is_connected(&self) -> bool {
        self.diameter.is_finite() || self.n <= 1
    }
}

/// Runs one sweep under the requested metric into the workspace.
fn sweep_dist<'a, G: CsrGraph>(
    ws: &'a mut SsspWorkspace,
    g: &G,
    s: NodeId,
    metric: EdgeMetric,
) -> &'a [Dist] {
    match metric {
        EdgeMetric::Weighted => ws.dijkstra_into(g, s),
        EdgeMetric::Unweighted => ws.bfs_into(g, s),
    }
}

/// The result every strategy returns for trivial (`n ≤ 1`) graphs.
fn trivial(n: usize) -> SweepResult {
    SweepResult {
        diameter: Dist::ZERO,
        radius: Dist::ZERO,
        diameter_witness: 0,
        radius_witness: 0,
        sweeps: 0,
        n,
    }
}

/// The result for a graph discovered to be disconnected. Witness indices
/// match the brute-force fold (all eccentricities are infinite, so the
/// diameter fold keeps the last node and the radius fold the first).
fn disconnected(n: usize, sweeps: usize) -> SweepResult {
    SweepResult {
        diameter: Dist::INFINITY,
        radius: Dist::INFINITY,
        diameter_witness: n - 1,
        radius_witness: 0,
        sweeps,
        n,
    }
}

/// Weighted diameter/radius/witnesses by pruned sweeps.
///
/// # Examples
///
/// ```
/// use congest_graph::{generators, sweep, Dist};
/// let g = generators::path(6, 2);
/// let r = sweep::extremes(&g);
/// assert_eq!(r.diameter, Dist::from(10u64));
/// assert_eq!(r.radius, Dist::from(6u64));
/// assert!(r.sweeps <= g.n());
/// ```
pub fn extremes<G: CsrGraph>(g: &G) -> SweepResult {
    extremes_with(g, EdgeMetric::Weighted)
}

/// Unweighted (topology) diameter/radius/witnesses by pruned BFS sweeps.
pub fn extremes_unweighted<G: CsrGraph>(g: &G) -> SweepResult {
    extremes_with(g, EdgeMetric::Unweighted)
}

/// Pruned extremes under an explicit [`EdgeMetric`].
///
/// Allocates a fresh [`SweepWorkspace`] per call; loops that query many
/// graphs (or the same graph repeatedly) should hold a workspace and call
/// [`SweepWorkspace::extremes_into`] instead.
pub fn extremes_with<G: CsrGraph>(g: &G, metric: EdgeMetric) -> SweepResult {
    SweepWorkspace::new().extremes_into(g, metric)
}

/// Reusable scratch for pruned-sweep extremes queries.
///
/// Owns an [`SsspWorkspace`] plus the four per-node bound tables the sweep
/// maintains, so a long-lived holder (a serving worker, a benchmark loop)
/// computes diameter/radius/witnesses with **zero steady-state heap
/// operations** once the buffers have grown to the largest graph seen
/// (pinned by `wdr-serve`'s `tests/zero_alloc.rs`). Results are
/// bit-identical to [`extremes_with`].
///
/// # Examples
///
/// ```
/// use congest_graph::{generators, sweep, SweepWorkspace};
/// let mut ws = SweepWorkspace::new();
/// let g = generators::path(6, 2);
/// let r = ws.extremes_into(&g, sweep::EdgeMetric::Weighted);
/// assert_eq!(r, sweep::extremes(&g));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SweepWorkspace {
    ws: SsspWorkspace,
    lo: Vec<u64>,
    hi: Vec<u64>,
    tot: Vec<u64>,
    swept: Vec<bool>,
}

impl SweepWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> SweepWorkspace {
        SweepWorkspace::default()
    }

    /// The inner single-source workspace, for plain SSSP/eccentricity
    /// queries that want to share this workspace's scratch.
    pub fn sssp_mut(&mut self) -> &mut SsspWorkspace {
        &mut self.ws
    }

    /// Resets the per-node bound tables for an `n`-node graph.
    fn reset(&mut self, n: usize) {
        self.lo.clear();
        self.lo.resize(n, 0u64);
        self.hi.clear();
        self.hi.resize(n, u64::MAX);
        self.tot.clear();
        self.tot.resize(n, 0u64);
        self.swept.clear();
        self.swept.resize(n, false);
    }

    /// Pruned extremes under `metric`, reusing this workspace's buffers.
    ///
    /// Generic over [`CsrGraph`]: owned, memory-mapped, and compact graphs
    /// all take this exact code path, so their results are bit-identical.
    pub fn extremes_into<G: CsrGraph>(&mut self, g: &G, metric: EdgeMetric) -> SweepResult {
        let n = g.n();
        if n <= 1 {
            return trivial(n);
        }
        self.reset(n);
        let (lo, hi, tot, swept) = (&mut self.lo, &mut self.hi, &mut self.tot, &mut self.swept);
        let mut sweeps = 0usize;
        // Best certified values among swept sources.
        let mut d_lo = 0u64;
        let mut d_arg = 0usize;
        let mut r_hi = u64::MAX;
        let mut r_arg = 0usize;

        // First source: maximum degree, smallest index on ties — a hub
        // settles the radius side quickly and its sweep seeds tight bounds
        // everywhere. (The `else` arm keeps this total even if the
        // trivial-graph guard above ever moves; an empty node set has
        // nothing to sweep.)
        let Some(mut source) = (0..n).max_by_key(|&v| (g.degree(v), Reverse(v))) else {
            return trivial(n);
        };
        let mut diameter_turn = true;
        loop {
            let dist = sweep_dist(&mut self.ws, g, source, metric);
            let mut ecc = 0u64;
            for &d in dist {
                match d.finite() {
                    Some(x) => ecc = ecc.max(x),
                    None => return disconnected(n, sweeps + 1),
                }
            }
            sweeps += 1;
            swept[source] = true;
            for v in 0..n {
                let dv = dist[v].expect_finite();
                tot[v] = tot[v].saturating_add(dv);
                lo[v] = lo[v].max(dv).max(ecc - dv);
                hi[v] = hi[v].min(ecc.saturating_add(dv));
            }
            if ecc > d_lo || sweeps == 1 {
                d_lo = ecc;
                d_arg = source;
            }
            if ecc < r_hi {
                r_hi = ecc;
                r_arg = source;
            }

            // Certification: swept nodes are exact, so only unswept ones can
            // still beat the best swept eccentricities.
            let mut diameter_settled = true;
            let mut radius_settled = true;
            for v in 0..n {
                if swept[v] {
                    continue;
                }
                if hi[v] > d_lo {
                    diameter_settled = false;
                }
                if lo[v] < r_hi {
                    radius_settled = false;
                }
            }
            if diameter_settled && radius_settled {
                break;
            }

            // Next source: alternate between the max-upper-bound node (a far
            // node whose sweep can raise `D_lo` and whose large eccentricity
            // raises `lo` around it) and the min-lower-bound node (a central
            // node whose small eccentricity shrinks `hi` around it). Both
            // picks tighten both objectives — a peripheral sweep certifies
            // radius bounds near itself, a central sweep certifies diameter
            // bounds near itself — so the alternation continues even after
            // one objective settles: on near-regular graphs (all
            // eccentricities within 1–2 of each other) certification is a
            // covering process, and feeding it only peripheral sources
            // degrades to Θ(n) sweeps.
            let pick_diameter = diameter_turn;
            diameter_turn = !diameter_turn;
            let next = if pick_diameter {
                (0..n)
                    .filter(|&v| !swept[v])
                    .max_by_key(|&v| (hi[v], tot[v], Reverse(v)))
            } else {
                (0..n)
                    .filter(|&v| !swept[v])
                    .min_by_key(|&v| (lo[v], tot[v], v))
            };
            match next {
                Some(v) => source = v,
                None => break, // everything swept: bounds are all exact
            }
        }

        SweepResult {
            diameter: Dist::new(d_lo),
            radius: Dist::new(r_hi),
            diameter_witness: d_arg,
            radius_witness: r_arg,
            sweeps,
            n,
        }
    }
}

/// All `n` eccentricities under `metric`, sequentially, reusing one
/// workspace across sources (no per-source allocation after warm-up).
pub fn all_eccentricities<G: CsrGraph>(g: &G, metric: EdgeMetric) -> Vec<Dist> {
    let mut ws = SsspWorkspace::new();
    let mut out = Vec::with_capacity(g.n());
    for v in 0..g.n() {
        let ecc = sweep_dist(&mut ws, g, v, metric)
            .iter()
            .copied()
            .max()
            .unwrap_or(Dist::ZERO);
        out.push(ecc);
    }
    out
}

/// All `n` eccentricities under `metric`, fanned out over the rayon pool.
///
/// Each worker owns a private [`SsspWorkspace`] and writes a contiguous
/// index-ordered chunk of the output, so the result is bit-identical to
/// [`all_eccentricities`] regardless of thread count or scheduling.
#[cfg(feature = "parallel")]
pub fn par_all_eccentricities<G: CsrGraph + Sync>(g: &G, metric: EdgeMetric) -> Vec<Dist> {
    let n = g.n();
    let threads = rayon::current_num_threads().max(1);
    let chunk = n.div_ceil(threads).max(1);
    let mut out = vec![Dist::ZERO; n];
    rayon::scope(|s| {
        for (c, slot) in out.chunks_mut(chunk).enumerate() {
            let start = c * chunk;
            s.spawn(move || {
                let mut ws = SsspWorkspace::new();
                for (i, e) in slot.iter_mut().enumerate() {
                    *e = sweep_dist(&mut ws, g, start + i, metric)
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(Dist::ZERO);
                }
            });
        }
    });
    out
}

/// Folds an eccentricity table into a [`SweepResult`] with the seed
/// tie-breaks: the diameter keeps the *last* maximum (matching
/// `Iterator::max_by_key`) and the radius the *first* minimum (matching
/// `Iterator::min_by_key`).
fn fold_eccentricities(eccs: &[Dist]) -> SweepResult {
    let n = eccs.len();
    if n == 0 {
        return trivial(0);
    }
    let (d_arg, diameter) = eccs
        .iter()
        .copied()
        .enumerate()
        .max_by_key(|&(_, e)| e)
        .expect("non-empty");
    let (r_arg, radius) = eccs
        .iter()
        .copied()
        .enumerate()
        .min_by_key(|&(_, e)| e)
        .expect("non-empty");
    SweepResult {
        diameter,
        radius,
        diameter_witness: d_arg,
        radius_witness: r_arg,
        sweeps: n,
        n,
    }
}

/// Exhaustive `n`-sweep extremes — the reference the pruned path is tested
/// against, and the fallback strategy E9 benchmarks as "brute".
pub fn brute_force_extremes<G: CsrGraph>(g: &G, metric: EdgeMetric) -> SweepResult {
    fold_eccentricities(&all_eccentricities(g, metric))
}

/// Exhaustive extremes with the sweeps fanned out over the rayon pool;
/// bit-identical to [`brute_force_extremes`] by the index-ordered reduction.
#[cfg(feature = "parallel")]
pub fn par_brute_force_extremes<G: CsrGraph + Sync>(g: &G, metric: EdgeMetric) -> SweepResult {
    fold_eccentricities(&par_all_eccentricities(g, metric))
}

/// Pruned extremes with each round's sweeps fanned out over the rayon pool.
///
/// Giant graphs make the `n`-sweep brute-force fan-out useless (10⁶ sweeps
/// is not an option), so this parallelizes the *pruned* strategy instead:
/// each round deterministically selects up to `batch` unswept sources from
/// the current bounds — alternating the diameter pick (max upper bound) and
/// radius pick (min lower bound), same keys and tie-breaks as the
/// sequential loop — sweeps them on worker threads, and merges the distance
/// tables in selection order.
///
/// The returned `diameter`/`radius` are exact and therefore equal to
/// [`extremes_with`] on every input (E11 gates this identity); the batch
/// schedule may sweep a few more sources than the strictly-sequential
/// adaptive loop, and witnesses may name a different (equally valid)
/// extremal node, so `sweeps`/witness fields are not required to match.
///
/// # Panics
///
/// Panics if `batch == 0`.
#[cfg(feature = "parallel")]
pub fn par_extremes_with<G: CsrGraph + Sync>(
    g: &G,
    metric: EdgeMetric,
    batch: usize,
) -> SweepResult {
    assert!(batch > 0, "batch must be positive");
    let n = g.n();
    if n <= 1 {
        return trivial(n);
    }
    let mut lo = vec![0u64; n];
    let mut hi = vec![u64::MAX; n];
    let mut tot = vec![0u64; n];
    let mut swept = vec![false; n];
    let mut sweeps = 0usize;
    let mut d_lo = 0u64;
    let mut d_arg = 0usize;
    let mut r_hi = u64::MAX;
    let mut r_arg = 0usize;
    let mut diameter_turn = true;
    let mut first_round = true;

    let mut sources: Vec<NodeId> = Vec::new();
    let mut tables: Vec<Vec<Dist>> = Vec::new();
    loop {
        // Deterministic batch selection from the current bounds.
        sources.clear();
        if first_round {
            if let Some(hub) = (0..n).max_by_key(|&v| (g.degree(v), Reverse(v))) {
                sources.push(hub);
            }
        }
        while sources.len() < batch {
            let pick_diameter = diameter_turn;
            diameter_turn = !diameter_turn;
            let fresh = |v: &NodeId| !swept[*v] && !sources.contains(v);
            let next = if pick_diameter {
                (0..n)
                    .filter(fresh)
                    .max_by_key(|&v| (hi[v], tot[v], Reverse(v)))
            } else {
                (0..n).filter(fresh).min_by_key(|&v| (lo[v], tot[v], v))
            };
            match next {
                Some(v) => sources.push(v),
                None => break,
            }
        }
        if sources.is_empty() {
            break; // everything swept: bounds are all exact
        }

        // Fan the batch out; one private workspace and output table per
        // source, written in index order so the merge is deterministic.
        tables.clear();
        tables.resize(sources.len(), Vec::new());
        rayon::scope(|s| {
            for (slot, &src) in tables.iter_mut().zip(&sources) {
                s.spawn(move || {
                    let mut ws = SsspWorkspace::new();
                    *slot = sweep_dist(&mut ws, g, src, metric).to_vec();
                });
            }
        });

        // Merge in selection order — identical bound updates to running the
        // same sources sequentially.
        for (dist, &source) in tables.iter().zip(&sources) {
            let mut ecc = 0u64;
            for &d in dist {
                match d.finite() {
                    Some(x) => ecc = ecc.max(x),
                    None => return disconnected(n, sweeps + 1),
                }
            }
            sweeps += 1;
            swept[source] = true;
            for v in 0..n {
                let dv = dist[v].expect_finite();
                tot[v] = tot[v].saturating_add(dv);
                lo[v] = lo[v].max(dv).max(ecc - dv);
                hi[v] = hi[v].min(ecc.saturating_add(dv));
            }
            if ecc > d_lo || sweeps == 1 {
                d_lo = ecc;
                d_arg = source;
            }
            if ecc < r_hi {
                r_hi = ecc;
                r_arg = source;
            }
        }
        first_round = false;

        let mut diameter_settled = true;
        let mut radius_settled = true;
        for v in 0..n {
            if swept[v] {
                continue;
            }
            if hi[v] > d_lo {
                diameter_settled = false;
            }
            if lo[v] < r_hi {
                radius_settled = false;
            }
        }
        if diameter_settled && radius_settled {
            break;
        }
    }

    SweepResult {
        diameter: Dist::new(d_lo),
        radius: Dist::new(r_hi),
        diameter_witness: d_arg,
        radius_witness: r_arg,
        sweeps,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::WeightedGraph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_matches_brute(g: &WeightedGraph, metric: EdgeMetric) {
        let pruned = extremes_with(g, metric);
        let brute = brute_force_extremes(g, metric);
        assert_eq!(pruned.diameter, brute.diameter, "diameter on {g}");
        assert_eq!(pruned.radius, brute.radius, "radius on {g}");
        assert!(pruned.sweeps <= g.n().max(1), "sweep budget on {g}");
        if g.n() > 0 {
            let eccs = all_eccentricities(g, metric);
            assert_eq!(eccs[pruned.diameter_witness], pruned.diameter);
            assert_eq!(eccs[pruned.radius_witness], pruned.radius);
        }
    }

    #[test]
    fn named_families_match_brute_force() {
        let graphs = [
            generators::path(6, 2),
            generators::star(9, 4),
            generators::cycle(8, 1),
            generators::cycle(9, 3),
            generators::complete(7, 5),
            generators::grid(4, 5, 2),
            generators::barbell(5, 3, 2),
            generators::binary_tree(4, 3),
        ];
        for g in &graphs {
            assert_matches_brute(g, EdgeMetric::Weighted);
            assert_matches_brute(g, EdgeMetric::Unweighted);
        }
    }

    #[test]
    fn random_graphs_match_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for trial in 0..15 {
            let n = 12 + 3 * trial;
            let g = generators::erdos_renyi_connected(n, 0.12, 9, &mut rng);
            assert_matches_brute(&g, EdgeMetric::Weighted);
            assert_matches_brute(&g, EdgeMetric::Unweighted);
        }
    }

    #[test]
    fn pruning_beats_brute_on_star_like_graphs() {
        let g = generators::star(257, 4);
        let r = extremes(&g);
        assert_eq!(r.diameter, Dist::from(8u64));
        assert_eq!(r.radius, Dist::from(4u64));
        assert_eq!(r.radius_witness, 0, "the hub is the unique center");
        assert!(
            r.sweeps <= 4,
            "a star settles in a few sweeps, took {}",
            r.sweeps
        );
    }

    #[test]
    fn disconnected_graphs_report_infinity_with_seed_witnesses() {
        let g = WeightedGraph::from_edges(5, [(0, 1, 2), (2, 3, 7)]).unwrap();
        for metric in [EdgeMetric::Weighted, EdgeMetric::Unweighted] {
            let r = extremes_with(&g, metric);
            let b = brute_force_extremes(&g, metric);
            assert_eq!(r.diameter, Dist::INFINITY);
            assert_eq!(r.radius, Dist::INFINITY);
            assert_eq!(r.diameter_witness, b.diameter_witness);
            assert_eq!(r.radius_witness, b.radius_witness);
            assert_eq!(r.sweeps, 1, "disconnection is detected on sweep one");
            assert!(!r.is_connected());
        }
    }

    /// `n = 0`: every entry point returns the zero-sweep trivial result
    /// instead of panicking on an empty node set.
    #[test]
    fn empty_graph_is_trivial() {
        let empty = WeightedGraph::from_edges(0, []).unwrap();
        for metric in [EdgeMetric::Weighted, EdgeMetric::Unweighted] {
            let r = extremes_with(&empty, metric);
            assert_eq!(r, trivial(0));
            assert_eq!(r.sweeps, 0, "no SSSP sweep runs on an empty graph");
            assert_eq!(brute_force_extremes(&empty, metric), trivial(0));
        }
        assert!(all_eccentricities(&empty, EdgeMetric::Weighted).is_empty());
    }

    /// `n = 1`: a lone node has diameter = radius = 0, is connected, and
    /// is its own (only possible) witness.
    #[test]
    fn single_node_graph_is_trivial() {
        let one = WeightedGraph::from_edges(1, []).unwrap();
        for metric in [EdgeMetric::Weighted, EdgeMetric::Unweighted] {
            let r = extremes_with(&one, metric);
            assert_eq!(r.diameter, Dist::ZERO);
            assert_eq!(r.radius, Dist::ZERO);
            assert_eq!(r.diameter_witness, 0);
            assert_eq!(r.radius_witness, 0);
            assert!(r.is_connected());
            let b = brute_force_extremes(&one, metric);
            assert_eq!((r.diameter, r.radius), (b.diameter, b.radius));
        }
    }

    /// `n = 2` with one edge: the smallest graph the pruned sweep actually
    /// sweeps. Diameter and radius both equal the edge weight (1 hop
    /// unweighted), and pruned/brute-force agree.
    #[test]
    fn single_edge_graph() {
        let g = WeightedGraph::from_edges(2, [(0, 1, 7)]).unwrap();

        let w = extremes(&g);
        assert_eq!(w.diameter, Dist::from(7u64));
        assert_eq!(w.radius, Dist::from(7u64));
        assert!(w.is_connected());
        assert!(w.sweeps >= 1);
        let wb = brute_force_extremes(&g, EdgeMetric::Weighted);
        assert_eq!((w.diameter, w.radius), (wb.diameter, wb.radius));

        let u = extremes_unweighted(&g);
        assert_eq!(u.diameter, Dist::from(1u64));
        assert_eq!(u.radius, Dist::from(1u64));
        let ub = brute_force_extremes(&g, EdgeMetric::Unweighted);
        assert_eq!((u.diameter, u.radius), (ub.diameter, ub.radius));
    }

    /// One workspace reused across graphs of different sizes reproduces the
    /// per-call results bit-for-bit (stale bounds from a larger graph must
    /// never leak into a smaller one).
    #[test]
    fn reused_workspace_matches_fresh_calls() {
        let mut ws = SweepWorkspace::new();
        let graphs = [
            generators::grid(5, 6, 3),
            generators::path(4, 7),
            generators::star(33, 2),
            generators::cycle(9, 3),
            generators::path(4, 7),
        ];
        for g in &graphs {
            for metric in [EdgeMetric::Weighted, EdgeMetric::Unweighted] {
                assert_eq!(ws.extremes_into(g, metric), extremes_with(g, metric));
            }
        }
        let disconnected = WeightedGraph::from_edges(5, [(0, 1, 2), (2, 3, 7)]).unwrap();
        assert_eq!(
            ws.extremes_into(&disconnected, EdgeMetric::Weighted),
            extremes_with(&disconnected, EdgeMetric::Weighted)
        );
    }

    /// Batched-parallel pruned sweeps return the same exact D/R values as
    /// the sequential loop on every family, including disconnected and
    /// trivial inputs, for several batch widths.
    #[cfg(feature = "parallel")]
    #[test]
    fn par_extremes_match_sequential_values() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut graphs = vec![
            WeightedGraph::from_edges(0, []).unwrap(),
            WeightedGraph::from_edges(1, []).unwrap(),
            WeightedGraph::from_edges(5, [(0, 1, 2), (2, 3, 7)]).unwrap(),
            generators::path(9, 2),
            generators::star(33, 4),
            generators::cycle(12, 3),
            generators::grid(5, 6, 3),
        ];
        for trial in 0..4 {
            graphs.push(generators::erdos_renyi_connected(
                20 + 5 * trial,
                0.15,
                9,
                &mut rng,
            ));
        }
        for g in &graphs {
            for metric in [EdgeMetric::Weighted, EdgeMetric::Unweighted] {
                let seq = extremes_with(g, metric);
                for batch in [1usize, 2, 4, 7] {
                    let par = par_extremes_with(g, metric, batch);
                    assert_eq!(par.diameter, seq.diameter, "diameter on {g} batch {batch}");
                    assert_eq!(par.radius, seq.radius, "radius on {g} batch {batch}");
                    assert_eq!(par.n, seq.n);
                    if g.n() > 0 && seq.is_connected() {
                        let eccs = all_eccentricities(g, metric);
                        assert_eq!(eccs[par.diameter_witness], par.diameter);
                        assert_eq!(eccs[par.radius_witness], par.radius);
                    }
                }
            }
        }
    }

    #[test]
    fn unweighted_metric_ignores_weights() {
        let g = generators::path(5, 1000);
        let r = extremes_unweighted(&g);
        assert_eq!(r.diameter, Dist::from(4u64));
        assert_eq!(r.radius, Dist::from(2u64));
    }
}
