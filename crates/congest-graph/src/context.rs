//! Shared-immutable graph context for many-seed batch execution.
//!
//! The batch engine (conformance `batch` module, experiment E12) runs many
//! seeds of the same scenario family in lockstep. Everything that depends
//! only on the graph — the graph itself, the unweighted diameter `D_G`, the
//! weighted and unweighted extremes — is *shared-immutable* across the whole
//! batch and computed at most once per family cell. Everything that depends
//! on the seed (RNG streams, Grover measurement tallies, oracle verdicts) is
//! *per-seed mutable* and lives in the batch lanes, not here.
//!
//! [`GraphContext`] is that shared-immutable half: a [`WeightedGraph`] plus
//! lazily-computed, cached derived metrics. All cached quantities are
//! deterministic functions of the graph (pruned [`crate::sweep`] kernels),
//! so reading them through the cache is bit-identical to recomputing them
//! per seed — the invariant the batch-equivalence proptests pin.
//!
//! The caches use [`OnceLock`], so a `&GraphContext` can be shared across
//! batch lanes: whichever lane asks first computes, everyone else reads.

use std::sync::OnceLock;

use crate::graph::WeightedGraph;
use crate::sweep::{self, SweepResult};

/// A graph bundled with lazily-cached derived metrics, shareable across
/// batch lanes (`&GraphContext` is `Send + Sync`).
///
/// # Examples
///
/// ```
/// use congest_graph::{context::GraphContext, generators, metrics};
///
/// let ctx = GraphContext::new(generators::path(6, 2));
/// // Cached answers are bit-identical to the direct kernels.
/// assert_eq!(ctx.extremes().diameter, metrics::diameter(ctx.graph()));
/// assert_eq!(ctx.unweighted_diameter(), Some(5));
/// // A second read hits the cache (no additional sweeps).
/// let first = ctx.extremes() as *const _;
/// assert!(std::ptr::eq(first, ctx.extremes()));
/// ```
#[derive(Debug)]
pub struct GraphContext {
    graph: WeightedGraph,
    extremes: OnceLock<SweepResult>,
    unweighted: OnceLock<SweepResult>,
}

impl GraphContext {
    /// Wrap a graph. No derived metric is computed until first asked for.
    pub fn new(graph: WeightedGraph) -> Self {
        GraphContext {
            graph,
            extremes: OnceLock::new(),
            unweighted: OnceLock::new(),
        }
    }

    /// The shared graph.
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// Weighted diameter/radius/witness extremes (cached pruned sweep,
    /// identical to [`crate::metrics::extremes`]).
    pub fn extremes(&self) -> &SweepResult {
        self.extremes.get_or_init(|| sweep::extremes(&self.graph))
    }

    /// Unweighted (topology) extremes (cached pruned BFS sweep, identical
    /// to [`crate::metrics::unweighted_extremes`]).
    pub fn unweighted_extremes(&self) -> &SweepResult {
        self.unweighted
            .get_or_init(|| sweep::extremes_unweighted(&self.graph))
    }

    /// The unweighted diameter `D_G`, or `None` when disconnected —
    /// cached counterpart of [`crate::metrics::unweighted_diameter`]
    /// (which returns `usize::MAX` for the disconnected case).
    pub fn unweighted_diameter(&self) -> Option<usize> {
        self.unweighted_extremes()
            .diameter
            .finite()
            .map(|d| d as usize)
    }

    /// `true` if any derived metric has been computed yet (for tests and
    /// setup-cost attribution).
    pub fn is_warm(&self) -> bool {
        self.extremes.get().is_some() || self.unweighted.get().is_some()
    }

    /// Compute every cached metric now, so later readers (batch lanes) pay
    /// nothing. Returns `self` for chaining.
    pub fn warm(&self) -> &Self {
        self.extremes();
        self.unweighted_extremes();
        self
    }

    /// Take the graph back out, discarding the caches.
    pub fn into_graph(self) -> WeightedGraph {
        self.graph
    }
}

impl From<WeightedGraph> for GraphContext {
    fn from(graph: WeightedGraph) -> Self {
        GraphContext::new(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, metrics};

    #[test]
    fn cached_metrics_match_direct_kernels() {
        let mut rng = {
            use rand::SeedableRng;
            rand_chacha::ChaCha8Rng::seed_from_u64(21)
        };
        for _ in 0..5 {
            let g = generators::erdos_renyi_connected(20, 0.2, 9, &mut rng);
            let direct = metrics::extremes(&g);
            let direct_u = metrics::unweighted_extremes(&g);
            let ctx = GraphContext::new(g);
            assert_eq!(*ctx.extremes(), direct);
            assert_eq!(*ctx.unweighted_extremes(), direct_u);
            assert_eq!(
                ctx.unweighted_diameter(),
                direct_u.diameter.finite().map(|d| d as usize)
            );
        }
    }

    #[test]
    fn lazy_then_warm() {
        let ctx = GraphContext::new(generators::star(9, 3));
        assert!(!ctx.is_warm());
        ctx.warm();
        assert!(ctx.is_warm());
        assert_eq!(ctx.extremes().radius_witness, 0); // the hub
    }

    #[test]
    fn disconnected_diameter_is_none() {
        let g = crate::WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        let ctx = GraphContext::new(g);
        assert_eq!(ctx.unweighted_diameter(), None);
        assert!(!ctx.extremes().is_connected());
    }

    #[test]
    fn shared_across_threads() {
        let ctx = GraphContext::new(generators::cycle(12, 2));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    assert_eq!(ctx.extremes().diameter, crate::Dist::from(12u64));
                });
            }
        });
    }

    #[test]
    fn into_graph_round_trips() {
        let g = generators::path(4, 1);
        let digest = g.digest();
        let ctx = GraphContext::new(g);
        ctx.warm();
        assert_eq!(ctx.into_graph().digest(), digest);
    }
}
