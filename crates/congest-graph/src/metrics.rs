//! Graph metrics: eccentricity, diameter, radius, hop diameter.
//!
//! These are the quantities the paper computes distributedly; here they are
//! computed exactly and centrally, as ground truth for the approximation
//! guarantees of Theorems 1.1 and for the gadget analyses of Section 4.
//!
//! Since the kernel rework, every diameter/radius/witness query is answered
//! by the pruned [`crate::sweep`] computer (a handful of bound-certified
//! sweeps instead of `n`), and all multi-source loops reuse one
//! [`crate::SsspWorkspace`]. Call [`extremes`] when you need more than one
//! of diameter/radius/witnesses — it answers all four from one shared
//! computation.

use crate::dist::Dist;
use crate::graph::{NodeId, WeightedGraph};
use crate::shortest_path::dijkstra_with_hops;
use crate::sweep::{self, EdgeMetric, SweepResult};
use crate::workspace::SsspWorkspace;

/// The eccentricity `e_{G,w}(v) = max_u d(v, u)` of a single node.
///
/// Returns [`Dist::INFINITY`] when the graph is disconnected.
///
/// # Panics
///
/// Panics if `v >= g.n()`.
pub fn eccentricity(g: &WeightedGraph, v: NodeId) -> Dist {
    SsspWorkspace::new().eccentricity(g, v)
}

/// All eccentricities (`n` workspace-reused Dijkstra sweeps; fanned out over
/// the rayon pool under the `parallel` feature, with bit-identical results).
pub fn eccentricities(g: &WeightedGraph) -> Vec<Dist> {
    #[cfg(feature = "parallel")]
    {
        sweep::par_all_eccentricities(g, EdgeMetric::Weighted)
    }
    #[cfg(not(feature = "parallel"))]
    {
        sweep::all_eccentricities(g, EdgeMetric::Weighted)
    }
}

/// Diameter, radius, and both witnesses from one shared pruned sweep.
///
/// This is the cheapest way to get any two or more of the four extremal
/// quantities; the individual accessors below each rerun the sweep.
///
/// # Examples
///
/// ```
/// use congest_graph::{metrics, generators, Dist};
/// let g = generators::path(5, 3);
/// let r = metrics::extremes(&g);
/// assert_eq!(r.diameter, Dist::from(12u64));
/// assert_eq!(r.radius, Dist::from(6u64));
/// assert!(r.sweeps <= g.n());
/// ```
pub fn extremes(g: &WeightedGraph) -> SweepResult {
    sweep::extremes(g)
}

/// Unweighted (topology) extremes from one shared pruned BFS sweep.
pub fn unweighted_extremes(g: &WeightedGraph) -> SweepResult {
    sweep::extremes_unweighted(g)
}

/// The weighted diameter `D_{G,w} = max_v e(v)`.
///
/// # Examples
///
/// ```
/// use congest_graph::{metrics, generators, Dist};
/// let g = generators::path(5, 3);
/// assert_eq!(metrics::diameter(&g), Dist::from(12u64));
/// ```
pub fn diameter(g: &WeightedGraph) -> Dist {
    sweep::extremes(g).diameter
}

/// The weighted radius `R_{G,w} = min_v e(v)`.
///
/// # Examples
///
/// ```
/// use congest_graph::{metrics, generators, Dist};
/// let g = generators::path(5, 3);
/// assert_eq!(metrics::radius(&g), Dist::from(6u64));
/// ```
pub fn radius(g: &WeightedGraph) -> Dist {
    sweep::extremes(g).radius
}

/// The *unweighted* diameter `D_G` — the diameter of the topology with all
/// weights set to 1, computed by pruned BFS sweeps (no intermediate
/// unweighted graph is materialized). This is the network parameter `D` in
/// all of the paper's round bounds.
///
/// Returns `usize::MAX` for disconnected graphs.
pub fn unweighted_diameter(g: &WeightedGraph) -> usize {
    match sweep::extremes_unweighted(g).diameter.finite() {
        Some(d) => d as usize,
        None => usize::MAX,
    }
}

/// A node of maximum eccentricity (`v*` in Section 3.1) together with its
/// eccentricity. Returns node 0 with eccentricity 0 for single-node graphs.
pub fn diameter_witness(g: &WeightedGraph) -> (NodeId, Dist) {
    let r = sweep::extremes(g);
    (r.diameter_witness, r.diameter)
}

/// A node of minimum eccentricity (a *center*) with its eccentricity.
pub fn radius_witness(g: &WeightedGraph) -> (NodeId, Dist) {
    let r = sweep::extremes(g);
    (r.radius_witness, r.radius)
}

/// The hop distance `h_{G,w}(u, v)`: the minimum number of edges over all
/// *shortest* (by weight) paths between `u` and `v` (Section 3.1).
///
/// Returns `usize::MAX` if `v` is unreachable from `u`.
///
/// # Panics
///
/// Panics if `u >= g.n()`.
pub fn hop_distance(g: &WeightedGraph, u: NodeId, v: NodeId) -> usize {
    let (_, hops) = dijkstra_with_hops(g, u);
    hops[v]
}

/// The hop diameter `H_{G,w} = max_{u,v} h(u, v)` (Section 3.1), by `n`
/// workspace-reused hop-annotated Dijkstra sweeps.
///
/// Returns `usize::MAX` for disconnected graphs.
pub fn hop_diameter(g: &WeightedGraph) -> usize {
    let mut ws = SsspWorkspace::new();
    let mut best = 0usize;
    for u in g.nodes() {
        let (_, hops) = ws.dijkstra_with_hops_into(g, u);
        for &h in hops {
            if h == usize::MAX {
                return usize::MAX;
            }
            best = best.max(h);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_metrics() {
        let g = generators::path(6, 2);
        assert_eq!(diameter(&g), Dist::from(10u64));
        assert_eq!(radius(&g), Dist::from(6u64)); // center at node 2 or 3
        assert_eq!(unweighted_diameter(&g), 5);
        assert_eq!(hop_diameter(&g), 5);
    }

    #[test]
    fn star_metrics() {
        let g = generators::star(7, 4);
        assert_eq!(diameter(&g), Dist::from(8u64));
        assert_eq!(radius(&g), Dist::from(4u64)); // the hub
        assert_eq!(radius_witness(&g).0, 0);
        assert_eq!(unweighted_diameter(&g), 2);
    }

    #[test]
    fn cycle_metrics() {
        let g = generators::cycle(8, 1);
        assert_eq!(diameter(&g), Dist::from(4u64));
        assert_eq!(radius(&g), Dist::from(4u64)); // vertex-transitive
    }

    #[test]
    fn diameter_at_least_radius() {
        let mut rng = {
            use rand::SeedableRng;
            rand_chacha::ChaCha8Rng::seed_from_u64(3)
        };
        for _ in 0..10 {
            let g = generators::erdos_renyi_connected(20, 0.15, 8, &mut rng);
            let d = diameter(&g);
            let r = radius(&g);
            assert!(r <= d);
            // Classic fact for metric spaces: D ≤ 2R.
            assert!(d <= r.saturating_mul(2));
        }
    }

    #[test]
    fn witness_achieves_diameter() {
        let mut rng = {
            use rand::SeedableRng;
            rand_chacha::ChaCha8Rng::seed_from_u64(9)
        };
        let g = generators::erdos_renyi_connected(18, 0.2, 5, &mut rng);
        let (v, e) = diameter_witness(&g);
        assert_eq!(eccentricity(&g, v), e);
        assert_eq!(e, diameter(&g));
    }

    #[test]
    fn extremes_bundles_all_four_queries() {
        let mut rng = {
            use rand::SeedableRng;
            rand_chacha::ChaCha8Rng::seed_from_u64(14)
        };
        let g = generators::erdos_renyi_connected(25, 0.15, 6, &mut rng);
        let r = extremes(&g);
        assert_eq!(r.diameter, diameter(&g));
        assert_eq!(r.radius, radius(&g));
        assert_eq!(eccentricity(&g, r.diameter_witness), r.diameter);
        assert_eq!(eccentricity(&g, r.radius_witness), r.radius);
        let eccs = eccentricities(&g);
        assert_eq!(r.diameter, eccs.iter().copied().max().unwrap());
        assert_eq!(r.radius, eccs.iter().copied().min().unwrap());
    }

    #[test]
    fn unweighted_extremes_match_unweighted_view() {
        let g = generators::star(9, 7);
        let u = g.unweighted_view();
        let r = unweighted_extremes(&g);
        assert_eq!(r.diameter, diameter(&u));
        assert_eq!(r.radius, radius(&u));
    }

    #[test]
    fn hop_distance_prefers_fewest_edges_among_shortest() {
        // Shortest 0->3 distance is 4 via either 0-1-2-3 (hops 3) or 0-3 (w=4, hops 1).
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 2), (0, 3, 4)]).unwrap();
        assert_eq!(hop_distance(&g, 0, 3), 1);
        // But with the direct edge heavier, the 3-hop path is the only shortest one.
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 2), (0, 3, 5)]).unwrap();
        assert_eq!(hop_distance(&g, 0, 3), 3);
    }

    #[test]
    fn disconnected_graph_metrics() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        assert_eq!(diameter(&g), Dist::INFINITY);
        assert_eq!(unweighted_diameter(&g), usize::MAX);
        assert_eq!(hop_diameter(&g), usize::MAX);
    }

    use crate::graph::WeightedGraph;
}
