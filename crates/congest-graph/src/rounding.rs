//! Weight rounding and the approximate bounded-hop distance `d̃^ℓ`
//! (paper Lemma 3.2 / Nanongkai's Theorem 3.3).
//!
//! For an integer `i ≥ 0` the rounded weights are
//! `w_i(e) = ⌈2ℓ·w(e) / (ε·2^i)⌉`, and
//!
//! ```text
//! d̃^ℓ(u,v) = min_i { d_{G,w_i}(u,v)·ε·2^i/(2ℓ)  :  d_{G,w_i}(u,v) ≤ (1+2/ε)ℓ }
//! ```
//!
//! Lemma 3.2 guarantees `d(u,v) ≤ d̃^ℓ(u,v) ≤ (1+ε)·d^ℓ(u,v)`.
//!
//! Approximate distances are real-valued (the scaling by `ε·2^i/(2ℓ)` leaves
//! the integers); we carry them as `f64`, which is exact for the integer
//! numerators involved (all `< 2^53`) and introduces only machine-epsilon
//! noise, far below the `ε ≥ 1/log n` the guarantees are stated for.

use crate::dist::Dist;
use crate::graph::{NodeId, WeightedGraph};
use crate::workspace::SsspWorkspace;

/// A real-valued approximate distance (`f64::INFINITY` = unreachable).
pub type ApproxDist = f64;

/// Parameters of the rounding scheme: the hop budget `ℓ` and the accuracy
/// `ε` (the paper sets `ε = 1/log n`, Eq. (1)).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct RoundingScheme {
    /// Hop budget `ℓ ≥ 1`.
    pub ell: usize,
    /// Accuracy parameter `ε ∈ (0, 1]`.
    pub eps: f64,
}

impl RoundingScheme {
    /// Creates a scheme.
    ///
    /// # Panics
    ///
    /// Panics unless `ell ≥ 1` and `0 < eps ≤ 1`.
    pub fn new(ell: usize, eps: f64) -> RoundingScheme {
        assert!(ell >= 1, "hop budget ℓ must be ≥ 1");
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0, 1]");
        RoundingScheme { ell, eps }
    }

    /// The paper's choice `ε = 1/log₂ n` (Eq. (1)), clamped to `(0, 1]`.
    pub fn paper_eps(n: usize) -> f64 {
        let lg = (n.max(4) as f64).log2();
        (1.0 / lg).min(1.0)
    }

    /// The rounded weight `w_i(e) = ⌈2ℓ·w(e)/(ε·2^i)⌉` for scale `i`.
    ///
    /// Returned as `u64` (it is a positive integer by construction).
    pub fn rounded_weight(&self, i: u32, w: u64) -> u64 {
        let denom = self.eps * (2f64).powi(i as i32);
        let val = (2.0 * self.ell as f64 * w as f64) / denom;
        (val.ceil() as u64).max(1)
    }

    /// The graph `(G, w_i)` for scale `i`.
    pub fn rounded_graph(&self, g: &WeightedGraph, i: u32) -> WeightedGraph {
        g.map_weights(|w| self.rounded_weight(i, w))
    }

    /// The scale factor mapping a `w_i`-distance back to original units:
    /// `ε·2^i / (2ℓ)`.
    pub fn unscale(&self, i: u32) -> f64 {
        self.eps * (2f64).powi(i as i32) / (2.0 * self.ell as f64)
    }

    /// The distance threshold `(1 + 2/ε)·ℓ` below which a scale is accepted.
    pub fn threshold(&self) -> f64 {
        (1.0 + 2.0 / self.eps) * self.ell as f64
    }

    /// The largest scale index used by Algorithm 1: `⌈log₂(2nW/ε)⌉`.
    pub fn max_scale(&self, n: usize, max_weight: u64) -> u32 {
        let v = 2.0 * n as f64 * max_weight as f64 / self.eps;
        v.log2().ceil().max(0.0) as u32
    }
}

/// Computes `d̃^ℓ_{G,w}(s, ·)` for every node (centralized reference for the
/// distributed Algorithm 1 / Algorithm 3).
///
/// Returns `f64::INFINITY` for nodes whose every scale exceeds the threshold
/// (in particular nodes farther than `ℓ` hops contribute nothing here — the
/// skeleton machinery of Lemma 3.3 covers them).
///
/// # Panics
///
/// Panics if `s >= g.n()`.
///
/// # Examples
///
/// ```
/// use congest_graph::{rounding::{approx_hop_bounded, RoundingScheme}, generators};
/// let g = generators::path(8, 5);
/// let scheme = RoundingScheme::new(8, 0.25);
/// let d = approx_hop_bounded(&g, 0, scheme);
/// // d̃ is a (1+ε)-approximation from above of the true distance 35.
/// assert!(d[7] >= 35.0 && d[7] <= 35.0 * 1.25 + 1e-9);
/// ```
pub fn approx_hop_bounded(g: &WeightedGraph, s: NodeId, scheme: RoundingScheme) -> Vec<ApproxDist> {
    let mut ws = SsspWorkspace::new();
    let mut best = vec![f64::INFINITY; g.n()];
    approx_hop_bounded_into(g, s, scheme, &mut ws, &mut best);
    best
}

/// Workspace-backed version of [`approx_hop_bounded`], for callers that run
/// many sources (the skeleton loops of [`crate::overlay`]): the per-scale
/// Dijkstra runs through `ws` with the rounded weights `w_i` applied
/// on the fly, so no intermediate graph is materialized and nothing is
/// allocated after warm-up.
///
/// `out` is overwritten with `d̃^ℓ(s, ·)`.
///
/// # Panics
///
/// Panics if `s >= g.n()` or `out.len() != g.n()`.
pub fn approx_hop_bounded_into(
    g: &WeightedGraph,
    s: NodeId,
    scheme: RoundingScheme,
    ws: &mut SsspWorkspace,
    out: &mut [ApproxDist],
) {
    assert!(s < g.n(), "source {s} out of range");
    assert_eq!(out.len(), g.n(), "output buffer must cover every node");
    out.fill(f64::INFINITY);
    let threshold = scheme.threshold();
    let imax = scheme.max_scale(g.n(), g.max_weight());
    for i in 0..=imax {
        // Rounded weights are applied during relaxation; cloning the graph
        // per scale (the seed behavior) is gone.
        let di = ws.dijkstra_mapped_into(g, s, |w| scheme.rounded_weight(i, w));
        let unscale = scheme.unscale(i);
        for (v, d) in di.iter().enumerate() {
            if let Some(d) = d.finite() {
                if (d as f64) <= threshold {
                    let approx = d as f64 * unscale;
                    if approx < out[v] {
                        out[v] = approx;
                    }
                }
            }
        }
    }
}

/// Converts an exact [`Dist`] to the `f64` domain of approximate distances.
pub fn dist_to_f64(d: Dist) -> ApproxDist {
    d.as_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::shortest_path::{dijkstra, hop_bounded};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rounded_weight_positive_and_monotone_in_scale() {
        let s = RoundingScheme::new(10, 0.5);
        let w0 = s.rounded_weight(0, 7);
        let w3 = s.rounded_weight(3, 7);
        assert!(
            w0 >= w3,
            "larger scale means coarser (smaller) rounded weights"
        );
        assert!(w3 >= 1);
    }

    #[test]
    fn unscale_inverts_rounding_up_to_eps() {
        let s = RoundingScheme::new(16, 0.25);
        for i in 0..8 {
            for w in [1u64, 3, 17, 1000] {
                let approx = s.rounded_weight(i, w) as f64 * s.unscale(i);
                assert!(approx >= w as f64 - 1e-9, "rounding never underestimates");
            }
        }
    }

    /// Lemma 3.2: `d ≤ d̃^ℓ ≤ (1+ε)·d^ℓ` on random weighted graphs.
    #[test]
    fn lemma_3_2_sandwich() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for trial in 0..8 {
            let g = generators::erdos_renyi_connected(18, 0.18, 20, &mut rng);
            let eps = 0.3;
            let ell = 6;
            let scheme = RoundingScheme::new(ell, eps);
            for s in [0usize, 7] {
                let exact = dijkstra(&g, s);
                let hop = hop_bounded(&g, s, ell);
                let approx = approx_hop_bounded(&g, s, scheme);
                for v in g.nodes() {
                    let d = exact[v].as_f64();
                    let dl = hop[v].as_f64();
                    let a = approx[v];
                    assert!(a >= d - 1e-6, "trial {trial} s={s} v={v}: d̃={a} < d={d}");
                    if dl.is_finite() {
                        assert!(
                            a <= (1.0 + eps) * dl + 1e-6,
                            "trial {trial} s={s} v={v}: d̃={a} > (1+ε)d^ℓ={}",
                            (1.0 + eps) * dl
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn far_nodes_may_be_infinite_but_close_ones_are_finite() {
        let g = generators::path(20, 1);
        let scheme = RoundingScheme::new(3, 0.5);
        let a = approx_hop_bounded(&g, 0, scheme);
        assert!(a[1].is_finite());
        assert!(a[3].is_finite());
        // Node 19 is 19 hops away; with ℓ=3 and threshold (1+2/ε)ℓ = 15 rounded
        // hops it is unreachable at every accepted scale... except coarse scales
        // can still admit it; the guarantee is only the sandwich, so just check
        // the lower bound holds.
        if a[19].is_finite() {
            assert!(a[19] >= 19.0 - 1e-6);
        }
    }

    /// The workspace-backed path (on-the-fly weight mapping) must agree with
    /// the seed strategy of materializing `(G, w_i)` per scale.
    #[test]
    fn into_variant_matches_materialized_rounding() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = generators::erdos_renyi_connected(16, 0.2, 15, &mut rng);
        let scheme = RoundingScheme::new(5, 0.5);
        let threshold = scheme.threshold();
        let imax = scheme.max_scale(g.n(), g.max_weight());
        for s in [0usize, 8, 15] {
            let mut seed_best = vec![f64::INFINITY; g.n()];
            for i in 0..=imax {
                let gi = scheme.rounded_graph(&g, i);
                let di = dijkstra(&gi, s);
                for v in g.nodes() {
                    if let Some(d) = di[v].finite() {
                        if (d as f64) <= threshold {
                            seed_best[v] = seed_best[v].min(d as f64 * scheme.unscale(i));
                        }
                    }
                }
            }
            assert_eq!(approx_hop_bounded(&g, s, scheme), seed_best, "source {s}");
        }
    }

    #[test]
    fn paper_eps_shrinks_with_n() {
        assert!(RoundingScheme::paper_eps(1 << 20) < RoundingScheme::paper_eps(16));
        assert!(RoundingScheme::paper_eps(4) <= 1.0);
    }

    #[test]
    fn max_scale_covers_heaviest_path() {
        let s = RoundingScheme::new(4, 0.5);
        let imax = s.max_scale(100, 1000);
        // At the max scale, even n·W fits under the threshold after rounding.
        let total = 100u64 * 1000;
        let rounded = s.rounded_weight(imax, total);
        assert!((rounded as f64) <= s.threshold() + 2.0 * s.ell as f64);
    }
}
