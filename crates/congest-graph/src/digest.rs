//! Stable content digests of graphs.
//!
//! [`GraphDigest`] is a 64-bit FNV-1a hash over a graph's *canonical* form:
//! the node count followed by the deduplicated CSR-ordered edge list
//! (`u < v`, sorted by `(u, v)`, parallel edges merged to the minimum
//! weight) that [`crate::GraphBuilder::build`] produces. Because the
//! canonicalization is insertion-order independent, any two builds of the
//! same logical graph — whatever order the edges were added in, however
//! parallel edges were supplied — hash identically (pinned by a proptest in
//! `tests/properties.rs`).
//!
//! The digest is the graph half of the serving layer's content-addressed
//! cache key and doubles as a provenance stamp for `BENCH_*.json` rows.
//!
//! # Examples
//!
//! ```
//! use congest_graph::WeightedGraph;
//! let a = WeightedGraph::from_edges(3, [(0, 1, 2), (1, 2, 3)]).unwrap();
//! let b = WeightedGraph::from_edges(3, [(2, 1, 3), (1, 0, 2), (0, 1, 9)]).unwrap();
//! assert_eq!(a.digest(), b.digest()); // order + parallel-edge insensitive
//! assert_eq!(a.digest().to_hex().len(), 16);
//! ```

use crate::graph::WeightedGraph;
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A stable 64-bit content hash of a [`WeightedGraph`].
///
/// Equal digests mean byte-identical canonical edge lists; the `Display`
/// form is the fixed-width 16-digit lowercase hex used in cache keys.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GraphDigest(pub u64);

impl GraphDigest {
    /// The digest as fixed-width lowercase hex (16 digits).
    pub fn to_hex(self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for GraphDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn fnv_u64(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl WeightedGraph {
    /// The stable FNV-1a content digest of this graph.
    ///
    /// For memory-mapped graphs this returns the digest recorded in the
    /// file header in `O(1)` (the writer computed it from the same
    /// canonical form); otherwise it streams the content in `O(m)`. Use
    /// [`WeightedGraph::recompute_digest`] to force the streaming path —
    /// e.g. [`crate::io`]'s verified open compares the two.
    pub fn digest(&self) -> GraphDigest {
        match self.mapped() {
            Some(m) => GraphDigest(m.header().digest),
            None => self.recompute_digest(),
        }
    }

    /// The digest recomputed from the CSR content, ignoring any cached
    /// header value: streams `n` and every canonical edge triple through
    /// the hash without allocating; `O(m)` time.
    pub fn recompute_digest(&self) -> GraphDigest {
        let mut hash = fnv_u64(FNV_OFFSET, self.n() as u64);
        for e in self.edges() {
            hash = fnv_u64(hash, e.u as u64);
            hash = fnv_u64(hash, e.v as u64);
            hash = fnv_u64(hash, e.w);
        }
        GraphDigest(hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn digest_is_deterministic_and_distinguishes_graphs() {
        let a = generators::path(6, 2);
        let b = generators::path(6, 2);
        assert_eq!(a.digest(), b.digest());
        // Different weight → different digest.
        let c = generators::path(6, 3);
        assert_ne!(a.digest(), c.digest());
        // Different topology, same node count → different digest.
        let d = generators::cycle(6, 2);
        assert_ne!(a.digest(), d.digest());
        // Extra isolated node changes the digest even with equal edges.
        let e = WeightedGraph::from_edges(7, a.edges().map(|e| (e.u, e.v, e.w))).unwrap();
        assert_ne!(a.digest(), e.digest());
    }

    #[test]
    fn hex_form_is_fixed_width() {
        let g = WeightedGraph::from_edges(2, [(0, 1, 1)]).unwrap();
        let hex = g.digest().to_hex();
        assert_eq!(hex.len(), 16);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(format!("{}", g.digest()), hex);
    }

    #[test]
    fn empty_graph_digest_is_stable() {
        let a = WeightedGraph::from_edges(0, []).unwrap();
        let b = WeightedGraph::from_edges(0, []).unwrap();
        assert_eq!(a.digest(), b.digest());
    }
}
