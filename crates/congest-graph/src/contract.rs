//! Edge contraction (paper Lemma 4.3).
//!
//! The lower-bound gadgets are analyzed after contracting every weight-1
//! edge: merged endpoints become one node, parallel edges keep the lowest
//! weight, and Lemma 4.3 guarantees
//! `D_{G'} ≤ D_{G} ≤ D_{G'} + n` (same for the radius).

use crate::graph::{GraphBuilder, NodeId, Weight, WeightedGraph};

/// The result of contracting a set of edges.
#[derive(Clone, Debug)]
pub struct Contraction {
    /// The contracted graph `G'`.
    pub graph: WeightedGraph,
    /// For each original node, the node of `G'` it was merged into.
    pub class_of: Vec<NodeId>,
    /// For each node of `G'`, the original nodes merged into it.
    pub members: Vec<Vec<NodeId>>,
}

impl Contraction {
    /// The `G'`-node an original node maps to.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the original graph.
    pub fn image(&self, v: NodeId) -> NodeId {
        self.class_of[v]
    }
}

/// Contracts every edge satisfying `should_contract`, merging endpoint
/// classes (union-find) and keeping the minimum weight among parallel edges,
/// exactly as in the paper's Section 4.2.
///
/// Self-loops created by contraction are dropped.
pub fn contract_edges(
    g: &WeightedGraph,
    mut should_contract: impl FnMut(NodeId, NodeId, Weight) -> bool,
) -> Contraction {
    let n = g.n();
    let mut parent: Vec<NodeId> = (0..n).collect();
    fn find(parent: &mut [NodeId], v: NodeId) -> NodeId {
        let mut root = v;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = v;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for e in g.edges() {
        if should_contract(e.u, e.v, e.w) {
            let (ru, rv) = (find(&mut parent, e.u), find(&mut parent, e.v));
            if ru != rv {
                parent[ru.max(rv)] = ru.min(rv);
            }
        }
    }
    // Compact class ids, keeping original order of representatives.
    let mut class_of = vec![usize::MAX; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    for v in 0..n {
        let r = find(&mut parent, v);
        if class_of[r] == usize::MAX {
            class_of[r] = members.len();
            members.push(Vec::new());
        }
        class_of[v] = class_of[r];
        members[class_of[v]].push(v);
    }
    let mut b = GraphBuilder::new(members.len());
    for e in g.edges() {
        let (cu, cv) = (class_of[e.u], class_of[e.v]);
        if cu != cv {
            b.add_edge(cu, cv, e.w); // builder keeps min over parallels
        }
    }
    let graph = b.build().expect("contracted graph is valid");
    Contraction {
        graph,
        class_of,
        members,
    }
}

/// Contracts all edges of weight exactly 1 — the operation of Lemma 4.3.
///
/// # Examples
///
/// ```
/// use congest_graph::{contract, WeightedGraph, metrics, Dist};
/// // 0 -1- 1 -5- 2 -1- 3 : contracting weight-1 edges leaves one weight-5 edge.
/// let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 5), (2, 3, 1)])?;
/// let c = contract::contract_unit_edges(&g);
/// assert_eq!(c.graph.n(), 2);
/// assert_eq!(metrics::diameter(&c.graph), Dist::from(5u64));
/// # Ok::<(), congest_graph::BuildGraphError>(())
/// ```
pub fn contract_unit_edges(g: &WeightedGraph) -> Contraction {
    contract_edges(g, |_, _, w| w == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Dist;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn contract_path_of_unit_edges_to_point() {
        let g = generators::path(6, 1);
        let c = contract_unit_edges(&g);
        assert_eq!(c.graph.n(), 1);
        assert_eq!(c.graph.m(), 0);
        assert_eq!(c.members[0].len(), 6);
    }

    #[test]
    fn parallel_edges_keep_minimum_after_contraction() {
        // Square: 0-1 (w1), 2-3 (w1), 0-2 (w7), 1-3 (w4). Contract unit edges:
        // classes {0,1} and {2,3}; the two cross edges become parallel, keep 4.
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1), (0, 2, 7), (1, 3, 4)]).unwrap();
        let c = contract_unit_edges(&g);
        assert_eq!(c.graph.n(), 2);
        assert_eq!(c.graph.m(), 1);
        assert_eq!(c.graph.edge_weight(0, 1), Some(4));
    }

    #[test]
    fn image_is_consistent_with_members() {
        let g = WeightedGraph::from_edges(5, [(0, 1, 1), (1, 2, 3), (2, 3, 1), (3, 4, 2)]).unwrap();
        let c = contract_unit_edges(&g);
        for (class, mem) in c.members.iter().enumerate() {
            for &v in mem {
                assert_eq!(c.image(v), class);
            }
        }
        let total: usize = c.members.iter().map(Vec::len).sum();
        assert_eq!(total, g.n());
    }

    /// Lemma 4.3: `D_{G'} ≤ D_G ≤ D_{G'} + n` and the same for radius.
    #[test]
    fn lemma_4_3_sandwich_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for trial in 0..20 {
            let g = generators::erdos_renyi_connected(16, 0.12, 3, &mut rng);
            let c = contract_unit_edges(&g);
            let (eg, ec) = (
                crate::metrics::extremes(&g),
                crate::metrics::extremes(&c.graph),
            );
            let (dg, dc) = (eg.diameter, ec.diameter);
            let (rg, rc) = (eg.radius, ec.radius);
            let n = Dist::from(g.n() as u64);
            assert!(dc <= dg, "trial {trial}: D' ≤ D");
            assert!(dg <= dc + n, "trial {trial}: D ≤ D' + n");
            assert!(rc <= rg, "trial {trial}: R' ≤ R");
            assert!(rg <= rc + n, "trial {trial}: R ≤ R' + n");
        }
    }

    #[test]
    fn contract_nothing_is_identity_shape() {
        let g = generators::grid(3, 3, 5);
        let c = contract_edges(&g, |_, _, _| false);
        assert_eq!(c.graph.n(), g.n());
        assert_eq!(c.graph.m(), g.m());
    }

    use crate::graph::WeightedGraph;
}
