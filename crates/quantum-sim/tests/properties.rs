//! Property-based tests of the quantum substrate: statevector unitarity,
//! the analytic Grover model against the statevector on arbitrary marked
//! sets, and the search procedures' contracts.

use proptest::prelude::*;
use quantum_sim::grover;
use quantum_sim::search::{bbht, durr_hoyer_max, durr_hoyer_min, lemma_3_1_budget};
use quantum_sim::statevector::StateVector;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All gates preserve the norm.
    #[test]
    fn gates_are_unitary(ops in proptest::collection::vec((0u8..4, 0u32..4, 0u32..4), 1..30)) {
        let mut s = StateVector::uniform(4);
        for (gate, q, t) in ops {
            match gate {
                0 => s.h(q),
                1 => s.x(q),
                2 => s.z(q),
                _ => if q != t { s.cnot(q, t) },
            }
        }
        prop_assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    /// The analytic model matches the statevector for arbitrary marked sets.
    #[test]
    fn analytic_matches_statevector(mask in 1u64..(1 << 16), iters in 0u32..12) {
        let marked = move |i: usize| (mask >> i) & 1 == 1;
        let t = mask.count_ones() as f64;
        let rho = t / 16.0;
        prop_assume!(rho <= 1.0);
        let s = quantum_sim::statevector::grover_state(4, marked, iters);
        let measured = s.success_probability(marked);
        let analytic = grover::success_probability(rho, u64::from(iters));
        prop_assert!((measured - analytic).abs() < 1e-9, "{measured} vs {analytic}");
    }

    /// BBHT always returns a genuinely marked item and respects its budget.
    #[test]
    fn bbht_contract(seed in any::<u64>(), total in 8usize..512, marked_every in 2usize..32, budget in 1u64..5000) {
        let marked: Vec<usize> = (0..total).step_by(marked_every).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = bbht(total, &marked, &mut rng, budget);
        prop_assert!(out.trace.grover_iterations <= budget);
        if let Some(x) = out.found {
            prop_assert!(marked.contains(&x));
        }
    }

    /// Dürr–Høyer with unlimited budget returns the true extreme.
    #[test]
    fn durr_hoyer_exact_with_unbounded_budget(seed in any::<u64>(), n in 2usize..200) {
        let values: Vec<u64> = (0..n).map(|i| ((i as u64) * 2654435761) % 10007).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mx = durr_hoyer_max(&values, &mut rng, u64::MAX);
        prop_assert_eq!(values[mx.best], *values.iter().max().unwrap());
        let mn = durr_hoyer_min(&values, &mut rng, u64::MAX);
        prop_assert_eq!(values[mn.best], *values.iter().min().unwrap());
    }

    /// The Lemma 3.1 budget is monotone in both arguments.
    #[test]
    fn budget_monotone(rho_a in 0.001f64..0.5, factor in 1.1f64..4.0, delta in 0.01f64..0.4) {
        let rho_b = (rho_a * factor).min(0.99);
        prop_assert!(lemma_3_1_budget(rho_a, delta) >= lemma_3_1_budget(rho_b, delta));
        prop_assert!(lemma_3_1_budget(rho_a, delta / 2.0) >= lemma_3_1_budget(rho_a, delta));
    }

    /// Success probability is periodic-bounded: never exceeds 1, and at the
    /// optimal iteration count beats the initial mass.
    #[test]
    fn success_probability_bounds(t in 1u64..100, logn in 7u32..20) {
        let n = 1u64 << logn;
        prop_assume!(t * 4 < n);
        let rho = t as f64 / n as f64;
        let opt = grover::optimal_iterations(rho);
        let p = grover::success_probability(rho, opt);
        prop_assert!(p <= 1.0 + 1e-12);
        prop_assert!(p >= rho, "amplification must not hurt");
        prop_assert!(p > 0.8, "optimal iterations reach high success for small ρ");
    }
}
