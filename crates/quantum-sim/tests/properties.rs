//! Property-based tests of the quantum substrate: statevector unitarity,
//! the analytic Grover model against the statevector on arbitrary marked
//! sets, and the search procedures' contracts.

use proptest::prelude::*;
use quantum_sim::grover;
use quantum_sim::search::{bbht, durr_hoyer_max, durr_hoyer_min, lemma_3_1_budget};
use quantum_sim::statevector::StateVector;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All gates preserve the norm.
    #[test]
    fn gates_are_unitary(ops in proptest::collection::vec((0u8..4, 0u32..4, 0u32..4), 1..30)) {
        let mut s = StateVector::uniform(4);
        for (gate, q, t) in ops {
            match gate {
                0 => s.h(q),
                1 => s.x(q),
                2 => s.z(q),
                _ => if q != t { s.cnot(q, t) },
            }
        }
        prop_assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    /// The analytic model matches the statevector for arbitrary marked sets.
    #[test]
    fn analytic_matches_statevector(mask in 1u64..(1 << 16), iters in 0u32..12) {
        let marked = move |i: usize| (mask >> i) & 1 == 1;
        let t = mask.count_ones() as f64;
        let rho = t / 16.0;
        prop_assume!(rho <= 1.0);
        let s = quantum_sim::statevector::grover_state(4, marked, iters);
        let measured = s.success_probability(marked);
        let analytic = grover::success_probability(rho, u64::from(iters));
        prop_assert!((measured - analytic).abs() < 1e-9, "{measured} vs {analytic}");
    }

    /// BBHT always returns a genuinely marked item and respects its budget.
    #[test]
    fn bbht_contract(seed in any::<u64>(), total in 8usize..512, marked_every in 2usize..32, budget in 1u64..5000) {
        let marked: Vec<usize> = (0..total).step_by(marked_every).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = bbht(total, &marked, &mut rng, budget);
        prop_assert!(out.trace.grover_iterations <= budget);
        if let Some(x) = out.found {
            prop_assert!(marked.contains(&x));
        }
    }

    /// Dürr–Høyer with unlimited budget returns the true extreme.
    #[test]
    fn durr_hoyer_exact_with_unbounded_budget(seed in any::<u64>(), n in 2usize..200) {
        let values: Vec<u64> = (0..n).map(|i| ((i as u64) * 2654435761) % 10007).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mx = durr_hoyer_max(&values, &mut rng, u64::MAX);
        prop_assert_eq!(values[mx.best], *values.iter().max().unwrap());
        let mn = durr_hoyer_min(&values, &mut rng, u64::MAX);
        prop_assert_eq!(values[mn.best], *values.iter().min().unwrap());
    }

    /// The Lemma 3.1 budget is monotone in both arguments.
    #[test]
    fn budget_monotone(rho_a in 0.001f64..0.5, factor in 1.1f64..4.0, delta in 0.01f64..0.4) {
        let rho_b = (rho_a * factor).min(0.99);
        prop_assert!(lemma_3_1_budget(rho_a, delta) >= lemma_3_1_budget(rho_b, delta));
        prop_assert!(lemma_3_1_budget(rho_a, delta / 2.0) >= lemma_3_1_budget(rho_a, delta));
    }

    /// Success probability is periodic-bounded: never exceeds 1, and at the
    /// optimal iteration count beats the initial mass.
    #[test]
    fn success_probability_bounds(t in 1u64..100, logn in 7u32..20) {
        let n = 1u64 << logn;
        prop_assume!(t * 4 < n);
        let rho = t as f64 / n as f64;
        let opt = grover::optimal_iterations(rho);
        let p = grover::success_probability(rho, opt);
        prop_assert!(p <= 1.0 + 1e-12);
        prop_assert!(p >= rho, "amplification must not hurt");
        prop_assert!(p > 0.8, "optimal iterations reach high success for small ρ");
    }
}

// ---------------------------------------------------------------------------
// Measurement-statistics pinning (conformance satellite): the probability a
// distributed search measures a marked item after k Grover iterations is
// *exactly* `sin²((2k+1)·θ)` with `θ = asin(√(t/|X|))`. Every search the
// CONGEST layer charges rounds for samples from this distribution, so the
// closed form is re-derived here independently (from first principles, not
// by calling back into `grover::angle`) and pinned across search-space
// sizes, marked-set sizes, and the zero-/all-marked edge cases.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `success_probability` equals the closed form for arbitrary `(|X|, t, k)`.
    #[test]
    fn measurement_statistics_match_closed_form(
        total in 1usize..4096,
        t_pick in any::<usize>(),
        k in 0u64..512,
    ) {
        let t = t_pick % (total + 1); // 0..=total: includes both edge cases
        let rho = t as f64 / total as f64;
        let theta = (rho.sqrt()).asin();
        let expected = (((2 * k + 1) as f64) * theta).sin().powi(2);
        let got = grover::success_probability(rho, k);
        prop_assert!((got - expected).abs() < 1e-12, "|X|={total} t={t} k={k}: {got} vs {expected}");
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&got));
    }

    /// Zero marked items: the measurement never succeeds, for any k.
    #[test]
    fn zero_marked_never_succeeds(total in 1usize..10_000, k in 0u64..1000) {
        prop_assert_eq!(grover::success_probability(0.0, k), 0.0);
        let _ = total;
    }

    /// All items marked: θ = π/2, so `sin²((2k+1)·π/2) = 1` — the
    /// measurement succeeds with certainty after *any* number of iterations.
    #[test]
    fn all_marked_always_succeeds(k in 0u64..1000) {
        let p = grover::success_probability(1.0, k);
        prop_assert!((p - 1.0).abs() < 1e-9, "k={k}: {p}");
    }

    /// Empirical check: measuring the *honest statevector* after k
    /// iterations hits the marked set with the closed-form frequency
    /// (binomial concentration, 5σ tolerance), across |X| = 2^qubits and
    /// random marked sets.
    #[test]
    fn statevector_measurement_frequencies_follow_closed_form(
        qubits in 2u32..6,
        mask_seed in 1u64..u64::MAX,
        k in 0u32..6,
        rng_seed in any::<u64>(),
    ) {
        let total = 1usize << qubits;
        let mask = mask_seed % (1u64 << total);
        prop_assume!(mask != 0);
        let marked = move |i: usize| (mask >> i) & 1 == 1;
        let t = mask.count_ones() as f64;
        let theta = (t / total as f64).sqrt().asin();
        let p = (((2 * k + 1) as f64) * theta).sin().powi(2);

        let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
        let state = quantum_sim::statevector::grover_state(qubits, marked, k);
        let trials = 400usize;
        let hits = (0..trials).filter(|_| marked(state.measure(&mut rng))).count();
        let freq = hits as f64 / trials as f64;
        let sigma = (p * (1.0 - p) / trials as f64).sqrt();
        prop_assert!(
            (freq - p).abs() <= 5.0 * sigma + 0.01,
            "qubits={qubits} t={t} k={k}: freq {freq} vs p {p} (σ={sigma})"
        );
    }
}

/// The zero-marked edge case at the search level: BBHT finds nothing and
/// charges its full budget (the cost a real run would pay before giving up).
#[test]
fn bbht_zero_marked_edge_case() {
    let mut rng = ChaCha8Rng::seed_from_u64(91);
    for total in [1usize, 2, 17, 256] {
        let out = bbht(total, &[], &mut rng, 321);
        assert_eq!(out.found, None);
        assert_eq!(out.trace.grover_iterations, 321);
        assert!(out.trace.measurements > 0);
    }
}

/// The all-marked edge case at the search level: the very first measurement
/// succeeds (p = 1 regardless of iteration count), so BBHT returns a marked
/// item after exactly one measurement.
#[test]
fn bbht_all_marked_edge_case() {
    let mut rng = ChaCha8Rng::seed_from_u64(92);
    for total in [1usize, 3, 64] {
        let marked: Vec<usize> = (0..total).collect();
        let out = bbht(total, &marked, &mut rng, 10_000);
        assert!(matches!(out.found, Some(x) if x < total));
        assert_eq!(out.trace.measurements, 1);
    }
}
