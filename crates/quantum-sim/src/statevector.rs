//! A small dense statevector simulator.
//!
//! This is the "honest low level": real amplitude evolution on up to ~20
//! qubits, used to *validate* the analytic Grover model of
//! [`crate::grover`] (experiment A1 in DESIGN.md) and to demonstrate the
//! quantum primitives on small instances. The CONGEST-scale searches use the
//! analytic model; the cross-validation tests in this module and in
//! `tests/` are what justify that substitution.

use crate::complex::Complex;
use rand::Rng;

/// A pure state of `k` qubits (`2^k` complex amplitudes).
#[derive(Clone, Debug)]
pub struct StateVector {
    qubits: u32,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros basis state `|0…0⟩` on `qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `qubits == 0` or `qubits > 24` (dense simulation limit).
    pub fn zero(qubits: u32) -> StateVector {
        assert!((1..=24).contains(&qubits), "qubits must be in 1..=24");
        let mut amps = vec![Complex::ZERO; 1 << qubits];
        amps[0] = Complex::ONE;
        StateVector { qubits, amps }
    }

    /// The uniform superposition over all `2^k` basis states.
    pub fn uniform(qubits: u32) -> StateVector {
        let mut s = StateVector::zero(qubits);
        for q in 0..qubits {
            s.h(q);
        }
        s
    }

    /// Number of qubits.
    pub fn qubits(&self) -> u32 {
        self.qubits
    }

    /// Number of basis states (`2^qubits`).
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// The amplitude of basis state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.dim()`.
    pub fn amplitude(&self, i: usize) -> Complex {
        self.amps[i]
    }

    /// The probability of measuring basis state `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.amps[i].norm_sqr()
    }

    /// Applies a Hadamard gate to qubit `q` (qubit 0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.qubits()`.
    pub fn h(&mut self, q: u32) {
        assert!(q < self.qubits);
        let bit = 1usize << q;
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let a = self.amps[i];
                let b = self.amps[i | bit];
                self.amps[i] = (a + b).scale(inv_sqrt2);
                self.amps[i | bit] = (a - b).scale(inv_sqrt2);
            }
        }
    }

    /// Applies a Pauli-X (NOT) gate to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.qubits()`.
    pub fn x(&mut self, q: u32) {
        assert!(q < self.qubits);
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                self.amps.swap(i, i | bit);
            }
        }
    }

    /// Applies a Pauli-Z gate to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.qubits()`.
    pub fn z(&mut self, q: u32) {
        assert!(q < self.qubits);
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit != 0 {
                self.amps[i] = -self.amps[i];
            }
        }
    }

    /// Applies a CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t` or either index is out of range.
    pub fn cnot(&mut self, c: u32, t: u32) {
        assert!(c < self.qubits && t < self.qubits && c != t);
        let (cb, tb) = (1usize << c, 1usize << t);
        for i in 0..self.amps.len() {
            if i & cb != 0 && i & tb == 0 {
                self.amps.swap(i, i | tb);
            }
        }
    }

    /// Phase oracle: flips the sign of every basis state `i` with
    /// `marked(i) == true`.
    pub fn oracle(&mut self, mut marked: impl FnMut(usize) -> bool) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            if marked(i) {
                *a = -*a;
            }
        }
    }

    /// Grover diffusion: inversion about the mean amplitude.
    pub fn diffusion(&mut self) {
        let mut mean = Complex::ZERO;
        for a in &self.amps {
            mean += *a;
        }
        mean = mean.scale(1.0 / self.amps.len() as f64);
        for a in &mut self.amps {
            *a = mean.scale(2.0) - *a;
        }
    }

    /// One Grover iteration (oracle then diffusion).
    pub fn grover_iteration(&mut self, mut marked: impl FnMut(usize) -> bool) {
        self.oracle(&mut marked);
        self.diffusion();
    }

    /// Total probability of measuring a state with `marked(i) == true`.
    pub fn success_probability(&self, mut marked: impl FnMut(usize) -> bool) -> f64 {
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| marked(*i))
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Samples a measurement of the full register in the computational
    /// basis (the state is *not* collapsed; callers clone if they need
    /// post-measurement evolution).
    pub fn measure<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if x < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// L2 norm of the state (should be 1 up to float error).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }
}

/// Runs textbook Grover search on `qubits` qubits with the given marked
/// predicate for `iterations` rounds and returns the final state.
pub fn grover_state(qubits: u32, marked: impl Fn(usize) -> bool, iterations: u32) -> StateVector {
    let mut s = StateVector::uniform(qubits);
    for _ in 0..iterations {
        s.grover_iteration(&marked);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    const EPS: f64 = 1e-9;

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero(3);
        assert!((s.norm() - 1.0).abs() < EPS);
        assert_eq!(s.probability(0), 1.0);
    }

    #[test]
    fn uniform_superposition() {
        let s = StateVector::uniform(4);
        for i in 0..16 {
            assert!((s.probability(i) - 1.0 / 16.0).abs() < EPS);
        }
    }

    #[test]
    fn h_twice_is_identity() {
        let mut s = StateVector::zero(2);
        s.h(0);
        s.h(1);
        s.h(0);
        s.h(1);
        assert!((s.probability(0) - 1.0).abs() < EPS);
    }

    #[test]
    fn x_flips_basis_state() {
        let mut s = StateVector::zero(3);
        s.x(1);
        assert!((s.probability(0b010) - 1.0).abs() < EPS);
    }

    #[test]
    fn cnot_entangles() {
        // Bell state: H on 0, CNOT(0 -> 1).
        let mut s = StateVector::zero(2);
        s.h(0);
        s.cnot(0, 1);
        assert!((s.probability(0b00) - 0.5).abs() < EPS);
        assert!((s.probability(0b11) - 0.5).abs() < EPS);
        assert!(s.probability(0b01) < EPS);
        assert!(s.probability(0b10) < EPS);
    }

    #[test]
    fn z_changes_phase_not_probability() {
        let mut s = StateVector::uniform(1);
        s.z(0);
        assert!((s.probability(0) - 0.5).abs() < EPS);
        assert!((s.amplitude(1).re + std::f64::consts::FRAC_1_SQRT_2).abs() < EPS);
    }

    #[test]
    fn grover_single_marked_amplifies() {
        // 5 qubits, N = 32, 1 marked: optimal ~ floor(π/4·√32) = 4 iterations.
        let s = grover_state(5, |i| i == 13, 4);
        assert!(s.probability(13) > 0.99, "p = {}", s.probability(13));
    }

    #[test]
    fn grover_preserves_norm() {
        let s = grover_state(6, |i| i % 7 == 0, 10);
        assert!((s.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn measurement_follows_distribution() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let s = grover_state(4, |i| i == 3, 3);
        let p = s.probability(3);
        assert!(p > 0.9);
        let hits = (0..500).filter(|_| s.measure(&mut rng) == 3).count();
        assert!(hits > 400, "hits = {hits}, expected ≈ {}", 500.0 * p);
    }

    #[test]
    fn oracle_marks_only_requested() {
        let mut s = StateVector::uniform(3);
        s.oracle(|i| i == 5);
        assert!(s.amplitude(5).re < 0.0);
        assert!(s.amplitude(4).re > 0.0);
    }
}
