//! Deliberate fault injection for *testing the test suite*.
//!
//! A conformance harness is only trustworthy if it demonstrably fails when
//! the system under test is broken. This module provides a thread-scoped
//! switch that injects a known, paper-relevant bug into the search layer —
//! the conformance suite's mutation self-check turns it on, re-runs the
//! corpus, and asserts that the approximation oracle catches the damage
//! (see `crates/conformance`).
//!
//! The hook is consulted only by [`crate::search::find_above_threshold`];
//! with no mutation armed (the default, and the state restored when the
//! scope guard drops) the search layer behaves exactly as documented.

use std::cell::Cell;

/// A known bug that can be injected into the search layer.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Skip the Grover amplification phase of Lemma 3.1 entirely: the
    /// threshold walk gets a zero iteration budget, so every search
    /// degenerates to measuring the uniform superposition once. The
    /// `O(√(log(1/δ)/ρ))` amplification is exactly what buys the `1 − δ`
    /// success probability of the paper's Lemma 3.1, so this breaks the
    /// `(1+o(1))` guarantee of Theorem 1.1 while leaving every round count
    /// and interface intact — the hardest kind of bug to catch without a
    /// statistical oracle.
    SkipGroverPhase,
}

thread_local! {
    static ARMED: Cell<Option<Mutation>> = const { Cell::new(None) };
}

/// The mutation currently armed on this thread, if any.
pub fn armed() -> Option<Mutation> {
    ARMED.with(Cell::get)
}

/// Scope guard returned by [`arm`]; disarms the mutation when dropped.
#[derive(Debug)]
pub struct MutationGuard {
    previous: Option<Mutation>,
}

impl Drop for MutationGuard {
    fn drop(&mut self) {
        ARMED.with(|a| a.set(self.previous));
    }
}

/// Arms `mutation` on the current thread until the returned guard drops.
///
/// # Examples
///
/// ```
/// use quantum_sim::mutation::{arm, armed, Mutation};
/// assert_eq!(armed(), None);
/// {
///     let _guard = arm(Mutation::SkipGroverPhase);
///     assert_eq!(armed(), Some(Mutation::SkipGroverPhase));
/// }
/// assert_eq!(armed(), None);
/// ```
#[must_use = "the mutation is disarmed when the guard drops"]
pub fn arm(mutation: Mutation) -> MutationGuard {
    let previous = ARMED.with(|a| a.replace(Some(mutation)));
    MutationGuard { previous }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_restores_previous_state() {
        assert_eq!(armed(), None);
        let outer = arm(Mutation::SkipGroverPhase);
        {
            let _inner = arm(Mutation::SkipGroverPhase);
            assert_eq!(armed(), Some(Mutation::SkipGroverPhase));
        }
        assert_eq!(armed(), Some(Mutation::SkipGroverPhase));
        drop(outer);
        assert_eq!(armed(), None);
    }
}
