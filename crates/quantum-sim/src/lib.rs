//! # quantum-sim
//!
//! The quantum substrate for the reproduction of *Wu & Yao, "Quantum
//! Complexity of Weighted Diameter and Radius in CONGEST Networks"*
//! (PODC 2022).
//!
//! The paper's algorithms run Grover-type searches inside a quantum CONGEST
//! network. A full statevector of a distributed network is infeasible (and
//! irrelevant to the paper's observable — the *round count*), so this crate
//! provides two coordinated levels:
//!
//! * [`statevector`] — an honest dense simulator (gates, oracles, Grover)
//!   for up to ~20 qubits, used to **validate** the analytic model;
//! * [`grover`] — the exact two-dimensional Grover dynamics
//!   (`sin²((2j+1)θ)`), cross-checked against the statevector in tests;
//! * [`search`] — BBHT unknown-marked-count search, Dürr–Høyer max/min
//!   finding, and the Lemma 3.1 primitive [`search::find_above_threshold`],
//!   all sampling from the exact measurement distribution and reporting
//!   iteration traces that the CONGEST layer converts into rounds.
//!
//! # Examples
//!
//! ```
//! use quantum_sim::{grover, search};
//! use rand::SeedableRng;
//!
//! // Analytic model: 1 marked in 64, 6 iterations is near-optimal.
//! assert!(grover::success_probability(1.0 / 64.0, 6) > 0.99);
//!
//! // Search with faithful iteration accounting.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
//! let out = search::bbht(64, &[13], &mut rng, 1_000);
//! assert_eq!(out.found, Some(13));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
pub mod grover;
pub mod instrument;
pub mod mutation;
pub mod search;
pub mod statevector;

pub use complex::Complex;
pub use instrument::SearchMetrics;
pub use search::{OptimizeOutcome, SearchOutcome, SearchSchedule, SearchTrace};
pub use statevector::StateVector;
