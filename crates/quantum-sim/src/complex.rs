//! A minimal complex-number type (kept in-crate to avoid an extra
//! dependency; only what the statevector simulator needs).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use quantum_sim::Complex;
/// let i = Complex::new(0.0, 1.0);
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + im·i`.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A real number.
    pub fn real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// The squared modulus `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Complex {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn norm_and_conj() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert_eq!((a * a.conj()).re, 25.0);
    }

    #[test]
    fn scale() {
        assert_eq!(Complex::new(2.0, -4.0).scale(0.5), Complex::new(1.0, -2.0));
    }
}
