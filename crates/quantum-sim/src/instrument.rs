//! Live metrics for the search layer.
//!
//! [`SearchMetrics`] is a bundle of pre-registered [`wdr_metrics`] counters;
//! [`install`] arms it on the current thread (a scope guard mirroring
//! [`crate::mutation::arm`]), after which every completed search —
//! [`crate::search::bbht`], the statevector variant, and the Dürr–Høyer
//! threshold walks built on them — adds its [`crate::SearchTrace`] to the
//! bundle. With nothing installed (the default, restored when the guard
//! drops) the search layer records nothing and pays one thread-local read
//! per search.
//!
//! [`crate::grover::oracle_queries`] is linear in `(iterations,
//! measurements)`, so recording traces piecewise (each inner BBHT phase of
//! a threshold walk separately) sums to exactly the oracle-query total of
//! the combined trace.

use crate::search::SearchTrace;
use std::cell::RefCell;
use wdr_metrics::{Counter, MetricsRegistry};

/// Pre-registered counters for the search layer, named `{prefix}.{metric}`
/// (prefix conventionally `"quantum"`): `searches`, `grover_iterations`,
/// `measurements`, and `oracle_queries`.
#[derive(Clone, Debug)]
pub struct SearchMetrics {
    /// Completed search invocations (each BBHT schedule run counts once;
    /// a Dürr–Høyer walk counts once per threshold-improvement phase).
    pub searches: Counter,
    /// Total Grover iterations across every recorded search.
    pub grover_iterations: Counter,
    /// Total measurements (each followed by one classical verification).
    pub measurements: Counter,
    /// Total oracle queries ([`crate::grover::oracle_queries`]).
    pub oracle_queries: Counter,
}

impl SearchMetrics {
    /// Registers the search bundle under `{prefix}.…` in `registry`
    /// (idempotent: the same prefix shares the counters).
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> SearchMetrics {
        let name = |metric: &str| format!("{prefix}.{metric}");
        SearchMetrics {
            searches: registry.counter(&name("searches")),
            grover_iterations: registry.counter(&name("grover_iterations")),
            measurements: registry.counter(&name("measurements")),
            oracle_queries: registry.counter(&name("oracle_queries")),
        }
    }

    fn record(&self, trace: SearchTrace) {
        self.searches.inc();
        self.grover_iterations.add(trace.grover_iterations);
        self.measurements.add(trace.measurements);
        self.oracle_queries.add(trace.oracle_queries());
    }
}

thread_local! {
    static INSTALLED: RefCell<Option<SearchMetrics>> = const { RefCell::new(None) };
}

/// Scope guard returned by [`install`]; uninstalls the bundle (restoring
/// whatever was installed before) when dropped.
#[derive(Debug)]
pub struct InstrumentGuard {
    previous: Option<SearchMetrics>,
}

impl Drop for InstrumentGuard {
    fn drop(&mut self) {
        INSTALLED.with(|i| *i.borrow_mut() = self.previous.take());
    }
}

/// Installs `metrics` as the current thread's search-metrics sink until the
/// returned guard drops.
///
/// # Examples
///
/// ```
/// use quantum_sim::instrument::{install, SearchMetrics};
/// use wdr_metrics::MetricsRegistry;
/// use rand::SeedableRng;
///
/// let registry = MetricsRegistry::new();
/// let metrics = SearchMetrics::register(&registry, "quantum");
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// {
///     let _guard = install(metrics.clone());
///     let out = quantum_sim::search::bbht(256, &[7], &mut rng, 10_000);
///     assert_eq!(metrics.grover_iterations.get(), out.trace.grover_iterations);
/// }
/// let settled = metrics.searches.get();
/// quantum_sim::search::bbht(256, &[7], &mut rng, 10_000);
/// assert_eq!(metrics.searches.get(), settled, "uninstalled: nothing recorded");
/// ```
#[must_use = "the metrics sink is uninstalled when the guard drops"]
pub fn install(metrics: SearchMetrics) -> InstrumentGuard {
    let previous = INSTALLED.with(|i| i.borrow_mut().replace(metrics));
    InstrumentGuard { previous }
}

/// Records `trace` into the installed bundle, if any (called by the search
/// procedures at every completed schedule).
pub(crate) fn record_trace(trace: SearchTrace) {
    INSTALLED.with(|i| {
        if let Some(metrics) = i.borrow().as_ref() {
            metrics.record(trace);
        }
    });
}

/// Records a Dürr–Høyer walk's initial uniform-superposition measurement —
/// a measurement and an oracle query, but not a search of its own.
pub(crate) fn record_initial_measurement() {
    INSTALLED.with(|i| {
        if let Some(metrics) = i.borrow().as_ref() {
            metrics.measurements.inc();
            metrics.oracle_queries.inc();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_restores_previous_sink() {
        let registry = MetricsRegistry::new();
        let outer = SearchMetrics::register(&registry, "outer");
        let inner = SearchMetrics::register(&registry, "inner");
        let trace = SearchTrace {
            grover_iterations: 5,
            measurements: 2,
        };
        let outer_guard = install(outer.clone());
        {
            let _inner_guard = install(inner.clone());
            record_trace(trace);
        }
        record_trace(trace);
        drop(outer_guard);
        record_trace(trace);
        assert_eq!(inner.grover_iterations.get(), 5);
        assert_eq!(outer.grover_iterations.get(), 5);
        assert_eq!(outer.oracle_queries.get(), 7);
        assert_eq!(outer.searches.get(), 1);
    }
}
