//! Analytic Grover dynamics.
//!
//! Uniform-amplitude Grover search over `N` items with `t` marked lives in
//! the two-dimensional subspace spanned by the uniform superpositions of
//! marked and unmarked items. After `j` iterations the success probability
//! is exactly `sin²((2j+1)·θ)` with `θ = asin(√(t/N))`.
//!
//! These closed forms are what lets the CONGEST-scale experiments simulate
//! quantum search *exactly* without a `2^n`-dimensional state; the
//! statevector simulator ([`crate::statevector`]) cross-validates them.

/// The Grover angle `θ = asin(√ρ)` for marked mass `ρ = t/N ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if `rho` is outside `[0, 1]`.
pub fn angle(rho: f64) -> f64 {
    assert!((0.0..=1.0).contains(&rho), "ρ must be in [0,1], got {rho}");
    rho.sqrt().asin()
}

/// Exact success probability of measuring a marked item after `iterations`
/// Grover iterations, starting from the uniform superposition with marked
/// mass `rho`.
///
/// # Panics
///
/// Panics if `rho` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use quantum_sim::grover;
/// // One marked item among 4: a single iteration succeeds with certainty.
/// let p = grover::success_probability(0.25, 1);
/// assert!((p - 1.0).abs() < 1e-12);
/// ```
pub fn success_probability(rho: f64, iterations: u64) -> f64 {
    let theta = angle(rho);
    let s = (((2 * iterations + 1) as f64) * theta).sin();
    s * s
}

/// The iteration count maximizing the success probability:
/// `round(π/(4θ) − 1/2)` (0 when the initial mass is already ≥ 1/2).
///
/// # Panics
///
/// Panics if `rho` is outside `(0, 1]`.
pub fn optimal_iterations(rho: f64) -> u64 {
    assert!(rho > 0.0 && rho <= 1.0, "ρ must be in (0,1], got {rho}");
    let theta = angle(rho);
    let j = (std::f64::consts::FRAC_PI_4 / theta - 0.5).round();
    if j <= 0.0 {
        0
    } else {
        j as u64
    }
}

/// Upper bound on iterations any sensible schedule uses for mass ≥ `rho`:
/// `⌈π/(4·asin(√ρ))⌉ + 1` — the `O(√(1/ρ))` of Lemma 3.1.
///
/// # Panics
///
/// Panics if `rho` is outside `(0, 1]`.
pub fn iteration_cap(rho: f64) -> u64 {
    assert!(rho > 0.0 && rho <= 1.0, "ρ must be in (0,1], got {rho}");
    (std::f64::consts::FRAC_PI_4 / angle(rho)).ceil() as u64 + 1
}

/// Oracle queries charged to a search run: one phase-oracle application per
/// Grover iteration plus one verification query per measurement (the
/// classical check that a measured item is indeed marked). This is the
/// query count a `GroverIteration` telemetry event reports.
pub fn oracle_queries(iterations: u64, measurements: u64) -> u64 {
    iterations + measurements
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::grover_state;

    #[test]
    fn success_matches_statevector_single_marked() {
        // N = 64, t = 1.
        let rho = 1.0 / 64.0;
        for j in 0..10u64 {
            let analytic = success_probability(rho, j);
            let s = grover_state(6, |i| i == 17, j as u32);
            let measured = s.success_probability(|i| i == 17);
            assert!(
                (analytic - measured).abs() < 1e-9,
                "j={j}: analytic {analytic} vs statevector {measured}"
            );
        }
    }

    #[test]
    fn success_matches_statevector_many_marked() {
        // N = 32, t = 5.
        let marked = |i: usize| [3usize, 7, 11, 19, 30].contains(&i);
        let rho = 5.0 / 32.0;
        for j in 0..8u64 {
            let analytic = success_probability(rho, j);
            let s = grover_state(5, marked, j as u32);
            let measured = s.success_probability(marked);
            assert!(
                (analytic - measured).abs() < 1e-9,
                "j={j}: analytic {analytic} vs statevector {measured}"
            );
        }
    }

    #[test]
    fn optimal_iterations_nearly_certain() {
        for &(n, t) in &[(1024u64, 1u64), (4096, 3), (256, 2), (100, 1)] {
            let rho = t as f64 / n as f64;
            let j = optimal_iterations(rho);
            let p = success_probability(rho, j);
            assert!(p > 0.9, "N={n} t={t}: p={p} at j={j}");
        }
    }

    #[test]
    fn optimal_iterations_scales_like_sqrt() {
        let j1 = optimal_iterations(1.0 / 100.0);
        let j2 = optimal_iterations(1.0 / 10000.0);
        let ratio = j2 as f64 / j1 as f64;
        assert!((ratio - 10.0).abs() < 1.5, "√ scaling violated: {ratio}");
    }

    #[test]
    fn large_mass_needs_no_iterations() {
        assert_eq!(optimal_iterations(0.9), 0);
        assert!(success_probability(0.9, 0) > 0.89);
    }

    #[test]
    fn cap_dominates_optimal() {
        for &rho in &[0.001, 0.01, 0.1, 0.5, 1.0] {
            assert!(iteration_cap(rho) >= optimal_iterations(rho));
        }
    }

    #[test]
    #[should_panic(expected = "ρ must be in")]
    fn invalid_rho_panics() {
        let _ = success_probability(1.5, 1);
    }

    #[test]
    fn oracle_query_accounting() {
        assert_eq!(oracle_queries(10, 3), 13);
        assert_eq!(oracle_queries(0, 0), 0);
    }
}
