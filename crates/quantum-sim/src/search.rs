//! Quantum search procedures with exact statistics and faithful iteration
//! accounting.
//!
//! * [`bbht`] — Boyer–Brassard–Høyer–Tapp search with an unknown number of
//!   marked items (the exponential schedule);
//! * [`durr_hoyer_max`] / [`durr_hoyer_min`] — threshold-walking
//!   maximum/minimum finding;
//! * [`find_above_threshold`] — the Lemma 3.1 primitive: given that the
//!   marked mass is at least `ρ`, find an element above the (unknown)
//!   threshold with probability `1 − δ` using `O(√(log(1/δ)/ρ))`
//!   amplification iterations.
//!
//! All outcomes are sampled from the *exact* Grover measurement
//! distribution (`sin²((2j+1)θ)` — see [`crate::grover`]); the returned
//! [`SearchTrace`] carries the iteration and measurement counts that the
//! CONGEST layer converts into communication rounds.

use crate::grover::success_probability;
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The accounting record of a quantum search.
///
/// One *Grover iteration* costs one application of the (Setup ∘ Evaluation)
/// pair and its inverse in the distributed-optimization framework; one
/// *measurement* additionally costs a classical verification evaluation.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct SearchTrace {
    /// Total Grover iterations performed.
    pub grover_iterations: u64,
    /// Number of measurements (each followed by one verification).
    pub measurements: u64,
}

impl SearchTrace {
    /// Accumulates another trace.
    pub fn absorb(&mut self, other: SearchTrace) {
        self.grover_iterations += other.grover_iterations;
        self.measurements += other.measurements;
    }

    /// Total oracle queries this trace represents
    /// ([`crate::grover::oracle_queries`]).
    pub fn oracle_queries(&self) -> u64 {
        crate::grover::oracle_queries(self.grover_iterations, self.measurements)
    }
}

/// The result of a search: the found item (if any) and the trace.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SearchOutcome {
    /// Index of a marked item, or `None` if the budget ran out.
    pub found: Option<usize>,
    /// Iteration accounting.
    pub trace: SearchTrace,
}

/// BBHT search over `total` items of which `marked` (sorted or not) are
/// marked, with the iteration budget `max_iterations`.
///
/// Measurement outcomes follow the exact Grover distribution for the number
/// of iterations actually applied; a measured item is verified (one
/// classical evaluation) before being returned, so the returned item is
/// always genuinely marked.
///
/// # Panics
///
/// Panics if `total == 0` or any marked index is `≥ total`.
///
/// # Examples
///
/// ```
/// use quantum_sim::search::bbht;
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let out = bbht(1024, &[77], &mut rng, 10_000);
/// assert_eq!(out.found, Some(77));
/// // Expected O(√N) iterations:
/// assert!(out.trace.grover_iterations < 600);
/// ```
pub fn bbht<R: Rng + ?Sized>(
    total: usize,
    marked: &[usize],
    rng: &mut R,
    max_iterations: u64,
) -> SearchOutcome {
    assert!(total > 0, "empty search space");
    assert!(
        marked.iter().all(|&i| i < total),
        "marked index out of range"
    );
    let t = marked.len();
    let mut trace = SearchTrace::default();
    if t == 0 {
        // Nothing to find: a real run would exhaust the schedule; charge the
        // full budget (this is what the algorithm would pay before giving up).
        trace.grover_iterations = max_iterations;
        trace.measurements = schedule_measurements(total, max_iterations);
        crate::instrument::record_trace(trace);
        return SearchOutcome { found: None, trace };
    }
    let rho = t as f64 / total as f64;
    let lambda = 6.0 / 5.0;
    let mut m = 1.0f64;
    let sqrt_n = (total as f64).sqrt();
    loop {
        let j = rng.gen_range(0..=(m as u64));
        if trace.grover_iterations + j > max_iterations {
            trace.grover_iterations = max_iterations;
            crate::instrument::record_trace(trace);
            return SearchOutcome { found: None, trace };
        }
        trace.grover_iterations += j;
        trace.measurements += 1;
        let p = success_probability(rho, j);
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            // Measured a marked item: uniform over the marked set.
            let pick = marked[rng.gen_range(0..t)];
            crate::instrument::record_trace(trace);
            return SearchOutcome {
                found: Some(pick),
                trace,
            };
        }
        m = (lambda * m).min(sqrt_n);
    }
}

/// How many measurements the BBHT schedule makes while spending
/// `iterations` Grover iterations on an empty marked set (expectation of the
/// randomized schedule, used to charge the unsuccessful-search cost).
fn schedule_measurements(total: usize, iterations: u64) -> u64 {
    // The schedule measures once per phase; phase p costs ~ m_p/2 = λ^p/2
    // iterations, capped at √N. Count phases until the budget is spent.
    let lambda = 6.0f64 / 5.0;
    let sqrt_n = (total as f64).sqrt();
    let mut m = 1.0f64;
    let mut spent = 0.0;
    let mut phases = 0u64;
    while spent < iterations as f64 {
        spent += m / 2.0;
        phases += 1;
        m = (lambda * m).min(sqrt_n);
        if phases > 10_000 {
            break;
        }
    }
    phases
}

/// BBHT executed against a **real statevector** (for small instances): the
/// same exponential schedule as [`bbht`], but each attempt evolves the
/// `2^qubits`-dimensional state with true Grover iterations and measures it.
///
/// This is the bridge experiment between the analytic search used at
/// CONGEST scale and the honest low level (DESIGN.md §1 / experiment A1):
/// the two must be statistically indistinguishable, which the crate's tests
/// check.
///
/// # Panics
///
/// Panics if `qubits` is outside `1..=20`.
pub fn bbht_on_statevector<R: Rng + ?Sized>(
    qubits: u32,
    marked: impl Fn(usize) -> bool,
    rng: &mut R,
    max_iterations: u64,
) -> SearchOutcome {
    assert!((1..=20).contains(&qubits));
    let total = 1usize << qubits;
    let lambda = 6.0 / 5.0;
    let mut m = 1.0f64;
    let sqrt_n = (total as f64).sqrt();
    let mut trace = SearchTrace::default();
    loop {
        let j = rng.gen_range(0..=(m as u64));
        if trace.grover_iterations + j > max_iterations {
            trace.grover_iterations = max_iterations;
            crate::instrument::record_trace(trace);
            return SearchOutcome { found: None, trace };
        }
        trace.grover_iterations += j;
        trace.measurements += 1;
        let state = crate::statevector::grover_state(qubits, &marked, j as u32);
        let outcome = state.measure(rng);
        if marked(outcome) {
            crate::instrument::record_trace(trace);
            return SearchOutcome {
                found: Some(outcome),
                trace,
            };
        }
        m = (lambda * m).min(sqrt_n);
    }
}

/// The result of a maximum/minimum-finding run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct OptimizeOutcome {
    /// Index of the best element found.
    pub best: usize,
    /// Number of threshold improvements performed.
    pub threshold_updates: u64,
    /// Iteration accounting (all phases combined).
    pub trace: SearchTrace,
}

/// Dürr–Høyer maximum finding over `values`, with a total Grover-iteration
/// budget.
///
/// Starts from a uniformly measured element and repeatedly BBHT-searches for
/// a strictly better one until the budget is exhausted or no better element
/// exists. With budget `Ω(√N)` the result is the true maximum with
/// probability at least 1/2 (boost by repetition).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn durr_hoyer_max<R, V>(values: &[V], rng: &mut R, budget: u64) -> OptimizeOutcome
where
    R: Rng + ?Sized,
    V: Ord,
{
    durr_hoyer_by(values, rng, budget, |a, b| a > b)
}

/// Dürr–Høyer minimum finding (see [`durr_hoyer_max`]).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn durr_hoyer_min<R, V>(values: &[V], rng: &mut R, budget: u64) -> OptimizeOutcome
where
    R: Rng + ?Sized,
    V: Ord,
{
    durr_hoyer_by(values, rng, budget, |a, b| a < b)
}

fn durr_hoyer_by<R, V>(
    values: &[V],
    rng: &mut R,
    budget: u64,
    better: impl Fn(&V, &V) -> bool,
) -> OptimizeOutcome
where
    R: Rng + ?Sized,
    V: Ord,
{
    assert!(!values.is_empty(), "empty value set");
    let n = values.len();
    // Initial threshold: measure the uniform superposition (one measurement).
    let mut best = rng.gen_range(0..n);
    crate::instrument::record_initial_measurement();
    let mut trace = SearchTrace {
        grover_iterations: 0,
        measurements: 1,
    };
    let mut threshold_updates = 0u64;
    loop {
        let marked: Vec<usize> = (0..n)
            .filter(|&i| better(&values[i], &values[best]))
            .collect();
        if marked.is_empty() {
            break;
        }
        let remaining = budget.saturating_sub(trace.grover_iterations);
        if remaining == 0 {
            break;
        }
        let out = bbht(n, &marked, rng, remaining);
        trace.absorb(out.trace);
        match out.found {
            Some(x) => {
                best = x;
                threshold_updates += 1;
            }
            None => break,
        }
    }
    OptimizeOutcome {
        best,
        threshold_updates,
        trace,
    }
}

/// The Lemma 3.1 primitive: given oracle access to `values` whose top mass
/// is at least `rho` (i.e. `|{x : values[x] ≥ M}| / N ≥ ρ` for the unknown
/// threshold `M`), returns an element of the top set with probability at
/// least `1 − δ`.
///
/// Runs the Dürr–Høyer walk with the `O(√(log(1/δ)/ρ))` iteration budget of
/// the lemma and returns the best element seen. If `minimize` is set, finds
/// the *bottom* mass instead (used for the radius).
///
/// # Panics
///
/// Panics if `values` is empty, `rho ∉ (0, 1]`, or `delta ∉ (0, 1)`.
pub fn find_above_threshold<R, V>(
    values: &[V],
    rho: f64,
    delta: f64,
    minimize: bool,
    rng: &mut R,
) -> OptimizeOutcome
where
    R: Rng + ?Sized,
    V: Ord,
{
    find_above_threshold_scheduled(values, &SearchSchedule::cached(rho, delta), minimize, rng)
}

/// [`find_above_threshold`] against a precomputed [`SearchSchedule`].
///
/// The schedule carries the Lemma 3.1 iteration budget already derived from
/// `(ρ, δ)`, so callers that run many searches at the same parameters — the
/// batch engine in particular — pay the budget derivation once per schedule
/// instead of once per search. The search itself is bit-identical to
/// [`find_above_threshold`] with the same parameters and RNG stream.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn find_above_threshold_scheduled<R, V>(
    values: &[V],
    schedule: &SearchSchedule,
    minimize: bool,
    rng: &mut R,
) -> OptimizeOutcome
where
    R: Rng + ?Sized,
    V: Ord,
{
    assert!(!values.is_empty(), "empty value set");
    let budget = match crate::mutation::armed() {
        // Mutation self-check (see `crate::mutation`): skipping the Grover
        // amplification phase leaves only the initial uniform measurement.
        Some(crate::mutation::Mutation::SkipGroverPhase) => 0,
        None => schedule.budget,
    };
    if minimize {
        durr_hoyer_min(values, rng, budget)
    } else {
        durr_hoyer_max(values, rng, budget)
    }
}

/// A precomputed Lemma 3.1 amplification schedule: the `(ρ, δ)` parameters
/// and the exact iteration budget they derive.
///
/// Constructing one via [`SearchSchedule::cached`] memoizes the budget in a
/// process-wide table keyed on the *bit patterns* of `ρ` and `δ`, so the
/// stored value is the exact `u64` that [`lemma_3_1_budget`] computes — the
/// shared schedule is bit-identical to the one-at-a-time derivation. This is
/// the schedule-reuse API the many-seed batch engine leans on: every lane of
/// a family cell runs the same `(ρ, δ)` pair, so the derivation happens once
/// per cell rather than once per (seed × set) search.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct SearchSchedule {
    /// The promised marked-mass lower bound `ρ ∈ (0, 1]`.
    pub rho: f64,
    /// The allowed failure probability `δ ∈ (0, 1)`.
    pub delta: f64,
    /// The derived iteration budget `O(√(log(1/δ)/ρ))`.
    pub budget: u64,
}

impl SearchSchedule {
    /// Derive a schedule directly (no memoization).
    ///
    /// # Panics
    ///
    /// Panics if `rho ∉ (0, 1]` or `delta ∉ (0, 1)`.
    pub fn new(rho: f64, delta: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "ρ must be in (0,1]");
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        SearchSchedule {
            rho,
            delta,
            budget: lemma_3_1_budget(rho, delta),
        }
    }

    /// Derive a schedule through the process-wide memo table: the first call
    /// for a given `(ρ, δ)` bit pattern computes and stores the budget,
    /// every later call (from any thread) reads the stored exact value.
    ///
    /// # Panics
    ///
    /// Panics if `rho ∉ (0, 1]` or `delta ∉ (0, 1)`.
    pub fn cached(rho: f64, delta: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "ρ must be in (0,1]");
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        static CACHE: OnceLock<Mutex<HashMap<(u64, u64), u64>>> = OnceLock::new();
        let key = (rho.to_bits(), delta.to_bits());
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("schedule cache poisoned");
        let budget = *map
            .entry(key)
            .or_insert_with(|| lemma_3_1_budget(rho, delta));
        SearchSchedule { rho, delta, budget }
    }
}

/// The iteration budget `O(√(log(1/δ)/ρ))` of Lemma 3.1, with the constant
/// used throughout this reproduction.
pub fn lemma_3_1_budget(rho: f64, delta: f64) -> u64 {
    let reps = (1.0 / delta).ln().max(1.0);
    (18.0 * (reps / rho).sqrt()).ceil() as u64 + 12
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bbht_finds_unique_item() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut total_iters = 0u64;
        for _ in 0..50 {
            let out = bbht(256, &[100], &mut rng, 100_000);
            assert_eq!(out.found, Some(100));
            total_iters += out.trace.grover_iterations;
        }
        let avg = total_iters as f64 / 50.0;
        // E[iterations] ≈ 4.5·√(N/t) ≈ 72 for N=256; allow generous slack.
        assert!(avg < 160.0, "avg iterations {avg}");
        assert!(avg > 4.0, "suspiciously cheap: {avg}");
    }

    #[test]
    fn bbht_scales_with_marked_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let avg = |marked: &[usize], rng: &mut ChaCha8Rng| {
            let mut sum = 0u64;
            for _ in 0..60 {
                sum += bbht(4096, marked, rng, 1_000_000).trace.grover_iterations;
            }
            sum as f64 / 60.0
        };
        let one = avg(&[7], &mut rng);
        let many: Vec<usize> = (0..64).map(|i| i * 64).collect();
        let sixty_four = avg(&many, &mut rng);
        // √(N/1) vs √(N/64): factor ≈ 8.
        assert!(
            one / sixty_four > 3.0,
            "expected ≈8× separation, got {one} vs {sixty_four}"
        );
    }

    #[test]
    fn bbht_empty_marked_charges_budget() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let out = bbht(128, &[], &mut rng, 500);
        assert_eq!(out.found, None);
        assert_eq!(out.trace.grover_iterations, 500);
        assert!(out.trace.measurements > 0);
    }

    #[test]
    fn bbht_respects_budget() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..20 {
            let out = bbht(1 << 16, &[1], &mut rng, 10);
            assert!(out.trace.grover_iterations <= 10);
        }
    }

    #[test]
    fn durr_hoyer_finds_max() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let values: Vec<u64> = (0..300).map(|i| (i * 7919) % 1000).collect();
        let want = values.iter().copied().max().unwrap();
        let mut hits = 0;
        for _ in 0..40 {
            let out = durr_hoyer_max(&values, &mut rng, 4000);
            if values[out.best] == want {
                hits += 1;
            }
        }
        assert!(hits >= 38, "max found {hits}/40 times");
    }

    #[test]
    fn durr_hoyer_finds_min() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let values: Vec<u64> = (0..200).map(|i| 5000 - ((i * 13) % 999)).collect();
        let want = values.iter().copied().min().unwrap();
        let out = durr_hoyer_min(&values, &mut rng, 4000);
        assert_eq!(values[out.best], want);
    }

    #[test]
    fn durr_hoyer_iterations_scale_sublinearly() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let avg_iters = |n: usize, rng: &mut ChaCha8Rng| {
            let values: Vec<u64> = (0..n)
                .map(|i| ((i * 2654435761) % 100_000) as u64)
                .collect();
            let mut sum = 0u64;
            for _ in 0..25 {
                sum += durr_hoyer_max(&values, rng, u64::MAX)
                    .trace
                    .grover_iterations;
            }
            sum as f64 / 25.0
        };
        let small = avg_iters(100, &mut rng);
        let large = avg_iters(10_000, &mut rng);
        let ratio = large / small.max(1.0);
        // √(10000/100) = 10; linear would be 100.
        assert!(ratio < 40.0, "ratio {ratio} too large for O(√N)");
    }

    /// Lemma 3.1 semantics: with top mass ρ, the returned element is in the
    /// top set with probability ≥ 1 − δ.
    #[test]
    fn find_above_threshold_succeeds_whp() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let n = 1000;
        // 20 elements of value ≥ 900 (ρ = 0.02), the rest below.
        let values: Vec<u64> = (0..n)
            .map(|i| {
                if i % 50 == 0 {
                    900 + (i % 90) as u64
                } else {
                    (i % 800) as u64
                }
            })
            .collect();
        let rho = 0.02;
        let delta = 0.1;
        let mut successes = 0;
        let trials = 100;
        for _ in 0..trials {
            let out = find_above_threshold(&values, rho, delta, false, &mut rng);
            if values[out.best] >= 900 {
                successes += 1;
            }
        }
        assert!(
            successes as f64 >= (1.0 - delta) * trials as f64,
            "successes {successes}/{trials}"
        );
    }

    #[test]
    fn find_below_threshold_minimize() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let values: Vec<u64> = (0..500)
            .map(|i| {
                if i % 25 == 0 {
                    (i % 10) as u64
                } else {
                    100 + (i % 400) as u64
                }
            })
            .collect();
        let mut successes = 0;
        for _ in 0..60 {
            let out = find_above_threshold(&values, 0.04, 0.1, true, &mut rng);
            if values[out.best] < 100 {
                successes += 1;
            }
        }
        assert!(successes >= 54, "successes {successes}/60");
    }

    #[test]
    fn budget_formula_scales() {
        assert!(lemma_3_1_budget(0.01, 0.1) > lemma_3_1_budget(0.04, 0.1));
        assert!(lemma_3_1_budget(0.01, 0.001) > lemma_3_1_budget(0.01, 0.1));
    }

    /// The memoized schedule stores the exact budget the direct derivation
    /// computes — the bit-identity invariant the batch engine relies on.
    #[test]
    fn cached_schedule_matches_direct_derivation() {
        for (rho, delta) in [(0.35, 0.1), (0.02, 0.01), (1.0, 0.5), (0.007, 0.25)] {
            let direct = SearchSchedule::new(rho, delta);
            let cached = SearchSchedule::cached(rho, delta);
            assert_eq!(direct, cached);
            assert_eq!(cached.budget, lemma_3_1_budget(rho, delta));
            // Second lookup returns the same stored value.
            assert_eq!(SearchSchedule::cached(rho, delta), cached);
        }
    }

    /// A scheduled search with the same RNG stream is bit-identical to the
    /// parameter-derived entry point.
    #[test]
    fn scheduled_search_is_bit_identical() {
        use rand::RngCore;
        let values: Vec<u64> = (0..300).map(|i| (i * 7919) % 1000).collect();
        let schedule = SearchSchedule::cached(0.05, 0.1);
        for seed in 0..10u64 {
            let mut a = ChaCha8Rng::seed_from_u64(seed);
            let mut b = ChaCha8Rng::seed_from_u64(seed);
            let direct = find_above_threshold(&values, 0.05, 0.1, seed % 2 == 0, &mut a);
            let scheduled =
                find_above_threshold_scheduled(&values, &schedule, seed % 2 == 0, &mut b);
            assert_eq!(direct, scheduled);
            assert_eq!(a.next_u64(), b.next_u64(), "RNG streams stayed in lockstep");
        }
    }

    /// An installed [`crate::instrument::SearchMetrics`] bundle sees exactly
    /// the iteration accounting the outcome traces report — including the
    /// threshold walk's initial uniform measurement, recorded separately.
    #[test]
    fn installed_metrics_match_outcome_traces() {
        use crate::instrument::{install, SearchMetrics};
        use wdr_metrics::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let metrics = SearchMetrics::register(&registry, "quantum");
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let values: Vec<u64> = (0..200).map(|i| (i * 7919) % 1000).collect();

        let _guard = install(metrics.clone());
        let search = bbht(256, &[100], &mut rng, 100_000);
        let walk = durr_hoyer_max(&values, &mut rng, 4000);

        let iterations = search.trace.grover_iterations + walk.trace.grover_iterations;
        let measurements = search.trace.measurements + walk.trace.measurements;
        assert_eq!(metrics.grover_iterations.get(), iterations);
        assert_eq!(metrics.measurements.get(), measurements);
        assert_eq!(
            metrics.oracle_queries.get(),
            search.trace.oracle_queries() + walk.trace.oracle_queries(),
            "oracle accounting is linear, so piecewise recording sums exactly"
        );
        // One BBHT call plus one inner BBHT phase per threshold update (the
        // walk's final unsuccessful phase, if any, also counts).
        assert!(metrics.searches.get() > walk.threshold_updates);
    }

    /// The analytic BBHT and the statevector BBHT are statistically
    /// indistinguishable: same success behaviour, matching mean iteration
    /// counts (this is what licenses the analytic model at CONGEST scale).
    #[test]
    fn statevector_bbht_matches_analytic() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let qubits = 7; // N = 128
        let marked_set = [5usize, 77, 100];
        let marked = |i: usize| marked_set.contains(&i);
        let trials = 120;
        let mut sv_iters = 0u64;
        let mut an_iters = 0u64;
        for _ in 0..trials {
            let sv = bbht_on_statevector(qubits, marked, &mut rng, 100_000);
            assert!(matches!(sv.found, Some(x) if marked(x)));
            sv_iters += sv.trace.grover_iterations;
            let an = bbht(1 << qubits, &marked_set, &mut rng, 100_000);
            assert!(an.found.is_some());
            an_iters += an.trace.grover_iterations;
        }
        let (sv_mean, an_mean) = (
            sv_iters as f64 / trials as f64,
            an_iters as f64 / trials as f64,
        );
        let ratio = sv_mean / an_mean;
        assert!(
            (0.7..1.4).contains(&ratio),
            "statevector mean {sv_mean} vs analytic mean {an_mean}"
        );
    }
}
