//! Public `(1+o(1))`-approximate weighted SSSP — Nanongkai's headline
//! application of the Appendix A toolkit, exposed as a library API.
//!
//! For a single source `s`, sample a skeleton of `Θ(√n)` nodes, add `s`,
//! run the full pipeline (Algorithms 3+4, then Algorithm 5 from `s`), and
//! combine locally: every node `v` ends up knowing a
//! `(1+ε)²-approximation of `d(s, v)` in `Õ(√n·(D/(εk) + k) + ℓ/ε)`
//! rounds — sublinear for small `D`.

use crate::skeleton::SkeletonState;
use congest_graph::rounding::{ApproxDist, RoundingScheme};
use congest_graph::{NodeId, WeightedGraph};
use congest_sim::{RoundStats, SimConfig, SimError};
use rand::Rng;

/// Result of an approximate SSSP run.
#[derive(Clone, Debug)]
pub struct ApproxSsspResult {
    /// `dist[v] ≈ d(source, v)`, with `d ≤ dist ≤ (1+ε)²·d` w.h.p.
    pub dist: Vec<ApproxDist>,
    /// The skeleton used (always contains the source).
    pub skeleton: Vec<NodeId>,
    /// Round statistics of all phases.
    pub stats: RoundStats,
}

/// Computes `(1+ε)²`-approximate single-source shortest paths from `source`.
///
/// Uses the paper's parameter shape with `r = √n`: `ℓ = n·log n/r = √n·log n`,
/// `k = √D`.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if the graph is disconnected, has fewer than 2 nodes, or
/// `eps ∉ (0, 1]`.
///
/// # Examples
///
/// ```
/// use congest_algos::sssp::approx_sssp;
/// use congest_graph::{generators, shortest_path};
/// use congest_sim::SimConfig;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let g = generators::erdos_renyi_connected(12, 0.3, 6, &mut rng);
/// let cfg = SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(100_000_000);
/// let res = approx_sssp(&g, 0, 4, 0.5, &cfg, &mut rng)?;
/// let exact = shortest_path::dijkstra(&g, 4);
/// for v in g.nodes() {
///     assert!(res.dist[v] >= exact[v].as_f64() - 1e-6);
///     assert!(res.dist[v] <= 2.25 * exact[v].as_f64() + 1e-6);
/// }
/// # Ok::<(), congest_sim::SimError>(())
/// ```
pub fn approx_sssp<R: Rng + ?Sized>(
    g: &WeightedGraph,
    leader: NodeId,
    source: NodeId,
    eps: f64,
    config: &SimConfig,
    rng: &mut R,
) -> Result<ApproxSsspResult, SimError> {
    assert!(g.n() >= 2, "need at least two nodes");
    assert!(g.is_connected(), "CONGEST networks are connected");
    assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0, 1]");
    let n = g.n();
    let nf = n as f64;
    let r = nf.sqrt();
    let ell = ((nf * nf.log2()) / r).ceil().max(1.0) as usize;
    let d = congest_graph::metrics::unweighted_diameter(g).max(1);
    let k = ((d as f64).sqrt().round() as usize).max(1);
    let scheme = RoundingScheme::new(ell, eps);

    let rate = (r / nf).clamp(0.0, 1.0);
    let mut skeleton: Vec<NodeId> = (0..n).filter(|_| rng.gen_bool(rate)).collect();
    if !skeleton.contains(&source) {
        skeleton.push(source);
    }
    let state = SkeletonState::initialize(g, leader, &skeleton, scheme, k, config, rng)?;
    let mut stats = state.init_stats().clone();
    let (overlay_dist, st) = state.setup_data(g, source, config)?;
    stats.absorb(&st);
    let dist = state.combine_local(source, &overlay_dist);
    Ok(ApproxSsspResult {
        dist,
        skeleton: state.overlay.skeleton.clone(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, shortest_path};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(g: &WeightedGraph) -> SimConfig {
        SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(200_000_000)
    }

    #[test]
    fn sandwich_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(95);
        for trial in 0..4 {
            let g = generators::erdos_renyi_connected(14, 0.25, 8, &mut rng);
            let s = (trial * 3) % g.n();
            let eps = 0.5;
            let res = approx_sssp(&g, 0, s, eps, &cfg(&g), &mut rng).unwrap();
            let exact = shortest_path::dijkstra(&g, s);
            for v in g.nodes() {
                let d = exact[v].as_f64();
                assert!(res.dist[v] >= d - 1e-6, "trial {trial} v={v}");
                assert!(
                    res.dist[v] <= (1.0 + eps) * (1.0 + eps) * d + 1e-6,
                    "trial {trial} v={v}: {} vs {d}",
                    res.dist[v]
                );
            }
            assert_eq!(res.dist[s], 0.0);
            assert!(res.skeleton.contains(&s));
        }
    }

    #[test]
    fn source_outside_initial_sample_is_added() {
        let mut rng = ChaCha8Rng::seed_from_u64(96);
        let g = generators::path(10, 3);
        let res = approx_sssp(&g, 0, 9, 0.5, &cfg(&g), &mut rng).unwrap();
        assert!(res.skeleton.contains(&9));
        assert_eq!(res.dist[9], 0.0);
        // The far end of the path: exact distance 27.
        assert!(res.dist[0] >= 27.0 - 1e-6 && res.dist[0] <= 27.0 * 2.25 + 1e-6);
    }
}
