//! Algorithms 4 and 5 of the paper's Appendix A: overlay-network embedding
//! and SSSP on the embedded overlay.
//!
//! * **Algorithm 4** (Lemma A.3): after the multi-source phase each skeleton
//!   node knows its incident `(G'_S, w'_S)` weights; it broadcasts its `k`
//!   shortest incident edges to the whole network (`O(D + |S|k)` rounds).
//!   Every node can then construct the k-shortcut graph `(G''_S, w''_S)`
//!   (Nanongkai's Observation 3.12).
//! * **Algorithm 5** (Lemma A.4): bounded-hop SSSP (`ℓ' = 4|S|/k`) on
//!   `(G''_S, w''_S)` from a given source, where every overlay round is
//!   realized by a global collect-and-rebroadcast over the physical network
//!   (`Õ(|S|/(εk)·D + |S|)` rounds).

#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
use crate::multi_source::{multi_source_bounded_hop, MultiSourceResult};
use congest_graph::overlay::Overlay;
use congest_graph::rounding::{ApproxDist, RoundingScheme};
use congest_graph::{NodeId, WeightedGraph};
use congest_sim::{primitives, RoundStats, SimConfig, SimError};
use rand::Rng;

/// Everything the network knows after Algorithms 3 + 4 ran for one skeleton:
/// the content of `|init_i⟩` in Lemma 3.5.
#[derive(Clone, Debug)]
pub struct EmbeddedOverlay {
    /// The skeleton `S` (sorted node ids).
    pub skeleton: Vec<NodeId>,
    /// `bounded_hop[v][j] = d̃^ℓ(S[j], v)` — known at node `v`.
    pub bounded_hop: Vec<Vec<ApproxDist>>,
    /// The overlay `(G'_S, w'_S)`.
    pub prime: Overlay,
    /// The k-shortcut overlay `(G''_S, w''_S)` (globally reconstructible
    /// from the Algorithm 4 broadcast).
    pub shortcut: Overlay,
    /// The `k` of the k-shortcut construction.
    pub k: usize,
    /// Hop budget on the overlay: `⌈4|S|/k⌉`.
    pub overlay_ell: usize,
    /// The rounding scheme used by the bounded-hop phase.
    pub scheme: RoundingScheme,
    /// Accumulated round statistics of Algorithms 3 + 4.
    pub stats: RoundStats,
    /// Whether any multi-source attempt hit the low-probability congestion
    /// failure and had to be retried.
    pub retried: bool,
}

/// Runs Algorithms 3 + 4: multi-source bounded-hop SSSP from the skeleton,
/// then the `k`-shortest-edges broadcast embedding `(G''_S, w''_S)`.
///
/// The multi-source phase is retried (fresh random delays) on its
/// low-probability congestion failure, as the paper's "with high
/// probability" statements allow; each attempt's rounds are charged.
///
/// # Errors
///
/// Propagates simulator errors; returns the last error if all retries fail.
///
/// # Panics
///
/// Panics if the skeleton is empty or `k == 0`.
pub fn embed_overlay<R: Rng + ?Sized>(
    g: &WeightedGraph,
    leader: NodeId,
    skeleton: &[NodeId],
    scheme: RoundingScheme,
    k: usize,
    config: &SimConfig,
    rng: &mut R,
) -> Result<EmbeddedOverlay, SimError> {
    assert!(!skeleton.is_empty(), "skeleton must be non-empty");
    assert!(k >= 1, "k must be ≥ 1");
    let mut sorted = skeleton.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let telemetry = config.telemetry.clone();
    let _algo_span = telemetry.span("embed_overlay");
    let mut stats = RoundStats::default();
    let mut retried = false;
    let mut ms: Option<MultiSourceResult> = None;
    for _attempt in 0..5 {
        let res = multi_source_bounded_hop(g, leader, &sorted, scheme, config, rng)?;
        stats.absorb(&res.stats);
        if res.failed {
            retried = true;
            continue;
        }
        ms = Some(res);
        break;
    }
    let ms = ms.expect("multi-source congestion failure persisted across retries");

    // Each skeleton node S[i] holds row i of w'. In a fault-free network
    // d̃^ℓ is exactly symmetric; under injected message drops the two
    // endpoints of a pair can hold different estimates, so take the
    // tighter one — the same symmetry guard the centralized builder
    // (`Overlay::from_skeleton`) applies. Clean runs are untouched.
    let s = sorted.len();
    let mut w = vec![0.0f64; s * s];
    for i in 0..s {
        let row = &ms.approx[sorted[i]];
        for j in 0..s {
            if i != j {
                w[i * s + j] = row[j];
            }
        }
    }
    for i in 0..s {
        for j in (i + 1)..s {
            let best = w[i * s + j].min(w[j * s + i]);
            w[i * s + j] = best;
            w[j * s + i] = best;
        }
    }
    let prime = Overlay::from_matrix(sorted.clone(), w);

    // Algorithm 4's broadcast: every skeleton node ships its k shortest
    // incident edges (as exact (scale, raw) pairs — O(log n) bits each) to
    // the leader, which rebroadcasts the union: O(D + |S|k) rounds.
    let _bc_span = telemetry.span("shortcut_broadcast");
    let (tree, tree_stats) = primitives::bfs_tree(g, leader, config)?;
    stats.absorb(&tree_stats);
    let mut items: Vec<Vec<(u64, u128)>> = vec![Vec::new(); g.n()];
    for i in 0..s {
        let owner = sorted[i];
        for (j, _) in prime.k_shortest_edges(i, k) {
            let (scale, raw) = ms.repr[owner][j].expect("finite edge has a representation");
            let tag = (i as u64) << 32 | j as u64;
            let packed: u128 =
                ((i as u128) << 108) | ((j as u128) << 88) | ((scale as u128) << 72) | raw as u128;
            items[owner].push((tag, packed));
        }
    }
    // The per-channel payload here is four O(log n)-bit fields; the packing
    // into u128 is an encoding artifact, so budget the phase accordingly.
    let wide = SimConfig {
        bandwidth: congest_sim::Bandwidth::bits(160),
        ..config.clone()
    };
    let (collected, up_stats) = primitives::collect_at_leader(g, leader, &wide, &tree, &items)?;
    stats.absorb(&up_stats);
    let payload: Vec<u128> = collected.iter().map(|&(_, v)| v).collect();
    let (_, down_stats) = primitives::pipelined_broadcast(g, leader, &wide, &tree, &payload)?;
    stats.absorb(&down_stats);

    // All nodes now share the k-shortest-edge sets and construct G''
    // locally (Observation 3.12). The construction is the same code the
    // centralized reference uses, so the two agree bit-for-bit.
    let shortcut = prime.shortcut(k);
    let overlay_ell = ((4 * s) as f64 / k as f64).ceil().max(1.0) as usize;

    Ok(EmbeddedOverlay {
        skeleton: sorted,
        bounded_hop: ms.approx,
        prime,
        shortcut,
        k,
        overlay_ell,
        scheme,
        stats,
        retried,
    })
}

/// Runs Algorithm 5: bounded-hop SSSP on the embedded overlay `(G'', w'')`
/// from skeleton node `source`, realized on the physical network.
///
/// Every overlay round is one global collect-and-rebroadcast (the paper's
/// "count a and make every node know it … broadcast to all nodes",
/// `O(D + a)` rounds). Returns `d̃^{4|S|/k}_{G'',w''}(source, u)` for every
/// skeleton index `u` — known to **all** nodes — plus statistics.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `source` is not a skeleton node.
pub fn overlay_sssp(
    g: &WeightedGraph,
    leader: NodeId,
    emb: &EmbeddedOverlay,
    source: NodeId,
    config: &SimConfig,
) -> Result<(Vec<ApproxDist>, RoundStats), SimError> {
    let src = emb
        .shortcut
        .index_of(source)
        .expect("source must be a skeleton node");
    let s = emb.skeleton.len();
    let eps = emb.scheme.eps;
    let ell2 = emb.overlay_ell;
    let threshold = (1.0 + 2.0 / eps) * ell2 as f64;
    let max_w = (0..s)
        .flat_map(|i| (0..s).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j)
        .map(|(i, j)| emb.shortcut.weight(i, j))
        .filter(|x| x.is_finite())
        .fold(1.0f64, f64::max);
    let imax = ((2.0 * s as f64 * max_w / eps).log2().ceil()).max(0.0) as u32;
    let limit = threshold.floor() as u64;

    let _algo_span = config.telemetry.span("overlay_sssp");
    let (tree, tree_stats) = primitives::bfs_tree(g, leader, config)?;
    let mut stats = RoundStats::default();
    stats.absorb(&tree_stats);
    let wide = SimConfig {
        bandwidth: congest_sim::Bandwidth::bits(160),
        ..config.clone()
    };

    let mut best = vec![f64::INFINITY; s];
    best[src] = 0.0;
    // Ownership: skeleton node S[u] simulates overlay node u.
    for scale in 0..=imax {
        let denom = eps * (2f64).powi(scale as i32);
        let unscale = denom / (2.0 * ell2 as f64);
        let rw = |i: usize, j: usize| -> u64 {
            ((2.0 * ell2 as f64 * emb.shortcut.weight(i, j)) / denom)
                .ceil()
                .max(1.0) as u64
        };
        let mut dist: Vec<Option<u64>> = vec![None; s];
        let mut broadcasted = vec![false; s];
        dist[src] = Some(0);
        for rho in 0..=limit {
            // Who announces this overlay round? (settled distance == rho)
            let announcers: Vec<usize> = (0..s)
                .filter(|&u| !broadcasted[u] && dist[u] == Some(rho))
                .collect();
            // Physical realization: collect the a announcements at the
            // leader and rebroadcast them to everyone (O(D + a) rounds).
            // Empty rounds still pay the O(D) "count" cost.
            let mut items: Vec<Vec<(u64, u128)>> = vec![Vec::new(); g.n()];
            for &u in &announcers {
                let packed: u128 = ((u as u128) << 64) | dist[u].unwrap() as u128;
                items[emb.skeleton[u]].push((u as u64, packed));
            }
            let (gathered, up) = primitives::collect_at_leader(g, leader, &wide, &tree, &items)?;
            stats.absorb(&up);
            let payload: Vec<u128> = gathered.iter().map(|&(_, v)| v).collect();
            let (_, down) = primitives::pipelined_broadcast(g, leader, &wide, &tree, &payload)?;
            stats.absorb(&down);
            // Every skeleton node relaxes against the announcements (the
            // complete overlay: every pair is adjacent).
            for &u in &announcers {
                broadcasted[u] = true;
                let du = dist[u].unwrap();
                for x in 0..s {
                    if x != u {
                        let nd = du + rw(u, x);
                        if dist[x].is_none_or(|d| nd < d) {
                            dist[x] = Some(nd);
                        }
                    }
                }
            }
        }
        for u in 0..s {
            if let Some(d) = dist[u] {
                if d as f64 <= threshold {
                    let approx = d as f64 * unscale;
                    if approx < best[u] {
                        best[u] = approx;
                    }
                }
            }
        }
    }
    Ok((best, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;
    use congest_graph::overlay::SkeletonDistances;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(g: &WeightedGraph) -> SimConfig {
        SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(50_000_000)
    }

    #[test]
    fn embedded_overlay_matches_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = generators::erdos_renyi_connected(12, 0.3, 4, &mut rng);
        let skeleton = vec![0, 2, 5, 8, 11];
        let scheme = RoundingScheme::new(6, 0.5);
        let emb = embed_overlay(&g, 0, &skeleton, scheme, 2, &cfg(&g), &mut rng).unwrap();
        let reference = Overlay::from_skeleton(&g, &skeleton, scheme);
        for i in 0..skeleton.len() {
            for j in 0..skeleton.len() {
                let (a, b) = (emb.prime.weight(i, j), reference.weight(i, j));
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                    "w'({i},{j}): {a} vs {b}"
                );
            }
        }
        let ref_short = reference.shortcut(2);
        for i in 0..skeleton.len() {
            for j in 0..skeleton.len() {
                let (a, b) = (emb.shortcut.weight(i, j), ref_short.weight(i, j));
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                    "w''({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn overlay_sssp_matches_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let g = generators::erdos_renyi_connected(10, 0.35, 3, &mut rng);
        let skeleton = vec![1, 3, 6, 9];
        let scheme = RoundingScheme::new(5, 0.5);
        let emb = embed_overlay(&g, 0, &skeleton, scheme, 2, &cfg(&g), &mut rng).unwrap();
        for &src in &skeleton {
            let (got, _) = overlay_sssp(&g, 0, &emb, src, &cfg(&g)).unwrap();
            let si = emb.shortcut.index_of(src).unwrap();
            let want = emb
                .shortcut
                .approx_hop_bounded(si, emb.overlay_ell, scheme.eps);
            for u in 0..skeleton.len() {
                let (a, b) = (got[u], want[u]);
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                    "src={src} u={u}: distributed {a} vs reference {b}"
                );
            }
        }
    }

    #[test]
    fn skeleton_distances_reference_consistency() {
        // The EmbeddedOverlay pieces assemble into the same SkeletonDistances
        // the centralized reference computes.
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let g = generators::erdos_renyi_connected(11, 0.3, 5, &mut rng);
        let skeleton = vec![0, 4, 7, 10];
        let scheme = RoundingScheme::new(8, 0.5);
        let k = 2;
        let emb = embed_overlay(&g, 0, &skeleton, scheme, k, &cfg(&g), &mut rng).unwrap();
        let sd = SkeletonDistances::compute(&g, &skeleton, scheme, k);
        for (j, &s) in emb.skeleton.iter().enumerate() {
            for v in g.nodes() {
                let (a, b) = (emb.bounded_hop[v][j], sd.bounded_hop[j][v]);
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                    "bounded hop s={s} v={v}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn alg4_round_cost_scales_with_sk() {
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let g = generators::cycle(12, 2);
        let scheme = RoundingScheme::new(4, 0.5);
        let small = embed_overlay(&g, 0, &[0, 4, 8], scheme, 1, &cfg(&g), &mut rng)
            .unwrap()
            .stats
            .rounds;
        let large = embed_overlay(&g, 0, &[0, 2, 4, 6, 8, 10], scheme, 3, &cfg(&g), &mut rng)
            .unwrap()
            .stats
            .rounds;
        assert!(large > small, "more skeleton × k should cost more rounds");
    }
}
