//! Algorithms 1 and 2 of the paper's Appendix A as real message-passing
//! CONGEST programs.
//!
//! * **Algorithm 2** (Bounded-Distance SSSP): on `(G, w)` with source `s`
//!   and limit `L`, after `L + 1` rounds every node `v` knows `d(s, v)`
//!   whenever `d(s, v) ≤ L`. The schedule is the paper's: a node broadcasts
//!   `(v, d(s, v))` in the round whose index equals its (settled) distance.
//! * **Algorithm 1** (Bounded-Hop SSSP): runs Algorithm 2 once per weight
//!   scale `w_i(e) = ⌈2ℓ·w(e)/(ε·2^i)⌉`, producing the approximate
//!   bounded-hop distance `d̃^ℓ(s, ·)` of Lemma 3.2 in `Õ(ℓ/ε)` rounds
//!   (Lemma A.1).

use congest_graph::rounding::{ApproxDist, RoundingScheme};
use congest_graph::{Dist, NodeId, WeightedGraph};
use congest_sim::{Mailbox, NodeCtx, NodeProgram, RoundStats, SimConfig, SimError, Status};

/// Algorithm 2 as a [`NodeProgram`].
///
/// Runs on the weights of the network graph it is launched on (launch it on
/// the rounded graph `(G, w_i)` to get scale `i`).
#[derive(Debug)]
pub struct BoundedDistanceSssp {
    source: NodeId,
    limit: u64,
    dist: Option<u64>,
    broadcasted: bool,
}

impl BoundedDistanceSssp {
    /// Creates the per-node program for source `s` and distance limit `L`.
    pub fn new(source: NodeId, limit: u64) -> BoundedDistanceSssp {
        BoundedDistanceSssp {
            source,
            limit,
            dist: None,
            broadcasted: false,
        }
    }
}

impl NodeProgram for BoundedDistanceSssp {
    type Msg = u64; // the sender's settled distance
    type Output = Dist;

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
        if ctx.id == self.source {
            self.dist = Some(0);
            self.broadcasted = true;
            mb.broadcast(ctx, 0);
        }
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &[(NodeId, u64)],
        mb: &mut Mailbox<u64>,
    ) -> Status {
        for &(from, d_u) in inbox {
            let w = ctx.weight_to(from).expect("message from neighbor");
            let nd = d_u + w;
            if nd <= self.limit && self.dist.is_none_or(|d| nd < d) {
                self.dist = Some(nd);
            }
        }
        if !self.broadcasted {
            if let Some(d) = self.dist {
                // The paper's schedule: broadcast in the round equal to the
                // settled distance. With positive integer weights the value
                // is final by then.
                if d == round as u64 {
                    self.broadcasted = true;
                    mb.broadcast(ctx, d);
                }
            }
        }
        // Nodes holding an unsent scheduled broadcast must keep the network
        // alive; everyone else is passive (messages re-awaken them).
        if self.dist.is_some() && !self.broadcasted {
            Status::Running
        } else {
            Status::Done
        }
    }

    fn finish(self, _ctx: &NodeCtx) -> Dist {
        match self.dist {
            Some(d) => Dist::from(d),
            None => Dist::INFINITY,
        }
    }
}

/// Runs Algorithm 2 on `(g, w)` (the weights of `g` itself) and returns
/// `d(s, ·)` truncated at `limit`, plus statistics.
///
/// The simulator fast-forwards idle tail rounds; the reported round count is
/// padded to the algorithm's specified `L + 1` so that measured costs match
/// the paper's schedule.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn bounded_distance_sssp(
    g: &WeightedGraph,
    leader: NodeId,
    source: NodeId,
    limit: u64,
    config: &SimConfig,
) -> Result<(Vec<Dist>, RoundStats), SimError> {
    let telemetry = config.telemetry.clone();
    let span = telemetry.span("bounded_distance_sssp");
    let (out, mut stats) = congest_sim::run_phase(g, leader, config, "alg2_execution", |_, _| {
        BoundedDistanceSssp::new(source, limit)
    })?;
    let padded = (limit as usize + 1).saturating_sub(stats.rounds);
    if padded > 0 {
        telemetry.emit_with(|| congest_sim::TraceEvent::PadRounds {
            rounds: padded,
            reason: format!("Algorithm 2 schedule occupies L + 1 = {} rounds", limit + 1),
        });
    }
    stats.rounds = stats.rounds.max(limit as usize + 1);
    span.end();
    Ok((out, stats))
}

/// Runs Algorithm 1: Algorithm 2 once per scale `i ∈ [0, ⌈log(2nW/ε)⌉]` on
/// the rounded graphs `(G, w_i)`, combining scales into `d̃^ℓ(s, ·)`.
///
/// Returns per-node approximate distances (`f64::INFINITY` where no scale
/// accepted) and the accumulated statistics (`Õ(ℓ/ε)` rounds, Lemma A.1).
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Examples
///
/// ```
/// use congest_algos::bounded_sssp::bounded_hop_sssp;
/// use congest_graph::{generators, rounding::RoundingScheme};
/// use congest_sim::SimConfig;
///
/// let g = generators::path(6, 4);
/// let scheme = RoundingScheme::new(6, 0.5);
/// let (d, stats) = bounded_hop_sssp(&g, 0, 0, scheme, &SimConfig::standard(6, 4))?;
/// assert!(d[5] >= 20.0 - 1e-9 && d[5] <= 20.0 * 1.5);
/// assert!(stats.rounds > 0);
/// # Ok::<(), congest_sim::SimError>(())
/// ```
pub fn bounded_hop_sssp(
    g: &WeightedGraph,
    leader: NodeId,
    source: NodeId,
    scheme: RoundingScheme,
    config: &SimConfig,
) -> Result<(Vec<ApproxDist>, RoundStats), SimError> {
    let _span = config.telemetry.span("bounded_hop_sssp");
    let mut best = vec![f64::INFINITY; g.n()];
    let mut stats = RoundStats::default();
    let limit = scheme.threshold().floor() as u64;
    let imax = scheme.max_scale(g.n(), g.max_weight());
    for i in 0..=imax {
        let gi = scheme.rounded_graph(g, i);
        let cfg = SimConfig {
            bandwidth: congest_sim::Bandwidth::standard(g.n(), gi.max_weight()),
            ..config.clone()
        };
        let (d, phase_stats) = bounded_distance_sssp(&gi, leader, source, limit, &cfg)?;
        stats.absorb(&phase_stats);
        let unscale = scheme.unscale(i);
        for v in g.nodes() {
            if let Some(x) = d[v].finite() {
                let approx = x as f64 * unscale;
                if approx < best[v] {
                    best[v] = approx;
                }
            }
        }
    }
    Ok((best, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::rounding::approx_hop_bounded;
    use congest_graph::{generators, shortest_path};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(g: &WeightedGraph) -> SimConfig {
        SimConfig::standard(g.n(), g.max_weight())
    }

    #[test]
    fn alg2_matches_truncated_dijkstra() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..6 {
            let g = generators::erdos_renyi_connected(14, 0.2, 5, &mut rng);
            for (s, limit) in [(0usize, 10u64), (3, 25), (7, 4)] {
                let (got, _) = bounded_distance_sssp(&g, 0, s, limit, &cfg(&g)).unwrap();
                let want = shortest_path::bounded_distance(&g, s, Dist::from(limit));
                assert_eq!(got, want, "s={s} L={limit}");
            }
        }
    }

    #[test]
    fn alg2_round_count_is_limit_plus_one() {
        let g = generators::path(5, 2);
        let (_, stats) = bounded_distance_sssp(&g, 0, 0, 12, &cfg(&g)).unwrap();
        assert_eq!(stats.rounds, 13);
    }

    #[test]
    fn alg2_broadcast_schedule_means_one_message_per_node() {
        // Every reachable node broadcasts exactly once: deg-weighted count.
        let g = generators::cycle(8, 1);
        let (_, stats) = bounded_distance_sssp(&g, 0, 0, 8, &cfg(&g)).unwrap();
        // All 8 nodes settle (cycle of unit weights, ecc 4 ≤ 8): 8 broadcasts
        // to 2 neighbors each.
        assert_eq!(stats.messages, 16);
    }

    #[test]
    fn alg1_matches_centralized_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for trial in 0..4 {
            let g = generators::erdos_renyi_connected(12, 0.25, 6, &mut rng);
            let scheme = RoundingScheme::new(5, 0.4);
            for s in [0usize, 5] {
                let (got, _) = bounded_hop_sssp(&g, 0, s, scheme, &cfg(&g)).unwrap();
                let want = approx_hop_bounded(&g, s, scheme);
                for v in g.nodes() {
                    let (a, b) = (got[v], want[v]);
                    assert!(
                        (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                        "trial {trial} s={s} v={v}: distributed {a} vs reference {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn alg1_round_cost_scales_with_ell_over_eps() {
        let g = generators::path(10, 3);
        let small = bounded_hop_sssp(&g, 0, 0, RoundingScheme::new(4, 0.5), &cfg(&g))
            .unwrap()
            .1
            .rounds;
        let large = bounded_hop_sssp(&g, 0, 0, RoundingScheme::new(16, 0.5), &cfg(&g))
            .unwrap()
            .1
            .rounds;
        assert!(large > 2 * small, "ℓ/ε scaling: {small} vs {large}");
    }

    #[test]
    fn alg1_sandwich_property() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::erdos_renyi_connected(16, 0.2, 8, &mut rng);
        let scheme = RoundingScheme::new(6, 0.3);
        let (got, _) = bounded_hop_sssp(&g, 0, 2, scheme, &cfg(&g)).unwrap();
        let exact = shortest_path::dijkstra(&g, 2);
        let hop = shortest_path::hop_bounded(&g, 2, 6);
        for v in g.nodes() {
            assert!(got[v] >= exact[v].as_f64() - 1e-6);
            if hop[v].is_finite() {
                assert!(got[v] <= 1.3 * hop[v].as_f64() + 1e-6);
            }
        }
    }
}
