//! Fault-tolerant distributed primitives and degradation measurement.
//!
//! The algorithms in this crate assume the ideal lossless CONGEST network;
//! this module provides their fault-tolerant counterparts, built on the
//! simulator's [`congest_sim::reliable`] ack/retransmit layer, and the
//! bookkeeping to *measure* how answers degrade as faults intensify
//! (consumed by the bench fault-sweep experiment).
//!
//! [`resilient_bfs`] is the representative workload: a leader-rooted hop
//! distance computation by iterative relaxation — the communication skeleton
//! underlying the BFS-tree, flooding, and SSSP phases of the paper's
//! pipeline — whose per-node answers can be checked exactly against a
//! centralized [`SsspWorkspace`] BFS reference, giving a crisp
//! answer-quality metric under any [`congest_sim::FaultPlan`].

use congest_graph::{Dist, NodeId, SsspWorkspace, WeightedGraph};
use congest_sim::reliable::{run_reliable_phase, ReliablePolicy};
use congest_sim::{
    Mailbox, NodeCtx, NodeProgram, Quality, RoundStats, SimConfig, SimError, Status,
};

/// Leader-rooted hop-distance relaxation: every node keeps its best-known
/// distance and (reliably) re-broadcasts improvements. Event-driven, so it
/// tolerates the arbitrary delays retransmission introduces, and it never
/// blocks on a crashed neighbor: nodes are always ready to halt, and the
/// run quiesces when no reliable frames remain in flight.
struct BfsRelax {
    dist: Option<u64>,
}

impl NodeProgram for BfsRelax {
    type Msg = u64;
    type Output = Option<u64>;

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
        if ctx.is_leader() {
            self.dist = Some(0);
            mb.broadcast(ctx, 1);
        }
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        _round: usize,
        inbox: &[(NodeId, u64)],
        mb: &mut Mailbox<u64>,
    ) -> Status {
        let mut improved = false;
        for &(_, d) in inbox {
            if self.dist.is_none_or(|cur| d < cur) {
                self.dist = Some(d);
                improved = true;
            }
        }
        if improved {
            mb.broadcast(ctx, self.dist.expect("just improved") + 1);
        }
        Status::Done
    }

    fn finish(self, _ctx: &NodeCtx) -> Option<u64> {
        self.dist
    }
}

/// Result of one [`resilient_bfs`] run.
#[derive(Clone, Debug)]
pub struct ResilientBfsRun {
    /// Per-node `(hop distance from the leader, delivery quality)`; the
    /// distance is `None` when the token never reached the node.
    pub dists: Vec<(Option<u64>, Quality)>,
    /// Round statistics, with retransmission/ack overhead folded into
    /// [`RoundStats::resilience`].
    pub stats: RoundStats,
}

/// Computes hop distances from `leader` at every node over the reliable
/// layer, tolerating whatever faults `config` injects.
///
/// Runs inside a `"resilient_bfs"` telemetry phase span; with a fault-free
/// config the per-node outputs match the centralized BFS exactly and the
/// resilience budget records only ack traffic.
///
/// # Errors
///
/// Same as [`congest_sim::Network::run`].
pub fn resilient_bfs(
    g: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
    policy: ReliablePolicy,
) -> Result<ResilientBfsRun, SimError> {
    let (dists, stats) = run_reliable_phase(g, leader, config, "resilient_bfs", policy, |_, _| {
        BfsRelax { dist: None }
    })?;
    Ok(ResilientBfsRun { dists, stats })
}

/// Answer-quality summary of a faulty run against the fault-free truth.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct DegradationReport {
    /// Nodes tagged [`Quality::Exact`].
    pub exact: usize,
    /// Nodes tagged [`Quality::Degraded`].
    pub degraded: usize,
    /// Nodes tagged [`Quality::Failed`].
    pub failed: usize,
    /// Nodes whose distance equals the centralized reference (regardless of
    /// tag — a degraded node can still be lucky).
    pub correct: usize,
    /// Total nodes.
    pub n: usize,
}

impl DegradationReport {
    /// Scores `run` against the centralized hop distances from `leader`.
    pub fn evaluate(g: &WeightedGraph, leader: NodeId, run: &ResilientBfsRun) -> DegradationReport {
        Self::evaluate_with(g, leader, run, &mut SsspWorkspace::new())
    }

    /// Like [`DegradationReport::evaluate`], but reusing `ws` for the
    /// reference BFS so fault sweeps can score many runs on the same graph
    /// without re-allocating the distance row each time.
    pub fn evaluate_with(
        g: &WeightedGraph,
        leader: NodeId,
        run: &ResilientBfsRun,
        ws: &mut SsspWorkspace,
    ) -> DegradationReport {
        let reference = ws.bfs_into(g, leader);
        let mut report = DegradationReport {
            n: g.n(),
            ..DegradationReport::default()
        };
        for (v, (dist, quality)) in run.dists.iter().enumerate() {
            match quality {
                Quality::Exact => report.exact += 1,
                Quality::Degraded { .. } => report.degraded += 1,
                Quality::Failed => report.failed += 1,
            }
            let got = dist.map(Dist::from).unwrap_or(Dist::INFINITY);
            if got == reference[v] {
                report.correct += 1;
            }
        }
        report
    }

    /// Fraction of nodes with the reference-correct answer.
    pub fn correct_fraction(&self) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        self.correct as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;
    use congest_sim::FaultPlan;

    #[test]
    fn fault_free_run_matches_centralized_bfs_exactly() {
        let g = generators::grid(4, 4, 1);
        let cfg = SimConfig::standard(g.n(), 1).with_max_rounds(10_000);
        let run = resilient_bfs(&g, 0, &cfg, ReliablePolicy::default()).unwrap();
        let report = DegradationReport::evaluate(&g, 0, &run);
        assert_eq!(report.correct, g.n());
        assert_eq!(report.exact, g.n());
        assert_eq!(report.failed, 0);
        assert!((report.correct_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moderate_loss_still_converges_to_correct_distances() {
        let g = generators::grid(4, 4, 1);
        let cfg = SimConfig::standard(g.n(), 1)
            .with_max_rounds(10_000)
            .with_faults(FaultPlan::new(99).with_drop_rate(0.2));
        let run = resilient_bfs(&g, 0, &cfg, ReliablePolicy::default()).unwrap();
        let report = DegradationReport::evaluate(&g, 0, &run);
        assert_eq!(
            report.correct,
            g.n(),
            "retransmission recovers every loss at 20% drop: {report:?}"
        );
        assert!(run.stats.resilience.retransmissions > 0);
    }

    #[test]
    fn crashing_a_cut_vertex_fails_it_and_strands_nothing_else() {
        // Path 0-1-2-3: node 1 crashes forever, cutting 2 and 3 off.
        let g = generators::path(4, 1);
        let cfg = SimConfig::standard(4, 1)
            .with_max_rounds(10_000)
            .with_faults(FaultPlan::new(5).with_crash(1, 1, None));
        let run = resilient_bfs(&g, 0, &cfg, ReliablePolicy::default()).unwrap();
        let report = DegradationReport::evaluate(&g, 0, &run);
        assert!(matches!(run.dists[1].1, Quality::Failed));
        assert_eq!(run.dists[2].0, None, "cut off from the leader");
        assert_eq!(report.failed, 1);
        assert!(report.correct >= 1, "the leader at least knows itself");
    }
}
