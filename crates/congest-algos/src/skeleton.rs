//! The composed skeleton pipeline of Section 3.1: `Initialization_i`
//! (Algorithms 3 + 4) and the evaluation of approximate distances and
//! eccentricities `ẽ_{G,w,i}(s)` (Algorithm 5 + local combination +
//! convergecast), exactly as used by the quantum procedures of Lemma 3.5.

use crate::overlay_net::{embed_overlay, overlay_sssp, EmbeddedOverlay};
use congest_graph::rounding::{ApproxDist, RoundingScheme};
use congest_graph::{NodeId, WeightedGraph};
use congest_sim::{primitives, RoundStats, SimConfig, SimError};
use rand::Rng;

/// Encodes a non-negative `f64` as order-preserving bits (IEEE-754 ordering
/// trick) so it can ride the `u128` convergecast.
pub fn f64_to_ordered_bits(x: f64) -> u128 {
    debug_assert!(x >= 0.0 || x.is_infinite());
    u128::from(x.to_bits())
}

/// Inverse of [`f64_to_ordered_bits`].
pub fn ordered_bits_to_f64(b: u128) -> f64 {
    f64::from_bits(b as u64)
}

/// The per-skeleton state of Lemma 3.5's `Initialization_i`, plus cost.
///
/// Wraps [`EmbeddedOverlay`] and adds the evaluation entry points.
#[derive(Clone, Debug)]
pub struct SkeletonState {
    /// The embedded overlay (Algorithms 3 + 4 output).
    pub overlay: EmbeddedOverlay,
    leader: NodeId,
}

impl SkeletonState {
    /// Runs `Initialization_i` for one skeleton: Algorithm 3 (bounded-hop
    /// multi-source) then Algorithm 4 (overlay embedding).
    /// `T₀ = Õ(D + ℓ/ε + rk)` rounds (Lemma 3.5's analysis).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if the skeleton is empty or `k == 0`.
    pub fn initialize<R: Rng + ?Sized>(
        g: &WeightedGraph,
        leader: NodeId,
        skeleton: &[NodeId],
        scheme: RoundingScheme,
        k: usize,
        config: &SimConfig,
        rng: &mut R,
    ) -> Result<SkeletonState, SimError> {
        // `T₀` in the paper's accounting.
        let _span = config.telemetry.span("skeleton_init");
        let overlay = embed_overlay(g, leader, skeleton, scheme, k, config, rng)?;
        Ok(SkeletonState { overlay, leader })
    }

    /// Round cost already incurred by initialization.
    pub fn init_stats(&self) -> &RoundStats {
        &self.overlay.stats
    }

    /// The Setup part of Lemma 3.5 for a specific `s ∈ S_i`: Algorithm 5
    /// from `s`, after which every node `v` knows
    /// `d̃^{4|S|/k}_{G'',w''}(s, u)` for each `u ∈ S` (the `|data_i(s)⟩`
    /// registers). `T₁ = Õ(r/(εk)·D + r)` rounds.
    ///
    /// Returns the overlay distances (indexed by skeleton index) and the
    /// phase statistics.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not in the skeleton.
    pub fn setup_data(
        &self,
        g: &WeightedGraph,
        s: NodeId,
        config: &SimConfig,
    ) -> Result<(Vec<ApproxDist>, RoundStats), SimError> {
        // `T₁` in the paper's accounting.
        let _span = config.telemetry.span("skeleton_setup");
        overlay_sssp(g, self.leader, &self.overlay, s, config)
    }

    /// The approximate distances `d̃_{G,w,S}(s, v)` each node `v` computes
    /// locally from `|init_i⟩` and `|data_i(s)⟩` (free local computation):
    /// `min_{u∈S} { d̃^{4|S|/k}_{G'',w''}(s,u) + d̃^ℓ(u,v) }`.
    pub fn combine_local(&self, s: NodeId, overlay_dist: &[ApproxDist]) -> Vec<ApproxDist> {
        let n = self.overlay.bounded_hop.len();
        let mut out = vec![f64::INFINITY; n];
        for (j, &over) in overlay_dist.iter().enumerate() {
            if over.is_finite() {
                for (v, bh) in self.overlay.bounded_hop.iter().enumerate() {
                    let cand = over + bh[j];
                    if cand < out[v] {
                        out[v] = cand;
                    }
                }
            }
        }
        out[s] = 0.0;
        out
    }

    /// The Evaluation part of Lemma 3.5 for a specific `s`: every node
    /// computes `d̃_{G,w,S}(s, v)` locally, and the leader convergecasts the
    /// maximum — the approximate eccentricity `ẽ(s)`. `T₂ = O(D)` rounds.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn evaluate_eccentricity(
        &self,
        g: &WeightedGraph,
        s: NodeId,
        overlay_dist: &[ApproxDist],
        config: &SimConfig,
    ) -> Result<(ApproxDist, RoundStats), SimError> {
        // `T₂` in the paper's accounting.
        let _span = config.telemetry.span("skeleton_evaluate");
        let local = self.combine_local(s, overlay_dist);
        let (tree, tree_stats) = primitives::bfs_tree(g, self.leader, config)?;
        let values: Vec<u128> = local.iter().map(|&x| f64_to_ordered_bits(x)).collect();
        let wide = SimConfig {
            bandwidth: congest_sim::Bandwidth::bits(160),
            ..config.clone()
        };
        let (bits, mut stats) = primitives::converge_cast(
            g,
            self.leader,
            &wide,
            &tree,
            &values,
            primitives::Aggregate::Max,
        )?;
        stats.absorb(&tree_stats);
        Ok((ordered_bits_to_f64(bits), stats))
    }

    /// Full evaluation of `ẽ(s)` — Setup then Evaluation — returning the
    /// eccentricity and the combined statistics. This is one classical
    /// execution of the pair the quantum procedure applies in superposition.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn eccentricity(
        &self,
        g: &WeightedGraph,
        s: NodeId,
        config: &SimConfig,
    ) -> Result<(ApproxDist, RoundStats), SimError> {
        let (overlay_dist, mut stats) = self.setup_data(g, s, config)?;
        let (ecc, eval_stats) = self.evaluate_eccentricity(g, s, &overlay_dist, config)?;
        stats.absorb(&eval_stats);
        Ok((ecc, stats))
    }

    /// `f_i = max_{s ∈ S_i} ẽ(s)` evaluated classically over the whole
    /// skeleton (used by baselines and tests; the quantum procedure of
    /// Lemma 3.5 searches instead of enumerating).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn max_eccentricity(
        &self,
        g: &WeightedGraph,
        config: &SimConfig,
    ) -> Result<(ApproxDist, RoundStats), SimError> {
        let mut best = 0.0f64;
        let mut stats = RoundStats::default();
        let skeleton = self.overlay.skeleton.clone();
        for s in skeleton {
            let (e, st) = self.eccentricity(g, s, config)?;
            stats.absorb(&st);
            if e > best {
                best = e;
            }
        }
        Ok((best, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;
    use congest_graph::overlay::SkeletonDistances;
    use congest_graph::shortest_path::dijkstra;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(g: &WeightedGraph) -> SimConfig {
        SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(50_000_000)
    }

    #[test]
    fn ordered_bits_roundtrip_and_order() {
        for x in [0.0f64, 1.5, 1e9, f64::INFINITY] {
            assert_eq!(ordered_bits_to_f64(f64_to_ordered_bits(x)), x);
        }
        assert!(f64_to_ordered_bits(1.0) < f64_to_ordered_bits(2.0));
        assert!(f64_to_ordered_bits(1e300) < f64_to_ordered_bits(f64::INFINITY));
    }

    #[test]
    fn distributed_eccentricity_matches_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let g = generators::erdos_renyi_connected(11, 0.3, 4, &mut rng);
        let skeleton = vec![0, 3, 6, 9];
        let scheme = RoundingScheme::new(6, 0.5);
        let k = 2;
        let st =
            SkeletonState::initialize(&g, 0, &skeleton, scheme, k, &cfg(&g), &mut rng).unwrap();
        let sd = SkeletonDistances::compute(&g, &skeleton, scheme, k);
        for &s in &skeleton {
            let (got, _) = st.eccentricity(&g, s, &cfg(&g)).unwrap();
            let want = sd.approx_eccentricity(s);
            assert!(
                (got - want).abs() < 1e-9,
                "ẽ({s}): distributed {got} vs reference {want}"
            );
        }
    }

    #[test]
    fn eccentricity_is_sandwiched() {
        // d ≤ d̃ and ẽ ≥ e; with the test's generous ℓ the upper side holds too.
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let g = generators::erdos_renyi_connected(12, 0.35, 6, &mut rng);
        let skeleton = vec![1, 5, 9];
        let scheme = RoundingScheme::new(g.n(), 0.5);
        let st =
            SkeletonState::initialize(&g, 0, &skeleton, scheme, 2, &cfg(&g), &mut rng).unwrap();
        for &s in &skeleton {
            let exact = congest_graph::metrics::eccentricity(&g, s).as_f64();
            let (got, _) = st.eccentricity(&g, s, &cfg(&g)).unwrap();
            assert!(got >= exact - 1e-6, "ẽ({s}) = {got} < e = {exact}");
            assert!(got <= exact * 2.25 + 1e-6, "ẽ({s}) = {got} ≫ e = {exact}");
        }
    }

    #[test]
    fn combine_local_matches_reference_distances() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let g = generators::erdos_renyi_connected(10, 0.4, 3, &mut rng);
        let skeleton = vec![0, 2, 4, 6, 8];
        let scheme = RoundingScheme::new(5, 0.5);
        let k = 2;
        let st =
            SkeletonState::initialize(&g, 0, &skeleton, scheme, k, &cfg(&g), &mut rng).unwrap();
        let sd = SkeletonDistances::compute(&g, &skeleton, scheme, k);
        for &s in &skeleton {
            let (od, _) = st.setup_data(&g, s, &cfg(&g)).unwrap();
            let local = st.combine_local(s, &od);
            let want = sd.approx_distances_from(s);
            for v in g.nodes() {
                let (a, b) = (local[v], want[v]);
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                    "d̃({s},{v}): {a} vs {b}"
                );
            }
            // And the lower-bound side of Lemma 3.3 directly.
            let exact = dijkstra(&g, s);
            for v in g.nodes() {
                assert!(local[v] >= exact[v].as_f64() - 1e-6);
            }
        }
    }

    #[test]
    fn max_eccentricity_upper_bounds_all() {
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let g = generators::erdos_renyi_connected(10, 0.3, 4, &mut rng);
        let skeleton = vec![0, 4, 8];
        let scheme = RoundingScheme::new(g.n(), 0.5);
        let st =
            SkeletonState::initialize(&g, 0, &skeleton, scheme, 2, &cfg(&g), &mut rng).unwrap();
        let (fx, _) = st.max_eccentricity(&g, &cfg(&g)).unwrap();
        for &s in &skeleton {
            let (e, _) = st.eccentricity(&g, s, &cfg(&g)).unwrap();
            assert!(fx >= e - 1e-12);
        }
    }
}
