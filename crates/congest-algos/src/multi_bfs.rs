//! Concurrent pipelined BFS from a *set* of sources (unweighted), the
//! workhorse of the classical `Õ(√n + D)` approximation algorithms
//! (Table 1's 3/2-approximation rows [3, 15]).
//!
//! Each node forwards one `(source, distance)` announcement per channel per
//! round; with `|S|` sources every node sends at most `|S|` announcements in
//! total, so the run completes in `O(|S| + D)` rounds.

use congest_graph::{Dist, NodeId, WeightedGraph};
use congest_sim::{Mailbox, NodeCtx, NodeProgram, RoundStats, SimConfig, SimError, Status};
use std::collections::VecDeque;

struct MultiBfsProgram {
    /// Index of each source in the output vector (usize::MAX = not a source).
    source_index: Vec<usize>,
    dist: Vec<Option<u64>>,
    queue: VecDeque<usize>,
    queued: Vec<bool>,
}

impl NodeProgram for MultiBfsProgram {
    type Msg = (u64, u64); // (source index, distance)
    type Output = Vec<Dist>;

    fn start(&mut self, ctx: &NodeCtx, _mb: &mut Mailbox<(u64, u64)>) {
        let idx = self.source_index[ctx.id];
        if idx != usize::MAX {
            self.dist[idx] = Some(0);
            self.queue.push_back(idx);
            self.queued[idx] = true;
        }
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        _round: usize,
        inbox: &[(NodeId, (u64, u64))],
        mb: &mut Mailbox<(u64, u64)>,
    ) -> Status {
        for &(_, (j, d)) in inbox {
            let j = j as usize;
            let nd = d + 1;
            if self.dist[j].is_none_or(|cur| nd < cur) {
                self.dist[j] = Some(nd);
                if !self.queued[j] {
                    self.queued[j] = true;
                    self.queue.push_back(j);
                }
            }
        }
        if let Some(j) = self.queue.pop_front() {
            self.queued[j] = false;
            mb.broadcast(ctx, (j as u64, self.dist[j].expect("queued has distance")));
        }
        if self.queue.is_empty() {
            Status::Done
        } else {
            Status::Running
        }
    }

    fn finish(self, _ctx: &NodeCtx) -> Vec<Dist> {
        self.dist
            .into_iter()
            .map(|d| d.map_or(Dist::INFINITY, Dist::from))
            .collect()
    }
}

/// Runs concurrent pipelined BFS from every node of `sources` on the
/// unweighted view of `g`. Returns `dist[v][j] = hop-distance(sources[j], v)`
/// and statistics (`O(|S| + D)` rounds).
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `sources` is empty or contains an out-of-range node.
///
/// # Examples
///
/// ```
/// use congest_algos::multi_bfs::multi_source_bfs;
/// use congest_graph::{generators, Dist};
/// use congest_sim::SimConfig;
///
/// let g = generators::cycle(8, 5); // weights ignored: BFS semantics
/// let (d, _) = multi_source_bfs(&g, 0, &[0, 4], &SimConfig::standard(8, 5))?;
/// assert_eq!(d[2][0], Dist::from(2u64)); // from node 0
/// assert_eq!(d[2][1], Dist::from(2u64)); // from node 4
/// # Ok::<(), congest_sim::SimError>(())
/// ```
pub fn multi_source_bfs(
    g: &WeightedGraph,
    leader: NodeId,
    sources: &[NodeId],
    config: &SimConfig,
) -> Result<(Vec<Vec<Dist>>, RoundStats), SimError> {
    assert!(!sources.is_empty(), "sources must be non-empty");
    assert!(sources.iter().all(|&s| s < g.n()), "source out of range");
    let mut source_index = vec![usize::MAX; g.n()];
    for (j, &s) in sources.iter().enumerate() {
        assert_eq!(source_index[s], usize::MAX, "duplicate source {s}");
        source_index[s] = j;
    }
    let b = sources.len();
    congest_sim::run_phase(g, leader, config, "multi_bfs", |_, _| MultiBfsProgram {
        source_index: source_index.clone(),
        dist: vec![None; b],
        queue: VecDeque::new(),
        queued: vec![false; b],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, shortest_path};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(g: &WeightedGraph) -> SimConfig {
        SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(5_000_000)
    }

    #[test]
    fn matches_centralized_bfs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::erdos_renyi_connected(24, 0.12, 9, &mut rng);
        let u = g.unweighted_view();
        let sources = vec![0, 7, 13, 21];
        let (d, _) = multi_source_bfs(&g, 0, &sources, &cfg(&g)).unwrap();
        for (j, &s) in sources.iter().enumerate() {
            let want = shortest_path::bfs(&u, s);
            for v in g.nodes() {
                assert_eq!(d[v][j], want[v], "s={s} v={v}");
            }
        }
    }

    #[test]
    fn rounds_scale_with_sources_plus_diameter() {
        let g = generators::path(40, 1);
        let few = multi_source_bfs(&g, 0, &[0], &cfg(&g)).unwrap().1.rounds;
        let sources: Vec<_> = (0..40).step_by(4).collect();
        let many = multi_source_bfs(&g, 0, &sources, &cfg(&g))
            .unwrap()
            .1
            .rounds;
        // O(|S| + D), not O(|S| · D).
        assert!(many <= few + sources.len() + 8, "{few} -> {many}");
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_sources_rejected() {
        let g = generators::path(4, 1);
        let _ = multi_source_bfs(&g, 0, &[1, 1], &cfg(&g));
    }
}
