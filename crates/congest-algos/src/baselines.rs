//! Classical CONGEST baselines for Table 1's classical rows.
//!
//! * [`unweighted_apsp`] — exact unweighted APSP by `n` concurrent pipelined
//!   BFS floods (Holzer–Wattenhofer / Peleg–Roditty–Tal style, `O(n + D)`
//!   rounds): the classical `Θ̃(n)` row for unweighted diameter/radius.
//! * [`weighted_apsp`] — exact weighted APSP by `n` concurrent distributed
//!   Bellman–Ford floods with per-channel pipelining. Its worst-case round
//!   count is not `Õ(n)` (that requires the far more intricate
//!   Bernstein–Nanongkai algorithm, see DESIGN.md §1), but on the benchmark
//!   workloads it measures `Θ̃(n)` — the shape Table 1's classical weighted
//!   row needs.
//! * [`diameter_radius_exact`] — either of the above plus an eccentricity
//!   convergecast, yielding the exact diameter and radius.

use congest_graph::{Dist, NodeId, WeightedGraph};
use congest_sim::{
    primitives, Mailbox, NodeCtx, NodeProgram, RoundStats, SimConfig, SimError, Status,
};
use std::collections::VecDeque;

/// Whether a baseline run uses the edge weights or treats them as 1.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WeightMode {
    /// BFS semantics (`w* ≡ 1`).
    Unweighted,
    /// True weights (Bellman–Ford relaxation).
    Weighted,
}

struct ApspProgram {
    mode: WeightMode,
    dist: Vec<Option<u64>>, // per source
    queue: VecDeque<(u64, u64)>,
    queued: Vec<bool>, // per source: an announcement is pending in `queue`
}

impl NodeProgram for ApspProgram {
    type Msg = (u64, u64); // (source, distance)
    type Output = Vec<Dist>;

    fn start(&mut self, ctx: &NodeCtx, _mb: &mut Mailbox<(u64, u64)>) {
        self.dist[ctx.id] = Some(0);
        self.queue.push_back((ctx.id as u64, 0));
        self.queued[ctx.id] = true;
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        _round: usize,
        inbox: &[(NodeId, (u64, u64))],
        mb: &mut Mailbox<(u64, u64)>,
    ) -> Status {
        for &(from, (s, d)) in inbox {
            let w = match self.mode {
                WeightMode::Unweighted => 1,
                WeightMode::Weighted => ctx.weight_to(from).expect("neighbor"),
            };
            let s = s as usize;
            let nd = d + w;
            if self.dist[s].is_none_or(|cur| nd < cur) {
                self.dist[s] = Some(nd);
                if !self.queued[s] {
                    self.queued[s] = true;
                    self.queue.push_back((s as u64, nd));
                }
            }
        }
        // One announcement per channel per round (pipelining); always send
        // the *current* best for that source.
        if let Some((s, _)) = self.queue.pop_front() {
            self.queued[s as usize] = false;
            let d = self.dist[s as usize].expect("queued source has a distance");
            mb.broadcast(ctx, (s, d));
        }
        if self.queue.is_empty() {
            Status::Done
        } else {
            Status::Running
        }
    }

    fn finish(self, _ctx: &NodeCtx) -> Vec<Dist> {
        self.dist
            .into_iter()
            .map(|d| d.map_or(Dist::INFINITY, Dist::from))
            .collect()
    }
}

/// Result of an exact APSP baseline run.
#[derive(Clone, Debug)]
pub struct ApspResult {
    /// `dist[v][s] = d(s, v)`.
    pub dist: Vec<Vec<Dist>>,
    /// Round statistics.
    pub stats: RoundStats,
}

fn apsp(
    g: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
    mode: WeightMode,
) -> Result<ApspResult, SimError> {
    let n = g.n();
    let name = match mode {
        WeightMode::Unweighted => "apsp_unweighted",
        WeightMode::Weighted => "apsp_weighted",
    };
    let (dist, stats) = congest_sim::run_phase(g, leader, config, name, |_, _| ApspProgram {
        mode,
        dist: vec![None; n],
        queue: VecDeque::new(),
        queued: vec![false; n],
    })?;
    Ok(ApspResult { dist, stats })
}

/// Exact unweighted APSP: `n` concurrent pipelined BFS floods, `O(n + D)`
/// rounds. Every node ends up knowing its distance from every source.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn unweighted_apsp(
    g: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
) -> Result<ApspResult, SimError> {
    apsp(g, leader, config, WeightMode::Unweighted)
}

/// Exact weighted APSP: `n` concurrent pipelined Bellman–Ford floods.
///
/// See the module docs for the caveat on worst-case round complexity.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn weighted_apsp(
    g: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
) -> Result<ApspResult, SimError> {
    apsp(g, leader, config, WeightMode::Weighted)
}

/// Exact diameter and radius via an APSP baseline plus two convergecasts:
/// each node computes its eccentricity locally (it knows its distance from
/// every source; distances are symmetric), the leader aggregates max and
/// min. The classical `Θ̃(n)` reference point of Table 1.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Examples
///
/// ```
/// use congest_algos::baselines::{diameter_radius_exact, WeightMode};
/// use congest_graph::{generators, metrics};
/// use congest_sim::SimConfig;
///
/// let g = generators::path(8, 3);
/// let cfg = SimConfig::standard(8, 3);
/// let (d, r, _) = diameter_radius_exact(&g, 0, &cfg, WeightMode::Weighted)?;
/// let exact = metrics::extremes(&g);
/// assert_eq!(d, exact.diameter);
/// assert_eq!(r, exact.radius);
/// # Ok::<(), congest_sim::SimError>(())
/// ```
pub fn diameter_radius_exact(
    g: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
    mode: WeightMode,
) -> Result<(Dist, Dist, RoundStats), SimError> {
    let mut res = match mode {
        WeightMode::Unweighted => unweighted_apsp(g, leader, config)?,
        WeightMode::Weighted => weighted_apsp(g, leader, config)?,
    };
    let (tree, tree_stats) = primitives::bfs_tree(g, leader, config)?;
    res.stats.absorb(&tree_stats);
    let ecc: Vec<u128> = res
        .dist
        .iter()
        .map(|row| {
            row.iter()
                .map(|d| d.finite().map_or(u128::MAX, u128::from))
                .max()
                .unwrap_or(0)
        })
        .collect();
    // Eccentricity values are O(log(nW))-bit quantities carried in a u128
    // register (u128::MAX encodes "infinite"); budget for the register width.
    let wide = SimConfig {
        bandwidth: congest_sim::Bandwidth::bits(160),
        ..config.clone()
    };
    let (dmax, s1) =
        primitives::converge_cast(g, leader, &wide, &tree, &ecc, primitives::Aggregate::Max)?;
    res.stats.absorb(&s1);
    let (rmin, s2) =
        primitives::converge_cast(g, leader, &wide, &tree, &ecc, primitives::Aggregate::Min)?;
    res.stats.absorb(&s2);
    let to_dist = |x: u128| {
        if x == u128::MAX {
            Dist::INFINITY
        } else {
            Dist::from(x as u64)
        }
    };
    Ok((to_dist(dmax), to_dist(rmin), res.stats))
}

/// A single-source SSSP program (distributed Bellman–Ford from one source,
/// pipelined): each node ends up knowing `d(source, v)`.
struct SsspProgram {
    source: NodeId,
    dist: Option<u64>,
    queued: bool,
}

impl NodeProgram for SsspProgram {
    type Msg = u64;
    type Output = Dist;

    fn start(&mut self, ctx: &NodeCtx, mb: &mut Mailbox<u64>) {
        if ctx.id == self.source {
            self.dist = Some(0);
            mb.broadcast(ctx, 0);
        }
    }

    fn round(
        &mut self,
        ctx: &NodeCtx,
        _round: usize,
        inbox: &[(NodeId, u64)],
        mb: &mut Mailbox<u64>,
    ) -> Status {
        let mut improved = false;
        for &(from, d) in inbox {
            let nd = d + ctx.weight_to(from).expect("neighbor");
            if self.dist.is_none_or(|cur| nd < cur) {
                self.dist = Some(nd);
                improved = true;
            }
        }
        if improved && !self.queued {
            self.queued = true;
        }
        if self.queued {
            self.queued = false;
            mb.broadcast(ctx, self.dist.expect("queued implies distance"));
        }
        Status::Done
    }

    fn finish(self, _ctx: &NodeCtx) -> Dist {
        self.dist.map_or(Dist::INFINITY, Dist::from)
    }
}

/// The 2-approximation row of Table 1: one weighted SSSP from the leader
/// plus a convergecast gives `e(leader)`, and
/// `e(leader) ≤ D ≤ 2·e(leader)`, `R ≤ e(leader) ≤ 2·R`.
///
/// Chechik–Mukhtar \[8\] achieve `Õ(√n·D^{1/4} + D)` for the SSSP; this
/// implementation uses plain distributed Bellman–Ford (`O(SPD)` rounds),
/// which is already far below `n` on the benchmark workloads — the row's
/// point is that a *2*-approximation is much cheaper than a
/// `(3/2−ε)`-approximation.
///
/// Returns `(diameter 2-approx, radius 2-approx, stats)` where the diameter
/// estimate is `2·e(leader) ∈ [D, 2D]` and the radius estimate is
/// `e(leader) ∈ [R, 2R]`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn two_approx_diameter_radius(
    g: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
) -> Result<(Dist, Dist, RoundStats), SimError> {
    let (dist, mut stats) =
        congest_sim::run_phase(g, leader, config, "leader_sssp", |_, _| SsspProgram {
            source: leader,
            dist: None,
            queued: false,
        })?;
    let (tree, tree_stats) = primitives::bfs_tree(g, leader, config)?;
    stats.absorb(&tree_stats);
    let values: Vec<u128> = dist
        .iter()
        .map(|d| d.finite().map_or(u128::MAX, u128::from))
        .collect();
    let wide = SimConfig {
        bandwidth: congest_sim::Bandwidth::bits(160),
        ..config.clone()
    };
    let (ecc, cc) =
        primitives::converge_cast(g, leader, &wide, &tree, &values, primitives::Aggregate::Max)?;
    stats.absorb(&cc);
    if ecc == u128::MAX {
        return Ok((Dist::INFINITY, Dist::INFINITY, stats));
    }
    Ok((Dist::from(2 * ecc as u64), Dist::from(ecc as u64), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, metrics, shortest_path};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(g: &WeightedGraph) -> SimConfig {
        SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(5_000_000)
    }

    #[test]
    fn unweighted_apsp_matches_bfs() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let g = generators::erdos_renyi_connected(20, 0.15, 7, &mut rng);
        let res = unweighted_apsp(&g, 0, &cfg(&g)).unwrap();
        let u = g.unweighted_view();
        for s in g.nodes() {
            let want = shortest_path::bfs(&u, s);
            for v in g.nodes() {
                assert_eq!(res.dist[v][s], want[v], "s={s} v={v}");
            }
        }
    }

    #[test]
    fn weighted_apsp_matches_dijkstra() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..3 {
            let g = generators::erdos_renyi_connected(16, 0.2, 9, &mut rng);
            let res = weighted_apsp(&g, 0, &cfg(&g)).unwrap();
            for s in g.nodes() {
                let want = shortest_path::dijkstra(&g, s);
                for v in g.nodes() {
                    assert_eq!(res.dist[v][s], want[v], "s={s} v={v}");
                }
            }
        }
    }

    #[test]
    fn unweighted_apsp_rounds_linear_not_quadratic() {
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let g = generators::erdos_renyi_connected(40, 0.1, 1, &mut rng);
        let res = unweighted_apsp(&g, 0, &cfg(&g)).unwrap();
        // O(n + D): each node announces each source exactly once.
        assert!(
            res.stats.rounds <= 3 * g.n() + 20,
            "rounds = {} for n = {}",
            res.stats.rounds,
            g.n()
        );
        assert!(
            res.stats.rounds >= g.n() / 2,
            "pipelining cannot beat n/2 here"
        );
    }

    #[test]
    fn diameter_radius_both_modes() {
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        let g = generators::erdos_renyi_connected(14, 0.2, 6, &mut rng);
        let (d, r, _) = diameter_radius_exact(&g, 0, &cfg(&g), WeightMode::Weighted).unwrap();
        let exact = metrics::extremes(&g);
        assert_eq!(d, exact.diameter);
        assert_eq!(r, exact.radius);
        let (d, r, _) = diameter_radius_exact(&g, 0, &cfg(&g), WeightMode::Unweighted).unwrap();
        let exact = metrics::unweighted_extremes(&g);
        assert_eq!(d, exact.diameter);
        assert_eq!(r, exact.radius);
    }

    #[test]
    fn disconnected_graph_apsp_reports_infinities() {
        // A disconnected topology is not a valid CONGEST network (the
        // tree-based aggregation phases assume connectivity), but the APSP
        // floods themselves degrade gracefully: cross-component distances
        // stay infinite.
        let g = WeightedGraph::from_edges(4, [(0, 1, 2), (2, 3, 2)]).unwrap();
        let res = weighted_apsp(&g, 0, &cfg(&g)).unwrap();
        assert_eq!(res.dist[0][1], Dist::from(2u64));
        assert_eq!(res.dist[0][2], Dist::INFINITY);
        assert_eq!(res.dist[3][1], Dist::INFINITY);
    }

    #[test]
    fn two_approx_is_a_two_approximation() {
        let mut rng = ChaCha8Rng::seed_from_u64(45);
        for trial in 0..6 {
            let g = generators::erdos_renyi_connected(18, 0.18, 9, &mut rng);
            let (d2, r2, stats) = two_approx_diameter_radius(&g, trial % 18, &cfg(&g)).unwrap();
            let exact = metrics::extremes(&g);
            let (d, r) = (exact.diameter, exact.radius);
            assert!(
                d2 >= d && d2 <= d.saturating_mul(2),
                "trial {trial}: D̂={d2} vs D={d}"
            );
            assert!(
                r2 >= r && r2 <= r.saturating_mul(2),
                "trial {trial}: R̂={r2} vs R={r}"
            );
            assert!(stats.rounds > 0);
        }
    }

    #[test]
    fn two_approx_much_cheaper_than_apsp() {
        let mut rng = ChaCha8Rng::seed_from_u64(46);
        let g = generators::erdos_renyi_connected(40, 0.1, 6, &mut rng);
        let (_, _, cheap) = two_approx_diameter_radius(&g, 0, &cfg(&g)).unwrap();
        let (_, _, full) = diameter_radius_exact(&g, 0, &cfg(&g), WeightMode::Weighted).unwrap();
        assert!(
            cheap.rounds * 2 < full.rounds,
            "2-approx {} vs exact {}",
            cheap.rounds,
            full.rounds
        );
    }
}
