//! # congest-algos
//!
//! Distributed shortest-path algorithms for the reproduction of *Wu & Yao,
//! "Quantum Complexity of Weighted Diameter and Radius in CONGEST Networks"*
//! (PODC 2022): the complete toolkit of the paper's Appendix A (from
//! Nanongkai, STOC 2014), implemented as genuine message-passing programs on
//! the [`congest_sim`] simulator, plus the classical baselines of Table 1.
//!
//! * [`bounded_sssp`] — Algorithm 2 (Bounded-Distance SSSP) and Algorithm 1
//!   (Bounded-Hop SSSP via weight rounding, Lemma 3.2/A.1);
//! * [`multi_source`] — Algorithm 3 (random-delay concurrent multi-source,
//!   Lemma A.2);
//! * [`overlay_net`] — Algorithm 4 (overlay embedding, Lemma A.3) and
//!   Algorithm 5 (SSSP on the overlay, Lemma A.4);
//! * [`skeleton`] — the composed `Initialization_i` / `Evaluation` pipeline
//!   of Lemma 3.5, producing approximate eccentricities `ẽ_{G,w,i}(s)`;
//! * [`baselines`] — exact classical APSP (pipelined BFS / Bellman–Ford),
//!   exact diameter/radius (`Θ̃(n)`), and the cheap 2-approximation;
//! * [`multi_bfs`] — concurrent pipelined BFS from a source set
//!   (`O(|S| + D)` rounds);
//! * [`three_halves`] — the classical `Õ(√n + D)` 3/2-approximation of the
//!   unweighted diameter (Table 1's [3, 15] rows);
//! * [`sssp`] — `(1+o(1))`-approximate weighted SSSP as a public API;
//! * [`resilient`] — fault-tolerant counterparts over the simulator's
//!   reliable ack/retransmit layer, with degradation scoring against the
//!   centralized references (for the bench fault-sweep experiment).
//!
//! Every distributed procedure is tested for *exact agreement* with the
//! centralized reference implementations in [`congest_graph`].
//!
//! # Examples
//!
//! Approximate an eccentricity through the full skeleton pipeline:
//!
//! ```
//! use congest_algos::skeleton::SkeletonState;
//! use congest_graph::{generators, metrics, rounding::RoundingScheme};
//! use congest_sim::SimConfig;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let g = generators::erdos_renyi_connected(10, 0.3, 4, &mut rng);
//! let cfg = SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(10_000_000);
//! let scheme = RoundingScheme::new(g.n(), 0.5);
//! let st = SkeletonState::initialize(&g, 0, &[0, 4, 8], scheme, 2, &cfg, &mut rng)?;
//! let (ecc, _) = st.eccentricity(&g, 4, &cfg)?;
//! assert!(ecc >= metrics::eccentricity(&g, 4).as_f64() - 1e-9);
//! # Ok::<(), congest_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod bounded_sssp;
pub mod multi_bfs;
pub mod multi_source;
pub mod overlay_net;
pub mod resilient;
pub mod skeleton;
pub mod sssp;
pub mod three_halves;
