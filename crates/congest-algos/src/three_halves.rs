//! The classical `Õ(√n + D)`-round 3/2-approximation of the unweighted
//! diameter (Table 1's `3/2: √n + D` rows, Holzer–Peleg–Roditty–Wattenhofer
//! \[15\] / Ancona et al. \[3\], following the Roditty–Vassilevska Williams
//! scheme).
//!
//! 1. Sample `S` of `Θ(√(n·log n))` nodes; BFS from all of `S`
//!    concurrently (`O(|S| + D)` rounds).
//! 2. Let `w` be the node farthest from `S` (a max-convergecast).
//! 3. BFS from `w`, then from the `t = Θ(√(n·log n))` nodes nearest to `w`
//!    (selected by a distance threshold found with binary-searched
//!    counting convergecasts).
//! 4. Output the largest BFS distance seen — a value in `[⌊2D/3⌋, D]`
//!    with high probability. The per-source eccentricities are aggregated
//!    with one pipelined vector convergecast, whose minimum also yields a
//!    2-approximation of the radius (`min_s e(s) ∈ [R, 2R]`).

use crate::multi_bfs::multi_source_bfs;
use congest_graph::{NodeId, WeightedGraph};
use congest_sim::{primitives, RoundStats, SimConfig, SimError};
use rand::Rng;

/// Result of the 3/2-approximation run.
#[derive(Clone, Debug)]
pub struct ThreeHalvesResult {
    /// Diameter estimate, in `[⌊2D/3⌋, D]` w.h.p.
    pub diameter_estimate: u64,
    /// Radius estimate `min_s e(s)` over the BFS'd sources, in `[R, 2R]`.
    pub radius_estimate: u64,
    /// All BFS sources used (S ∪ {w} ∪ N_t(w)).
    pub sources: Vec<NodeId>,
    /// Accumulated statistics of every phase.
    pub stats: RoundStats,
}

/// Runs the 3/2-approximation on the unweighted view of `g`.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if the graph is disconnected or has fewer than 2 nodes.
pub fn three_halves_diameter<R: Rng + ?Sized>(
    g: &WeightedGraph,
    leader: NodeId,
    config: &SimConfig,
    rng: &mut R,
) -> Result<ThreeHalvesResult, SimError> {
    assert!(g.n() >= 2, "need at least two nodes");
    assert!(g.is_connected(), "CONGEST networks are connected");
    let n = g.n();
    let u = g.unweighted_view();
    let mut stats = RoundStats::default();
    let wide = SimConfig {
        bandwidth: congest_sim::Bandwidth::bits(160),
        ..config.clone()
    };
    let telemetry = config.telemetry.clone();
    let _algo_span = telemetry.span("three_halves");

    // Shared infrastructure: the leader's BFS tree.
    let (tree, st) = {
        let _span = telemetry.span("leader_tree");
        primitives::bfs_tree(&u, leader, config)?
    };
    stats.absorb(&st);

    // Phase 1: sample S (local coin flips) and BFS from all of S.
    let target = ((n as f64) * (n as f64).ln()).sqrt().ceil() as usize;
    let rate = (target as f64 / n as f64).clamp(0.0, 1.0);
    let mut sample: Vec<NodeId> = (0..n).filter(|_| rng.gen_bool(rate)).collect();
    if sample.is_empty() {
        sample.push(leader);
    }
    let (dist_s, st) = {
        let _span = telemetry.span("sample_bfs");
        multi_source_bfs(&u, leader, &sample, config)?
    };
    stats.absorb(&st);

    // Phase 2: w = argmax_v d(v, S) via one max-convergecast of
    // (distance-to-S, node id) pairs.
    let packed: Vec<u128> = (0..n)
        .map(|v| {
            let d = dist_s[v]
                .iter()
                .filter_map(|x| x.finite())
                .min()
                .unwrap_or(0);
            (u128::from(d) << 32) | v as u128
        })
        .collect();
    let (best, st) = {
        let _span = telemetry.span("witness_select");
        primitives::converge_cast(
            &u,
            leader,
            &wide,
            &tree,
            &packed,
            primitives::Aggregate::Max,
        )?
    };
    stats.absorb(&st);
    let w = (best & 0xffff_ffff) as NodeId;

    // Phase 3: BFS from w.
    let (dist_w, st) = {
        let _span = telemetry.span("witness_bfs");
        multi_source_bfs(&u, leader, &[w], config)?
    };
    stats.absorb(&st);

    // Phase 4: select N_t(w) by a distance threshold found with
    // binary-searched counting convergecasts (O(log D) × O(D) rounds).
    let mut lo = 0u64; // invariant: count(≤ lo) < t except when lo = 0 works
    let mut hi = n as u64; // count(≤ hi) ≥ t
    let count_within = |theta: u64, stats: &mut RoundStats| -> Result<u64, SimError> {
        let flags: Vec<u128> = (0..n)
            .map(|v| u128::from(dist_w[v][0].finite().is_some_and(|d| d <= theta)))
            .collect();
        let (c, st) = primitives::converge_cast(
            &u,
            leader,
            &wide,
            &tree,
            &flags,
            primitives::Aggregate::Sum,
        )?;
        stats.absorb(&st);
        Ok(c as u64)
    };
    {
        let _span = telemetry.span("threshold_search");
        if count_within(0, &mut stats)? < target as u64 {
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                if count_within(mid, &mut stats)? >= target as u64 {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
        } else {
            hi = 0;
        }
    }
    let theta = hi;
    let near: Vec<NodeId> = (0..n)
        .filter(|&v| v != w && dist_w[v][0].finite().is_some_and(|d| d <= theta))
        .collect();

    // Phase 5: BFS from N_t(w) and aggregate per-source eccentricities with
    // one pipelined vector convergecast.
    let mut sources = sample.clone();
    if !sources.contains(&w) {
        sources.push(w);
    }
    for &v in &near {
        if !sources.contains(&v) {
            sources.push(v);
        }
    }
    let (dist_all, st) = {
        let _span = telemetry.span("near_set_bfs");
        multi_source_bfs(&u, leader, &sources, config)?
    };
    stats.absorb(&st);
    let vectors: Vec<Vec<u128>> = (0..n)
        .map(|v| {
            dist_all[v]
                .iter()
                .map(|d| d.finite().map_or(0, u128::from))
                .collect()
        })
        .collect();
    let (eccs, st) = {
        let _span = telemetry.span("eccentricity_cast");
        primitives::converge_cast_vec(
            &u,
            leader,
            &wide,
            &tree,
            &vectors,
            primitives::Aggregate::Max,
        )?
    };
    stats.absorb(&st);

    let diameter_estimate = eccs.iter().copied().max().unwrap_or(0) as u64;
    let radius_estimate = eccs.iter().copied().min().unwrap_or(0) as u64;
    Ok(ThreeHalvesResult {
        diameter_estimate,
        radius_estimate,
        sources,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::{generators, metrics};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(g: &WeightedGraph) -> SimConfig {
        SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(5_000_000)
    }

    #[test]
    fn estimate_is_within_three_halves() {
        let mut rng = ChaCha8Rng::seed_from_u64(90);
        for trial in 0..8 {
            let g = generators::erdos_renyi_connected(30, 0.08, 3, &mut rng);
            let exact = metrics::unweighted_extremes(&g);
            let d = exact.diameter.expect_finite();
            let r = exact.radius.expect_finite();
            let res = three_halves_diameter(&g, 0, &cfg(&g), &mut rng).unwrap();
            assert!(
                res.diameter_estimate <= d,
                "trial {trial}: estimate above D"
            );
            assert!(
                3 * res.diameter_estimate + 3 >= 2 * d,
                "trial {trial}: estimate {} below 2D/3 (D = {d})",
                res.diameter_estimate
            );
            assert!(
                res.radius_estimate >= r && res.radius_estimate <= 2 * r,
                "trial {trial}"
            );
        }
    }

    #[test]
    fn exact_on_paths() {
        // On a path the farthest-from-sample node is an endpoint, whose BFS
        // gives the exact diameter.
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let g = generators::path(25, 4);
        let res = three_halves_diameter(&g, 0, &cfg(&g), &mut rng).unwrap();
        assert_eq!(res.diameter_estimate, 24);
    }

    #[test]
    fn rounds_scale_sublinearly() {
        // Õ(√n + D): quadrupling n on a bounded-diameter family should far
        // less than quadruple the rounds.
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let small = {
            let g = generators::cluster_ring(24, 4, 2, &mut rng);
            three_halves_diameter(&g, 0, &cfg(&g), &mut rng)
                .unwrap()
                .stats
                .rounds
        };
        let large = {
            let g = generators::cluster_ring(96, 4, 2, &mut rng);
            three_halves_diameter(&g, 0, &cfg(&g), &mut rng)
                .unwrap()
                .stats
                .rounds
        };
        assert!(
            (large as f64) < 3.2 * small as f64,
            "√n scaling violated: {small} -> {large}"
        );
    }

    #[test]
    fn sources_include_sample_and_witness() {
        let mut rng = ChaCha8Rng::seed_from_u64(93);
        let g = generators::grid(5, 5, 1);
        let res = three_halves_diameter(&g, 0, &cfg(&g), &mut rng).unwrap();
        assert!(!res.sources.is_empty());
        // Sort indices into the borrowed list instead of cloning it.
        let mut order: Vec<usize> = (0..res.sources.len()).collect();
        order.sort_unstable_by_key(|&i| res.sources[i]);
        let distinct = order
            .windows(2)
            .all(|w| res.sources[w[0]] != res.sources[w[1]]);
        assert!(distinct, "sources are distinct: {:?}", res.sources);
    }
}
