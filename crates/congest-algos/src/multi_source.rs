//! Algorithm 3 of the paper's Appendix A: Bounded-Hop **Multi-Source**
//! Shortest Paths with random delays (Lemma A.2).
//!
//! `b = |S|` copies of Algorithm 1 run concurrently. The leader samples
//! delays `Δ_1, …, Δ_b ∈ [0, b·⌈log n⌉]` and broadcasts them (pipelined,
//! `O(D + b)` rounds). Each *logical* round is stretched into
//! `⌈log₂ n⌉ + 1` physical rounds so that a node can forward the up to
//! `⌈log n⌉` messages the random delays leave it per logical round; if a
//! node ever has more, the algorithm reports failure (probability
//! `n^{-c}`, Lemma A.2).
//!
//! After `O(D + b) + stretch · (maxΔ + (#scales)(L+1) + 1)` physical rounds
//! — `Õ(D + ℓ/ε + |S|)` — every node `v` knows `d̃^ℓ(s, v)` for every
//! `s ∈ S`.

use congest_graph::rounding::{ApproxDist, RoundingScheme};
use congest_graph::{NodeId, WeightedGraph};
use congest_sim::{
    primitives, Mailbox, NodeCtx, NodeProgram, RoundStats, SimConfig, SimError, Status,
};
use rand::Rng;
use std::collections::VecDeque;

/// Result of the multi-source run.
#[derive(Clone, Debug)]
pub struct MultiSourceResult {
    /// `approx[v][j] = d̃^ℓ(sources[j], v)`.
    pub approx: Vec<Vec<ApproxDist>>,
    /// Exact wire representation of each entry: `(scale, raw)` with
    /// `value = raw · ε·2^scale/(2ℓ)`; `None` where infinite. This is what
    /// later phases put on the wire (`O(log n)` bits) instead of raw floats.
    pub repr: Vec<Vec<Option<(u32, u64)>>>,
    /// Accumulated statistics of all phases (delay broadcast + main run).
    pub stats: RoundStats,
    /// `true` if some node exceeded its per-logical-round message budget
    /// (the paper's low-probability failure event).
    pub failed: bool,
}

struct CopyState {
    dist: Option<u64>,
    broadcasted: bool,
}

struct MultiSourceProgram {
    sources: Vec<NodeId>,
    delays: Vec<u64>,
    scheme: RoundingScheme,
    stretch: usize,
    limit: u64,
    num_scales: u32,
    total_logical: u64,
    /// Per-copy state for the *current* scale of that copy.
    copies: Vec<CopyState>,
    best: Vec<ApproxDist>,
    best_repr: Vec<Option<(u32, u64)>>,
    queue: VecDeque<(u64, u64)>, // (copy index, distance value)
    buffer: Vec<(NodeId, (u64, u64))>,
    failed: bool,
}

impl MultiSourceProgram {
    fn copy_round(&self, logical: u64, j: usize) -> Option<u64> {
        let start = self.delays[j];
        if logical < start {
            return None;
        }
        let rho = logical - start;
        let t_copy = u64::from(self.num_scales) * (self.limit + 1);
        if rho >= t_copy {
            None
        } else {
            Some(rho)
        }
    }

    fn commit(&mut self, j: usize, scale: u32, value: u64) {
        let approx = value as f64 * self.scheme.unscale(scale);
        if approx < self.best[j] {
            self.best[j] = approx;
            self.best_repr[j] = Some((scale, value));
        }
    }

    /// Processes the logical-round boundary for logical round `logical`.
    fn boundary(&mut self, ctx: &NodeCtx, logical: u64) {
        let mut enqueued = 0usize;
        // 1. Scale resets / source starts (copies whose relative round is 0).
        for j in 0..self.copies.len() {
            let Some(rho) = self.copy_round(logical, j) else {
                continue;
            };
            let rr = rho % (self.limit + 1);
            let scale = (rho / (self.limit + 1)) as u32;
            if rr == 0 {
                self.copies[j] = CopyState {
                    dist: None,
                    broadcasted: false,
                };
                if ctx.id == self.sources[j] {
                    self.copies[j].dist = Some(0);
                    self.copies[j].broadcasted = true;
                    self.commit(j, scale, 0);
                    self.queue.push_back((j as u64, 0));
                    enqueued += 1;
                }
            }
        }
        // 2. Relax buffered messages (sent during the previous logical round).
        //    A message broadcast in a scale's final round (distance L) arrives
        //    after the scale window closed (rr wrapped to 0) and is dropped,
        //    exactly as in Algorithm 2's bounded window.
        let buffered = std::mem::take(&mut self.buffer);
        for (from, (j, d_u)) in buffered {
            let j = j as usize;
            let Some(rho) = self.copy_round(logical, j) else {
                continue;
            };
            let rr = rho % (self.limit + 1);
            if rr == 0 {
                continue;
            }
            let scale = (rho / (self.limit + 1)) as u32;
            let w = ctx.weight_to(from).expect("neighbor");
            let wi = self.scheme.rounded_weight(scale, w);
            let nd = d_u + wi;
            if nd <= self.limit && self.copies[j].dist.is_none_or(|d| nd < d) {
                self.copies[j].dist = Some(nd);
                self.commit(j, scale, nd);
            }
        }
        // 3. Scheduled broadcasts: a node whose settled distance equals the
        //    relative round announces it (once per scale).
        for j in 0..self.copies.len() {
            let Some(rho) = self.copy_round(logical, j) else {
                continue;
            };
            let rr = rho % (self.limit + 1);
            if rr == 0 {
                continue;
            }
            let st = &mut self.copies[j];
            if !st.broadcasted {
                if let Some(d) = st.dist {
                    if d == rr {
                        st.broadcasted = true;
                        self.queue.push_back((j as u64, d));
                        enqueued += 1;
                    }
                }
            }
        }
        // The paper's failure condition: more messages than fit in the
        // stretched logical round.
        if enqueued > self.stretch || self.queue.len() > self.stretch {
            self.failed = true;
        }
    }
}

impl NodeProgram for MultiSourceProgram {
    type Msg = (u64, u64);
    type Output = (Vec<ApproxDist>, Vec<Option<(u32, u64)>>, bool);

    fn start(&mut self, _ctx: &NodeCtx, _mb: &mut Mailbox<(u64, u64)>) {}

    fn round(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &[(NodeId, (u64, u64))],
        mb: &mut Mailbox<(u64, u64)>,
    ) -> Status {
        self.buffer.extend_from_slice(inbox);
        let p = (round - 1) as u64;
        let logical = p / self.stretch as u64;
        let subround = p % self.stretch as u64;
        if logical >= self.total_logical {
            return Status::Done;
        }
        if subround == 0 {
            self.boundary(ctx, logical);
        }
        if let Some(msg) = self.queue.pop_front() {
            mb.broadcast(ctx, msg);
        }
        Status::Running
    }

    fn finish(self, _ctx: &NodeCtx) -> (Vec<ApproxDist>, Vec<Option<(u32, u64)>>, bool) {
        (self.best, self.best_repr, self.failed)
    }
}

/// Runs Algorithm 3: every node learns `d̃^ℓ(s, ·)` for every `s ∈ sources`.
///
/// The leader samples the random delays from `rng` and broadcasts them
/// (pipelined) before the stretched concurrent execution; both phases are
/// charged to the returned statistics.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `sources` is empty or contains an out-of-range node.
pub fn multi_source_bounded_hop<R: Rng + ?Sized>(
    g: &WeightedGraph,
    leader: NodeId,
    sources: &[NodeId],
    scheme: RoundingScheme,
    config: &SimConfig,
    rng: &mut R,
) -> Result<MultiSourceResult, SimError> {
    assert!(!sources.is_empty(), "sources must be non-empty");
    assert!(sources.iter().all(|&s| s < g.n()), "source out of range");
    let n = g.n();
    let b = sources.len();
    let log_n = ((n.max(2) as f64).log2().ceil() as usize).max(1);
    let stretch = log_n + 1;
    let mut stats = RoundStats::default();
    let telemetry = config.telemetry.clone();
    let _algo_span = telemetry.span("multi_source");

    // Phase 0: BFS tree (needed for the delay broadcast).
    let (tree, tree_stats) = primitives::bfs_tree(g, leader, config)?;
    stats.absorb(&tree_stats);

    // Phase 1: the leader samples and broadcasts (source, delay) pairs.
    let delay_cap = (b * log_n) as u64;
    let delays: Vec<u64> = (0..b).map(|_| rng.gen_range(0..=delay_cap)).collect();
    let items: Vec<u128> = sources
        .iter()
        .zip(&delays)
        .map(|(&s, &d)| ((s as u128) << 64) | d as u128)
        .collect();
    // The schedule entries are (node id, delay) — two O(log n)-bit fields
    // packed into a u128; budget the phase for the packing artifact.
    let wide = SimConfig {
        bandwidth: congest_sim::Bandwidth::bits(160),
        ..config.clone()
    };
    let bc_span = telemetry.span("delay_broadcast");
    let (received, bc_stats) = primitives::pipelined_broadcast(g, leader, &wide, &tree, &items)?;
    bc_span.end();
    stats.absorb(&bc_stats);
    // Every node now knows the schedule; unpack (all copies identical).
    let schedule: Vec<(NodeId, u64)> = received[0]
        .iter()
        .map(|&x| ((x >> 64) as NodeId, (x & u64::MAX as u128) as u64))
        .collect();
    debug_assert_eq!(schedule.len(), b);

    // Phase 2: the stretched concurrent execution.
    let limit = scheme.threshold().floor() as u64;
    let num_scales = scheme.max_scale(n, g.max_weight()) + 1;
    let max_delay = delays.iter().copied().max().unwrap_or(0);
    let total_logical = max_delay + u64::from(num_scales) * (limit + 1) + 1;
    let cfg = SimConfig {
        bandwidth: congest_sim::Bandwidth::standard(n, scheme.rounded_weight(0, g.max_weight())),
        ..config.clone()
    };
    let exec_span = telemetry.span("stretched_execution");
    let (out, mut main_stats) =
        congest_sim::run_phase(g, leader, &cfg, "multi_source_sssp", |_, _| {
            MultiSourceProgram {
                sources: schedule.iter().map(|&(s, _)| s).collect(),
                delays: schedule.iter().map(|&(_, d)| d).collect(),
                scheme,
                stretch,
                limit,
                num_scales,
                total_logical,
                copies: (0..b)
                    .map(|_| CopyState {
                        dist: None,
                        broadcasted: false,
                    })
                    .collect(),
                best: vec![f64::INFINITY; b],
                best_repr: vec![None; b],
                queue: VecDeque::new(),
                buffer: Vec::new(),
                failed: false,
            }
        })?;
    let schedule_rounds = total_logical as usize * stretch;
    let padded = schedule_rounds.saturating_sub(main_stats.rounds);
    if padded > 0 {
        telemetry.emit_with(|| congest_sim::TraceEvent::PadRounds {
            rounds: padded,
            reason: format!(
                "Algorithm 3 stretched schedule occupies {total_logical} x {stretch} rounds"
            ),
        });
    }
    main_stats.rounds = main_stats.rounds.max(schedule_rounds);
    exec_span.end();
    stats.absorb(&main_stats);

    let failed = out.iter().any(|(_, _, f)| *f);
    let mut approx = Vec::with_capacity(out.len());
    let mut repr = Vec::with_capacity(out.len());
    for (best, best_repr, _) in out {
        approx.push(best);
        repr.push(best_repr);
    }
    Ok(MultiSourceResult {
        approx,
        repr,
        stats,
        failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;
    use congest_graph::rounding::approx_hop_bounded;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(g: &WeightedGraph) -> SimConfig {
        SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(10_000_000)
    }

    #[test]
    fn matches_reference_for_each_source() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for trial in 0..3 {
            let g = generators::erdos_renyi_connected(12, 0.25, 4, &mut rng);
            let sources = vec![0, 3, 7, 11];
            let scheme = RoundingScheme::new(4, 0.5);
            let res =
                multi_source_bounded_hop(&g, 0, &sources, scheme, &cfg(&g), &mut rng).unwrap();
            assert!(!res.failed, "trial {trial} failed");
            for (j, &s) in sources.iter().enumerate() {
                let want = approx_hop_bounded(&g, s, scheme);
                for v in g.nodes() {
                    let (a, b) = (res.approx[v][j], want[v]);
                    assert!(
                        (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9,
                        "trial {trial} s={s} v={v}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_source_degenerates_to_algorithm_1() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::path(8, 3);
        let scheme = RoundingScheme::new(8, 0.5);
        let res = multi_source_bounded_hop(&g, 0, &[2], scheme, &cfg(&g), &mut rng).unwrap();
        let want = approx_hop_bounded(&g, 2, scheme);
        for v in g.nodes() {
            assert!((res.approx[v][0] - want[v]).abs() < 1e-9 || want[v].is_infinite());
        }
    }

    #[test]
    fn round_cost_matches_lemma_a2_shape() {
        // Õ(D + ℓ/ε + b): doubling b at fixed ℓ should not double the rounds
        // (sources run concurrently, not sequentially).
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::cycle(16, 2);
        let scheme = RoundingScheme::new(6, 0.5);
        let r1 = multi_source_bounded_hop(&g, 0, &[1], scheme, &cfg(&g), &mut rng).unwrap();
        let r4 =
            multi_source_bounded_hop(&g, 0, &[1, 5, 9, 13], scheme, &cfg(&g), &mut rng).unwrap();
        assert!(
            (r4.stats.rounds as f64) < 2.0 * r1.stats.rounds as f64,
            "concurrency lost: {} vs {}",
            r1.stats.rounds,
            r4.stats.rounds
        );
    }

    #[test]
    fn all_nodes_as_sources_works() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::star(6, 2);
        let sources: Vec<NodeId> = (0..6).collect();
        let scheme = RoundingScheme::new(3, 0.5);
        let res = multi_source_bounded_hop(&g, 0, &sources, scheme, &cfg(&g), &mut rng).unwrap();
        assert!(!res.failed);
        // d̃(v, v) = 0 for every v.
        for v in 0..6 {
            assert_eq!(res.approx[v][v], 0.0);
        }
    }
}
