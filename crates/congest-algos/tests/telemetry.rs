//! End-to-end phase-accounting tests: for every composed algorithm, the
//! phase tree reconstructed from its trace must account for *exactly* the
//! rounds the algorithm reports — simulated rounds via `RoundCompleted`,
//! schedule padding via `PadRounds`.

use congest_algos::bounded_sssp::bounded_hop_sssp;
use congest_algos::multi_source::multi_source_bounded_hop;
use congest_algos::three_halves::three_halves_diameter;
use congest_graph::rounding::RoundingScheme;
use congest_graph::{generators, WeightedGraph};
use congest_sim::telemetry::{build_phase_tree, CollectingTracer, PhaseNode};
use congest_sim::{SimConfig, Telemetry};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn traced_cfg(g: &WeightedGraph) -> (SimConfig, Arc<CollectingTracer>) {
    let tracer = Arc::new(CollectingTracer::default());
    let cfg = SimConfig::standard(g.n(), g.max_weight())
        .with_max_rounds(10_000_000)
        .with_telemetry(Telemetry::new(tracer.clone()));
    (cfg, tracer)
}

fn named_phases(node: &PhaseNode) -> Vec<String> {
    node.walk()
        .iter()
        .skip(1)
        .map(|(_, n)| n.name.clone())
        .collect()
}

#[test]
fn three_halves_phases_sum_to_reported_rounds() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = generators::erdos_renyi_connected(24, 0.12, 3, &mut rng);
    let (cfg, tracer) = traced_cfg(&g);
    let res = three_halves_diameter(&g, 0, &cfg, &mut rng).unwrap();

    let tree = build_phase_tree(&tracer.events());
    // Exactly one top-level algorithm span, with the documented sub-phases.
    assert_eq!(tree.children.len(), 1);
    let algo = &tree.children[0];
    assert_eq!(algo.name, "three_halves");
    let children: Vec<&str> = algo.children.iter().map(|c| c.name.as_str()).collect();
    assert!(
        children.len() >= 3,
        "expected at least 3 named phases, got {children:?}"
    );
    for phase in [
        "leader_tree",
        "sample_bfs",
        "witness_select",
        "witness_bfs",
        "near_set_bfs",
    ] {
        assert!(
            children.contains(&phase),
            "missing phase {phase} in {children:?}"
        );
    }

    // The per-phase rounds sum to exactly what the algorithm reports: no
    // round is simulated outside a span, none is double-counted.
    assert_eq!(algo.subtree().rounds, res.stats.rounds);
    assert_eq!(algo.subtree().messages, res.stats.messages);
    assert_eq!(algo.subtree().bits, res.stats.bits);
    // And nothing accrued to the synthetic root directly.
    assert_eq!(tree.own.rounds, 0);
}

#[test]
fn bounded_hop_sssp_pads_are_accounted() {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let g = generators::erdos_renyi_connected(14, 0.2, 5, &mut rng);
    let (cfg, tracer) = traced_cfg(&g);
    let scheme = RoundingScheme::new(g.n(), 0.5);
    let (_, stats) = bounded_hop_sssp(&g, 0, 0, scheme, &cfg).unwrap();

    let tree = build_phase_tree(&tracer.events());
    assert_eq!(tree.children.len(), 1);
    let algo = &tree.children[0];
    assert_eq!(algo.name, "bounded_hop_sssp");
    // One child per scale, each padded to the fixed L+1 schedule.
    assert!(algo
        .children
        .iter()
        .all(|c| c.name == "bounded_distance_sssp"));
    assert!(!algo.children.is_empty());
    assert_eq!(algo.subtree().rounds, stats.rounds);
}

#[test]
fn multi_source_schedule_is_accounted() {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let g = generators::erdos_renyi_connected(12, 0.25, 4, &mut rng);
    let (cfg, tracer) = traced_cfg(&g);
    let scheme = RoundingScheme::new(g.n(), 0.5);
    let res = multi_source_bounded_hop(&g, 0, &[0, 5, 9], scheme, &cfg, &mut rng).unwrap();

    let tree = build_phase_tree(&tracer.events());
    assert_eq!(tree.children.len(), 1);
    let algo = &tree.children[0];
    assert_eq!(algo.name, "multi_source");
    let phases = named_phases(algo);
    assert!(phases.iter().any(|p| p == "delay_broadcast"));
    assert!(phases.iter().any(|p| p == "stretched_execution"));
    assert_eq!(algo.subtree().rounds, res.stats.rounds);
}
