//! Quantum unweighted diameter/radius — the Table 1 comparison row.
//!
//! This is the straightforward instantiation of the distributed quantum
//! optimization framework on `X = V`: Setup broadcasts `|v⟩` (`O(D)`
//! rounds), Evaluation computes the unweighted eccentricity of `v` by a BFS
//! flood plus a convergecast (`O(D)` rounds), and the search runs with mass
//! `ρ = 1/n`, for `Õ(√n · D)` rounds in total.
//!
//! Le Gall–Magniez \[12\] refine this to `Õ(√(nD))`; the refinement changes a
//! `√D` polylog-in-our-regime factor only (see DESIGN.md §1). Both the
//! measured `√n·D` execution and the analytic `√(nD)` model
//! ([`crate::cost::lgm_unweighted_upper`]) are reported by the benchmarks.

use crate::algorithm::Objective;
use crate::framework::{optimize, ordered_bits, PhaseCosts};
use congest_graph::{metrics, NodeId, WeightedGraph};
use congest_sim::{primitives, SimConfig, SimError};
use quantum_sim::search::SearchTrace;
use rand::Rng;

/// Report of one unweighted quantum run.
#[derive(Clone, Debug)]
pub struct UnweightedReport {
    /// The computed eccentricity extreme (exact: the unweighted evaluation
    /// is noiseless, so the only failure mode is the search missing the
    /// optimum).
    pub estimate: u64,
    /// Ground truth.
    pub exact: u64,
    /// Total charged rounds of the adaptive search.
    pub total_rounds: usize,
    /// Deterministic rounds of the full Lemma 3.1 budget at the measured
    /// costs (low-variance; used for scaling plots).
    pub budgeted_rounds: usize,
    /// Measured evaluation cost (BFS + convergecast).
    pub t_eval: usize,
    /// Measured setup cost (broadcast down the tree).
    pub t_setup: usize,
    /// The search trace.
    pub trace: SearchTrace,
    /// The node realizing the estimate.
    pub witness: NodeId,
}

/// Runs the quantum unweighted diameter/radius algorithm.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if the graph is disconnected or has fewer than 2 nodes.
pub fn quantum_unweighted<R: Rng + ?Sized>(
    g: &WeightedGraph,
    leader: NodeId,
    objective: Objective,
    delta: f64,
    config: &SimConfig,
    rng: &mut R,
) -> Result<UnweightedReport, SimError> {
    assert!(g.n() >= 2, "need at least two nodes");
    assert!(g.is_connected(), "CONGEST networks are connected");
    let n = g.n();
    // The simulator primitives need the materialized unit-weight graph; the
    // centralized references below run BFS on the topology of `g` directly.
    let u = g.unweighted_view();

    // Oracle values: exact unweighted eccentricities (the reference of the
    // noiseless BFS evaluation below), via one reused workspace.
    let mut ws = congest_graph::SsspWorkspace::new();
    let eccs: Vec<u64> = g
        .nodes()
        .map(|v| ws.unweighted_eccentricity(g, v).expect_finite())
        .collect();

    // Measure the distributed costs once: Evaluation = BFS flood from a
    // representative node + convergecast of the max depth; Setup = one
    // broadcast down the leader's BFS tree.
    let (tree, tree_stats) = primitives::bfs_tree(&u, leader, config)?;
    let depth = tree.iter().map(|t| t.depth).max().unwrap_or(0);
    let t_setup = depth + 1;
    let rep = n / 2;
    let (rep_tree, rep_stats) = primitives::bfs_tree(&u, rep, config)?;
    let depths: Vec<u128> = rep_tree.iter().map(|t| t.depth as u128).collect();
    let (rep_ecc, cc_stats) = primitives::converge_cast(
        &u,
        rep,
        config,
        &rep_tree,
        &depths,
        primitives::Aggregate::Max,
    )?;
    debug_assert_eq!(
        rep_ecc as u64, eccs[rep],
        "distributed BFS eccentricity disagrees"
    );
    debug_assert!(tree_stats.rounds > 0);
    let t_eval = rep_stats.rounds + cc_stats.rounds;

    let minimize = objective == Objective::Radius;
    let values: Vec<u64> = eccs.iter().map(|&e| ordered_bits(e as f64)).collect();
    let costs = PhaseCosts {
        t0: 0,
        t_setup,
        t_eval,
    };
    let outcome = optimize(&values, 1.0 / n as f64, delta, minimize, costs, rng);
    let budgeted_rounds = costs.charge_oblivious(outcome.budget);

    let witness = outcome.best;
    let estimate = eccs[witness];
    // One pruned BFS sweep certifies both unweighted extremes.
    let extremes = metrics::unweighted_extremes(g);
    let exact = match objective {
        Objective::Diameter => extremes.diameter.expect_finite(),
        Objective::Radius => extremes.radius.expect_finite(),
    };
    Ok(UnweightedReport {
        estimate,
        exact,
        total_rounds: outcome.rounds,
        budgeted_rounds,
        t_eval,
        t_setup,
        trace: outcome.trace,
        witness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(g: &WeightedGraph) -> SimConfig {
        SimConfig::standard(g.n(), g.max_weight())
    }

    #[test]
    fn finds_unweighted_diameter_whp() {
        let mut rng = ChaCha8Rng::seed_from_u64(81);
        let mut hits = 0;
        for _ in 0..10 {
            let g = generators::erdos_renyi_connected(24, 0.12, 5, &mut rng);
            let rep =
                quantum_unweighted(&g, 0, Objective::Diameter, 0.05, &cfg(&g), &mut rng).unwrap();
            assert!(rep.estimate <= rep.exact);
            if rep.estimate == rep.exact {
                hits += 1;
            }
        }
        assert!(hits >= 9, "diameter found {hits}/10");
    }

    #[test]
    fn finds_unweighted_radius_whp() {
        let mut rng = ChaCha8Rng::seed_from_u64(82);
        let mut hits = 0;
        for _ in 0..10 {
            let g = generators::erdos_renyi_connected(20, 0.15, 3, &mut rng);
            let rep =
                quantum_unweighted(&g, 0, Objective::Radius, 0.05, &cfg(&g), &mut rng).unwrap();
            assert!(rep.estimate >= rep.exact);
            if rep.estimate == rep.exact {
                hits += 1;
            }
        }
        assert!(hits >= 9, "radius found {hits}/10");
    }

    #[test]
    fn eval_cost_tracks_diameter_not_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(83);
        // Dense graph: small D, so per-evaluation cost stays small even as
        // n grows.
        let small = {
            let g = generators::erdos_renyi_connected(20, 0.5, 1, &mut rng);
            quantum_unweighted(&g, 0, Objective::Diameter, 0.1, &cfg(&g), &mut rng)
                .unwrap()
                .t_eval
        };
        let large = {
            let g = generators::erdos_renyi_connected(60, 0.5, 1, &mut rng);
            quantum_unweighted(&g, 0, Objective::Diameter, 0.1, &cfg(&g), &mut rng)
                .unwrap()
                .t_eval
        };
        assert!(
            large < 3 * small + 10,
            "t_eval should track D = O(1), got {small} -> {large}"
        );
    }

    #[test]
    fn total_rounds_scale_sublinearly_in_n_at_fixed_d() {
        let mut rng = ChaCha8Rng::seed_from_u64(84);
        let avg = |n: usize, rng: &mut ChaCha8Rng| {
            let mut sum = 0usize;
            for _ in 0..5 {
                let g = generators::erdos_renyi_connected(n, 0.4, 1, rng);
                sum += quantum_unweighted(&g, 0, Objective::Diameter, 0.1, &cfg(&g), rng)
                    .unwrap()
                    .total_rounds;
            }
            sum as f64 / 5.0
        };
        let a = avg(16, &mut rng);
        let b = avg(64, &mut rng);
        // √n scaling: ×4 in n ⇒ ≈ ×2 in rounds; linear would be ×4.
        assert!(b / a < 3.5, "scaling {a} -> {b} not ~√n");
    }
}
