//! The parameter selection of the paper's Eq. (1):
//!
//! ```text
//! ε = 1/log n,   r = n^{2/5}·D^{-1/5},   ℓ = n·log n / r,   k = √D
//! ```
//!
//! plus the experiment-friendly overrides (fixed `ε`, clamped ranges) used
//! by the benchmarks; the overrides change constants/polylogs only, never
//! the polynomial shape in `n` and `D`.

use congest_graph::rounding::RoundingScheme;
use serde::{Deserialize, Serialize};

/// All tunables of the Theorem 1.1 algorithm.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct WdrParams {
    /// Accuracy `ε` (paper: `1/log n`).
    pub eps: f64,
    /// Expected skeleton size `r` (paper: `n^{2/5} D^{-1/5}`).
    pub r: f64,
    /// Hop budget `ℓ` (paper: `n·log n / r`).
    pub ell: usize,
    /// Shortcut parameter `k` (paper: `√D`).
    pub k: usize,
    /// Failure budget `δ` for each quantum search.
    pub delta: f64,
}

impl WdrParams {
    /// The paper's Eq. (1) choice for an `n`-node network of unweighted
    /// diameter `d`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `d == 0`.
    pub fn from_paper(n: usize, d: usize) -> WdrParams {
        assert!(n >= 2 && d >= 1);
        let nf = n as f64;
        let df = d as f64;
        let eps = RoundingScheme::paper_eps(n);
        let r = (nf.powf(0.4) * df.powf(-0.2)).max(1.0);
        let ell = ((nf * nf.log2()) / r).ceil().max(1.0) as usize;
        let k = df.sqrt().round().max(1.0) as usize;
        WdrParams {
            eps,
            r,
            ell,
            k,
            delta: 1.0 / nf,
        }
    }

    /// Benchmark variant: the same polynomial scaling with a fixed,
    /// simulation-friendly `ε` (larger `ε` shrinks the `Õ(·)` polylog
    /// constants; the `(1+ε)²` approximation loosens accordingly).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `d == 0`, or `eps ∉ (0, 1]`.
    pub fn for_benchmarks(n: usize, d: usize, eps: f64) -> WdrParams {
        let mut p = WdrParams::from_paper(n, d);
        assert!(eps > 0.0 && eps <= 1.0);
        p.eps = eps;
        // ℓ keeps its Eq. (1) value; only the accuracy changes.
        p.delta = 0.05;
        p
    }

    /// The sampling rate `r/n` each node uses to join each set `S_i`.
    pub fn sample_rate(&self, n: usize) -> f64 {
        (self.r / n as f64).clamp(0.0, 1.0)
    }

    /// The rounding scheme `(ℓ, ε)` used by every bounded-hop phase.
    pub fn scheme(&self) -> RoundingScheme {
        RoundingScheme::new(self.ell, self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_scale_correctly() {
        let p1 = WdrParams::from_paper(1 << 10, 4);
        let p2 = WdrParams::from_paper(1 << 20, 4);
        // r ~ n^{2/5}: ×2^10 in n means ×2^4 in r.
        let ratio = p2.r / p1.r;
        assert!((ratio - 16.0).abs() < 0.5, "r ratio {ratio}");
        // ℓ ~ n^{3/5}·log n: ×2^10 in n means ×(2^6·2) = 128 in ℓ.
        let ell_ratio = p2.ell as f64 / p1.ell as f64;
        assert!((100.0..170.0).contains(&ell_ratio), "ℓ ratio {ell_ratio}");
    }

    #[test]
    fn k_tracks_sqrt_d() {
        assert_eq!(WdrParams::from_paper(100, 16).k, 4);
        assert_eq!(WdrParams::from_paper(100, 100).k, 10);
        assert_eq!(WdrParams::from_paper(100, 1).k, 1);
    }

    #[test]
    fn r_shrinks_with_d() {
        let small_d = WdrParams::from_paper(10_000, 2);
        let large_d = WdrParams::from_paper(10_000, 512);
        assert!(small_d.r > large_d.r);
    }

    #[test]
    fn sample_rate_in_unit_interval() {
        let p = WdrParams::from_paper(64, 8);
        let rate = p.sample_rate(64);
        assert!(rate > 0.0 && rate <= 1.0);
    }

    #[test]
    fn bench_variant_overrides_eps_only_in_scheme() {
        let p = WdrParams::for_benchmarks(128, 8, 0.25);
        assert_eq!(p.eps, 0.25);
        assert_eq!(p.scheme().eps, 0.25);
        assert_eq!(p.ell, WdrParams::from_paper(128, 8).ell);
    }
}
