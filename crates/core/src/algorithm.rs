//! The paper's main algorithm (Theorem 1.1): quantum CONGEST
//! `(1+o(1))`-approximation of the weighted diameter and radius in
//! `Õ(min{n^{9/10}·D^{3/10}, n})` rounds.
//!
//! Structure, following Section 3 exactly:
//!
//! 1. **Initialization** (free): every node joins each of the `n` sets
//!    `S_1, …, S_n` independently with probability `r/n`.
//! 2. **Outer search** (Lemma 3.1 over `i ∈ [1, n]`): find a set whose
//!    objective `f(i) = max_{s∈S_i} ẽ_i(s)` (min for the radius) reaches the
//!    optimum. Good-Scale (Lemma 3.4) guarantees marked mass `Θ(r/n)`.
//! 3. **Inner procedure** (Lemma 3.5, the outer Evaluation): for a set
//!    `S_i`, run `Initialization_i` (Algorithms 3+4, `T₀` rounds) and search
//!    `s ∈ S_i` for the extreme approximate eccentricity, each application
//!    of Setup (`T₁`, Algorithm 5) and Evaluation (`T₂`, local combine +
//!    convergecast) running on the simulated network.
//!
//! ## How quantum execution is charged (see DESIGN.md §1, §3)
//!
//! Oracle values come from the centralized reference
//! ([`congest_graph::overlay::SkeletonDistances`]), which the distributed
//! pipeline reproduces bit-for-bit (tested in `congest-algos` and
//! re-validated here). The phase costs `T₀`, `T₁`, `T₂` are **measured** by
//! executing the real distributed procedures on the simulated network; the
//! search statistics are exact Grover amplitude dynamics. The inner search
//! runs inside a superposition over `i`, so it is charged as an oblivious
//! fixed-budget schedule ([`PhaseCosts::charge_oblivious`]); the outer
//! search is leader-driven and adaptive, so its actual trace is charged.

use crate::framework::{optimize, ordered_bits, PhaseCosts};
use crate::params::WdrParams;
use congest_algos::skeleton::SkeletonState;
use congest_graph::overlay::SkeletonDistances;
use congest_graph::{metrics, NodeId, WeightedGraph};
use congest_sim::{primitives, ResilienceBudget, RoundStats, SimConfig, SimError};
use quantum_sim::search::{find_above_threshold, lemma_3_1_budget, SearchTrace};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which extreme of the eccentricities is being approximated.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Objective {
    /// `D_{G,w} = max_v e(v)`.
    Diameter,
    /// `R_{G,w} = min_v e(v)`.
    Radius,
}

/// How much the Theorem 1.1 guarantee can be trusted for one run.
///
/// The `(1+ε)²` sandwich assumes the lossless synchronous CONGEST model.
/// When [`SimConfig::faults`](congest_sim::SimConfig) injects drops, crashes,
/// or throttling into the measured distributed phases, the phase outputs
/// (and hence the measured costs and the cross-validation against the
/// centralized reference) may be corrupted, so the report says so instead
/// of silently returning a possibly-wrong estimate.
#[derive(Clone, PartialEq, Eq, Debug, Serialize)]
pub enum Confidence {
    /// No fault overhead was recorded in any measured phase: the estimate
    /// carries the full approximation guarantee. (A configured but all-zero
    /// [`congest_sim::FaultPlan`] still lands here.)
    Guaranteed,
    /// Faults hit the measured phases; the accumulated overhead is attached
    /// and the estimate should be treated as best-effort.
    UnderFaults {
        /// Total fault/recovery overhead across `T₀`, `T₁`, `T₂`, and the
        /// outer BFS-tree measurement.
        resilience: ResilienceBudget,
    },
}

impl Confidence {
    /// `true` when the approximation guarantee holds.
    pub fn is_guaranteed(&self) -> bool {
        matches!(self, Confidence::Guaranteed)
    }

    /// Classifies an accumulated budget: zero overhead is [`Guaranteed`],
    /// anything else is [`UnderFaults`].
    ///
    /// [`Guaranteed`]: Confidence::Guaranteed
    /// [`UnderFaults`]: Confidence::UnderFaults
    pub fn from_resilience(resilience: ResilienceBudget) -> Confidence {
        if resilience.is_zero() {
            Confidence::Guaranteed
        } else {
            Confidence::UnderFaults { resilience }
        }
    }
}

/// The reference evaluation of one sampled set `S_i`.
#[derive(Clone, Debug)]
pub struct SetEval {
    /// The set `S_i` (sorted).
    pub skeleton: Vec<NodeId>,
    /// `ẽ_i(s)` for each member (same order as `skeleton`).
    pub eccs: Vec<f64>,
    /// `f(i)`: max of `eccs` for the diameter, min for the radius.
    pub f: f64,
}

/// Full report of one algorithm run.
#[derive(Clone, Debug)]
pub struct WdrReport {
    /// The output: `f(i*)`, a `(1+ε)²`-approximation of the objective.
    pub estimate: f64,
    /// Ground truth (computed centrally, for experiment tables only).
    pub exact: f64,
    /// Total charged rounds of the adaptive (leader-driven) outer search.
    pub total_rounds: usize,
    /// Deterministic rounds of the Lemma 3.1 worst-case schedule: the full
    /// `O(√(log(1/δ)/ρ))` outer budget at the measured phase costs. This is
    /// the composition `T₀ + O(√(log(1/δ)/ρ))·T` of the paper, *executed*
    /// (low-variance; used for the scaling plots).
    pub budgeted_rounds: usize,
    /// Measured cost of `Initialization_i` (Algorithms 3+4).
    pub t0: usize,
    /// Measured cost of one Setup application (Algorithm 5).
    pub t1: usize,
    /// Measured cost of one Evaluation application (combine + convergecast).
    pub t2: usize,
    /// Cost of the outer Setup (broadcasting `|i⟩`, `O(D)`).
    pub t_setup_outer: usize,
    /// Fixed per-application budget of the (oblivious) inner search.
    pub inner_budget: u64,
    /// The outer search's iteration trace.
    pub outer_trace: SearchTrace,
    /// The chosen set index `i*`.
    pub chosen_set: usize,
    /// The member of `S_{i*}` realizing `f(i*)`.
    pub chosen_node: NodeId,
    /// Lemma 3.4 diagnostics: how many sets are marked (`f(i)` at least /
    /// at most the true objective).
    pub marked_sets: usize,
    /// Number of non-empty sets.
    pub nonempty_sets: usize,
    /// Whether the measured phases ran cleanly enough for the approximation
    /// guarantee to hold (see [`Confidence`]).
    pub confidence: Confidence,
}

/// Samples the `n` sets of Section 3 (`S_i ∋ v` independently w.p. `rate`).
pub fn sample_sets<R: Rng + ?Sized>(n: usize, rate: f64, rng: &mut R) -> Vec<Vec<NodeId>> {
    (0..n)
        .map(|_| (0..n).filter(|_| rng.gen_bool(rate)).collect())
        .collect()
}

/// Evaluates every non-empty set with the centralized reference: the
/// `ẽ_i(s)` tables the quantum searches run over.
pub fn evaluate_sets(
    g: &WeightedGraph,
    sets: &[Vec<NodeId>],
    params: &WdrParams,
    objective: Objective,
) -> Vec<Option<SetEval>> {
    let scheme = params.scheme();
    sets.iter()
        .map(|set| {
            if set.is_empty() {
                return None;
            }
            let sd = SkeletonDistances::compute(g, set, scheme, params.k);
            let eccs: Vec<f64> = sd
                .skeleton
                .iter()
                .map(|&s| sd.approx_eccentricity(s))
                .collect();
            let f = match objective {
                Objective::Diameter => eccs.iter().copied().fold(0.0f64, f64::max),
                Objective::Radius => eccs.iter().copied().fold(f64::INFINITY, f64::min),
            };
            Some(SetEval {
                skeleton: sd.skeleton,
                eccs,
                f,
            })
        })
        .collect()
}

/// Lemma 3.4 diagnostics: the number of sets whose `f(i)` reaches the true
/// objective (from above for the diameter, from below within `(1+ε)²` for
/// the radius).
pub fn marked_set_count(
    evals: &[Option<SetEval>],
    exact: f64,
    objective: Objective,
    eps: f64,
) -> usize {
    evals
        .iter()
        .flatten()
        .filter(|e| match objective {
            Objective::Diameter => e.f >= exact - 1e-9,
            Objective::Radius => e.f <= (1.0 + eps) * (1.0 + eps) * exact + 1e-9,
        })
        .count()
}

/// Runs the Theorem 1.1 algorithm.
///
/// # Errors
///
/// Propagates simulator errors from the measured distributed phases.
///
/// # Panics
///
/// Panics if the graph is disconnected or has fewer than 2 nodes.
pub fn quantum_weighted<R: Rng + ?Sized>(
    g: &WeightedGraph,
    leader: NodeId,
    objective: Objective,
    params: &WdrParams,
    config: &SimConfig,
    rng: &mut R,
) -> Result<WdrReport, SimError> {
    assert!(g.n() >= 2, "need at least two nodes");
    assert!(g.is_connected(), "CONGEST networks are connected");
    let n = g.n();
    let minimize = objective == Objective::Radius;
    let telemetry = config.telemetry.clone();
    let _algo_span = telemetry.span("quantum_weighted");

    // 1. Initialization (free): sample the n sets.
    let rate = params.sample_rate(n);
    let sets = sample_sets(n, rate, rng);
    let evals = evaluate_sets(g, &sets, params, objective);
    let nonempty = evals.iter().flatten().count();

    // 2. Measure the distributed phase costs on a representative set
    //    (round counts are data-oblivious given the parameters; see
    //    DESIGN.md §3). The representative is the set of median size.
    let mut sizes: Vec<(usize, usize)> = evals
        .iter()
        .enumerate()
        .filter_map(|(i, e)| e.as_ref().map(|e| (e.skeleton.len(), i)))
        .collect();
    assert!(!sizes.is_empty(), "all sampled sets empty; increase r");
    sizes.sort_unstable();
    let rep = sizes[sizes.len() / 2].1;
    let rep_eval = evals[rep].as_ref().expect("representative is non-empty");

    let scheme = params.scheme();
    let measure_span = telemetry.span("measure_phase_costs");
    let state =
        SkeletonState::initialize(g, leader, &rep_eval.skeleton, scheme, params.k, config, rng)?;
    let t0 = state.init_stats().rounds;
    let mut resilience = state.init_stats().resilience;
    let rep_s = rep_eval.skeleton[rep_eval.skeleton.len() / 2];
    let (overlay_dist, setup_stats) = state.setup_data(g, rep_s, config)?;
    let t1 = setup_stats.rounds;
    resilience.absorb(&setup_stats.resilience);
    let (rep_ecc, eval_stats) = state.evaluate_eccentricity(g, rep_s, &overlay_dist, config)?;
    let t2 = eval_stats.rounds;
    resilience.absorb(&eval_stats.resilience);
    // Cross-validate: the distributed pipeline and the reference agree.
    // Injected faults legitimately break the agreement (the phase programs
    // are not fault-tolerant); the divergence is then reported through
    // `Confidence::UnderFaults` instead of asserted away.
    if config.faults.is_none() {
        let rep_idx = rep_eval.skeleton.iter().position(|&s| s == rep_s).unwrap();
        debug_assert!(
            (rep_ecc - rep_eval.eccs[rep_idx]).abs() < 1e-9,
            "distributed ẽ != reference ẽ: {rep_ecc} vs {}",
            rep_eval.eccs[rep_idx]
        );
    }

    // Outer Setup cost: the leader broadcasts |i⟩ along the BFS tree.
    let (tree, tree_stats) = primitives::bfs_tree(g, leader, config)?;
    resilience.absorb(&tree_stats.resilience);
    let depth = tree.iter().map(|t| t.depth).max().unwrap_or(0);
    let t_setup_outer = depth + 1;
    measure_span.end();

    // 3. Inner searches (one per set, oblivious budget): each produces the
    //    sample the outer oracle would observe for that branch.
    let inner_span = telemetry.span("inner_search");
    let max_size = sizes.last().unwrap().0;
    let rho_inner = 1.0 / max_size as f64;
    let inner_budget = lemma_3_1_budget(rho_inner, params.delta);
    let f_hat: Vec<u64> = evals
        .iter()
        .enumerate()
        .map(|(i, e)| match e {
            None => ordered_bits(if minimize { f64::INFINITY } else { 0.0 }),
            Some(e) => {
                if e.eccs.len() == 1 {
                    ordered_bits(e.eccs[0])
                } else {
                    let out = find_above_threshold(
                        &to_bits(&e.eccs),
                        rho_inner,
                        params.delta,
                        minimize,
                        rng,
                    );
                    telemetry.emit_with(|| congest_sim::TraceEvent::GroverIteration {
                        label: format!("inner_threshold_search/set_{i}"),
                        iterations: out.trace.grover_iterations,
                        oracle_queries: out.trace.oracle_queries(),
                    });
                    ordered_bits(e.eccs[out.best])
                }
            }
        })
        .collect();
    inner_span.end();

    // 4. Outer search (Lemma 3.1 with ρ = Θ(r/n) from Good-Scale).
    let outer_span = telemetry.span("outer_search");
    let rho_outer = (params.r / (2.0 * n as f64)).clamp(1.0 / n as f64, 1.0);
    let inner_cost = PhaseCosts {
        t0,
        t_setup: t1,
        t_eval: t2,
    };
    let c_eval_outer = inner_cost.charge_oblivious(inner_budget);
    let outer_cost = PhaseCosts {
        t0: 0,
        t_setup: t_setup_outer,
        t_eval: c_eval_outer,
    };
    let outcome = optimize(&f_hat, rho_outer, params.delta, minimize, outer_cost, rng);
    let budgeted_rounds = outer_cost.charge_oblivious(outcome.budget);
    telemetry.emit_with(|| congest_sim::TraceEvent::GroverIteration {
        label: "outer_search/lemma_3_1".to_string(),
        iterations: outcome.trace.grover_iterations,
        oracle_queries: outcome.trace.oracle_queries(),
    });
    outer_span.end();

    let chosen_set = outcome.best;
    let estimate = crate::framework::from_ordered_bits(f_hat[chosen_set]);
    let chosen_node = match &evals[chosen_set] {
        Some(e) => {
            let pos = e
                .eccs
                .iter()
                .position(|&x| ordered_bits(x) == f_hat[chosen_set])
                .unwrap_or(0);
            e.skeleton[pos]
        }
        None => leader,
    };

    // One shared pruned sweep certifies both extremes; pick the requested one.
    let extremes = metrics::extremes(g);
    let exact = match objective {
        Objective::Diameter => extremes.diameter.as_f64(),
        Objective::Radius => extremes.radius.as_f64(),
    };
    let marked = marked_set_count(&evals, exact, objective, params.eps);

    Ok(WdrReport {
        estimate,
        exact,
        total_rounds: outcome.rounds,
        budgeted_rounds,
        t0,
        t1,
        t2,
        t_setup_outer,
        inner_budget,
        outer_trace: outcome.trace,
        chosen_set,
        chosen_node,
        marked_sets: marked,
        nonempty_sets: nonempty,
        confidence: Confidence::from_resilience(resilience),
    })
}

fn to_bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|&x| ordered_bits(x)).collect()
}

/// Validates, for one concrete set, that the distributed pipeline computes
/// the same eccentricities the reference table holds (used by the
/// integration tests; this is the bridge that justifies reference-valued
/// oracles).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn validate_set<R: Rng + ?Sized>(
    g: &WeightedGraph,
    leader: NodeId,
    set: &[NodeId],
    params: &WdrParams,
    config: &SimConfig,
    rng: &mut R,
) -> Result<(Vec<f64>, Vec<f64>, RoundStats), SimError> {
    let scheme = params.scheme();
    let state = SkeletonState::initialize(g, leader, set, scheme, params.k, config, rng)?;
    let mut stats = state.init_stats().clone();
    let sd = SkeletonDistances::compute(g, set, scheme, params.k);
    let mut distributed = Vec::new();
    let mut reference = Vec::new();
    for &s in &sd.skeleton {
        let (ecc, st) = state.eccentricity(g, s, config)?;
        stats.absorb(&st);
        distributed.push(ecc);
        reference.push(sd.approx_eccentricity(s));
    }
    Ok((distributed, reference, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(g: &WeightedGraph) -> SimConfig {
        SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(100_000_000)
    }

    fn small_params(g: &WeightedGraph) -> WdrParams {
        let d = metrics::unweighted_diameter(g);
        let mut p = WdrParams::for_benchmarks(g.n(), d.max(1), 0.5);
        // Small graphs: keep ℓ modest so tests are fast but guarantees hold.
        p.ell = g.n();
        p.r = (g.n() as f64 * 0.35).max(2.0);
        p
    }

    #[test]
    fn diameter_estimate_is_sandwiched() {
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let mut ok = 0;
        for trial in 0..5 {
            let g = generators::erdos_renyi_connected(12, 0.25, 6, &mut rng);
            let p = small_params(&g);
            let rep = quantum_weighted(&g, 0, Objective::Diameter, &p, &cfg(&g), &mut rng).unwrap();
            let bound = (1.0 + p.eps) * (1.0 + p.eps) * rep.exact + 1e-6;
            assert!(
                rep.estimate <= bound,
                "trial {trial}: {} > {bound}",
                rep.estimate
            );
            if rep.estimate >= rep.exact - 1e-6 {
                ok += 1;
            }
        }
        assert!(ok >= 4, "lower side achieved {ok}/5");
    }

    #[test]
    fn radius_estimate_is_sandwiched() {
        let mut rng = ChaCha8Rng::seed_from_u64(72);
        let mut ok = 0;
        for trial in 0..5 {
            let g = generators::erdos_renyi_connected(12, 0.3, 5, &mut rng);
            let p = small_params(&g);
            let rep = quantum_weighted(&g, 0, Objective::Radius, &p, &cfg(&g), &mut rng).unwrap();
            assert!(
                rep.estimate >= rep.exact - 1e-6,
                "trial {trial}: estimate {} below exact radius {}",
                rep.estimate,
                rep.exact
            );
            if rep.estimate <= (1.0 + p.eps).powi(2) * rep.exact + 1e-6 {
                ok += 1;
            }
        }
        assert!(ok >= 4, "upper side achieved {ok}/5");
    }

    /// Lemma 3.4: the number of marked sets is Θ(r) and every f(i) is at
    /// most (1+ε)²·D.
    #[test]
    fn lemma_3_4_marked_mass() {
        let mut rng = ChaCha8Rng::seed_from_u64(73);
        let g = generators::erdos_renyi_connected(14, 0.3, 4, &mut rng);
        let p = small_params(&g);
        let sets = sample_sets(g.n(), p.sample_rate(g.n()), &mut rng);
        let evals = evaluate_sets(&g, &sets, &p, Objective::Diameter);
        let exact = metrics::diameter(&g).as_f64();
        let marked = marked_set_count(&evals, exact, Objective::Diameter, p.eps);
        assert!(
            marked >= 1,
            "at least one set must contain a diameter witness"
        );
        let cap = (1.0 + p.eps) * (1.0 + p.eps) * exact + 1e-6;
        for e in evals.iter().flatten() {
            assert!(e.f <= cap, "f(i) = {} exceeds (1+ε)²D = {cap}", e.f);
        }
    }

    #[test]
    fn report_costs_are_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(74);
        let g = generators::erdos_renyi_connected(10, 0.35, 3, &mut rng);
        let p = small_params(&g);
        let rep = quantum_weighted(&g, 0, Objective::Diameter, &p, &cfg(&g), &mut rng).unwrap();
        assert!(rep.t0 > 0 && rep.t1 > 0 && rep.t2 > 0);
        let inner = PhaseCosts {
            t0: rep.t0,
            t_setup: rep.t1,
            t_eval: rep.t2,
        };
        let c_eval = inner.charge_oblivious(rep.inner_budget);
        let outer = PhaseCosts {
            t0: 0,
            t_setup: rep.t_setup_outer,
            t_eval: c_eval,
        };
        assert_eq!(rep.total_rounds, outer.charge(rep.outer_trace));
    }

    #[test]
    fn validate_set_agrees_with_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(75);
        let g = generators::erdos_renyi_connected(11, 0.3, 4, &mut rng);
        let p = small_params(&g);
        let set = vec![0, 3, 6, 9];
        let (dist, reference, stats) = validate_set(&g, 0, &set, &p, &cfg(&g), &mut rng).unwrap();
        for (a, b) in dist.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!(stats.rounds > 0);
    }

    #[test]
    fn confidence_classifies_resilience_budgets() {
        assert!(Confidence::from_resilience(ResilienceBudget::default()).is_guaranteed());
        let budget = ResilienceBudget {
            dropped_messages: 3,
            ..ResilienceBudget::default()
        };
        let c = Confidence::from_resilience(budget);
        assert!(!c.is_guaranteed());
        assert_eq!(c, Confidence::UnderFaults { resilience: budget });
    }

    /// An all-zero fault plan must not perturb the run at all: same estimate,
    /// same measured costs, and the report still carries the guarantee.
    #[test]
    fn zero_fault_plan_keeps_the_guarantee() {
        let g = {
            let mut rng = ChaCha8Rng::seed_from_u64(77);
            generators::erdos_renyi_connected(10, 0.35, 3, &mut rng)
        };
        let p = small_params(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        let clean = quantum_weighted(&g, 0, Objective::Diameter, &p, &cfg(&g), &mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        let faulted_cfg = cfg(&g).with_faults(congest_sim::FaultPlan::new(123));
        let zeroed =
            quantum_weighted(&g, 0, Objective::Diameter, &p, &faulted_cfg, &mut rng).unwrap();
        assert!(clean.confidence.is_guaranteed());
        assert!(zeroed.confidence.is_guaranteed());
        assert_eq!(clean.estimate, zeroed.estimate);
        assert_eq!(
            (clean.t0, clean.t1, clean.t2),
            (zeroed.t0, zeroed.t1, zeroed.t2)
        );
        assert_eq!(clean.total_rounds, zeroed.total_rounds);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_network_rejected() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (2, 3, 1)]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(76);
        let p = WdrParams::for_benchmarks(4, 1, 0.5);
        let _ = quantum_weighted(&g, 0, Objective::Diameter, &p, &cfg(&g), &mut rng);
    }
}

/// Which branch of Theorem 1.1's `min{n^{9/10}D^{3/10}, n}` a run used.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Branch {
    /// The quantum two-level algorithm (`D` below the `n^{1/3}` crossover).
    Quantum,
    /// The trivial classical branch: exact APSP in `Θ̃(n)` rounds.
    ClassicalApsp,
}

/// Result of [`quantum_weighted_min_branch`].
#[derive(Clone, Debug)]
pub struct MinBranchReport {
    /// The branch Theorem 1.1's `min` selects at these parameters.
    pub branch: Branch,
    /// The estimate (exact when the classical branch ran).
    pub estimate: f64,
    /// Ground truth.
    pub exact: f64,
    /// Charged rounds of the branch that ran.
    pub rounds: usize,
}

/// The literal statement of Theorem 1.1: run the quantum two-level
/// algorithm when `D ≤ n^{1/3}` (the regime where `n^{9/10}D^{3/10} ≤ n`),
/// otherwise fall back to exact classical APSP — the `min{·, n}`.
///
/// The branch is selected from the *asymptotic* cost model, as in the
/// paper; at simulatable sizes the simulator's polylog constants would
/// always favor the classical branch (see EXPERIMENTS.md), so selecting on
/// constants would never exercise the contribution.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if the graph is disconnected or has fewer than 2 nodes.
pub fn quantum_weighted_min_branch<R: Rng + ?Sized>(
    g: &WeightedGraph,
    leader: NodeId,
    objective: Objective,
    params: &WdrParams,
    config: &SimConfig,
    rng: &mut R,
) -> Result<MinBranchReport, SimError> {
    let d = metrics::unweighted_diameter(g).max(1);
    if (d as f64) <= crate::cost::crossover_d(g.n()) {
        let rep = quantum_weighted(g, leader, objective, params, config, rng)?;
        Ok(MinBranchReport {
            branch: Branch::Quantum,
            estimate: rep.estimate,
            exact: rep.exact,
            rounds: rep.total_rounds,
        })
    } else {
        let (dia, rad, stats) = congest_algos::baselines::diameter_radius_exact(
            g,
            leader,
            config,
            congest_algos::baselines::WeightMode::Weighted,
        )?;
        let value = match objective {
            Objective::Diameter => dia.as_f64(),
            Objective::Radius => rad.as_f64(),
        };
        Ok(MinBranchReport {
            branch: Branch::ClassicalApsp,
            estimate: value,
            exact: value,
            rounds: stats.rounds,
        })
    }
}

#[cfg(test)]
mod min_branch_tests {
    use super::*;
    use congest_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cfg(g: &WeightedGraph) -> SimConfig {
        SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(100_000_000)
    }

    #[test]
    fn high_diameter_falls_back_to_classical() {
        // A path: D = n−1 ≫ n^{1/3} ⇒ the classical branch, exact answer.
        let g = generators::path(20, 3);
        let p = WdrParams::for_benchmarks(20, 19, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let rep = quantum_weighted_min_branch(&g, 0, Objective::Diameter, &p, &cfg(&g), &mut rng)
            .unwrap();
        assert_eq!(rep.branch, Branch::ClassicalApsp);
        assert_eq!(rep.estimate, 57.0);
        assert_eq!(rep.estimate, rep.exact);
    }

    #[test]
    fn low_diameter_uses_quantum_branch() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // A clique-ish graph: D small relative to n^{1/3}… n=30 ⇒ n^{1/3}≈3.1.
        let g = generators::erdos_renyi_connected(30, 0.5, 5, &mut rng);
        let d = metrics::unweighted_diameter(&g);
        assert!(d <= 3, "dense graph has tiny diameter");
        let mut p = WdrParams::for_benchmarks(30, d, 0.5);
        p.ell = 30;
        p.r = 6.0;
        let rep =
            quantum_weighted_min_branch(&g, 0, Objective::Radius, &p, &cfg(&g), &mut rng).unwrap();
        assert_eq!(rep.branch, Branch::Quantum);
        assert!(rep.estimate >= rep.exact - 1e-9);
    }
}
