//! A literal regeneration of the paper's **Table 1** ("Complexity of
//! computing diameter and radius in the CONGEST model"): every row, with
//! the asymptotic expressions evaluated at a concrete `(n, D)` so the
//! landscape — and where this work sits in it — can be printed and tested.

use crate::cost::{self, Polylog};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which graph quantity a row is about.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Problem {
    /// The diameter `D_{G,w}`.
    Diameter,
    /// The radius `R_{G,w}`.
    Radius,
}

/// Weighted or unweighted variant.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Variant {
    /// Unit weights.
    Unweighted,
    /// Positive integer weights.
    Weighted,
}

/// One row of Table 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableOneRow {
    /// Diameter or radius.
    pub problem: Problem,
    /// Weighted or unweighted.
    pub variant: Variant,
    /// The approximation regime, paper notation (e.g. "exact", "3/2−ε").
    pub approx: &'static str,
    /// Classical upper bound, `Õ(·)` (expression, value at `(n, D)`).
    pub classical_upper: (&'static str, f64),
    /// Quantum upper bound.
    pub quantum_upper: (&'static str, f64),
    /// Classical lower bound, `Ω̃(·)` (`None` = open).
    pub classical_lower: Option<(&'static str, f64)>,
    /// Quantum lower bound (`None` = open).
    pub quantum_lower: Option<(&'static str, f64)>,
    /// `true` for the rows contributed by Wu–Yao (this paper).
    pub this_work: bool,
}

/// Evaluates every row of Table 1 at a concrete `(n, D)` (bare polynomial
/// shapes, `Õ`-polylogs dropped).
pub fn rows(n: usize, d: usize) -> Vec<TableOneRow> {
    use Problem::*;
    use Variant::*;
    let nf = n as f64;
    let df = d.max(1) as f64;
    let p = Polylog::Drop;
    let sqrt_nd = cost::lgm_unweighted_upper(n, d, p);
    let lin = cost::classical_tight(n, p);
    let qw = cost::quantum_weighted_upper(n, d, p);
    let qwl = cost::quantum_weighted_lower(n, p);
    let qul = cost::quantum_unweighted_lower(n, d, p);
    let sqrt_n_plus_d = nf.sqrt() + df;
    let cm = cost::chechik_mukhtar(n, d, p);
    let cbrt = cost::lgm_three_halves(n, d, p);
    let mut out = Vec::new();
    for problem in [Diameter, Radius] {
        out.push(TableOneRow {
            problem,
            variant: Unweighted,
            approx: "exact",
            classical_upper: ("n", lin),
            quantum_upper: ("√(nD)", sqrt_nd),
            classical_lower: Some(("n", lin)),
            quantum_lower: Some(("∛(nD²)+√n", qul)),
            this_work: false,
        });
        out.push(TableOneRow {
            problem,
            variant: Unweighted,
            approx: "3/2−ε",
            classical_upper: ("n", lin),
            quantum_upper: ("√(nD)", sqrt_nd),
            classical_lower: Some(("n", lin)),
            quantum_lower: Some(("√n+D", sqrt_n_plus_d)),
            this_work: false,
        });
        out.push(TableOneRow {
            problem,
            variant: Unweighted,
            approx: "3/2",
            classical_upper: ("√n+D", sqrt_n_plus_d),
            quantum_upper: if problem == Diameter {
                ("∛(nD)+D", cbrt)
            } else {
                ("√n+D", sqrt_n_plus_d)
            },
            classical_lower: None,
            quantum_lower: None,
            this_work: false,
        });
        out.push(TableOneRow {
            problem,
            variant: Weighted,
            approx: "exact",
            classical_upper: ("n", lin),
            quantum_upper: ("n", lin),
            classical_lower: Some(("n", lin)),
            quantum_lower: Some(("n^{2/3}", qwl)),
            this_work: false,
        });
        out.push(TableOneRow {
            problem,
            variant: Weighted,
            approx: "(1, 3/2)",
            classical_upper: ("n", lin),
            quantum_upper: ("min{n^{9/10}D^{3/10}, n}", qw),
            classical_lower: Some(("n", lin)),
            quantum_lower: Some(("n^{2/3}", qwl)),
            this_work: true,
        });
        out.push(TableOneRow {
            problem,
            variant: Weighted,
            approx: "2",
            classical_upper: ("√n·D^{1/4}+D", cm),
            quantum_upper: ("√n·D^{1/4}+D", cm),
            classical_lower: None,
            quantum_lower: None,
            this_work: false,
        });
    }
    out
}

impl fmt::Display for TableOneRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mark = if self.this_work { " ← this work" } else { "" };
        write!(
            f,
            "{:?}/{:?} [{}]: classical Õ({}) = {:.0}, quantum Õ({}) = {:.0}{mark}",
            self.problem,
            self.variant,
            self.approx,
            self.classical_upper.0,
            self.classical_upper.1,
            self.quantum_upper.0,
            self.quantum_upper.1,
        )
    }
}

/// Renders the full table as markdown.
pub fn to_markdown(n: usize, d: usize) -> String {
    let mut out = String::new();
    use std::fmt::Write as _;
    writeln!(
        out,
        "| problem | variant | approx | classical Õ | quantum Õ | classical Ω̃ | quantum Ω̃ |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|---|").unwrap();
    for r in rows(n, d) {
        let fmt_opt = |o: &Option<(&'static str, f64)>| match o {
            Some((e, v)) => format!("{e} = {v:.0}"),
            None => "open".into(),
        };
        writeln!(
            out,
            "| {:?}{} | {:?} | {} | {} = {:.0} | {} = {:.0} | {} | {} |",
            r.problem,
            if r.this_work { " ★" } else { "" },
            r.variant,
            r.approx,
            r.classical_upper.0,
            r.classical_upper.1,
            r.quantum_upper.0,
            r.quantum_upper.1,
            fmt_opt(&r.classical_lower),
            fmt_opt(&r.quantum_lower),
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_all_fourteen_content_rows() {
        // Table 1 has 6 regimes per problem in our consolidation (the paper
        // splits weighted diameter 2−ε/2 rows; our "2" row carries both).
        let r = rows(1 << 16, 16);
        assert_eq!(r.len(), 12);
        assert_eq!(r.iter().filter(|x| x.this_work).count(), 2);
    }

    /// Every lower bound sits below its upper bound — Table 1 is consistent.
    #[test]
    fn lower_bounds_below_upper_bounds() {
        for &(n, d) in &[(1usize << 12, 8usize), (1 << 16, 64), (1 << 20, 16)] {
            for r in rows(n, d) {
                if let Some((_, lo)) = r.quantum_lower {
                    assert!(
                        lo <= r.quantum_upper.1 * 1.001,
                        "{:?}/{:?}/{}: {lo} > {}",
                        r.problem,
                        r.variant,
                        r.approx,
                        r.quantum_upper.1
                    );
                }
                if let Some((_, lo)) = r.classical_lower {
                    assert!(lo <= r.classical_upper.1 * 1.001);
                }
                // Quantum never above classical (it can always simulate).
                assert!(r.quantum_upper.1 <= r.classical_upper.1 * 1.001);
            }
        }
    }

    /// This paper's separation: at D = polylog(n), the weighted quantum
    /// upper bound is sublinear while the classical bound is linear, and
    /// the weighted-vs-unweighted quantum gap (Theorem 1.2) is visible.
    #[test]
    fn the_papers_separations() {
        // The n^{0.9}D^{0.3} < n/2 separation needs n^{0.1} > 2·D^{0.3}:
        // true from n ≈ 2^30 at D = log n (it is an asymptotic statement).
        let n = 1 << 30;
        let d = 30;
        let r = rows(n, d);
        let weighted = r
            .iter()
            .find(|x| x.this_work && x.problem == Problem::Diameter)
            .unwrap();
        assert!(weighted.quantum_upper.1 < weighted.classical_upper.1 / 2.0);
        let unweighted_exact = r
            .iter()
            .find(|x| {
                x.problem == Problem::Diameter
                    && x.variant == Variant::Unweighted
                    && x.approx == "exact"
            })
            .unwrap();
        // Strictly harder: the weighted quantum lower bound exceeds the
        // unweighted quantum upper bound.
        assert!(
            weighted.quantum_lower.unwrap().1 > unweighted_exact.quantum_upper.1,
            "Theorem 1.2's separation must show at D = Θ(log n)"
        );
    }

    #[test]
    fn markdown_renders_every_row() {
        let md = to_markdown(1 << 14, 14);
        assert_eq!(md.matches("| Diameter").count(), 6);
        assert_eq!(md.matches("| Radius").count(), 6);
        assert_eq!(md.matches('★').count(), 2);
        assert!(md.contains("open"));
    }

    #[test]
    fn display_marks_this_work() {
        let r = rows(1024, 4);
        let s = r.iter().find(|x| x.this_work).unwrap().to_string();
        assert!(s.contains("this work"));
    }
}
