//! Analytic round-complexity models for every row of the paper's Table 1.
//!
//! These are the asymptotic expressions the measured curves are compared
//! against in EXPERIMENTS.md. `Õ(·)` polylog factors are exposed via the
//! `polylog` switch so both the bare polynomial shape and the
//! paper-faithful bound can be plotted.

use serde::{Deserialize, Serialize};

/// Which polylog convention a model value uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Polylog {
    /// Bare polynomial (shape only).
    Drop,
    /// Multiply by `log² n` (the typical hidden factor in these bounds).
    Keep,
}

fn lg(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

fn with_polylog(x: f64, n: usize, p: Polylog) -> f64 {
    match p {
        Polylog::Drop => x,
        Polylog::Keep => x * lg(n) * lg(n),
    }
}

/// **This work (Theorem 1.1)**: quantum `(1+o(1))`-approximate weighted
/// diameter/radius, `Õ(min{n^{9/10} D^{3/10}, n})`.
pub fn quantum_weighted_upper(n: usize, d: usize, p: Polylog) -> f64 {
    let nf = n as f64;
    let df = d.max(1) as f64;
    with_polylog((nf.powf(0.9) * df.powf(0.3)).min(nf), n, p)
}

/// **This work (Theorem 1.2)**: quantum lower bound for
/// `(3/2−ε)`-approximate weighted diameter/radius, `Ω̃(n^{2/3})`
/// (`Ω(n^{2/3}/log² n)` with the explicit polylog).
pub fn quantum_weighted_lower(n: usize, p: Polylog) -> f64 {
    let bare = (n as f64).powf(2.0 / 3.0);
    match p {
        Polylog::Drop => bare,
        Polylog::Keep => bare / (lg(n) * lg(n)),
    }
}

/// Classical exact/`(3/2−ε)` weighted & unweighted diameter/radius:
/// `Θ̃(n)` (\[2, 6, 11, 17, 22\]).
pub fn classical_tight(n: usize, p: Polylog) -> f64 {
    with_polylog(n as f64, n, p)
}

/// Le Gall–Magniez: quantum exact unweighted diameter/radius,
/// `Õ(√(nD))` \[12\].
pub fn lgm_unweighted_upper(n: usize, d: usize, p: Polylog) -> f64 {
    with_polylog(((n * d.max(1)) as f64).sqrt(), n, p)
}

/// The straightforward quantization this reproduction executes for the
/// unweighted rows: Grover over nodes with an `O(D)`-round BFS eccentricity
/// evaluation, `Õ(√n · D)` (see DESIGN.md §1 for why this preserves
/// Table 1's ordering in the benchmark regime).
pub fn grover_bfs_unweighted_upper(n: usize, d: usize, p: Polylog) -> f64 {
    with_polylog((n as f64).sqrt() * d.max(1) as f64, n, p)
}

/// Magniez–Nayak: quantum lower bound for exact unweighted
/// diameter/radius, `Ω̃(∛(nD²) + √n)` \[20\].
pub fn quantum_unweighted_lower(n: usize, d: usize, p: Polylog) -> f64 {
    let nf = n as f64;
    let df = d.max(1) as f64;
    let bare = (nf * df * df).powf(1.0 / 3.0) + nf.sqrt();
    match p {
        Polylog::Drop => bare,
        Polylog::Keep => bare / (lg(n) * lg(n)),
    }
}

/// Le Gall–Magniez: quantum 3/2-approximate unweighted diameter,
/// `Õ(∛(nD) + D)` \[12\].
pub fn lgm_three_halves(n: usize, d: usize, p: Polylog) -> f64 {
    with_polylog(((n * d.max(1)) as f64).powf(1.0 / 3.0) + d as f64, n, p)
}

/// Chechik–Mukhtar SSSP ⇒ 2-approximate weighted diameter/radius,
/// `Õ(√n·D^{1/4} + D)` \[8\].
pub fn chechik_mukhtar(n: usize, d: usize, p: Polylog) -> f64 {
    let nf = n as f64;
    let df = d.max(1) as f64;
    with_polylog(nf.sqrt() * df.powf(0.25) + df, n, p)
}

/// The `D` value at which Theorem 1.1's bound crosses the trivial `n`
/// branch: `n^{9/10}·D^{3/10} = n ⇔ D = n^{1/3}`.
pub fn crossover_d(n: usize) -> f64 {
    (n as f64).powf(1.0 / 3.0)
}

/// The explicit Lemma 3.5 + Theorem 1.1 composition with unit constants:
/// `√(n/r)·(D + n/(εr) + rk + √r·(r/(εk)·D + r))`. Used to sanity-check
/// that Eq. (1) indeed balances the terms to `n^{9/10} D^{3/10}`.
pub fn composed_cost(n: usize, d: usize, eps: f64, r: f64, k: f64) -> f64 {
    let nf = n as f64;
    let df = d as f64;
    let inner = df + nf / (eps * r) + r * k + r.sqrt() * (r / (eps * k) * df + r);
    (nf / r).sqrt() * inner
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_1_1_beats_classical_when_d_small() {
        for &n in &[1 << 12, 1 << 16, 1 << 20] {
            let d = (n as f64).powf(0.2) as usize; // D = n^{1/5} ≪ n^{1/3}
            assert!(
                quantum_weighted_upper(n, d, Polylog::Drop) < classical_tight(n, Polylog::Drop),
                "n={n}"
            );
        }
    }

    #[test]
    fn min_branch_kicks_in_above_crossover() {
        let n = 1 << 15;
        let d_big = (crossover_d(n) * 4.0) as usize;
        assert_eq!(quantum_weighted_upper(n, d_big, Polylog::Drop), n as f64);
        let d_small = (crossover_d(n) / 4.0) as usize;
        assert!(quantum_weighted_upper(n, d_small, Polylog::Drop) < n as f64);
    }

    #[test]
    fn lower_bound_below_upper_bound() {
        for &n in &[1 << 10, 1 << 14, 1 << 20] {
            assert!(
                quantum_weighted_lower(n, Polylog::Drop)
                    <= quantum_weighted_upper(n, 2, Polylog::Drop)
            );
        }
    }

    #[test]
    fn table_one_ordering_at_log_diameter() {
        // At D = Θ(log n): unweighted quantum ≪ weighted quantum ≪ classical.
        let n = 1 << 18;
        let d = 18;
        let uq = lgm_unweighted_upper(n, d, Polylog::Drop);
        let wq = quantum_weighted_upper(n, d, Polylog::Drop);
        let cl = classical_tight(n, Polylog::Drop);
        assert!(uq < wq && wq < cl, "{uq} < {wq} < {cl}");
    }

    #[test]
    fn eq_one_balances_composed_cost() {
        // With the paper's r, k, the explicit composition matches the
        // headline bound up to polylog factors.
        for &(n, d) in &[(1 << 14, 8usize), (1 << 18, 64), (1 << 20, 16)] {
            let nf = n as f64;
            let df = d as f64;
            let eps = 1.0 / nf.log2();
            let r = nf.powf(0.4) * df.powf(-0.2);
            let k = df.sqrt();
            let composed = composed_cost(n, d, eps, r, k);
            let headline = quantum_weighted_upper(n, d, Polylog::Drop);
            let ratio = composed / headline;
            let polylog_budget = nf.log2().powi(3);
            assert!(
                ratio >= 0.5 && ratio <= polylog_budget,
                "n={n} D={d}: composed/headline = {ratio}"
            );
        }
    }

    #[test]
    fn crossover_is_cube_root() {
        assert!((crossover_d(1 << 15) - 32.0).abs() < 1.0);
    }

    #[test]
    fn polylog_keep_inflates() {
        assert!(classical_tight(1024, Polylog::Keep) > classical_tight(1024, Polylog::Drop));
    }
}
