//! The distributed quantum optimization framework (paper Lemma 3.1 /
//! Le Gall–Magniez Theorem 2.4), as an executable harness.
//!
//! Given black-box **Initialization** (cost `T₀`), **Setup** and
//! **Evaluation** (cost `T` together, invertible), and a guarantee that the
//! amplitude mass on `{x : f(x) ≥ M}` is at least `ρ`, the leader finds some
//! `x` with `f(x) ≥ M` with probability `1 − δ` in
//! `T₀ + O(√(log(1/δ)/ρ))·T` rounds.
//!
//! The harness runs the search at the exact-amplitude level
//! ([`quantum_sim::search`]) and converts the iteration trace into rounds:
//! each amplification iteration applies Setup∘Evaluation **and its inverse**
//! (`2·(T_setup + T_eval)` rounds); each measurement is followed by one
//! classical verification evaluation (`T_setup + T_eval` rounds).

use quantum_sim::search::{find_above_threshold, OptimizeOutcome, SearchTrace};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Round costs of the three framework procedures.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct PhaseCosts {
    /// Initialization rounds (paid once).
    pub t0: usize,
    /// Setup rounds (per application).
    pub t_setup: usize,
    /// Evaluation rounds (per application).
    pub t_eval: usize,
}

impl PhaseCosts {
    /// Rounds charged for a given search trace:
    /// `T₀ + (2·iterations + measurements)·(T_setup + T_eval)`.
    pub fn charge(&self, trace: SearchTrace) -> usize {
        let apps = 2 * trace.grover_iterations + trace.measurements;
        self.t0 + apps as usize * (self.t_setup + self.t_eval)
    }

    /// Rounds charged for a **fixed-budget oblivious schedule** of `budget`
    /// iterations (used when the search itself runs inside a superposition
    /// and its control flow must not depend on the branch, as in Lemma 3.5's
    /// inner search): `T₀ + 3·budget·(T_setup + T_eval)` — `2·budget` for
    /// amplification plus up to `budget` verification applications.
    pub fn charge_oblivious(&self, budget: u64) -> usize {
        self.t0 + 3 * budget as usize * (self.t_setup + self.t_eval)
    }
}

/// Result of one framework search.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct FrameworkOutcome {
    /// Index of the element the leader ends up holding.
    pub best: usize,
    /// Rounds charged for the whole search.
    pub rounds: usize,
    /// The underlying iteration trace.
    pub trace: SearchTrace,
    /// The iteration budget `O(√(log(1/δ)/ρ))` that was allotted.
    pub budget: u64,
}

/// Runs the framework search for a maximal (or minimal) element over `values`
/// with promised mass `rho` above (below) the unknown threshold.
///
/// `values` are compared by total order of their bits, so callers pass
/// order-preserving encodings (e.g. [`ordered_bits`] for non-negative
/// floats).
///
/// # Panics
///
/// Panics if `values` is empty, `rho ∉ (0, 1]`, or `delta ∉ (0, 1)`.
pub fn optimize<R: Rng + ?Sized>(
    values: &[u64],
    rho: f64,
    delta: f64,
    minimize: bool,
    costs: PhaseCosts,
    rng: &mut R,
) -> FrameworkOutcome {
    let out: OptimizeOutcome = find_above_threshold(values, rho, delta, minimize, rng);
    let budget = quantum_sim::search::lemma_3_1_budget(rho, delta);
    FrameworkOutcome {
        best: out.best,
        rounds: costs.charge(out.trace),
        trace: out.trace,
        budget,
    }
}

/// Order-preserving `u64` encoding of a non-negative float (including
/// `+∞`), so `f64` objective values can ride the bit-ordered search.
pub fn ordered_bits(x: f64) -> u64 {
    debug_assert!(x >= 0.0 || x.is_nan());
    x.to_bits()
}

/// Inverse of [`ordered_bits`].
pub fn from_ordered_bits(b: u64) -> f64 {
    f64::from_bits(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn charge_formula() {
        let c = PhaseCosts {
            t0: 100,
            t_setup: 3,
            t_eval: 7,
        };
        let t = SearchTrace {
            grover_iterations: 10,
            measurements: 4,
        };
        assert_eq!(c.charge(t), 100 + (20 + 4) * 10);
        assert_eq!(c.charge_oblivious(5), 100 + 15 * 10);
    }

    #[test]
    fn ordered_bits_monotone() {
        let xs = [0.0, 0.5, 1.0, 2.5, 1e9, f64::INFINITY];
        for w in xs.windows(2) {
            assert!(ordered_bits(w[0]) < ordered_bits(w[1]));
        }
        assert_eq!(from_ordered_bits(ordered_bits(2.5)), 2.5);
    }

    #[test]
    fn optimize_finds_top_mass_whp() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 400;
        let values: Vec<u64> = (0..n)
            .map(|i| {
                ordered_bits(if i % 40 == 0 {
                    1000.0 + i as f64
                } else {
                    i as f64 % 500.0
                })
            })
            .collect();
        let costs = PhaseCosts {
            t0: 50,
            t_setup: 2,
            t_eval: 11,
        };
        let mut ok = 0;
        for _ in 0..50 {
            let out = optimize(&values, 10.0 / 400.0, 0.1, false, costs, &mut rng);
            if from_ordered_bits(values[out.best]) >= 1000.0 {
                ok += 1;
            }
            assert!(out.rounds >= costs.t0);
            assert_eq!(out.rounds, costs.charge(out.trace));
        }
        assert!(ok >= 45, "succeeded {ok}/50");
    }

    #[test]
    fn optimize_minimizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let values: Vec<u64> = (0..300)
            .map(|i| {
                ordered_bits(if i % 30 == 0 {
                    i as f64 / 100.0
                } else {
                    50.0 + i as f64
                })
            })
            .collect();
        let out = optimize(&values, 0.03, 0.05, true, PhaseCosts::default(), &mut rng);
        assert!(from_ordered_bits(values[out.best]) < 50.0);
    }

    #[test]
    fn rounds_scale_with_one_over_sqrt_rho() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let costs = PhaseCosts {
            t0: 0,
            t_setup: 1,
            t_eval: 1,
        };
        let mk = |top: usize, n: usize| -> Vec<u64> {
            (0..n)
                .map(|i| ordered_bits(if i % (n / top) == 0 { 900.0 } else { 1.0 }))
                .collect()
        };
        let avg = |values: &[u64], rho: f64, rng: &mut ChaCha8Rng| {
            (0..30)
                .map(|_| optimize(values, rho, 0.1, false, costs, rng).rounds)
                .sum::<usize>() as f64
                / 30.0
        };
        let dense = avg(&mk(64, 4096), 64.0 / 4096.0, &mut rng);
        let sparse = avg(&mk(4, 4096), 4.0 / 4096.0, &mut rng);
        assert!(
            sparse > 1.5 * dense,
            "√(1/ρ) scaling violated: dense {dense}, sparse {sparse}"
        );
    }
}
