//! # congest-wdr
//!
//! The core of the reproduction of *Wu & Yao, "Quantum Complexity of
//! Weighted Diameter and Radius in CONGEST Networks"* (PODC 2022): the
//! quantum CONGEST algorithm of **Theorem 1.1**, which
//! `(1+o(1))`-approximates the weighted diameter and radius in
//! `Õ(min{n^{9/10}·D^{3/10}, n})` rounds.
//!
//! * [`params`] — the paper's Eq. (1) parameter selection
//!   (`ε = 1/log n`, `r = n^{2/5}D^{-1/5}`, `ℓ = n·log n/r`, `k = √D`);
//! * [`framework`] — the distributed quantum optimization framework
//!   (Lemma 3.1) with faithful round charging;
//! * [`algorithm`] — the two-level algorithm of Section 3
//!   ([`algorithm::quantum_weighted`]) for both objectives;
//! * [`unweighted`] — the quantum unweighted diameter/radius comparison row;
//! * [`cost`] — analytic models for every row of Table 1;
//! * [`table_one`] — the full Table 1, evaluated and rendered.
//!
//! # Examples
//!
//! ```
//! use congest_wdr::algorithm::{quantum_weighted, Objective};
//! use congest_wdr::params::WdrParams;
//! use congest_graph::{generators, metrics};
//! use congest_sim::SimConfig;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
//! let g = generators::erdos_renyi_connected(10, 0.35, 4, &mut rng);
//! let d = metrics::unweighted_diameter(&g);
//! let mut params = WdrParams::for_benchmarks(g.n(), d, 0.5);
//! params.ell = g.n(); // generous hop budget on a tiny test graph
//! params.r = 4.0;
//! let cfg = SimConfig::standard(g.n(), g.max_weight()).with_max_rounds(100_000_000);
//! let report = quantum_weighted(&g, 0, Objective::Diameter, &params, &cfg, &mut rng)?;
//! assert!(report.estimate <= (1.0 + params.eps).powi(2) * report.exact + 1e-6);
//! # Ok::<(), congest_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod cost;
pub mod framework;
pub mod params;
pub mod table_one;
pub mod unweighted;
